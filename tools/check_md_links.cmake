# Markdown link checker, run by CTest as
#   cmake -DREPO_ROOT=<repo> -P check_md_links.cmake
#
# Verifies that every relative link target in README.md and docs/*.md exists
# on disk, so the documentation cannot silently rot as files move. External
# links (http/https/mailto) and pure in-page anchors are skipped; a trailing
# "#anchor" on a file link is stripped before the existence check.

if(NOT DEFINED REPO_ROOT)
  message(FATAL_ERROR "usage: cmake -DREPO_ROOT=<repo> -P check_md_links.cmake")
endif()

file(GLOB doc_files "${REPO_ROOT}/docs/*.md")
list(APPEND doc_files "${REPO_ROOT}/README.md")
list(LENGTH doc_files doc_count)
if(doc_count LESS 2)
  message(FATAL_ERROR "expected README.md plus docs/*.md under ${REPO_ROOT}, "
                      "found only ${doc_count} file(s)")
endif()

set(broken "")
set(checked 0)
foreach(doc IN LISTS doc_files)
  file(READ "${doc}" content)
  get_filename_component(doc_dir "${doc}" DIRECTORY)
  # Inline links: [text](target). Matches are consumed one at a time with a
  # chop loop — MATCHALL would return elements starting with an unbalanced
  # "]", which CMake's list machinery silently refuses to split on.
  set(rest "${content}")
  while(rest MATCHES "\\]\\(([^)\n]+)\\)")
    set(target "${CMAKE_MATCH_1}")
    string(FIND "${rest}" "](${target})" pos)
    math(EXPR pos "${pos} + 2")
    string(SUBSTRING "${rest}" ${pos} -1 rest)
    # Drop an optional quoted link title ([text](file.md "Title")) and
    # surrounding whitespace before classifying the target.
    string(REGEX REPLACE "[ \t]+\"[^\"]*\"[ \t]*$" "" target "${target}")
    string(STRIP "${target}" target)
    if(target MATCHES "^(https?|mailto):" OR target MATCHES "^#")
      continue()
    endif()
    string(REGEX REPLACE "#.*$" "" target_path "${target}")
    if(target_path STREQUAL "")
      continue()
    endif()
    if(IS_ABSOLUTE "${target_path}")
      set(resolved "${target_path}")
    else()
      set(resolved "${doc_dir}/${target_path}")
    endif()
    math(EXPR checked "${checked} + 1")
    if(NOT EXISTS "${resolved}")
      list(APPEND broken "${doc}: broken link '${target}' (no such file: ${resolved})")
    endif()
  endwhile()
endforeach()

if(broken)
  list(JOIN broken "\n  " broken_text)
  message(FATAL_ERROR "markdown link check failed:\n  ${broken_text}")
endif()
if(checked EQUAL 0)
  message(FATAL_ERROR "markdown link check matched no relative links — "
                      "extraction regex broken?")
endif()
message(STATUS "markdown links OK (${checked} relative link(s) across ${doc_count} file(s))")
