// streamflow_lint — the repo-specific determinism & hygiene lint.
//
// Scans every .cpp/.hpp under src/, tools/, tests/, and bench/ (relative to
// --root) and applies the per-line rules in tools/lint_rules.hpp: banned
// wall-clock and ambient-entropy calls, float in analysis code, unjustified
// unordered-container iteration, header hygiene, and raw std::mutex outside
// the annotated wrapper. Runs as the `lint` CTest in every CI job.
//
//   streamflow_lint --root <repo>      lint the tree (exit 1 on violations)
//   streamflow_lint --list-rules       print every rule id + summary
//   streamflow_lint file.cpp ...       lint explicit files (paths are taken
//                                      relative to --root for rule policy)
//
// Suppressions: // lint:allow(<rule>): <reason>  — see lint_rules.hpp.

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "lint_rules.hpp"

namespace fs = std::filesystem;

namespace {

int usage(std::FILE* stream) {
  std::fputs(
      "usage: streamflow_lint [--root DIR] [--list-rules] [FILE...]\n"
      "\n"
      "Determinism & hygiene lint for the streamflow tree.\n"
      "\n"
      "  --root DIR     repository root to scan (default: current directory);\n"
      "                 scans src/, tools/, tests/, bench/ for .cpp/.hpp,\n"
      "                 skipping tests/fixtures/ (planted lint violations)\n"
      "  --list-rules   print every rule id with its summary and exit\n"
      "  --help         this text\n"
      "  FILE...        lint only these files (policy uses their path\n"
      "                 relative to --root)\n"
      "\n"
      "Exit status: 0 clean, 1 violations found, 2 usage/IO error.\n"
      "Suppress a finding with '// lint:allow(<rule>): <reason>'.\n",
      stream);
  return stream == stdout ? 0 : 2;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Forward-slash path of `path` relative to `root` (policy key for the
/// rule engine); falls back to the path as given.
std::string policy_path(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  std::string out = (ec || rel.empty()) ? path.generic_string()
                                        : rel.generic_string();
  return out;
}

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp";
}

/// The default scan set: sorted for deterministic output, fixtures skipped
/// (they exist to violate the rules on purpose).
std::vector<fs::path> collect_tree(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "tests", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (!entry.is_regular_file() || !lintable_extension(entry.path()))
        continue;
      const std::string rel = policy_path(entry.path(), root);
      if (rel.rfind("tests/fixtures/", 0) == 0) continue;
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  bool list_rules = false;
  std::vector<fs::path> explicit_files;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--help" || a == "-h") return usage(stdout);
    if (a == "--list-rules") {
      list_rules = true;
    } else if (a == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "error: --root requires a directory argument\n");
        return 2;
      }
      root = argv[++i];
    } else if (!a.empty() && a[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", a.c_str());
      usage(stderr);
      return 2;
    } else {
      explicit_files.emplace_back(a);
    }
  }

  if (list_rules) {
    for (const auto& rule : streamflow::lint::rules()) {
      std::printf("%-24s %s\n", rule.id.c_str(), rule.summary.c_str());
    }
    return 0;
  }

  if (!fs::exists(root)) {
    std::fprintf(stderr, "error: --root '%s' does not exist\n",
                 root.string().c_str());
    return 2;
  }

  std::vector<fs::path> files =
      explicit_files.empty() ? collect_tree(root) : explicit_files;
  if (files.empty()) {
    std::fprintf(stderr, "error: nothing to lint under '%s'\n",
                 root.string().c_str());
    return 2;
  }

  std::size_t violation_count = 0;
  for (const fs::path& file : files) {
    std::string content;
    try {
      content = read_file(file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    const std::string rel = policy_path(file, root);
    for (const auto& v : streamflow::lint::lint_content(rel, content)) {
      std::printf("%s:%zu: %s: %s\n", v.path.c_str(), v.line, v.rule.c_str(),
                  v.message.c_str());
      ++violation_count;
    }
  }

  if (violation_count != 0) {
    std::printf("streamflow_lint: %zu violation(s) in %zu file(s) scanned\n",
                violation_count, files.size());
    return 1;
  }
  std::printf("streamflow_lint: OK (%zu files scanned, %zu rules)\n",
              files.size(), streamflow::lint::rules().size());
  return 0;
}
