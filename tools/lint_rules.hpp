// The streamflow_lint rule engine: repo-specific determinism and hygiene
// rules, applied line-by-line to C++ sources. Header-only so the lint
// binary (tools/streamflow_lint.cpp) and its mutation tests
// (tests/test_lint.cpp) share one implementation.
//
// Policy depends on the REPO-RELATIVE path a file is linted under (bench/
// may time itself; src/ must not use float; the annotated-mutex wrapper is
// the one file allowed to name the raw primitive), so the entry point takes
// (path, content) — callers pass forward-slash paths relative to the repo
// root.
//
// Suppression syntax (every rule must be suppressible, and every
// suppression must carry a reason):
//   code;  // lint:allow(<rule>): <reason>      suppress on this line
//   // lint:allow(<rule>): <reason>             suppress on the NEXT line
//   // lint:allow-file(<rule>): <reason>        suppress in the whole file
// A malformed suppression (unknown rule, missing ": reason") is itself a
// violation (`allow-syntax`) — a typo must not silently re-arm nothing.
//
// NOTE on self-reference: token rules run on a comment- AND string-stripped
// view of each line, so the pattern literals below never match their own
// source text when the lint scans this file.
#pragma once

#include <cctype>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace streamflow::lint {

struct Violation {
  std::string path;
  std::size_t line = 0;  ///< 1-based
  std::string rule;
  std::string message;
};

struct RuleInfo {
  std::string id;
  std::string summary;
};

/// Every rule the engine knows, in reporting order. `--list-rules` prints
/// exactly this table; tests/test_lint.cpp proves each one can fire.
inline const std::vector<RuleInfo>& rules() {
  static const std::vector<RuleInfo> kRules = {
      {"wall-clock",
       "wall-clock/monotonic time sources (std::chrono clocks, time(), "
       "clock_gettime...) are banned outside bench/ timing code"},
      {"ambient-entropy",
       "ambient entropy (std::random_device, rand(), /dev/urandom...) is "
       "banned everywhere: results are pure functions of (inputs, seed)"},
      {"float-type",
       "float is banned in src/ scoring/analysis code — all numerics are "
       "double (bit-exact cache keys and pinned results depend on it)"},
      {"unordered-iter",
       "iterating a std::unordered_{map,set} needs a justification: "
       "iteration order is unspecified and must never reach results"},
      {"header-pragma-once", "every header must contain #pragma once"},
      {"using-namespace-header", "using namespace is banned in headers"},
      {"raw-mutex",
       "raw std::mutex/condition_variable/lock types are banned — use the "
       "annotated streamflow::Mutex/MutexLock/CondVar (common/mutex.hpp)"},
      {"allow-syntax",
       "lint:allow comments must name a known rule and carry ': <reason>'"},
  };
  return kRules;
}

inline bool is_known_rule(const std::string& id) {
  for (const RuleInfo& rule : rules())
    if (rule.id == id) return true;
  return false;
}

namespace detail {

inline bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

inline bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

inline std::vector<std::string> split_lines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else if (c != '\r') {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

/// Splits each line into its CODE part (comments and string/char literal
/// bodies removed — literal quotes kept as empty "" markers) and its
/// COMMENT part (// and /* */ text, block state tracked across lines).
/// Token rules run on the code part only, so banned tokens inside comments
/// or pattern strings never fire; suppression comments are parsed from the
/// comment part only, so prose and string literals never look like
/// suppressions.
class LineSplitter {
 public:
  struct Parts {
    std::string code;
    std::string comment;
  };

  Parts split(const std::string& line) {
    Parts parts;
    parts.code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      if (in_block_comment_) {
        if (c == '*' && next == '/') {
          in_block_comment_ = false;
          ++i;
        } else {
          parts.comment.push_back(c);
        }
        continue;
      }
      if (in_string_ != '\0') {
        if (c == '\\') {
          ++i;  // skip the escaped character
        } else if (c == in_string_) {
          in_string_ = '\0';
          parts.code.push_back(c);
        }
        continue;
      }
      if (c == '/' && next == '/') {  // rest of line is a comment
        parts.comment.append(line, i + 2, std::string::npos);
        break;
      }
      if (c == '/' && next == '*') {
        in_block_comment_ = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        // R"( raw strings are handled as plain strings: good enough for a
        // line lint — the repo's raw literals never span code tokens.
        in_string_ = c;
        parts.code.push_back(c);
        continue;
      }
      parts.code.push_back(c);
    }
    // An unterminated ordinary string cannot span lines in C++; reset so a
    // stray quote inside a comment does not poison the rest of the file.
    in_string_ = '\0';
    return parts;
  }

 private:
  bool in_block_comment_ = false;
  char in_string_ = '\0';
};

struct AllowTable {
  std::set<std::string> file_rules;
  std::map<std::size_t, std::set<std::string>> line_rules;  // 1-based line

  bool allowed(const std::string& rule, std::size_t line) const {
    if (file_rules.count(rule) != 0) return true;
    const auto it = line_rules.find(line);
    return it != line_rules.end() && it->second.count(rule) != 0;
  }
};

/// Parses every lint:allow / lint:allow-file suppression from the COMMENT
/// text of each line. Malformed ones are reported as `allow-syntax`
/// violations immediately (they never suppress). Two deliberate carve-outs
/// keep documentation honest without arming it: prose that says
/// "lint:allow" with no '(' is ignored, and the placeholder form
/// "lint:allow(<...": used when documenting the syntax itself — a real rule
/// id can never start with '<' — is ignored too.
inline AllowTable collect_allows(
    const std::string& path, const std::vector<LineSplitter::Parts>& parts,
    std::vector<Violation>& out) {
  static const std::regex kAllow(
      R"(lint:allow(-file)?\(([A-Za-z0-9_-]*)\)(:\s*(\S.*))?)");
  AllowTable table;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string& comment = parts[i].comment;
    const std::size_t marker = comment.find("lint:allow");
    if (marker == std::string::npos) continue;
    // Documentation carve-outs (see above).
    std::size_t paren = marker + std::string("lint:allow").size();
    if (comment.compare(paren, 6, "-file(") == 0) paren += 5;
    if (paren >= comment.size() || comment[paren] != '(') continue;
    if (paren + 1 < comment.size() && comment[paren + 1] == '<') continue;

    const std::size_t line_no = i + 1;
    std::smatch match;
    if (!std::regex_search(comment, match, kAllow)) {
      out.push_back({path, line_no, "allow-syntax",
                     "unparsable lint:allow comment — expected "
                     "lint:allow(<rule>): <reason>"});
      continue;
    }
    const bool file_level = match[1].matched;
    const std::string rule = match[2].str();
    const bool has_reason = match[3].matched;
    if (!is_known_rule(rule)) {
      out.push_back({path, line_no, "allow-syntax",
                     "lint:allow names unknown rule '" + rule +
                         "' (see streamflow_lint --list-rules)"});
      continue;
    }
    if (!has_reason) {
      out.push_back({path, line_no, "allow-syntax",
                     "lint:allow(" + rule +
                         ") is missing its ': <reason>' justification"});
      continue;
    }
    if (file_level) {
      table.file_rules.insert(rule);
    } else {
      table.line_rules[line_no].insert(rule);
      // A comment-only line suppresses the line it annotates (the next
      // one); a trailing comment suppresses its own line only.
      if (parts[i].code.find_first_not_of(" \t") == std::string::npos) {
        table.line_rules[line_no + 1].insert(rule);
      }
    }
  }
  return table;
}

/// Names declared in this file with an unordered container type. A
/// deliberate single-line heuristic: multi-line declarations and type
/// aliases are invisible to it, which is why the direct-iteration patterns
/// below also match inline `.begin()` chains on unordered expressions.
inline std::set<std::string> unordered_names(
    const std::vector<std::string>& code_lines) {
  static const std::regex kDecl(
      R"((?:std::)?unordered_(map|set)\s*<[^;]*>\s+([A-Za-z_]\w*)\s*[;={(])");
  std::set<std::string> names;
  for (const std::string& line : code_lines) {
    auto begin = std::sregex_iterator(line.begin(), line.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      names.insert((*it)[2].str());
    }
  }
  return names;
}

}  // namespace detail

/// Lints one file's content under its repo-relative path. Pure function:
/// same (path, content) -> same violations, in line order.
inline std::vector<Violation> lint_content(const std::string& path,
                                           const std::string& content) {
  using detail::ends_with;
  using detail::starts_with;

  std::vector<Violation> out;
  const std::vector<std::string> lines = detail::split_lines(content);

  // Code/comment split of every line: token rules see code only,
  // suppression parsing sees comments only.
  std::vector<detail::LineSplitter::Parts> parts(lines.size());
  {
    detail::LineSplitter splitter;
    for (std::size_t i = 0; i < lines.size(); ++i)
      parts[i] = splitter.split(lines[i]);
  }
  const detail::AllowTable allows = detail::collect_allows(path, parts, out);
  std::vector<std::string> code(lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i)
    code[i] = std::move(parts[i].code);

  const bool is_header = ends_with(path, ".hpp");
  const bool in_bench = starts_with(path, "bench/");
  const bool in_src = starts_with(path, "src/");
  const bool is_mutex_wrapper = path == "src/common/mutex.hpp";

  auto report = [&](std::size_t line_no, const std::string& rule,
                    const std::string& message) {
    if (!allows.allowed(rule, line_no)) out.push_back({path, line_no, rule, message});
  };

  // --- file-level header rules ---------------------------------------
  if (is_header) {
    bool has_pragma_once = false;
    for (const std::string& line : code) {
      if (line.find("#pragma once") != std::string::npos) {
        has_pragma_once = true;
        break;
      }
    }
    if (!has_pragma_once) {
      report(1, "header-pragma-once", "header is missing #pragma once");
    }
  }

  // --- per-line token rules ------------------------------------------
  // These run on the stripped `code` view: a banned token inside a comment
  // or string literal (e.g. the patterns below, or prose mentioning
  // std::mutex) never fires.
  static const std::regex kWallClock(
      R"re(std::chrono::(system_clock|steady_clock|high_resolution_clock)\b)re"
      R"re(|(^|[^\w:.>])(time|clock)\s*\(|std::(time|clock)\s*\()re"
      R"re(|\b(gettimeofday|clock_gettime|ftime|localtime|gmtime)\s*\()re");
  static const std::regex kEntropy(
      R"re(std::random_device|(^|[^\w:.])s?rand\s*\(|std::s?rand\s*\()re"
      R"re(|/dev/u?random)re"
      R"re(|\bgetentropy\b|\barc4random)re");
  static const std::regex kFloat(R"re(\bfloat\b)re");
  static const std::regex kRawMutex(
      R"re(std::(mutex|recursive_mutex|timed_mutex|shared_mutex)re"
      R"re(|condition_variable(_any)?)re"
      R"re(|lock_guard|unique_lock|scoped_lock|shared_lock)\b)re");
  static const std::regex kUsingNamespace(R"re(^\s*using\s+namespace\b)re");

  // Precompiled iteration patterns for every unordered name in this file:
  // range-for, and direct begin()/cbegin()/rbegin() iterator loops.
  const std::set<std::string> unordered = detail::unordered_names(code);
  std::vector<std::pair<std::string, std::regex>> iter_patterns;
  iter_patterns.reserve(unordered.size());
  for (const std::string& name : unordered) {
    iter_patterns.emplace_back(
        name, std::regex(R"re(for\s*\([^;)]*:\s*\*?)re" + name + R"re(\b)re" +
                         R"re(|\b)re" + name +
                         R"re(\s*(->|\.)\s*c?r?begin\s*\()re"));
  }

  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    const std::size_t line_no = i + 1;
    if (line.empty()) continue;

    if (!in_bench && std::regex_search(line, kWallClock)) {
      report(line_no, "wall-clock",
             "wall-clock/monotonic time source — results must not depend on "
             "when they run (bench/ timing code is exempt)");
    }
    if (std::regex_search(line, kEntropy)) {
      report(line_no, "ambient-entropy",
             "ambient entropy source — every result is a pure function of "
             "(inputs, seed); derive randomness from Prng substreams");
    }
    if (in_src && std::regex_search(line, kFloat)) {
      report(line_no, "float-type",
             "float in analysis code — the repo's numerics, cache keys, and "
             "pinned results are double end to end");
    }
    if (!is_mutex_wrapper && std::regex_search(line, kRawMutex)) {
      report(line_no, "raw-mutex",
             "raw standard locking primitive — use streamflow::Mutex / "
             "MutexLock / CondVar (common/mutex.hpp) so the locking contract "
             "is statically checked");
    }
    if (is_header && std::regex_search(line, kUsingNamespace)) {
      report(line_no, "using-namespace-header",
             "using namespace in a header leaks into every includer");
    }

    for (const auto& [name, pattern] : iter_patterns) {
      if (std::regex_search(line, pattern)) {
        report(line_no, "unordered-iter",
               "iteration over unordered container '" + name +
                   "' — order is unspecified and must never reach results; "
                   "justify with lint:allow(unordered-iter): <why order "
                   "cannot leak>");
      }
    }
  }
  return out;
}

}  // namespace streamflow::lint
