#!/usr/bin/env bash
# Tier-1 verification, run locally or by CI: configure, build, and test the
# whole tree in both Debug and Release.
#
#   tools/ci.sh            # both configurations
#   tools/ci.sh Release    # one configuration
set -euo pipefail

cd "$(dirname "$0")/.."

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(Debug Release)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for config in "${configs[@]}"; do
  build_dir="build-$(echo "${config}" | tr '[:upper:]' '[:lower:]')"
  echo "==> ${config}: configure"
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}"
  echo "==> ${config}: build"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "==> ${config}: test"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  if [ "${config}" = "Release" ]; then
    # Smoke-run the search-throughput bench (no timing assertions enforced
    # here; the SHAPE lines document the cache speedup, the bit-identity,
    # and the parallel-portfolio threads sweep) and archive its
    # machine-readable summary — threads_sweep section included — as a
    # build artifact.
    echo "==> ${config}: bench smoke (search throughput)"
    "./${build_dir}/bench_search_throughput" --quick \
        --json "${build_dir}/BENCH_search_throughput.json"
    # Part 4 (bound screens + metaheuristic islands) must be present in the
    # artifact: its search_pruning section records the prune sweep, the
    # bit-identity verdicts, and the greedy/anneal/tabu portfolio.
    grep -q '"search_pruning"' "${build_dir}/BENCH_search_throughput.json"
    # The sampling bench is the guardrail for the SIMD refill layer: its
    # SHAPE checks enforce byte-identity of the batched stream against the
    # scalar engine and (when a vector kernel is compiled in and selected)
    # the >= 3x replication-throughput win, so a regression in either fails
    # CI here, not in a quarterly manual run.
    echo "==> ${config}: bench smoke (sampling throughput)"
    "./${build_dir}/bench_sampling_throughput" --quick \
        --json "${build_dir}/BENCH_sampling_throughput.json"
    # The differential corpus slice already ran (and gated) as the
    # fuzz_smoke CTest above; re-emit its machine-readable report as a
    # build artifact next to the bench JSONs.
    echo "==> ${config}: fuzz corpus report"
    "./${build_dir}/streamflow_cli" fuzz --seed 1 --count 25 \
        --json "${build_dir}/FUZZ_report.json"
    echo "==> ${config}: bench summary artifacts"
    cat "${build_dir}/BENCH_search_throughput.json"
    cat "${build_dir}/BENCH_sampling_throughput.json"
    cat "${build_dir}/FUZZ_report.json"
  fi
done

echo "==> all configurations green"
