#!/usr/bin/env bash
# Tier-1 verification, run locally or by CI: configure, build, and test the
# whole tree in both Debug and Release.
#
#   tools/ci.sh            # both configurations
#   tools/ci.sh Release    # one configuration
set -euo pipefail

cd "$(dirname "$0")/.."

configs=("$@")
if [ ${#configs[@]} -eq 0 ]; then
  configs=(Debug Release)
fi

jobs=$(nproc 2>/dev/null || echo 2)

for config in "${configs[@]}"; do
  build_dir="build-$(echo "${config}" | tr '[:upper:]' '[:lower:]')"
  echo "==> ${config}: configure"
  cmake -B "${build_dir}" -S . -DCMAKE_BUILD_TYPE="${config}"
  echo "==> ${config}: build"
  cmake --build "${build_dir}" -j "${jobs}"
  echo "==> ${config}: test"
  ctest --test-dir "${build_dir}" --output-on-failure -j "${jobs}"
  if [ "${config}" = "Release" ]; then
    # Smoke-run the search-throughput bench (no timing assertions enforced
    # here; the SHAPE lines document the cache speedup, the bit-identity,
    # and the parallel-portfolio threads sweep) and archive its
    # machine-readable summary — threads_sweep section included — as a
    # build artifact.
    echo "==> ${config}: bench smoke (search throughput)"
    "./${build_dir}/bench_search_throughput" --quick \
        --json "${build_dir}/BENCH_search_throughput.json"
    # Part 4 (bound screens + metaheuristic islands) must be present in the
    # artifact: its search_pruning section records the prune sweep, the
    # bit-identity verdicts, and the greedy/anneal/tabu portfolio.
    grep -q '"search_pruning"' "${build_dir}/BENCH_search_throughput.json"
    # The sampling bench is the guardrail for the SIMD refill layer: its
    # SHAPE checks enforce byte-identity of the batched stream against the
    # scalar engine and (when a vector kernel is compiled in and selected)
    # the >= 3x replication-throughput win, so a regression in either fails
    # CI here, not in a quarterly manual run.
    echo "==> ${config}: bench smoke (sampling throughput)"
    "./${build_dir}/bench_sampling_throughput" --quick \
        --json "${build_dir}/BENCH_sampling_throughput.json"
    # The serve load generator SHAPE-checks the pattern-store contract end
    # to end (warm responses byte-identical to the cold baseline, warm
    # requests/sec win) and reports rps + p50/p95/p99 for both runs.
    echo "==> ${config}: bench smoke (serve load)"
    "./${build_dir}/bench_serve_load" --quick \
        --json "${build_dir}/BENCH_serve_load.json"
    grep -q '"identical_responses":true' "${build_dir}/BENCH_serve_load.json"
    # The differential corpus slice already ran (and gated) as the
    # fuzz_smoke CTest above; re-emit its machine-readable report as a
    # build artifact next to the bench JSONs.
    echo "==> ${config}: fuzz corpus report"
    "./${build_dir}/streamflow_cli" fuzz --seed 1 --count 25 \
        --json "${build_dir}/FUZZ_report.json"
    echo "==> ${config}: bench summary artifacts"
    cat "${build_dir}/BENCH_search_throughput.json"
    cat "${build_dir}/BENCH_sampling_throughput.json"
    cat "${build_dir}/BENCH_serve_load.json"
    cat "${build_dir}/FUZZ_report.json"
  fi
done

# Static-analysis stage, mirroring the clang-static-analysis CI job. Each
# tool is availability-gated (with a loud skip notice) so the script stays
# runnable on gcc-only boxes: the thread-safety annotations compile as
# no-ops there, and only the clang toolchain can actually check them.
if command -v clang++ >/dev/null 2>&1; then
  echo "==> clang: configure + build (-Wthread-safety -Werror=thread-safety)"
  cmake -B build-clang -S . -DCMAKE_BUILD_TYPE=Release \
      -DCMAKE_C_COMPILER=clang -DCMAKE_CXX_COMPILER=clang++
  cmake --build build-clang -j "${jobs}"
  echo "==> clang: test (includes the lint CTest)"
  ctest --test-dir build-clang --output-on-failure -j "${jobs}"

  # Mutation spot-check: deleting the SF_REQUIRES contract from
  # ThreadPool::work_done() must break the build, proving the annotations
  # are enforced rather than silently compiled away.
  echo "==> clang: thread-safety mutation spot-check"
  sed -i 's/bool work_done() const SF_REQUIRES(mutex_)/bool work_done() const/' \
      src/engine/thread_pool.hpp
  if cmake --build build-clang -j "${jobs}" --target streamflow \
      2> build-clang/mutation.log; then
    git checkout -- src/engine/thread_pool.hpp
    echo "ERROR: removing SF_REQUIRES from work_done() did not break the build"
    exit 1
  fi
  grep -q "thread-safety" build-clang/mutation.log
  git checkout -- src/engine/thread_pool.hpp
  cmake --build build-clang -j "${jobs}" --target streamflow

  if command -v run-clang-tidy >/dev/null 2>&1; then
    echo "==> clang-tidy (curated zero-warning baseline)"
    run-clang-tidy -p build-clang -quiet "$(pwd)/(src|tools|tests|bench)/.*"
  else
    echo "==> SKIP clang-tidy: run-clang-tidy not on PATH"
  fi

  if command -v clang-format >/dev/null 2>&1; then
    # tests/fixtures/ is excluded: the planted-violation fixtures pin exact
    # line numbers, so reformatting them would break test_lint.
    echo "==> clang-format (baseline check)"
    git ls-files 'src/**/*.cpp' 'src/**/*.hpp' 'tools/*.cpp' 'tools/*.hpp' \
        'tests/test_*.cpp' 'tests/*.hpp' 'bench/*.cpp' 'bench/*.hpp' \
      | xargs clang-format --dry-run -Werror
  else
    echo "==> SKIP clang-format: not on PATH"
  fi
else
  echo "==> SKIP clang static-analysis stage: clang++ not on PATH"
  echo "    (thread-safety annotations compile as no-ops under gcc; the"
  echo "     clang-static-analysis CI job is the enforcing run)"
fi

echo "==> all configurations green"
