# CI corpus slice + determinism contract for `streamflow_cli fuzz`, run by
# CTest as
#   cmake -DCLI=<binary> -DWORK_DIR=<scratch dir> -P fuzz_smoke.cmake
#
# 1. Runs the fixed 25-scenario corpus slice (--seed 1) and requires zero
#    divergences, writing the JSON report to WORK_DIR for CI to archive.
# 2. Pins the determinism contract: the status digest is bit-identical
#    across --threads 1/2/8 AND across sampling modes (batched vs
#    scalar-compat); the full JSON report is bit-identical across thread
#    counts for a fixed sampling mode.
# 3. Smoke-tests --emit-corpus (fixture-regeneration path).

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<binary> -DWORK_DIR=<dir> "
                      "-P fuzz_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_fuzz expect_rc out_var)
  execute_process(COMMAND "${CLI}" fuzz ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "streamflow_cli fuzz ${ARGN} exited ${rc} "
                        "(expected ${expect_rc})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# The corpus slice: 25 scenarios span every regime five times and every law
# family at least twice. Zero divergences required (exit code 0), JSON
# report saved as the CI artifact.
run_fuzz(0 slice_out --seed 1 --count 25
         --json "${WORK_DIR}/fuzz_report.json"
         --divergence-dir "${WORK_DIR}/divergences")
if(NOT slice_out MATCHES "divergences=0")
  message(FATAL_ERROR "corpus slice reported divergences:\n${slice_out}")
endif()
if(NOT slice_out MATCHES "fail=0")
  message(FATAL_ERROR "corpus slice reported check failures:\n${slice_out}")
endif()
if(NOT EXISTS "${WORK_DIR}/fuzz_report.json")
  message(FATAL_ERROR "fuzz did not write the --json report")
endif()
if(EXISTS "${WORK_DIR}/divergences")
  message(FATAL_ERROR "a clean run must not create the divergence directory")
endif()

# Status digest: bit-identical across thread counts AND sampling modes.
run_fuzz(0 digest_t1 --seed 1 --count 25 --threads 1 --digest)
run_fuzz(0 digest_t2 --seed 1 --count 25 --threads 2 --digest)
run_fuzz(0 digest_t8 --seed 1 --count 25 --threads 8 --digest)
run_fuzz(0 digest_scalar --seed 1 --count 25 --threads 2 --sampling scalar
         --digest)
if(NOT digest_t1 STREQUAL digest_t2 OR NOT digest_t1 STREQUAL digest_t8)
  message(FATAL_ERROR "fuzz digest differs across --threads:\n"
                      "--- 1 thread ---\n${digest_t1}\n"
                      "--- 2 threads ---\n${digest_t2}\n"
                      "--- 8 threads ---\n${digest_t8}")
endif()
if(NOT digest_t1 STREQUAL digest_scalar)
  message(FATAL_ERROR "fuzz digest differs across sampling modes:\n"
                      "--- batched ---\n${digest_t1}\n"
                      "--- scalar-compat ---\n${digest_scalar}")
endif()

# Full JSON report: bit-identical across thread counts for a fixed mode.
run_fuzz(0 ignored --seed 1 --count 25 --threads 1
         --json "${WORK_DIR}/report_t1.json")
run_fuzz(0 ignored --seed 1 --count 25 --threads 2
         --json "${WORK_DIR}/report_t2.json")
file(READ "${WORK_DIR}/report_t1.json" json_t1)
file(READ "${WORK_DIR}/report_t2.json" json_t2)
if(NOT json_t1 STREQUAL json_t2)
  message(FATAL_ERROR "fuzz --json differs between --threads 1 and 2")
endif()

# --emit-corpus writes one parseable .scenario file per index.
run_fuzz(0 emit_out --seed 1 --count 5 --emit-corpus "${WORK_DIR}/corpus")
foreach(k RANGE 4)
  if(NOT EXISTS "${WORK_DIR}/corpus/s${k}.scenario")
    message(FATAL_ERROR "--emit-corpus did not write s${k}.scenario")
  endif()
endforeach()

message(STATUS "fuzz_smoke passed")
