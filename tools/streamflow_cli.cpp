// streamflow — command-line analyzer.
//
// Usage:
//   streamflow analyze <instance-file> [--model overlap|strict]
//   streamflow simulate <instance-file> [--model overlap|strict]
//                        [--law <spec>] [--data-sets N] [--seed S]
//                        [--replications R] [--threads T]
//   streamflow search <instance-file> [--objective det|exp]
//                      [--restarts R] [--seed S] [--max-paths P]
//   streamflow search --scenarios <list-file> [same options]     # batch
//   streamflow export-tpn <instance-file> [--model overlap|strict]  # DOT
//   streamflow example > my.instance                                # template
//
// Instance files use the format of model/serialization.hpp. Law specs follow
// dist/distribution.hpp's parse_distribution ("exp:1", "gauss:10,2", ...).
// With --replications R > 1 the simulation runs R times on a thread pool,
// each replication on its own jump-ahead PRNG substream of --seed, and the
// report gains mean/stddev/95% CI statistics. Results are bit-identical for
// every --threads value (see README, "Replicated experiments").
//
// `search` takes the application and platform of the instance (ignoring its
// teams) and runs the greedy + local-search mapping heuristics through one
// AnalysisContext, so communication-pattern solves are cached across the
// thousands of candidates. `--scenarios FILE` runs every instance listed in
// FILE (one path per line, '#' comments, relative to FILE's directory)
// through the SAME shared context: recurring patterns across scenarios are
// solved once. Results are independent of the cache state (bit-identical
// warm or cold).
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common/table.hpp"
#include "core/analysis_context.hpp"
#include "core/analyzer.hpp"
#include "core/heuristics.hpp"
#include "engine/sim_replication.hpp"
#include "model/serialization.hpp"
#include "sim/pipeline_sim.hpp"
#include "tpn/builder.hpp"

namespace {

using namespace streamflow;

void print_usage(std::ostream& out) {
  out << "usage:\n"
      << "  streamflow analyze <instance> [--model overlap|strict]\n"
      << "  streamflow simulate <instance> [--model overlap|strict]\n"
      << "             [--law <spec>] [--data-sets N] [--seed S]\n"
      << "             [--replications R] [--threads T]\n"
      << "  streamflow search <instance> [--model overlap|strict]\n"
      << "             [--objective det|exp] [--restarts R] [--seed S]\n"
      << "             [--max-paths P]\n"
      << "  streamflow search --scenarios <list-file> [same options]\n"
      << "  streamflow export-tpn <instance> [--model overlap|strict]\n"
      << "  streamflow example\n"
      << "  streamflow help | --help\n"
      << "\n"
      << "simulate with --replications R > 1 runs R independent replications\n"
      << "on a thread pool (--threads T, 0 = all cores) and reports mean,\n"
      << "stddev, and 95% CI; replication k always uses PRNG substream k of\n"
      << "--seed, so results are bit-identical for every T.\n"
      << "\n"
      << "search finds a high-throughput mapping of the instance's\n"
      << "application onto its platform (the instance's own teams are\n"
      << "ignored). All candidate evaluations share one analysis context:\n"
      << "communication-pattern solves are cached and local-search moves\n"
      << "are evaluated incrementally. --scenarios runs every instance\n"
      << "listed in <list-file> (one path per line, '#' comments, paths\n"
      << "relative to the list file) through the same shared context.\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

struct CliArgs {
  std::string command;
  std::string instance_path;
  ExecutionModel model = ExecutionModel::kOverlap;
  std::string law = "exp:1";  // rescaled per resource to its mean
  std::int64_t data_sets = 50'000;
  std::uint64_t seed = 42;
  std::size_t replications = 1;
  std::size_t threads = 0;  // 0 = hardware concurrency
  // search options
  std::string objective;  // "det" | "exp"; empty = per-model default
  std::string scenarios_path;
  std::size_t restarts = 4;
  std::int64_t max_paths = 256;
};

/// Strict integer parse: the whole token must be consumed (rejects "1e6",
/// "7x") and the value must fit the destination type (rejects --seed -1).
template <typename Int>
bool parse_integer(const std::string& token, Int& out) {
  try {
    std::size_t pos = 0;
    if constexpr (std::is_unsigned_v<Int>) {
      if (!token.empty() && token[0] == '-') return false;  // stoull wraps
      const unsigned long long value = std::stoull(token, &pos);
      out = static_cast<Int>(value);
    } else {
      const long long value = std::stoll(token, &pos);
      out = static_cast<Int>(value);
    }
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_args(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (a == "--model") {
      const char* v = next();
      if (!v) return false;
      const std::string value = v;
      if (value == "overlap") {
        args.model = ExecutionModel::kOverlap;
      } else if (value == "strict") {
        args.model = ExecutionModel::kStrict;
      } else {
        return false;
      }
    } else if (a == "--law") {
      const char* v = next();
      if (!v) return false;
      args.law = v;
    } else if (a == "--data-sets") {
      const char* v = next();
      if (!v || !parse_integer(v, args.data_sets)) return false;
    } else if (a == "--seed") {
      const char* v = next();
      if (!v || !parse_integer(v, args.seed)) return false;
    } else if (a == "--replications") {
      const char* v = next();
      if (!v || !parse_integer(v, args.replications) ||
          args.replications == 0) {
        return false;
      }
    } else if (a == "--threads") {
      const char* v = next();
      if (!v || !parse_integer(v, args.threads)) return false;
    } else if (a == "--objective") {
      const char* v = next();
      if (!v) return false;
      const std::string value = v;
      if (value != "det" && value != "exp") return false;
      args.objective = value;
    } else if (a == "--scenarios") {
      const char* v = next();
      if (!v) return false;
      args.scenarios_path = v;
    } else if (a == "--restarts") {
      const char* v = next();
      if (!v || !parse_integer(v, args.restarts)) return false;
    } else if (a == "--max-paths") {
      const char* v = next();
      if (!v || !parse_integer(v, args.max_paths) || args.max_paths <= 0)
        return false;
    } else if (!a.empty() && a[0] != '-' && positional == 0) {
      args.instance_path = a;
      ++positional;
    } else {
      return false;
    }
  }
  return true;
}

Mapping load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot open instance file '" + path + "'");
  return load_instance(in);
}

int cmd_analyze(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  std::cout << mapping.to_string() << "\n";
  std::cout << "model: " << to_string(args.model) << ", m = "
            << mapping.num_paths() << " paths\n\n";
  const auto det = deterministic_throughput(mapping, args.model);
  std::cout << "deterministic throughput : " << det.throughput << "\n";
  std::cout << "in-order delivery rate   : " << det.in_order_throughput
            << "\n";
  std::cout << "critical-resource bound  : " << det.critical_resource_throughput
            << (det.critical_resource_attained ? " (attained)"
                                               : " (NOT attained)")
            << "\n";
  ExponentialOptions options;
  const auto exp = exponential_throughput(mapping, args.model, options);
  std::cout << "exponential throughput   : " << exp.throughput << "  ("
            << (exp.method_used == ExponentialMethod::kColumns
                    ? "Theorem 3/4 columns"
                    : "Theorem 2 CTMC, " + std::to_string(exp.ctmc_states) +
                          " states")
            << ")\n";
  const auto bounds = nbue_throughput_bounds(mapping, args.model, options);
  std::cout << "N.B.U.E. guarantee       : [" << bounds.lower << ", "
            << bounds.upper << "]\n";
  if (!exp.components.empty()) {
    std::cout << "\nbottlenecks:\n";
    for (const auto& c : exp.components) {
      if (!c.bottleneck) continue;
      std::cout << "  " << c.label << ": saturated " << c.inner
                << ", effective " << c.effective << "\n";
    }
  }
  return 0;
}

int cmd_simulate(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  const DistributionPtr law = parse_distribution(args.law);
  const StochasticTiming timing = StochasticTiming::scaled(mapping, *law);
  PipelineSimOptions options;
  options.data_sets = args.data_sets;
  options.seed = args.seed;
  std::cout << "law            : " << law->name() << " (rescaled per resource)"
            << (timing.all_nbue() ? ", N.B.U.E." : ", NOT N.B.U.E.") << "\n";

  if (args.replications <= 1) {
    const auto r = simulate_pipeline(mapping, args.model, timing, options);
    std::cout << "throughput     : " << r.throughput << "\n";
    std::cout << "in-order rate  : " << r.in_order_throughput << "\n";
    std::cout << "mean latency   : " << r.mean_latency << "\n";
    std::cout << "completed      : " << r.completed << " data sets in "
              << r.elapsed << " time units\n";
    return 0;
  }

  ExperimentOptions experiment;
  experiment.replications = args.replications;
  experiment.threads = args.threads;
  experiment.seed = args.seed;
  const ReplicatedResult r =
      run_replicated_pipeline(mapping, args.model, timing, options, experiment);
  const MetricSummary& throughput = r.metric("throughput");
  std::cout << "replications   : " << r.replications << " x "
            << args.data_sets << " data sets on " << r.threads_used
            << " thread(s), seed " << r.seed
            << " (bit-identical for any --threads)\n";
  std::cout << "throughput     : " << throughput.mean << " +/- "
            << throughput.ci95_halfwidth << " (95% CI)\n";
  std::cout << "  stddev       : " << throughput.stddev << "\n";
  std::cout << "  min / max    : " << throughput.min << " / " << throughput.max
            << "\n";
  std::cout << "in-order rate  : " << r.metric("in_order_throughput").mean
            << "\n";
  std::cout << "mean latency   : " << r.metric("mean_latency").mean << "\n\n";

  Table table({"replication", "throughput", "in-order", "mean latency",
               "completed"});
  table.set_precision(6);
  const std::vector<double> tput = r.column("throughput");
  const std::vector<double> in_order = r.column("in_order_throughput");
  const std::vector<double> latency = r.column("mean_latency");
  const std::vector<double> completed = r.column("completed");
  for (std::size_t k = 0; k < r.replications; ++k) {
    table.add_row({static_cast<std::int64_t>(k), tput[k], in_order[k],
                   latency[k], static_cast<std::int64_t>(completed[k])});
  }
  table.print(std::cout, "per-replication results");
  return 0;
}

std::vector<std::string> read_scenarios(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot open scenario file '" + path + "'");
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  std::vector<std::string> result;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    const std::filesystem::path p(token);
    result.push_back(p.is_absolute() ? p.string() : (dir / p).string());
  }
  if (result.empty()) {
    throw InvalidArgument("scenario file '" + path + "' lists no instances");
  }
  return result;
}

int cmd_search(const CliArgs& args) {
  if (!args.instance_path.empty() && !args.scenarios_path.empty()) {
    throw InvalidArgument(
        "pass either an instance file or --scenarios, not both (list every "
        "instance in the scenario file)");
  }
  MappingSearchOptions options;
  options.model = args.model;
  if (args.objective.empty()) {
    // The exponential objective needs the column method (Overlap only).
    options.objective = args.model == ExecutionModel::kStrict
                            ? MappingObjective::kDeterministic
                            : MappingObjective::kExponential;
  } else {
    options.objective = args.objective == "det"
                            ? MappingObjective::kDeterministic
                            : MappingObjective::kExponential;
  }
  options.restarts = args.restarts;
  options.seed = args.seed;
  options.max_paths = args.max_paths;

  const char* objective_name =
      options.objective == MappingObjective::kDeterministic ? "deterministic"
                                                            : "exponential";
  // One context for the whole invocation: pattern solves are shared across
  // all candidates of all scenarios.
  AnalysisContext context;

  if (args.scenarios_path.empty()) {
    const Mapping instance = load(args.instance_path);
    // Share the loaded instance: the whole search runs without copying the
    // application or the platform's bandwidth matrix.
    const auto result = optimize_mapping(instance.instance(), options, context);
    std::cout << "objective    : " << objective_name << " throughput ("
              << to_string(options.model) << " model)\n";
    std::cout << "best mapping : " << result.mapping.to_string() << "\n";
    std::cout << "throughput   : " << result.throughput << "  (greedy start "
              << result.greedy_throughput << ")\n";
    std::cout << "evaluations  : " << result.evaluations
              << "  (pattern cache: " << result.pattern_cache_hits
              << " hits / " << result.pattern_cache_misses << " misses)\n";
    return 0;
  }

  const std::vector<std::string> scenarios =
      read_scenarios(args.scenarios_path);
  Table table({"scenario", "stages", "procs", "throughput", "greedy",
               "evaluations"});
  table.set_precision(6);
  for (const std::string& path : scenarios) {
    const Mapping instance = load(path);
    const auto result = optimize_mapping(instance.instance(), options, context);
    table.add_row({std::filesystem::path(path).filename().string(),
                   static_cast<std::int64_t>(instance.num_stages()),
                   static_cast<std::int64_t>(instance.num_processors()),
                   result.throughput, result.greedy_throughput,
                   static_cast<std::int64_t>(result.evaluations)});
  }
  table.print(std::cout,
              std::string("mapping search (") + objective_name +
                  " objective, seed " + std::to_string(args.seed) + ")");
  const AnalysisCacheStats& stats = context.stats();
  std::cout << "\nshared pattern cache: " << context.pattern_cache_size()
            << " entries, " << stats.pattern_hits << " hits / "
            << stats.pattern_misses << " misses across " << scenarios.size()
            << " scenario(s)\n";
  return 0;
}

int cmd_export_tpn(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  const TimedEventGraph g = build_tpn(mapping, args.model);
  g.write_dot(std::cout);
  return 0;
}

int cmd_example() {
  Application app({2.0, 6.0, 4.0, 1.0}, {1.0, 3.0, 1.0});
  Platform platform = Platform::fully_connected(
      {2.0, 1.5, 1.0, 1.2, 0.8, 1.1, 2.5}, 2.0);
  Mapping mapping(app, platform, {{0}, {1, 2}, {3, 4, 5}, {6}});
  save_instance(std::cout, mapping);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, args)) return usage();
  if (args.command == "help" || args.command == "--help" ||
      args.command == "-h") {
    print_usage(std::cout);
    return 0;
  }
  try {
    if (args.command == "example") return cmd_example();
    if (args.command == "search" &&
        (!args.instance_path.empty() || !args.scenarios_path.empty())) {
      return cmd_search(args);
    }
    if (args.instance_path.empty()) return usage();
    if (args.command == "analyze") return cmd_analyze(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "export-tpn") return cmd_export_tpn(args);
    return usage();
  } catch (const streamflow::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
