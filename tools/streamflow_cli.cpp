// streamflow — command-line analyzer.
//
// Usage:
//   streamflow analyze <instance-file> [--model overlap|strict]
//   streamflow simulate <instance-file> [--model overlap|strict]
//                        [--law <spec>] [--data-sets N] [--seed S]
//                        [--replications R] [--threads T]
//   streamflow export-tpn <instance-file> [--model overlap|strict]  # DOT
//   streamflow example > my.instance                                # template
//
// Instance files use the format of model/serialization.hpp. Law specs follow
// dist/distribution.hpp's parse_distribution ("exp:1", "gauss:10,2", ...).
// With --replications R > 1 the simulation runs R times on a thread pool,
// each replication on its own jump-ahead PRNG substream of --seed, and the
// report gains mean/stddev/95% CI statistics. Results are bit-identical for
// every --threads value (see README, "Replicated experiments").
#include <fstream>
#include <iostream>
#include <string>
#include <type_traits>

#include "common/table.hpp"
#include "core/analyzer.hpp"
#include "engine/sim_replication.hpp"
#include "model/serialization.hpp"
#include "sim/pipeline_sim.hpp"
#include "tpn/builder.hpp"

namespace {

using namespace streamflow;

void print_usage(std::ostream& out) {
  out << "usage:\n"
      << "  streamflow analyze <instance> [--model overlap|strict]\n"
      << "  streamflow simulate <instance> [--model overlap|strict]\n"
      << "             [--law <spec>] [--data-sets N] [--seed S]\n"
      << "             [--replications R] [--threads T]\n"
      << "  streamflow export-tpn <instance> [--model overlap|strict]\n"
      << "  streamflow example\n"
      << "  streamflow help | --help\n"
      << "\n"
      << "simulate with --replications R > 1 runs R independent replications\n"
      << "on a thread pool (--threads T, 0 = all cores) and reports mean,\n"
      << "stddev, and 95% CI; replication k always uses PRNG substream k of\n"
      << "--seed, so results are bit-identical for every T.\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

struct CliArgs {
  std::string command;
  std::string instance_path;
  ExecutionModel model = ExecutionModel::kOverlap;
  std::string law = "exp:1";  // rescaled per resource to its mean
  std::int64_t data_sets = 50'000;
  std::uint64_t seed = 42;
  std::size_t replications = 1;
  std::size_t threads = 0;  // 0 = hardware concurrency
};

/// Strict integer parse: the whole token must be consumed (rejects "1e6",
/// "7x") and the value must fit the destination type (rejects --seed -1).
template <typename Int>
bool parse_integer(const std::string& token, Int& out) {
  try {
    std::size_t pos = 0;
    if constexpr (std::is_unsigned_v<Int>) {
      if (!token.empty() && token[0] == '-') return false;  // stoull wraps
      const unsigned long long value = std::stoull(token, &pos);
      out = static_cast<Int>(value);
    } else {
      const long long value = std::stoll(token, &pos);
      out = static_cast<Int>(value);
    }
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_args(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (a == "--model") {
      const char* v = next();
      if (!v) return false;
      const std::string value = v;
      if (value == "overlap") {
        args.model = ExecutionModel::kOverlap;
      } else if (value == "strict") {
        args.model = ExecutionModel::kStrict;
      } else {
        return false;
      }
    } else if (a == "--law") {
      const char* v = next();
      if (!v) return false;
      args.law = v;
    } else if (a == "--data-sets") {
      const char* v = next();
      if (!v || !parse_integer(v, args.data_sets)) return false;
    } else if (a == "--seed") {
      const char* v = next();
      if (!v || !parse_integer(v, args.seed)) return false;
    } else if (a == "--replications") {
      const char* v = next();
      if (!v || !parse_integer(v, args.replications) ||
          args.replications == 0) {
        return false;
      }
    } else if (a == "--threads") {
      const char* v = next();
      if (!v || !parse_integer(v, args.threads)) return false;
    } else if (!a.empty() && a[0] != '-' && positional == 0) {
      args.instance_path = a;
      ++positional;
    } else {
      return false;
    }
  }
  return true;
}

Mapping load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot open instance file '" + path + "'");
  return load_instance(in);
}

int cmd_analyze(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  std::cout << mapping.to_string() << "\n";
  std::cout << "model: " << to_string(args.model) << ", m = "
            << mapping.num_paths() << " paths\n\n";
  const auto det = deterministic_throughput(mapping, args.model);
  std::cout << "deterministic throughput : " << det.throughput << "\n";
  std::cout << "in-order delivery rate   : " << det.in_order_throughput
            << "\n";
  std::cout << "critical-resource bound  : " << det.critical_resource_throughput
            << (det.critical_resource_attained ? " (attained)"
                                               : " (NOT attained)")
            << "\n";
  ExponentialOptions options;
  const auto exp = exponential_throughput(mapping, args.model, options);
  std::cout << "exponential throughput   : " << exp.throughput << "  ("
            << (exp.method_used == ExponentialMethod::kColumns
                    ? "Theorem 3/4 columns"
                    : "Theorem 2 CTMC, " + std::to_string(exp.ctmc_states) +
                          " states")
            << ")\n";
  const auto bounds = nbue_throughput_bounds(mapping, args.model, options);
  std::cout << "N.B.U.E. guarantee       : [" << bounds.lower << ", "
            << bounds.upper << "]\n";
  if (!exp.components.empty()) {
    std::cout << "\nbottlenecks:\n";
    for (const auto& c : exp.components) {
      if (!c.bottleneck) continue;
      std::cout << "  " << c.label << ": saturated " << c.inner
                << ", effective " << c.effective << "\n";
    }
  }
  return 0;
}

int cmd_simulate(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  const DistributionPtr law = parse_distribution(args.law);
  const StochasticTiming timing = StochasticTiming::scaled(mapping, *law);
  PipelineSimOptions options;
  options.data_sets = args.data_sets;
  options.seed = args.seed;
  std::cout << "law            : " << law->name() << " (rescaled per resource)"
            << (timing.all_nbue() ? ", N.B.U.E." : ", NOT N.B.U.E.") << "\n";

  if (args.replications <= 1) {
    const auto r = simulate_pipeline(mapping, args.model, timing, options);
    std::cout << "throughput     : " << r.throughput << "\n";
    std::cout << "in-order rate  : " << r.in_order_throughput << "\n";
    std::cout << "mean latency   : " << r.mean_latency << "\n";
    std::cout << "completed      : " << r.completed << " data sets in "
              << r.elapsed << " time units\n";
    return 0;
  }

  ExperimentOptions experiment;
  experiment.replications = args.replications;
  experiment.threads = args.threads;
  experiment.seed = args.seed;
  const ReplicatedResult r =
      run_replicated_pipeline(mapping, args.model, timing, options, experiment);
  const MetricSummary& throughput = r.metric("throughput");
  std::cout << "replications   : " << r.replications << " x "
            << args.data_sets << " data sets on " << r.threads_used
            << " thread(s), seed " << r.seed
            << " (bit-identical for any --threads)\n";
  std::cout << "throughput     : " << throughput.mean << " +/- "
            << throughput.ci95_halfwidth << " (95% CI)\n";
  std::cout << "  stddev       : " << throughput.stddev << "\n";
  std::cout << "  min / max    : " << throughput.min << " / " << throughput.max
            << "\n";
  std::cout << "in-order rate  : " << r.metric("in_order_throughput").mean
            << "\n";
  std::cout << "mean latency   : " << r.metric("mean_latency").mean << "\n\n";

  Table table({"replication", "throughput", "in-order", "mean latency",
               "completed"});
  table.set_precision(6);
  const std::vector<double> tput = r.column("throughput");
  const std::vector<double> in_order = r.column("in_order_throughput");
  const std::vector<double> latency = r.column("mean_latency");
  const std::vector<double> completed = r.column("completed");
  for (std::size_t k = 0; k < r.replications; ++k) {
    table.add_row({static_cast<std::int64_t>(k), tput[k], in_order[k],
                   latency[k], static_cast<std::int64_t>(completed[k])});
  }
  table.print(std::cout, "per-replication results");
  return 0;
}

int cmd_export_tpn(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  const TimedEventGraph g = build_tpn(mapping, args.model);
  g.write_dot(std::cout);
  return 0;
}

int cmd_example() {
  Application app({2.0, 6.0, 4.0, 1.0}, {1.0, 3.0, 1.0});
  Platform platform = Platform::fully_connected(
      {2.0, 1.5, 1.0, 1.2, 0.8, 1.1, 2.5}, 2.0);
  Mapping mapping(app, platform, {{0}, {1, 2}, {3, 4, 5}, {6}});
  save_instance(std::cout, mapping);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, args)) return usage();
  if (args.command == "help" || args.command == "--help" ||
      args.command == "-h") {
    print_usage(std::cout);
    return 0;
  }
  try {
    if (args.command == "example") return cmd_example();
    if (args.instance_path.empty()) return usage();
    if (args.command == "analyze") return cmd_analyze(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "export-tpn") return cmd_export_tpn(args);
    return usage();
  } catch (const streamflow::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
