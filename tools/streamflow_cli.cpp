// streamflow — command-line analyzer.
//
// Usage:
//   streamflow analyze <instance-file> [--model overlap|strict]
//   streamflow simulate <instance-file> [--model overlap|strict]
//                        [--law <spec>] [--data-sets N] [--seed S]
//                        [--replications R] [--threads T]
//   streamflow search <instance-file> [--objective det|exp]
//                      [--restarts R] [--seed S] [--max-paths P]
//                      [--threads T] [--restart-streams]
//                      [--kind greedy|anneal|tabu] [--prune none|mct|maxplus]
//                      [--islands I] [--sync-rounds N]
//   streamflow search --scenarios <list-file> [same options]
//                      [--scenario-streams]                       # batch
//   streamflow export-tpn <instance-file> [--model overlap|strict]  # DOT
//   streamflow example > my.instance                                # template
//   streamflow fuzz [--seed S] [--count N] [--replications R]
//                    [--data-sets N] [--threads T]
//                    [--sampling batched|scalar] [--json FILE] [--digest]
//                    [--no-minimize] [--divergence-dir DIR]
//                    [--emit-corpus DIR]
//
// Instance files use the format of model/serialization.hpp. Law specs follow
// dist/distribution.hpp's parse_distribution ("exp:1", "gauss:10,2", ...).
// With --replications R > 1 the simulation runs R times on a thread pool,
// each replication on its own jump-ahead PRNG substream of --seed, and the
// report gains mean/stddev/95% CI statistics. Results are bit-identical for
// every --threads value (see README, "Replicated experiments").
//
// `search` takes the application and platform of the instance (ignoring its
// teams) and fans the greedy + local-search restarts out over a thread pool
// (engine/parallel_search.hpp), each worker scoring candidates through a
// private memoizing AnalysisContext over the one shared instance. Results
// are bit-identical for every --threads value: by default the restarts
// retrace the serial search exactly; --restart-streams seeds restart k from
// jump-ahead substream k instead (a pure function of (seed, k), so growing
// --restarts never changes earlier restarts). `--scenarios FILE` runs every
// instance listed in FILE (one path per line, '#' comments, relative to
// FILE's directory) as a second parallel axis: scenario rows are dispatched
// across the workers and printed in file order; --scenario-streams gives
// scenario j an independent stream family (default: all scenarios share
// --seed, so identical instance files produce identical rows).
//
// `--prune mct|maxplus` arms the admissible bound screens of
// core/analysis_context: cheap deterministic upper bounds filter moves that
// provably cannot beat the incumbent before the expensive CTMC solve, and
// the result stays bit-identical to the unscreened search. `--kind
// anneal|tabu` replaces the greedy restart portfolio with a deterministic
// metaheuristic island portfolio (--islands islands, --sync-rounds rounds);
// islands exchange incumbents only at serial sync points, so the result is
// still a pure function of (seed, options), independent of --threads.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>
#include <type_traits>
#include <vector>

#include "common/table.hpp"
#include "core/analysis_context.hpp"
#include "core/analyzer.hpp"
#include "core/heuristics.hpp"
#include "core/pattern_store.hpp"
#include "engine/parallel_search.hpp"
#include "engine/sim_replication.hpp"
#include "fuzz/diff_harness.hpp"
#include "model/serialization.hpp"
#include "serve/server.hpp"
#include "sim/pipeline_sim.hpp"
#include "tpn/builder.hpp"

namespace {

using namespace streamflow;

void print_usage(std::ostream& out) {
  out << "usage:\n"
      << "  streamflow analyze <instance> [--model overlap|strict]\n"
      << "  streamflow simulate <instance> [--model overlap|strict]\n"
      << "             [--law <spec>] [--data-sets N] [--seed S]\n"
      << "             [--replications R] [--threads T]\n"
      << "  streamflow search <instance> [--model overlap|strict]\n"
      << "             [--objective det|exp] [--restarts R] [--seed S]\n"
      << "             [--max-paths P] [--threads T] [--restart-streams]\n"
      << "             [--kind greedy|anneal|tabu]\n"
      << "             [--prune none|mct|maxplus]\n"
      << "             [--islands I] [--sync-rounds N]\n"
      << "             [--shared-store] [--store-shards N]\n"
      << "             [--cache-load FILE] [--cache-save FILE]\n"
      << "  streamflow search --scenarios <list-file> [same options]\n"
      << "             [--scenario-streams]\n"
      << "  streamflow serve [--threads T] [--batch B] [--socket PATH]\n"
      << "             [--store-shards N]\n"
      << "             [--cache-load FILE] [--cache-save FILE]\n"
      << "  streamflow export-tpn <instance> [--model overlap|strict]\n"
      << "  streamflow example\n"
      << "  streamflow fuzz [--seed S] [--count N] [--replications R]\n"
      << "             [--data-sets N] [--threads T]\n"
      << "             [--sampling batched|scalar] [--json FILE] [--digest]\n"
      << "             [--no-minimize] [--divergence-dir DIR]\n"
      << "             [--emit-corpus DIR]\n"
      << "  streamflow help | --help\n"
      << "\n"
      << "simulate with --replications R > 1 runs R independent replications\n"
      << "on a thread pool (--threads T, 0 = all cores) and reports mean,\n"
      << "stddev, and 95% CI; replication k always uses PRNG substream k of\n"
      << "--seed, so results are bit-identical for every T.\n"
      << "\n"
      << "search finds a high-throughput mapping of the instance's\n"
      << "application onto its platform (the instance's own teams are\n"
      << "ignored). The --restarts R local searches fan out over a thread\n"
      << "pool (--threads T, 0 = all cores); every worker evaluates\n"
      << "candidates through a private memoizing analysis context over the\n"
      << "one shared instance, and the reduction is serial and in restart\n"
      << "order — results are bit-identical for every --threads value and,\n"
      << "by default, equal to the serial search. --restart-streams seeds\n"
      << "restart k from jump-ahead substream k of --seed instead, making\n"
      << "restart k independent of R. --scenarios runs every instance\n"
      << "listed in <list-file> (one path per line, '#' comments, paths\n"
      << "relative to the list file) as a second parallel axis: rows are\n"
      << "dispatched across the workers and printed in file order;\n"
      << "--scenario-streams advances scenario j's seed stream j long\n"
      << "jumps so identical scenarios explore different restarts.\n"
      << "--prune mct screens every move with a cheap admissible rate bound\n"
      << "before the exact solve; --prune maxplus escalates inconclusive\n"
      << "screens through the max-plus deterministic bound. Screens only\n"
      << "skip moves that provably cannot beat the incumbent, so the search\n"
      << "result is bit-identical to --prune none. --kind anneal|tabu runs\n"
      << "a simulated-annealing or tabu island portfolio instead of the\n"
      << "greedy restarts: --islands I deterministic islands (island 0 is\n"
      << "greedy-seeded, island k draws from PRNG substream k) exchange\n"
      << "incumbents round-robin at --sync-rounds serial sync points, so\n"
      << "the outcome is a pure function of (seed, options) for every\n"
      << "--threads value. --kind anneal|tabu is per-instance only and\n"
      << "cannot be combined with --scenarios. --shared-store evaluates\n"
      << "through the process-wide pattern store (implied by --store-shards\n"
      << "N, which uses a private store of N shards instead, and by\n"
      << "--cache-load/--cache-save): workers share pattern solves across\n"
      << "restarts and — via snapshots — across runs, and the result stays\n"
      << "bit-identical to a private-cache search. --cache-load FILE\n"
      << "warm-starts the store from a snapshot (digest-validated; a\n"
      << "missing file is a cold start); --cache-save FILE writes one\n"
      << "after the search.\n"
      << "\n"
      << "serve runs the long-lived evaluation service: one flat JSON\n"
      << "request per line (op = ping|analyze|search|simulate|stats|\n"
      << "shutdown) on stdin/stdout, or on an AF_UNIX socket with --socket\n"
      << "PATH. Up to --batch B pipelined requests are evaluated\n"
      << "concurrently on --threads T workers; every response is a pure\n"
      << "function of its request line — byte-identical for any store\n"
      << "warmth, batching, request interleaving, or --threads value (op\n"
      << "stats, which reports live store counters, is the one exception).\n"
      << "All requests share the process-wide pattern store;\n"
      << "--cache-load/--cache-save warm-start and snapshot it, and a\n"
      << "shutdown request drains the in-flight batch before the loop\n"
      << "stops.\n"
      << "\n"
      << "fuzz draws a deterministic scenario corpus (scenario k is a pure\n"
      << "function of --seed and k) spanning five structural regimes and\n"
      << "every timing-law family, and differentially cross-checks six\n"
      << "evaluators on each scenario: the exponential analyzer against the\n"
      << "replicated simulation CI, Theorem 7's N.B.U.E. sandwich, the\n"
      << "max-plus deterministic upper bound, serial/parallel plus\n"
      << "sampling-mode determinism, the bound-screened search against\n"
      << "the unscreened search (bit-identical scores, mappings, and\n"
      << "evaluation counts), and the warm shared pattern store against\n"
      << "the private-cache path (bit-identical analyses, component by\n"
      << "component). Each divergence is minimized and\n"
      << "written to --divergence-dir as a replayable .scenario fixture;\n"
      << "--json writes the full machine-readable report; --digest prints\n"
      << "the status-only digest (bit-identical for every --threads AND\n"
      << "--sampling value); --no-minimize skips shrinking; --emit-corpus\n"
      << "writes the corpus itself as .scenario files and exits. Exit code\n"
      << "is 1 when any check diverged, 0 otherwise.\n";
}

int usage() {
  print_usage(std::cerr);
  return 2;
}

struct CliArgs {
  std::string command;
  std::string instance_path;
  ExecutionModel model = ExecutionModel::kOverlap;
  std::string law = "exp:1";  // rescaled per resource to its mean
  std::int64_t data_sets = 50'000;
  std::uint64_t seed = 42;
  std::size_t replications = 1;
  std::size_t threads = 0;  // 0 = hardware concurrency
  // search options
  std::string objective;  // "det" | "exp"; empty = per-model default
  std::string scenarios_path;
  std::size_t restarts = 4;
  std::int64_t max_paths = 256;
  bool restart_streams = false;   // substream-per-restart seeding
  bool scenario_streams = false;  // independent stream family per scenario
  std::string kind = "greedy";    // "greedy" | "anneal" | "tabu"
  std::string prune = "none";     // "none" | "mct" | "maxplus"
  std::size_t islands = 4;
  std::size_t sync_rounds = 8;
  // shared pattern store (search and serve)
  bool shared_store = false;    // evaluate through the process-wide store
  std::size_t store_shards = 0;  // 0 = process-wide store; N = private store
  std::string cache_load;        // snapshot to warm-start from
  std::string cache_save;        // snapshot to write afterwards
  // serve options
  std::size_t batch = 16;    // max requests per dispatched batch
  std::string socket_path;   // empty = stdin/stdout pipe mode
  // fuzz options (fuzz/diff_harness.hpp). The harness has its own
  // replications/data-sets defaults, so remember whether the shared flags
  // were given explicitly.
  std::size_t count = 25;
  bool replications_given = false;
  bool data_sets_given = false;
  std::string sampling = "batched";  // "batched" | "scalar"
  std::string json_path;
  std::string divergence_dir;
  std::string emit_corpus_dir;
  bool digest = false;
  bool no_minimize = false;
};

/// Strict integer parse: the whole token must be consumed (rejects "1e6",
/// "7x") and the value must fit the destination type (rejects --seed -1).
template <typename Int>
bool parse_integer(const std::string& token, Int& out) {
  try {
    std::size_t pos = 0;
    if constexpr (std::is_unsigned_v<Int>) {
      if (!token.empty() && token[0] == '-') return false;  // stoull wraps
      const unsigned long long value = std::stoull(token, &pos);
      out = static_cast<Int>(value);
    } else {
      const long long value = std::stoll(token, &pos);
      out = static_cast<Int>(value);
    }
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

/// Report a bad flag value on stderr and fail the parse. The pre-audit
/// behavior dumped the full usage text with no hint of WHICH flag was
/// rejected — "--replications 0" and a typo'd path failed identically.
bool flag_error(const std::string& flag, const char* value,
                const char* requirement) {
  std::cerr << "error: " << flag << " requires " << requirement;
  if (value) std::cerr << " (got '" << value << "')";
  std::cerr << "\n";
  return false;
}

bool parse_args(int argc, char** argv, CliArgs& args) {
  if (argc < 2) return false;
  args.command = argv[1];
  int positional = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return ++i < argc ? argv[i] : nullptr;
    };
    if (a == "--model") {
      const char* v = next();
      if (!v || (std::string(v) != "overlap" && std::string(v) != "strict"))
        return flag_error(a, v, "'overlap' or 'strict'");
      args.model = std::string(v) == "overlap" ? ExecutionModel::kOverlap
                                               : ExecutionModel::kStrict;
    } else if (a == "--law") {
      const char* v = next();
      if (!v) return flag_error(a, v, "a distribution spec such as 'exp:1'");
      args.law = v;
    } else if (a == "--data-sets") {
      const char* v = next();
      if (!v || !parse_integer(v, args.data_sets) || args.data_sets <= 0)
        return flag_error(a, v, "a positive integer");
      args.data_sets_given = true;
    } else if (a == "--seed") {
      // Unsigned: "-1" is rejected here rather than wrapping to 2^64-1,
      // which would silently seed a different (irreproducible-looking)
      // stream than the user asked for.
      const char* v = next();
      if (!v || !parse_integer(v, args.seed))
        return flag_error(a, v, "a non-negative integer below 2^64");
    } else if (a == "--replications") {
      const char* v = next();
      if (!v || !parse_integer(v, args.replications) || args.replications == 0)
        return flag_error(a, v, "a positive integer");
      args.replications_given = true;
    } else if (a == "--threads") {
      // 0 is meaningful (all hardware cores); the pool clamps T to the
      // number of work items, so large values are safe, not fork bombs.
      const char* v = next();
      if (!v || !parse_integer(v, args.threads))
        return flag_error(a, v, "a non-negative integer (0 = all cores)");
    } else if (a == "--objective") {
      const char* v = next();
      if (!v || (std::string(v) != "det" && std::string(v) != "exp"))
        return flag_error(a, v, "'det' or 'exp'");
      args.objective = v;
    } else if (a == "--scenarios") {
      const char* v = next();
      if (!v) return flag_error(a, v, "a list-file path");
      args.scenarios_path = v;
    } else if (a == "--restarts") {
      const char* v = next();
      if (!v || !parse_integer(v, args.restarts) || args.restarts == 0)
        return flag_error(a, v, "a positive integer");
    } else if (a == "--max-paths") {
      const char* v = next();
      if (!v || !parse_integer(v, args.max_paths) || args.max_paths <= 0)
        return flag_error(a, v, "a positive integer");
    } else if (a == "--restart-streams") {
      args.restart_streams = true;
    } else if (a == "--scenario-streams") {
      args.scenario_streams = true;
    } else if (a == "--kind") {
      const char* v = next();
      if (!v || (std::string(v) != "greedy" && std::string(v) != "anneal" &&
                 std::string(v) != "tabu"))
        return flag_error(a, v, "'greedy', 'anneal', or 'tabu'");
      args.kind = v;
    } else if (a == "--prune") {
      const char* v = next();
      if (!v || (std::string(v) != "none" && std::string(v) != "mct" &&
                 std::string(v) != "maxplus"))
        return flag_error(a, v, "'none', 'mct', or 'maxplus'");
      args.prune = v;
    } else if (a == "--islands") {
      const char* v = next();
      if (!v || !parse_integer(v, args.islands) || args.islands == 0)
        return flag_error(a, v, "a positive integer");
    } else if (a == "--sync-rounds") {
      const char* v = next();
      if (!v || !parse_integer(v, args.sync_rounds) || args.sync_rounds == 0)
        return flag_error(a, v, "a positive integer");
    } else if (a == "--count") {
      const char* v = next();
      if (!v || !parse_integer(v, args.count) || args.count == 0)
        return flag_error(a, v, "a positive integer");
    } else if (a == "--sampling") {
      const char* v = next();
      if (!v || (std::string(v) != "batched" && std::string(v) != "scalar"))
        return flag_error(a, v, "'batched' or 'scalar'");
      args.sampling = v;
    } else if (a == "--json") {
      const char* v = next();
      if (!v) return flag_error(a, v, "an output file path");
      args.json_path = v;
    } else if (a == "--divergence-dir") {
      const char* v = next();
      if (!v) return flag_error(a, v, "an output directory");
      args.divergence_dir = v;
    } else if (a == "--emit-corpus") {
      const char* v = next();
      if (!v) return flag_error(a, v, "an output directory");
      args.emit_corpus_dir = v;
    } else if (a == "--shared-store") {
      args.shared_store = true;
    } else if (a == "--store-shards") {
      const char* v = next();
      if (!v || !parse_integer(v, args.store_shards) || args.store_shards == 0)
        return flag_error(a, v, "a positive integer");
    } else if (a == "--cache-load") {
      const char* v = next();
      if (!v) return flag_error(a, v, "a snapshot file path");
      args.cache_load = v;
    } else if (a == "--cache-save") {
      const char* v = next();
      if (!v) return flag_error(a, v, "a snapshot file path");
      args.cache_save = v;
    } else if (a == "--batch") {
      const char* v = next();
      if (!v || !parse_integer(v, args.batch) || args.batch == 0)
        return flag_error(a, v, "a positive integer");
    } else if (a == "--socket") {
      const char* v = next();
      if (!v) return flag_error(a, v, "a socket path");
      args.socket_path = v;
    } else if (a == "--digest") {
      args.digest = true;
    } else if (a == "--no-minimize") {
      args.no_minimize = true;
    } else if (!a.empty() && a[0] != '-' && positional == 0) {
      args.instance_path = a;
      ++positional;
    } else {
      std::cerr << "error: unknown or misplaced argument '" << a << "'\n";
      return false;
    }
  }
  return true;
}

Mapping load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot open instance file '" + path + "'");
  return load_instance(in);
}

int cmd_analyze(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  std::cout << mapping.to_string() << "\n";
  std::cout << "model: " << to_string(args.model) << ", m = "
            << mapping.num_paths() << " paths\n\n";
  const auto det = deterministic_throughput(mapping, args.model);
  std::cout << "deterministic throughput : " << det.throughput << "\n";
  std::cout << "in-order delivery rate   : " << det.in_order_throughput
            << "\n";
  std::cout << "critical-resource bound  : " << det.critical_resource_throughput
            << (det.critical_resource_attained ? " (attained)"
                                               : " (NOT attained)")
            << "\n";
  ExponentialOptions options;
  const auto exp = exponential_throughput(mapping, args.model, options);
  std::cout << "exponential throughput   : " << exp.throughput << "  ("
            << (exp.method_used == ExponentialMethod::kColumns
                    ? "Theorem 3/4 columns"
                    : "Theorem 2 CTMC, " + std::to_string(exp.ctmc_states) +
                          " states")
            << ")\n";
  const auto bounds = nbue_throughput_bounds(mapping, args.model, options);
  std::cout << "N.B.U.E. guarantee       : [" << bounds.lower << ", "
            << bounds.upper << "]\n";
  if (!exp.components.empty()) {
    std::cout << "\nbottlenecks:\n";
    for (const auto& c : exp.components) {
      if (!c.bottleneck) continue;
      std::cout << "  " << c.label << ": saturated " << c.inner
                << ", effective " << c.effective << "\n";
    }
  }
  return 0;
}

int cmd_simulate(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  const DistributionPtr law = parse_distribution(args.law);
  const StochasticTiming timing = StochasticTiming::scaled(mapping, *law);
  PipelineSimOptions options;
  options.data_sets = args.data_sets;
  options.seed = args.seed;
  std::cout << "law            : " << law->name() << " (rescaled per resource)"
            << (timing.all_nbue() ? ", N.B.U.E." : ", NOT N.B.U.E.") << "\n";

  if (args.replications <= 1) {
    const auto r = simulate_pipeline(mapping, args.model, timing, options);
    std::cout << "throughput     : " << r.throughput << "\n";
    std::cout << "in-order rate  : " << r.in_order_throughput << "\n";
    std::cout << "mean latency   : " << r.mean_latency << "\n";
    std::cout << "completed      : " << r.completed << " data sets in "
              << r.elapsed << " time units\n";
    return 0;
  }

  ExperimentOptions experiment;
  experiment.replications = args.replications;
  experiment.threads = args.threads;
  experiment.seed = args.seed;
  const ReplicatedResult r =
      run_replicated_pipeline(mapping, args.model, timing, options, experiment);
  const MetricSummary& throughput = r.metric("throughput");
  std::cout << "replications   : " << r.replications << " x "
            << args.data_sets << " data sets on " << r.threads_used
            << " thread(s), seed " << r.seed
            << " (bit-identical for any --threads)\n";
  std::cout << "throughput     : " << throughput.mean << " +/- "
            << throughput.ci95_halfwidth << " (95% CI)\n";
  std::cout << "  stddev       : " << throughput.stddev << "\n";
  std::cout << "  min / max    : " << throughput.min << " / " << throughput.max
            << "\n";
  std::cout << "in-order rate  : " << r.metric("in_order_throughput").mean
            << "\n";
  std::cout << "mean latency   : " << r.metric("mean_latency").mean << "\n\n";

  Table table({"replication", "throughput", "in-order", "mean latency",
               "completed"});
  table.set_precision(6);
  const std::vector<double> tput = r.column("throughput");
  const std::vector<double> in_order = r.column("in_order_throughput");
  const std::vector<double> latency = r.column("mean_latency");
  const std::vector<double> completed = r.column("completed");
  for (std::size_t k = 0; k < r.replications; ++k) {
    table.add_row({static_cast<std::int64_t>(k), tput[k], in_order[k],
                   latency[k], static_cast<std::int64_t>(completed[k])});
  }
  table.print(std::cout, "per-replication results");
  return 0;
}

std::vector<std::string> read_scenarios(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidArgument("cannot open scenario file '" + path + "'");
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  std::vector<std::string> result;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t begin = line.find_first_not_of(" \t\r");
    if (begin == std::string::npos || line[begin] == '#') continue;
    const std::size_t end = line.find_last_not_of(" \t\r");
    const std::string token = line.substr(begin, end - begin + 1);
    const std::filesystem::path p(token);
    result.push_back(p.is_absolute() ? p.string() : (dir / p).string());
  }
  if (result.empty()) {
    throw InvalidArgument("scenario file '" + path + "' lists no instances");
  }
  return result;
}

/// Resolves the shared-store flags: a private store of --store-shards
/// shards (held in `local`) or the process-wide store, warm-started from
/// --cache-load when given. Returns null when no store flag was passed.
PatternStore* select_store(const CliArgs& args,
                           std::optional<PatternStore>& local,
                           std::size_t& loaded) {
  const bool wants_store = args.shared_store || args.store_shards > 0 ||
                           !args.cache_load.empty() ||
                           !args.cache_save.empty();
  if (!wants_store) return nullptr;
  PatternStore* store;
  if (args.store_shards > 0) {
    local.emplace(args.store_shards);
    store = &*local;
  } else {
    store = &PatternStore::process_wide();
  }
  // A nonexistent snapshot is a cold start (returns 0); an invalid one
  // throws with a line diagnostic before any search work happens.
  if (!args.cache_load.empty()) loaded = store->load_file(args.cache_load);
  return store;
}

/// Search-mode store report. Prints only scheduling-invariant quantities
/// (entry count, shard count, digest) — the store hit/miss SPLIT depends on
/// which worker solved a pattern first, so it stays unreported, exactly
/// like the per-context split.
void report_store(const CliArgs& args, PatternStore& store,
                  std::size_t loaded) {
  std::cout << "pattern store: " << store.size() << " entries in "
            << store.shard_count() << " shard(s)";
  if (loaded > 0) std::cout << ", " << loaded << " warm-started";
  std::cout << ", digest " << std::hex << store.digest() << std::dec
            << " (results bit-identical to a private-cache run)\n";
  if (!args.cache_save.empty()) {
    store.save_file(args.cache_save);
    std::cout << "pattern store: snapshot saved to '" << args.cache_save
              << "'\n";
  }
}

int cmd_search(const CliArgs& args) {
  if (!args.instance_path.empty() && !args.scenarios_path.empty()) {
    throw InvalidArgument(
        "pass either an instance file or --scenarios, not both (list every "
        "instance in the scenario file)");
  }
  std::optional<PatternStore> local_store;
  std::size_t warm_loaded = 0;
  PatternStore* store = select_store(args, local_store, warm_loaded);
  ParallelSearchOptions options;
  options.pattern_store = store;
  options.search.model = args.model;
  if (args.objective.empty()) {
    // The exponential objective needs the column method (Overlap only).
    options.search.objective = args.model == ExecutionModel::kStrict
                                   ? MappingObjective::kDeterministic
                                   : MappingObjective::kExponential;
  } else {
    options.search.objective = args.objective == "det"
                                   ? MappingObjective::kDeterministic
                                   : MappingObjective::kExponential;
  }
  options.search.restarts = args.restarts;
  options.search.seed = args.seed;
  options.search.max_paths = args.max_paths;
  options.search.kind = args.kind == "anneal" ? RestartKind::kAnnealing
                        : args.kind == "tabu" ? RestartKind::kTabu
                                              : RestartKind::kGreedyLocal;
  options.search.bounds = args.prune == "mct"       ? BoundPolicy::kMct
                          : args.prune == "maxplus" ? BoundPolicy::kMctMaxplus
                                                    : BoundPolicy::kNone;
  options.threads = args.threads;
  options.seeding = args.restart_streams ? RestartSeeding::kSubstreams
                                         : RestartSeeding::kSequentialCompat;
  options.scenario_streams = args.scenario_streams;
  options.islands = args.islands;
  options.sync_rounds = args.sync_rounds;
  if (options.search.kind != RestartKind::kGreedyLocal &&
      !args.scenarios_path.empty()) {
    throw InvalidArgument(
        "--kind anneal|tabu searches one instance (the island portfolio does "
        "not compose with --scenarios); run the batch with --kind greedy");
  }

  const char* objective_name =
      options.search.objective == MappingObjective::kDeterministic
          ? "deterministic"
          : "exponential";
  const char* seeding_name =
      options.seeding == RestartSeeding::kSubstreams ? "substream" : "serial";

  if (args.scenarios_path.empty()) {
    const Mapping instance = load(args.instance_path);
    // Share the loaded instance: the whole portfolio runs without copying
    // the application or the platform's bandwidth matrix. Everything below
    // except the reported worker count is bit-identical for any --threads.
    const ParallelSearchResult result =
        parallel_optimize_mapping(instance.instance(), options);
    std::cout << "objective    : " << objective_name << " throughput ("
              << to_string(options.search.model) << " model)\n";
    if (options.search.kind == RestartKind::kGreedyLocal) {
      std::cout << "portfolio    : " << result.restarts << " restart(s), "
                << seeding_name << " seeding, seed " << args.seed << ", on "
                << result.threads_used
                << " worker thread(s) (results independent of --threads)\n";
    } else {
      std::cout << "portfolio    : " << args.kind << ", " << result.restarts
                << " island(s) x " << args.sync_rounds
                << " sync round(s), seed " << args.seed << ", on "
                << result.threads_used
                << " worker thread(s) (results independent of --threads)\n";
    }
    std::cout << "best mapping : " << result.mapping.to_string() << "\n";
    std::cout << "throughput   : " << result.throughput << "  (greedy start "
              << result.greedy_throughput << ", best found by "
              << (options.search.kind == RestartKind::kGreedyLocal
                      ? "restart "
                      : "island ")
              << result.best_restart << ")\n";
    std::cout << "evaluations  : " << result.evaluations << "  ("
              << result.pattern_requests
              << " pattern solves requested across workers)\n";
    if (options.search.bounds != BoundPolicy::kNone) {
      const std::size_t pruned =
          result.moves_pruned_mct + result.moves_pruned_maxplus;
      const std::size_t probes = pruned + result.moves_solved;
      std::cout << "prune screen : " << args.prune << ": " << pruned << "/"
                << probes << " move probes pruned (" << result.moves_pruned_mct
                << " by the rate bound, " << result.moves_pruned_maxplus
                << " by max-plus), " << result.moves_solved
                << " solved exactly; result bit-identical to --prune none\n";
    }
    if (store != nullptr) report_store(args, *store, warm_loaded);
    return 0;
  }

  const std::vector<std::string> scenarios =
      read_scenarios(args.scenarios_path);
  // Load serially up front (errors name the first offending file), then fan
  // the scenario portfolios out across the pool in one batch call.
  std::vector<InstancePtr> instances;
  instances.reserve(scenarios.size());
  for (const std::string& path : scenarios) {
    instances.push_back(load(path).instance());
  }
  const std::vector<ParallelSearchResult> results =
      parallel_optimize_batch(instances, options);

  Table table({"scenario", "stages", "procs", "throughput", "greedy",
               "evaluations"});
  table.set_precision(6);
  std::size_t evaluations = 0, pattern_requests = 0;
  for (std::size_t j = 0; j < scenarios.size(); ++j) {
    const ParallelSearchResult& result = results[j];
    table.add_row({std::filesystem::path(scenarios[j]).filename().string(),
                   static_cast<std::int64_t>(instances[j]->application
                                                 .num_stages()),
                   static_cast<std::int64_t>(instances[j]->platform
                                                 .num_processors()),
                   result.throughput, result.greedy_throughput,
                   static_cast<std::int64_t>(result.evaluations)});
    evaluations += result.evaluations;
    pattern_requests += result.pattern_requests;
  }
  // Mirrors the pool sizing inside parallel_optimize_batch (each returned
  // row's own threads_used is 1 by design: one worker per scenario).
  const std::size_t threads_used = std::min<std::size_t>(
      options.resolved_threads(), scenarios.size());
  table.print(std::cout,
              std::string("mapping search (") + objective_name +
                  " objective, seed " + std::to_string(args.seed) +
                  (options.scenario_streams ? ", scenario streams" : "") +
                  ")");
  std::cout << "\nportfolio batch: " << scenarios.size() << " scenario(s) x "
            << std::max<std::size_t>(args.restarts, 1) << " restart(s) on "
            << threads_used << " worker thread(s)\n";
  std::cout << "evaluations    : " << evaluations << " total, "
            << pattern_requests << " pattern solves requested (rows "
            << "independent of --threads)\n";
  if (store != nullptr) report_store(args, *store, warm_loaded);
  return 0;
}

int cmd_serve(const CliArgs& args) {
  ServeOptions options;
  options.threads = args.threads;
  options.max_batch = args.batch;
  // serve always shares a store across requests: a private one when
  // --store-shards is given, the process-wide instance otherwise.
  std::optional<PatternStore> local_store;
  if (args.store_shards > 0) local_store.emplace(args.store_shards);
  PatternStore& store =
      local_store ? *local_store : PatternStore::process_wide();
  options.store = &store;
  if (!args.cache_load.empty()) {
    const std::size_t loaded = store.load_file(args.cache_load);
    // Diagnostics go to stderr: stdout is the response channel in pipe
    // mode, and its bytes are part of the determinism contract.
    std::cerr << "serve: warm-started " << loaded << " pattern entries from '"
              << args.cache_load << "' (store digest " << std::hex
              << store.digest() << std::dec << ")\n";
  }
  const ServeResult result =
      args.socket_path.empty()
          ? run_serve_loop(std::cin, std::cout, options)
          : run_serve_socket(args.socket_path, options);
  if (!args.cache_save.empty()) {
    store.save_file(args.cache_save);
    std::cerr << "serve: saved " << store.size() << " pattern entries to '"
              << args.cache_save << "'\n";
  }
  std::cerr << "serve: " << result.requests << " request(s) in "
            << result.batches << " batch(es), " << result.errors
            << " error(s), "
            << (result.shutdown_requested ? "shutdown requested"
                                          : "input closed")
            << "\n";
  return 0;
}

int cmd_export_tpn(const CliArgs& args) {
  const Mapping mapping = load(args.instance_path);
  const TimedEventGraph g = build_tpn(mapping, args.model);
  g.write_dot(std::cout);
  return 0;
}

int cmd_fuzz(const CliArgs& args) {
  HarnessOptions options;
  options.corpus.seed = args.seed;
  options.count = args.count;
  if (args.replications_given) options.replications = args.replications;
  if (args.data_sets_given) options.data_sets = args.data_sets;
  options.threads = args.threads;
  options.sampling = args.sampling == "scalar" ? SamplingMode::kScalarCompat
                                               : SamplingMode::kBatched;
  options.minimize = !args.no_minimize;
  options.validate();

  if (!args.emit_corpus_dir.empty()) {
    std::filesystem::create_directories(args.emit_corpus_dir);
    for (std::size_t k = 0; k < options.count; ++k) {
      const Scenario scenario = draw_scenario(options.corpus, k);
      const std::filesystem::path path =
          std::filesystem::path(args.emit_corpus_dir) /
          ("s" + std::to_string(k) + ".scenario");
      std::ofstream out(path);
      if (!out) {
        throw InvalidArgument("cannot write corpus file '" + path.string() +
                              "'");
      }
      save_scenario(out, scenario);
    }
    std::cout << "wrote " << options.count << " scenarios to "
              << args.emit_corpus_dir << "\n";
    return 0;
  }

  const HarnessReport report = run_diff_harness(options);

  if (!args.json_path.empty()) {
    std::ofstream out(args.json_path);
    if (!out) {
      throw InvalidArgument("cannot write report file '" + args.json_path +
                            "'");
    }
    out << report.to_json();
  }
  if (!args.divergence_dir.empty() && !report.divergences.empty()) {
    std::filesystem::create_directories(args.divergence_dir);
    for (const DivergenceRecord& record : report.divergences) {
      const std::filesystem::path path =
          std::filesystem::path(args.divergence_dir) /
          ("div_s" + std::to_string(record.scenario_id) + "_" +
           to_string(record.check) + ".scenario");
      std::ofstream out(path);
      if (!out) {
        throw InvalidArgument("cannot write divergence fixture '" +
                              path.string() + "'");
      }
      out << record.fixture_text;
    }
  }

  if (args.digest) {
    // Status-only digest: bit-identical for every --threads and --sampling
    // value (pinned by tools/fuzz_smoke.cmake).
    std::cout << report.digest();
  } else {
    std::cout << report.digest() << "\n";
    for (const DivergenceRecord& record : report.divergences) {
      std::cout << "DIVERGENCE " << record.original_label << " check "
                << to_string(record.check) << ": " << record.detail << "\n";
      std::cout << "  minimized in " << record.shrink_steps << " step(s) to "
                << record.minimized.mapping.num_stages() << " stage(s) on "
                << record.minimized.mapping.num_processors()
                << " processor(s)\n";
      if (args.divergence_dir.empty()) {
        std::cout << "  (pass --divergence-dir to write the replayable "
                  << "fixture)\n";
      }
    }
  }
  return report.fails == 0 ? 0 : 1;
}

int cmd_example() {
  Application app({2.0, 6.0, 4.0, 1.0}, {1.0, 3.0, 1.0});
  Platform platform = Platform::fully_connected(
      {2.0, 1.5, 1.0, 1.2, 0.8, 1.1, 2.5}, 2.0);
  Mapping mapping(app, platform, {{0}, {1, 2}, {3, 4, 5}, {6}});
  save_instance(std::cout, mapping);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args;
  if (!parse_args(argc, argv, args)) return usage();
  if (args.command == "help" || args.command == "--help" ||
      args.command == "-h") {
    print_usage(std::cout);
    return 0;
  }
  try {
    if (args.command == "example") return cmd_example();
    if (args.command == "fuzz") return cmd_fuzz(args);
    if (args.command == "serve") return cmd_serve(args);
    if (args.command == "search" &&
        (!args.instance_path.empty() || !args.scenarios_path.empty())) {
      return cmd_search(args);
    }
    if (args.instance_path.empty()) return usage();
    if (args.command == "analyze") return cmd_analyze(args);
    if (args.command == "simulate") return cmd_simulate(args);
    if (args.command == "export-tpn") return cmd_export_tpn(args);
    return usage();
  } catch (const streamflow::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
