# End-to-end smoke test for streamflow_cli, run by CTest as
#   cmake -DCLI=<binary> -DWORK_DIR=<scratch dir> -P cli_smoke.cmake
# Exercises --help plus the example -> analyze -> simulate -> export-tpn
# round trip on a generated instance file.

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "usage: cmake -DCLI=<binary> -DWORK_DIR=<dir> -P cli_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli expect_rc out_var)
  execute_process(COMMAND "${CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "streamflow_cli ${ARGN} exited ${rc} "
                        "(expected ${expect_rc})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
endfunction()

# --help must succeed and describe the subcommands.
run_cli(0 help_out --help)
if(NOT help_out MATCHES "usage" OR NOT help_out MATCHES "simulate")
  message(FATAL_ERROR "--help output does not look like usage text:\n${help_out}")
endif()

# A bad invocation must fail loudly.
run_cli(2 ignored definitely-not-a-command)

# example -> analyze -> simulate -> export-tpn on a real instance.
set(instance "${WORK_DIR}/example.instance")
run_cli(0 example_out example)
file(WRITE "${instance}" "${example_out}")

run_cli(0 analyze_out analyze "${instance}")
if(NOT analyze_out MATCHES "deterministic throughput" OR
   NOT analyze_out MATCHES "N\\.B\\.U\\.E\\.")
  message(FATAL_ERROR "analyze output incomplete:\n${analyze_out}")
endif()

run_cli(0 sim_out simulate "${instance}" --law gamma:2,0.5 --data-sets 2000 --seed 7)
if(NOT sim_out MATCHES "throughput" OR NOT sim_out MATCHES "gamma")
  message(FATAL_ERROR "simulate output incomplete:\n${sim_out}")
endif()

run_cli(0 dot_out export-tpn "${instance}")
if(NOT dot_out MATCHES "digraph")
  message(FATAL_ERROR "export-tpn did not emit DOT:\n${dot_out}")
endif()

# search: greedy + local-search mapping optimization through the shared
# analysis context.
run_cli(0 search_out search "${instance}" --objective exp --restarts 2 --seed 3)
if(NOT search_out MATCHES "best mapping" OR
   NOT search_out MATCHES "pattern cache")
  message(FATAL_ERROR "search output incomplete:\n${search_out}")
endif()

# Batch mode: the same instance twice through ONE shared context must print
# two identical result rows — the search is bit-identical whether the
# pattern cache is cold (first row) or warm (second row).
file(WRITE "${WORK_DIR}/scenarios.txt"
     "# cli_smoke scenarios\nexample.instance\nexample.instance\n")
run_cli(0 batch_out search --scenarios "${WORK_DIR}/scenarios.txt"
        --restarts 2 --seed 3)
if(NOT batch_out MATCHES "shared pattern cache")
  message(FATAL_ERROR "batch search output incomplete:\n${batch_out}")
endif()
string(REGEX MATCHALL "example\\.instance[^\n]*" batch_rows "${batch_out}")
list(LENGTH batch_rows batch_row_count)
if(NOT batch_row_count EQUAL 2)
  message(FATAL_ERROR "expected 2 scenario rows, got ${batch_row_count}:\n${batch_out}")
endif()
list(GET batch_rows 0 batch_row_cold)
list(GET batch_rows 1 batch_row_warm)
if(NOT batch_row_cold STREQUAL batch_row_warm)
  message(FATAL_ERROR "search is not cache-state independent:\n"
                      "cold: ${batch_row_cold}\nwarm: ${batch_row_warm}")
endif()

# Replicated simulate: must report statistics, and the numbers must be
# bit-identical for any --threads (only the reported worker count differs).
run_cli(0 rep1_out simulate "${instance}" --law exp:1 --data-sets 2000
        --seed 7 --replications 6 --threads 1)
run_cli(0 rep4_out simulate "${instance}" --law exp:1 --data-sets 2000
        --seed 7 --replications 6 --threads 4)
if(NOT rep1_out MATCHES "95% CI" OR NOT rep1_out MATCHES "per-replication")
  message(FATAL_ERROR "replicated simulate output incomplete:\n${rep1_out}")
endif()
string(REGEX REPLACE "on [0-9]+ thread" "on N thread" rep1_norm "${rep1_out}")
string(REGEX REPLACE "on [0-9]+ thread" "on N thread" rep4_norm "${rep4_out}")
if(NOT rep1_norm STREQUAL rep4_norm)
  message(FATAL_ERROR "replicated simulate is not deterministic across "
                      "--threads:\n--- 1 thread ---\n${rep1_out}\n"
                      "--- 4 threads ---\n${rep4_out}")
endif()

message(STATUS "cli_smoke passed")
