# End-to-end smoke test for streamflow_cli, run by CTest as
#   cmake -DCLI=<binary> -DWORK_DIR=<scratch dir> -DCLI_SOURCE=<cli .cpp>
#         -P cli_smoke.cmake
# Exercises --help plus the example -> analyze -> simulate -> export-tpn
# round trip on a generated instance file, the parallel search/batch paths,
# and audits the --help text against the flags the CLI actually parses.

if(NOT DEFINED CLI OR NOT DEFINED WORK_DIR OR NOT DEFINED CLI_SOURCE)
  message(FATAL_ERROR "usage: cmake -DCLI=<binary> -DWORK_DIR=<dir> "
                      "-DCLI_SOURCE=<cli .cpp> -P cli_smoke.cmake")
endif()

file(MAKE_DIRECTORY "${WORK_DIR}")

function(run_cli expect_rc out_var)
  execute_process(COMMAND "${CLI}" ${ARGN}
                  RESULT_VARIABLE rc
                  OUTPUT_VARIABLE out
                  ERROR_VARIABLE err)
  if(NOT rc EQUAL ${expect_rc})
    message(FATAL_ERROR "streamflow_cli ${ARGN} exited ${rc} "
                        "(expected ${expect_rc})\nstdout:\n${out}\nstderr:\n${err}")
  endif()
  set(${out_var} "${out}" PARENT_SCOPE)
  set(${out_var}_err "${err}" PARENT_SCOPE)
endfunction()

# Rejected numeric flag values must exit 2 AND name the offending flag on
# stderr (not just dump the usage text — that is what the validation audit
# fixed). `flag` doubles as the stderr pattern to expect.
function(expect_flag_error flag)
  run_cli(2 bad_out ${ARGN})
  if(NOT bad_out_err MATCHES "error: ${flag}")
    message(FATAL_ERROR "'streamflow_cli ${ARGN}' did not report a "
                        "'error: ${flag} ...' diagnostic\nstderr:\n${bad_out_err}")
  endif()
endfunction()

# --help must succeed and describe the subcommands.
run_cli(0 help_out --help)
if(NOT help_out MATCHES "usage" OR NOT help_out MATCHES "simulate")
  message(FATAL_ERROR "--help output does not look like usage text:\n${help_out}")
endif()

# Help-text audit: every flag the argument parser matches (the `a == "--x"`
# comparisons in the CLI source) must be documented in --help, so a new
# option can never ship invisible to users.
file(READ "${CLI_SOURCE}" cli_source)
string(REGEX MATCHALL "a == \"(--[a-z-]+)\"" parsed_flag_matches "${cli_source}")
set(parsed_flags "")
foreach(match IN LISTS parsed_flag_matches)
  string(REGEX REPLACE "a == \"(--[a-z-]+)\"" "\\1" flag "${match}")
  list(APPEND parsed_flags "${flag}")
endforeach()
list(REMOVE_DUPLICATES parsed_flags)
list(LENGTH parsed_flags parsed_flag_count)
if(parsed_flag_count LESS 10)
  message(FATAL_ERROR "flag audit found only ${parsed_flag_count} parsed "
                      "flags in ${CLI_SOURCE} — extraction regex broken?")
endif()
foreach(flag IN LISTS parsed_flags)
  if(NOT help_out MATCHES "${flag}")
    message(FATAL_ERROR "parsed flag '${flag}' is not documented in --help:\n${help_out}")
  endif()
endforeach()

# A bad invocation must fail loudly.
run_cli(2 ignored definitely-not-a-command)

# Numeric-flag validation audit: zero where a positive count is required,
# negative values fed to unsigned flags (no silent two's-complement wrap to
# 2^64-1), non-integer tokens, and values too large for 64 bits all fail
# with a diagnostic naming the flag. (--threads 0 stays VALID: all cores.)
expect_flag_error(--data-sets simulate x.instance --data-sets 0)
expect_flag_error(--data-sets simulate x.instance --data-sets -5)
expect_flag_error(--replications simulate x.instance --replications 0)
expect_flag_error(--seed simulate x.instance --seed -1)
expect_flag_error(--seed simulate x.instance --seed 99999999999999999999999)
expect_flag_error(--threads simulate x.instance --threads -2)
expect_flag_error(--threads simulate x.instance --threads 1e6)
expect_flag_error(--restarts search x.instance --restarts 0)
expect_flag_error(--max-paths search x.instance --max-paths 0)
expect_flag_error(--replications simulate x.instance --replications)

# Enumerated/island flags of the search subcommand: unknown kind or prune
# names, a zero island count, and non-integer sync-round tokens must all
# fail with a diagnostic naming the flag.
expect_flag_error(--kind search x.instance --kind simulated-annealing)
expect_flag_error(--prune search x.instance --prune both)
expect_flag_error(--islands search x.instance --islands 0)
expect_flag_error(--sync-rounds search x.instance --sync-rounds 2.5)
expect_flag_error(--sync-rounds search x.instance --sync-rounds 0)

# Pattern-store and serve-mode flags: shard counts and batch sizes must be
# positive integers, and the path-valued flags must reject a missing value
# instead of silently consuming the next option.
expect_flag_error(--store-shards search x.instance --store-shards 0)
expect_flag_error(--store-shards serve --store-shards -4)
expect_flag_error(--batch serve --batch 0)
expect_flag_error(--batch serve --batch 2.5)
expect_flag_error(--cache-load search x.instance --cache-load)
expect_flag_error(--cache-save search x.instance --cache-save)
expect_flag_error(--socket serve --socket)

# example -> analyze -> simulate -> export-tpn on a real instance.
set(instance "${WORK_DIR}/example.instance")
run_cli(0 example_out example)
file(WRITE "${instance}" "${example_out}")

run_cli(0 analyze_out analyze "${instance}")
if(NOT analyze_out MATCHES "deterministic throughput" OR
   NOT analyze_out MATCHES "N\\.B\\.U\\.E\\.")
  message(FATAL_ERROR "analyze output incomplete:\n${analyze_out}")
endif()

run_cli(0 sim_out simulate "${instance}" --law gamma:2,0.5 --data-sets 2000 --seed 7)
if(NOT sim_out MATCHES "throughput" OR NOT sim_out MATCHES "gamma")
  message(FATAL_ERROR "simulate output incomplete:\n${sim_out}")
endif()

run_cli(0 dot_out export-tpn "${instance}")
if(NOT dot_out MATCHES "digraph")
  message(FATAL_ERROR "export-tpn did not emit DOT:\n${dot_out}")
endif()

# search: the parallel restart portfolio. Results must be byte-identical
# for every --threads value (only the reported worker count may differ).
run_cli(0 search_out search "${instance}" --objective exp --restarts 2 --seed 3)
if(NOT search_out MATCHES "best mapping" OR
   NOT search_out MATCHES "pattern solves")
  message(FATAL_ERROR "search output incomplete:\n${search_out}")
endif()

run_cli(0 search1_out search "${instance}" --objective exp --restarts 4
        --seed 3 --threads 1)
run_cli(0 search4_out search "${instance}" --objective exp --restarts 4
        --seed 3 --threads 4)
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" search1_norm "${search1_out}")
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" search4_norm "${search4_out}")
if(NOT search1_norm STREQUAL search4_norm)
  message(FATAL_ERROR "search is not deterministic across --threads:\n"
                      "--- 1 thread ---\n${search1_out}\n"
                      "--- 4 threads ---\n${search4_out}")
endif()

# Substream seeding must also be --threads invariant (different scores than
# the serial discipline are fine; scheduling dependence is not).
run_cli(0 stream1_out search "${instance}" --objective exp --restarts 4
        --seed 3 --restart-streams --threads 1)
run_cli(0 stream8_out search "${instance}" --objective exp --restarts 4
        --seed 3 --restart-streams --threads 8)
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" stream1_norm "${stream1_out}")
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" stream8_norm "${stream8_out}")
if(NOT stream1_norm STREQUAL stream8_norm)
  message(FATAL_ERROR "--restart-streams search is not deterministic across "
                      "--threads:\n--- 1 thread ---\n${stream1_out}\n"
                      "--- 8 threads ---\n${stream8_out}")
endif()

# Bound screens: --prune reports its accounting and must not change a byte
# of the search result vs --prune none (same flags otherwise).
run_cli(0 prune_out search "${instance}" --objective exp --restarts 4
        --seed 3 --prune maxplus)
if(NOT prune_out MATCHES "prune screen" OR
   NOT prune_out MATCHES "bit-identical")
  message(FATAL_ERROR "pruned search output incomplete:\n${prune_out}")
endif()
string(REGEX REPLACE "\nprune screen[^\n]*" "" prune_stripped "${prune_out}")
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" prune_norm "${prune_stripped}")
if(NOT prune_norm STREQUAL search1_norm)
  message(FATAL_ERROR "--prune maxplus changed the search result:\n"
                      "--- unscreened ---\n${search1_out}\n"
                      "--- screened ---\n${prune_out}")
endif()

# Metaheuristic islands: --kind anneal|tabu runs the island portfolio and
# stays byte-identical for any --threads value.
run_cli(0 island1_out search "${instance}" --objective exp --kind tabu
        --islands 3 --sync-rounds 2 --seed 3 --threads 1)
if(NOT island1_out MATCHES "island")
  message(FATAL_ERROR "island search output incomplete:\n${island1_out}")
endif()
run_cli(0 island4_out search "${instance}" --objective exp --kind tabu
        --islands 3 --sync-rounds 2 --seed 3 --threads 4)
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" island1_norm "${island1_out}")
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" island4_norm "${island4_out}")
if(NOT island1_norm STREQUAL island4_norm)
  message(FATAL_ERROR "island search is not deterministic across --threads:\n"
                      "--- 1 thread ---\n${island1_out}\n"
                      "--- 4 threads ---\n${island4_out}")
endif()

# Batch mode: scenario rows are dispatched across workers but printed in
# file order; the same instance listed twice must produce two identical
# result rows (every scenario shares --seed and rows are cache-state and
# scheduling independent).
file(WRITE "${WORK_DIR}/scenarios.txt"
     "# cli_smoke scenarios\nexample.instance\nexample.instance\n")
run_cli(0 batch_out search --scenarios "${WORK_DIR}/scenarios.txt"
        --restarts 2 --seed 3)
if(NOT batch_out MATCHES "portfolio batch")
  message(FATAL_ERROR "batch search output incomplete:\n${batch_out}")
endif()

# Islands are per-instance only: a metaheuristic kind combined with
# --scenarios is a usage error surfaced by the library (exit 1).
run_cli(1 ignored search --scenarios "${WORK_DIR}/scenarios.txt"
        --kind anneal --seed 3)
string(REGEX MATCHALL "example\\.instance[^\n]*" batch_rows "${batch_out}")
list(LENGTH batch_rows batch_row_count)
if(NOT batch_row_count EQUAL 2)
  message(FATAL_ERROR "expected 2 scenario rows, got ${batch_row_count}:\n${batch_out}")
endif()
list(GET batch_rows 0 batch_row_a)
list(GET batch_rows 1 batch_row_b)
if(NOT batch_row_a STREQUAL batch_row_b)
  message(FATAL_ERROR "identical scenarios produced different rows:\n"
                      "row 0: ${batch_row_a}\nrow 1: ${batch_row_b}")
endif()

# Batch must be byte-identical across --threads too (modulo the reported
# worker count), including under per-scenario streams — where the two
# identical scenario files must now produce DIFFERENT rows (independent
# stream families), deterministically.
run_cli(0 batchs1_out search --scenarios "${WORK_DIR}/scenarios.txt"
        --restarts 3 --seed 3 --scenario-streams --threads 1)
run_cli(0 batchs2_out search --scenarios "${WORK_DIR}/scenarios.txt"
        --restarts 3 --seed 3 --scenario-streams --threads 2)
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" batchs1_norm "${batchs1_out}")
string(REGEX REPLACE "on [0-9]+ worker" "on N worker" batchs2_norm "${batchs2_out}")
if(NOT batchs1_norm STREQUAL batchs2_norm)
  message(FATAL_ERROR "--scenario-streams batch is not deterministic across "
                      "--threads:\n--- 1 thread ---\n${batchs1_out}\n"
                      "--- 2 threads ---\n${batchs2_out}")
endif()
string(REGEX MATCHALL "example\\.instance[^\n]*" stream_rows "${batchs1_out}")
list(GET stream_rows 0 stream_row_a)
list(GET stream_rows 1 stream_row_b)
if(stream_row_a STREQUAL stream_row_b)
  message(FATAL_ERROR "--scenario-streams did not decorrelate identical "
                      "scenarios:\n${batchs1_out}")
endif()

# Replicated simulate: must report statistics, and the numbers must be
# bit-identical for any --threads (only the reported worker count differs).
run_cli(0 rep1_out simulate "${instance}" --law exp:1 --data-sets 2000
        --seed 7 --replications 6 --threads 1)
run_cli(0 rep4_out simulate "${instance}" --law exp:1 --data-sets 2000
        --seed 7 --replications 6 --threads 4)
if(NOT rep1_out MATCHES "95% CI" OR NOT rep1_out MATCHES "per-replication")
  message(FATAL_ERROR "replicated simulate output incomplete:\n${rep1_out}")
endif()
string(REGEX REPLACE "on [0-9]+ thread" "on N thread" rep1_norm "${rep1_out}")
string(REGEX REPLACE "on [0-9]+ thread" "on N thread" rep4_norm "${rep4_out}")
if(NOT rep1_norm STREQUAL rep4_norm)
  message(FATAL_ERROR "replicated simulate is not deterministic across "
                      "--threads:\n--- 1 thread ---\n${rep1_out}\n"
                      "--- 4 threads ---\n${rep4_out}")
endif()

# Pattern-store snapshot round trip: a --shared-store search saves a
# snapshot, a second search warm-starts from it (any --threads), and the
# result must be byte-identical to the storeless baseline — the store and
# its persistence may change speed, never bytes. The transient store
# reporting lines are stripped before comparing (they are new output, not
# changed output).
run_cli(0 nostore_out search "${instance}" --objective exp --restarts 4
        --seed 3)
run_cli(0 save_out search "${instance}" --objective exp --restarts 4
        --seed 3 --shared-store --store-shards 8
        --cache-save "${WORK_DIR}/patterns.snapshot")
if(NOT save_out MATCHES "pattern store:" OR
   NOT EXISTS "${WORK_DIR}/patterns.snapshot")
  message(FATAL_ERROR "--cache-save did not write a snapshot:\n${save_out}")
endif()
run_cli(0 load_out search "${instance}" --objective exp --restarts 4
        --seed 3 --shared-store --store-shards 8 --threads 4
        --cache-load "${WORK_DIR}/patterns.snapshot")
foreach(var nostore_out save_out load_out)
  string(REGEX REPLACE "\npattern store:[^\n]*" "" ${var}_strip "${${var}}")
  string(REGEX REPLACE "on [0-9]+ worker" "on N worker"
         ${var}_norm "${${var}_strip}")
endforeach()
if(NOT save_out_norm STREQUAL nostore_out_norm OR
   NOT load_out_norm STREQUAL nostore_out_norm)
  message(FATAL_ERROR "shared-store search changed the result bytes:\n"
                      "--- baseline ---\n${nostore_out}\n"
                      "--- cold store ---\n${save_out}\n"
                      "--- warm store ---\n${load_out}")
endif()

# A corrupted snapshot must be rejected loudly (library error, exit 1).
file(WRITE "${WORK_DIR}/bad.snapshot"
     "streamflow-pattern-store v9\nentries 0\ndigest cbf29ce484222325\n")
run_cli(1 badsnap_out search "${instance}" --shared-store
        --cache-load "${WORK_DIR}/bad.snapshot")
if(NOT badsnap_out_err MATCHES "unsupported snapshot version")
  message(FATAL_ERROR "version-skewed snapshot was not rejected:\n"
                      "${badsnap_out_err}")
endif()

# Serve pipe mode: a short request script (ping, malformed line, shutdown)
# through stdin/stdout; the malformed line must come back ok:false without
# ending the session, and shutdown must be acknowledged.
file(WRITE "${WORK_DIR}/serve_requests.jsonl"
     "{\"id\":1,\"op\":\"ping\"}\n{\"op\":\"frobnicate\"}\n{\"id\":3,\"op\":\"shutdown\"}\n")
execute_process(COMMAND "${CLI}" serve --threads 2
                INPUT_FILE "${WORK_DIR}/serve_requests.jsonl"
                RESULT_VARIABLE serve_rc
                OUTPUT_VARIABLE serve_out
                ERROR_VARIABLE serve_err)
if(NOT serve_rc EQUAL 0)
  message(FATAL_ERROR "streamflow_cli serve exited ${serve_rc}:\n${serve_err}")
endif()
if(NOT serve_out MATCHES "\"id\":1,\"ok\":true,\"result\":\\{\"pong\":true\\}" OR
   NOT serve_out MATCHES "\"ok\":false,\"error\":\"unknown op 'frobnicate'" OR
   NOT serve_out MATCHES "\"id\":3,\"ok\":true,\"result\":\\{\"stopping\":true\\}")
  message(FATAL_ERROR "serve pipe-mode responses incomplete:\n${serve_out}")
endif()
if(NOT serve_err MATCHES "3 request\\(s\\)" OR
   NOT serve_err MATCHES "shutdown requested")
  message(FATAL_ERROR "serve accounting line missing:\n${serve_err}")
endif()

# --- streamflow_lint smoke (optional: -DLINT=<binary> -DLINT_SOURCE=<cpp>) --
# Same help-audit discipline as the CLI above, applied to the lint binary:
# every parsed flag documented, --list-rules complete, unknown flags loud.
if(DEFINED LINT)
  function(run_lint expect_rc out_var)
    execute_process(COMMAND "${LINT}" ${ARGN}
                    RESULT_VARIABLE rc
                    OUTPUT_VARIABLE out
                    ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expect_rc})
      message(FATAL_ERROR "streamflow_lint ${ARGN} exited ${rc} "
                          "(expected ${expect_rc})\nstdout:\n${out}\nstderr:\n${err}")
    endif()
    set(${out_var} "${out}" PARENT_SCOPE)
    set(${out_var}_err "${err}" PARENT_SCOPE)
  endfunction()

  run_lint(0 lint_help_out --help)
  if(NOT lint_help_out MATCHES "usage" OR NOT lint_help_out MATCHES "lint:allow")
    message(FATAL_ERROR "streamflow_lint --help output does not describe "
                        "usage and the lint:allow syntax:\n${lint_help_out}")
  endif()

  # Help-text audit against the flags the binary actually parses.
  if(DEFINED LINT_SOURCE)
    file(READ "${LINT_SOURCE}" lint_source)
    string(REGEX MATCHALL "a == \"(--[a-z-]+)\"" lint_flag_matches "${lint_source}")
    set(lint_flags "")
    foreach(match IN LISTS lint_flag_matches)
      string(REGEX REPLACE "a == \"(--[a-z-]+)\"" "\\1" flag "${match}")
      list(APPEND lint_flags "${flag}")
    endforeach()
    list(REMOVE_DUPLICATES lint_flags)
    list(LENGTH lint_flags lint_flag_count)
    if(lint_flag_count LESS 3)
      message(FATAL_ERROR "lint flag audit found only ${lint_flag_count} "
                          "parsed flags in ${LINT_SOURCE} — extraction regex broken?")
    endif()
    foreach(flag IN LISTS lint_flags)
      if(NOT lint_help_out MATCHES "${flag}")
        message(FATAL_ERROR "parsed flag '${flag}' is not documented in "
                            "streamflow_lint --help:\n${lint_help_out}")
      endif()
    endforeach()
  endif()

  # --list-rules must enumerate the full rule table; test_lint proves the
  # same ids can actually fire.
  run_lint(0 lint_rules_out --list-rules)
  foreach(rule wall-clock ambient-entropy float-type unordered-iter
          header-pragma-once using-namespace-header raw-mutex allow-syntax)
    if(NOT lint_rules_out MATCHES "${rule}")
      message(FATAL_ERROR "--list-rules is missing rule '${rule}':\n${lint_rules_out}")
    endif()
  endforeach()

  # Unknown flags must exit 2 and name the offender on stderr.
  run_lint(2 lint_bad_out --definitely-not-a-flag)
  if(NOT lint_bad_out_err MATCHES "unknown flag '--definitely-not-a-flag'")
    message(FATAL_ERROR "streamflow_lint --definitely-not-a-flag did not "
                        "report the unknown flag\nstderr:\n${lint_bad_out_err}")
  endif()
endif()

message(STATUS "cli_smoke passed")
