#include "maxplus/deterministic.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "model/random_instance.hpp"
#include "sim/teg_sim.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

TEST(Deterministic, SingleStageSingleProcessor) {
  const Mapping mapping = testing::chain_mapping({2.0}, {});
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    const auto r = deterministic_throughput(mapping, model);
    EXPECT_DOUBLE_EQ(r.throughput, 0.5);
    EXPECT_TRUE(r.critical_resource_attained);
  }
}

TEST(Deterministic, ChainWithoutReplicationMatchesCriticalResource) {
  // §2.3: without replication the throughput is dictated by the critical
  // resource in both models.
  const Mapping mapping = testing::chain_mapping({2.0, 4.0, 3.0}, {1.0, 5.0});
  const auto overlap =
      deterministic_throughput(mapping, ExecutionModel::kOverlap);
  // Overlap bottleneck: max(comp, comm) = 5.
  EXPECT_NEAR(overlap.throughput, 1.0 / 5.0, 1e-12);
  EXPECT_TRUE(overlap.critical_resource_attained);

  const auto strict =
      deterministic_throughput(mapping, ExecutionModel::kStrict);
  // Strict bottleneck: P1 does 1 + 4 + 5 = 10 per data set.
  EXPECT_NEAR(strict.throughput, 1.0 / 10.0, 1e-12);
  EXPECT_TRUE(strict.critical_resource_attained);
}

TEST(Deterministic, ReplicationMultipliesComputeThroughput) {
  // Stage 2 replicated k times with negligible comms: throughput = k / comp.
  for (std::size_t k : {2u, 3u, 5u}) {
    Application app = Application::uniform(3);
    std::vector<double> speeds(2 + k, 1.0);
    speeds[0] = 1e6;             // stage 1 negligible
    speeds[1 + k] = 1e6;         // stage 3 negligible
    for (std::size_t i = 0; i < k; ++i) speeds[1 + i] = 0.25;  // comp 4
    Platform platform = Platform::fully_connected(speeds, 1e6);
    std::vector<std::size_t> mid(k);
    for (std::size_t i = 0; i < k; ++i) mid[i] = 1 + i;
    Mapping mapping(app, platform, {{0}, mid, {1 + k}});
    const auto r = deterministic_throughput(mapping, ExecutionModel::kOverlap);
    EXPECT_NEAR(r.throughput, static_cast<double>(k) / 4.0, 1e-9);
  }
}

TEST(Deterministic, RoundRobinPacedBySlowestReplica) {
  // §2.2: a fast replica of a MIDDLE stage is held back by the slowest one,
  // because the downstream stage collects results in round-robin order.
  Application app = Application::uniform(3);
  Platform platform =
      Platform::fully_connected({1e6, 1.0, 0.25, 1e6}, 1e6);
  // Stage 2 on P1 (comp 1) and P2 (comp 4).
  Mapping mapping(app, platform, {{0}, {1, 2}, {3}});
  const auto r = deterministic_throughput(mapping, ExecutionModel::kOverlap);
  // Period per data set = 4/2 = 2 (not (1+4)/2): the slow replica paces.
  EXPECT_NEAR(r.throughput, 0.5, 1e-6);
  EXPECT_TRUE(r.critical_resource_attained);
}

TEST(Deterministic, ReplicatedLastStageSumsIndependentRates) {
  // A replicated LAST stage has no downstream round-robin collector: each
  // replica completes its own rows at its own pace, so the rates add
  // (1/1 + 1/4 here), unlike the middle-stage case above.
  Application app = Application::uniform(2);
  Platform platform({1e6, 1.0, 0.25});
  platform.set_bandwidth(0, 1, 1e6);
  platform.set_bandwidth(0, 2, 1e6);
  Mapping mapping(app, platform, {{0}, {1, 2}});
  const auto r = deterministic_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(r.throughput, 1.25, 1e-6);
  // The fast row completes every 2 time units per firing... the slowest row
  // is paced by P2's own cycle: 4 per firing.
  EXPECT_NEAR(r.bottleneck_transition_period, 4.0, 1e-9);
}

TEST(Deterministic, HomogeneousCommPatternFlow) {
  // Single u x v homogeneous communication: deterministic flow is
  // min(u, v) / d (the §6 discussion's min(u_i, v_i) lambda_i).
  for (const auto& [u, v] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 3}, {3, 2}, {4, 3}, {1, 5}, {5, 1}, {3, 3}}) {
    const double d = 2.0;
    const Mapping mapping = testing::single_comm_mapping(u, v, d);
    const auto r = deterministic_throughput(mapping, ExecutionModel::kOverlap);
    EXPECT_NEAR(r.throughput, static_cast<double>(std::min(u, v)) / d, 1e-6)
        << "u=" << u << " v=" << v;
  }
}

TEST(Deterministic, StrictNeverFasterThanOverlap) {
  Prng prng(2025);
  RandomInstanceOptions options;
  options.num_stages = 4;
  options.num_processors = 9;
  options.max_paths = 36;
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    const double overlap =
        deterministic_throughput(mapping, ExecutionModel::kOverlap).throughput;
    const double strict =
        deterministic_throughput(mapping, ExecutionModel::kStrict).throughput;
    EXPECT_LE(strict, overlap * (1.0 + 1e-9)) << mapping.to_string();
  }
}

TEST(Deterministic, ThroughputNeverExceedsCriticalResourceBound) {
  Prng prng(31415);
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 10;
  options.max_paths = 48;
  for (int trial = 0; trial < 15; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    for (const ExecutionModel model :
         {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
      const auto r = deterministic_throughput(mapping, model);
      // The critical-resource bound provably caps the in-order rate; the
      // summed completion rate may exceed it when output rows decouple.
      EXPECT_LE(r.in_order_throughput,
                r.critical_resource_throughput * (1.0 + 1e-9))
          << mapping.to_string() << " " << to_string(model);
      EXPECT_LE(r.in_order_throughput, r.throughput * (1.0 + 1e-9));
    }
  }
}

class DeterministicSimAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// The deterministic TEG simulation must reproduce the analytical period.
TEST_P(DeterministicSimAgreementTest, SimulationMatchesMcr) {
  Prng prng(GetParam());
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 8;
  options.max_paths = 24;
  const Mapping mapping = random_instance(options, prng);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    const auto analytic = deterministic_throughput(mapping, model);
    const TimedEventGraph g = build_tpn(mapping, model);
    TegSimOptions sim_options;
    sim_options.rounds = 600;
    const auto sim = simulate_teg_deterministic(g, sim_options);
    EXPECT_LT(relative_difference(analytic.throughput, sim.throughput), 5e-3)
        << mapping.to_string() << " " << to_string(model);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, DeterministicSimAgreementTest,
                         ::testing::Range<std::uint64_t>(100, 110));

}  // namespace
}  // namespace streamflow
