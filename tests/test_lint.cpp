// Mutation-style coverage for the streamflow_lint rule engine.
//
// The contract under test: every rule in lint::rules() can actually fire —
// proven by replaying the planted-violation fixtures under
// tests/fixtures/lint/ (which the tree scan deliberately skips) — and every
// firing site is silenced by a well-formed `lint:allow(<rule>): <reason>`
// comment. Policy carve-outs (bench/ wall-clock exemption, src/-only float
// ban, header-only rules, the annotated mutex wrapper itself) are pinned
// here too, so a refactor of the engine cannot silently widen or narrow a
// rule.
#include "lint_rules.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace streamflow::lint {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(STREAMFLOW_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Lints fixture `name` as if it lived at repo-relative `policy_path`
/// (the path prefix and extension drive which rules apply), reduced to
/// the (rule, line) pairs the assertions pin.
using Fired = std::vector<std::pair<std::string, std::size_t>>;

Fired fire(const std::string& policy_path, const std::string& content) {
  Fired fired;
  for (const Violation& v : lint_content(policy_path, content)) {
    EXPECT_EQ(v.path, policy_path);
    EXPECT_FALSE(v.message.empty());
    fired.emplace_back(v.rule, v.line);
  }
  return fired;
}

Fired fire_fixture(const std::string& policy_path, const std::string& name) {
  return fire(policy_path, read_fixture(name));
}

TEST(Lint, WallClockFiresAndAllowSuppresses) {
  const Fired fired = fire_fixture("src/engine/wall_clock.cpp", "wall_clock.cpp");
  const Fired expected = {{"wall-clock", 5}, {"wall-clock", 9}};
  EXPECT_EQ(fired, expected);
}

TEST(Lint, WallClockExemptUnderBench) {
  EXPECT_TRUE(fire_fixture("bench/wall_clock.cpp", "wall_clock.cpp").empty());
}

TEST(Lint, AmbientEntropyFiresEverywhereIncludingStdQualifiedRand) {
  const Fired expected = {{"ambient-entropy", 5}, {"ambient-entropy", 7}};
  EXPECT_EQ(fire_fixture("src/core/ambient_entropy.cpp", "ambient_entropy.cpp"),
            expected);
  // No bench exemption for entropy: timing may be ambient, randomness never.
  EXPECT_EQ(fire_fixture("bench/ambient_entropy.cpp", "ambient_entropy.cpp"),
            expected);
}

TEST(Lint, FloatTypeFiresOnlyUnderSrc) {
  const Fired expected = {{"float-type", 4}};
  EXPECT_EQ(fire_fixture("src/core/float_type.cpp", "float_type.cpp"), expected);
  EXPECT_TRUE(fire_fixture("tools/float_type.cpp", "float_type.cpp").empty());
}

TEST(Lint, UnorderedIterFiresAndJustificationSuppresses) {
  const Fired fired =
      fire_fixture("src/markov/unordered_iter.cpp", "unordered_iter.cpp");
  const Fired expected = {{"unordered-iter", 9}, {"unordered-iter", 10}};
  EXPECT_EQ(fired, expected);
}

TEST(Lint, HeaderPragmaOnceFiresAtLineOne) {
  const Fired fired =
      fire_fixture("src/common/header_pragma_once.hpp", "header_pragma_once.hpp");
  const Fired expected = {{"header-pragma-once", 1}};
  EXPECT_EQ(fired, expected);
}

TEST(Lint, HeaderPragmaOnceFileLevelAllowSuppresses) {
  EXPECT_TRUE(fire_fixture("src/common/header_pragma_once_allowed.hpp",
                           "header_pragma_once_allowed.hpp")
                  .empty());
}

TEST(Lint, UsingNamespaceFiresOnlyInHeaders) {
  const Fired fired =
      fire_fixture("src/core/using_namespace.hpp", "using_namespace.hpp");
  const Fired expected = {{"using-namespace-header", 6}};
  EXPECT_EQ(fired, expected);
  // The very same directive in a translation unit is legal.
  EXPECT_TRUE(
      fire_fixture("src/core/using_namespace.cpp", "using_namespace.hpp").empty());
}

TEST(Lint, RawMutexFiresAndAllowSuppresses) {
  const Fired fired = fire_fixture("src/engine/raw_mutex.cpp", "raw_mutex.cpp");
  const Fired expected = {{"raw-mutex", 5}, {"raw-mutex", 6}};
  EXPECT_EQ(fired, expected);
}

TEST(Lint, RawMutexExemptInsideTheAnnotatedWrapper) {
  // common/mutex.hpp is the one place allowed to touch the raw primitive.
  // The fixture has no #pragma once, so only that rule may fire.
  const Fired fired = fire_fixture("src/common/mutex.hpp", "raw_mutex.cpp");
  const Fired expected = {{"header-pragma-once", 1}};
  EXPECT_EQ(fired, expected);
}

TEST(Lint, AllowSyntaxFiresOnUnknownRuleAndMissingReason) {
  const Fired fired =
      fire_fixture("tools/allow_syntax.cpp", "allow_syntax.cpp");
  const Fired expected = {{"allow-syntax", 4}, {"allow-syntax", 5}};
  EXPECT_EQ(fired, expected);
}

TEST(Lint, TokensInCommentsAndStringsNeverFire) {
  const std::string content =
      "#pragma once\n"
      "// std::mutex std::random_device float std::time( in prose\n"
      "inline const char* kDoc = \"std::rand() /dev/urandom float\";\n"
      "/* using namespace std; std::chrono::system_clock */\n";
  EXPECT_TRUE(fire("src/core/doc.hpp", content).empty());
}

TEST(Lint, RulesTableIsCompleteAndQueriable) {
  const std::set<std::string> expected = {
      "wall-clock",        "ambient-entropy",        "float-type",
      "unordered-iter",    "header-pragma-once",     "using-namespace-header",
      "raw-mutex",         "allow-syntax",
  };
  std::set<std::string> listed;
  for (const RuleInfo& rule : rules()) {
    EXPECT_FALSE(rule.summary.empty()) << rule.id;
    EXPECT_TRUE(is_known_rule(rule.id));
    listed.insert(rule.id);
  }
  EXPECT_EQ(listed, expected);
  EXPECT_FALSE(is_known_rule("not-a-rule"));
}

// Mutation-style completeness: every rule the engine advertises is proven
// able to fire by at least one fixture. A new rule added without a planted
// fixture fails here.
TEST(Lint, EveryAdvertisedRuleFiresOnSomeFixture) {
  const std::vector<std::pair<std::string, std::string>> runs = {
      {"src/engine/wall_clock.cpp", "wall_clock.cpp"},
      {"src/core/ambient_entropy.cpp", "ambient_entropy.cpp"},
      {"src/core/float_type.cpp", "float_type.cpp"},
      {"src/markov/unordered_iter.cpp", "unordered_iter.cpp"},
      {"src/common/header_pragma_once.hpp", "header_pragma_once.hpp"},
      {"src/core/using_namespace.hpp", "using_namespace.hpp"},
      {"src/engine/raw_mutex.cpp", "raw_mutex.cpp"},
      {"tools/allow_syntax.cpp", "allow_syntax.cpp"},
  };
  std::set<std::string> fired;
  for (const auto& [policy_path, fixture] : runs)
    for (const auto& [rule, line] : fire_fixture(policy_path, fixture))
      fired.insert(rule);
  std::set<std::string> advertised;
  for (const RuleInfo& rule : rules()) advertised.insert(rule.id);
  EXPECT_EQ(fired, advertised);
}

TEST(Lint, LintContentIsDeterministic) {
  const std::string content = read_fixture("unordered_iter.cpp");
  const Fired first = fire("src/a.cpp", content);
  const Fired second = fire("src/a.cpp", content);
  EXPECT_EQ(first, second);
  EXPECT_FALSE(first.empty());
}

}  // namespace
}  // namespace streamflow::lint
