// parse_distribution round trips, malformed-spec rejection, and cross-seed
// determinism of the sample streams (the reproducibility contract of
// common/prng.hpp carried up through dist/).
#include "dist/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/prng.hpp"

namespace streamflow {
namespace {

const char* const kAllFamilies[] = {
    "const:3.5",        "exp:0.5",          "expmean:2.5",
    "uniform:1,3",      "gauss:10,2",       "gamma:2,1.5",
    "gamma:0.5,2",      "beta:2,2,10",      "weibull:1.5,2",
    "weibull:0.8,1",    "lognormal:0,0.5",  "pareto:3,2",
    "hyperexp:0.3,2,0.5"};

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, SpecReconstructsTheSameLaw) {
  const DistributionPtr law = parse_distribution(GetParam());
  const DistributionPtr copy = parse_distribution(law->spec());
  EXPECT_EQ(copy->name(), law->name());
  EXPECT_EQ(copy->spec(), law->spec());
  EXPECT_DOUBLE_EQ(copy->mean(), law->mean());
  EXPECT_DOUBLE_EQ(copy->variance(), law->variance());
  EXPECT_EQ(copy->is_nbue(), law->is_nbue());
  // The reconstructed law must also produce the identical sample stream.
  Prng a(99), b(99);
  for (int i = 0; i < 200; ++i) {
    ASSERT_DOUBLE_EQ(copy->sample(a), law->sample(b)) << GetParam();
  }
}

TEST_P(RoundTripTest, WithMeanSurvivesTheRoundTrip) {
  const DistributionPtr law = parse_distribution(GetParam());
  const DistributionPtr scaled = law->with_mean(4.0);
  EXPECT_NEAR(scaled->mean(), 4.0, 1e-9);
  const DistributionPtr reparsed = parse_distribution(scaled->spec());
  EXPECT_NEAR(reparsed->mean(), 4.0, 1e-9);
  EXPECT_EQ(reparsed->is_nbue(), law->is_nbue());
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, RoundTripTest,
                         ::testing::ValuesIn(kAllFamilies));

TEST(ParseDistribution, MalformedSpecsThrow) {
  const char* const bad[] = {
      "",                 // empty
      "const",            // missing colon
      ":1",               // missing family
      "exp:",             // missing parameter
      "exp:1,",           // trailing comma -> empty parameter
      "exp:1 2",          // junk after the number
      "exp:1:2",          // second colon folds into the parameter
      "gamma:1",          // arity too low
      "gamma:1,2,3",      // arity too high
      "beta:1,2",         // arity too low
      "hyperexp:0.5,1",   // arity too low
      "weibull:abc,1",    // not a number
      "gauss:10,nan",     // NaN is rejected
      "pareto:1,1",       // shape 1 has infinite mean
      "pareto:2,-1",      // negative minimum
      "hyperexp:1.5,1,1", // probability outside [0,1]
      "uniform:-1,1",     // negative support
      "gauss:-50,1",      // negligible mass above zero
      "nope:1",           // unknown family
  };
  for (const char* spec : bad) {
    EXPECT_THROW(parse_distribution(spec), InvalidArgument) << spec;
  }
}

TEST(ParseDistribution, ExpAndExpmeanAreReciprocal) {
  EXPECT_NEAR(parse_distribution("exp:0.25")->mean(), 4.0, 1e-12);
  EXPECT_NEAR(parse_distribution("expmean:4")->mean(), 4.0, 1e-12);
  // Same law, so identical streams from identical seeds.
  Prng a(5), b(5);
  const DistributionPtr rate = parse_distribution("exp:0.25");
  const DistributionPtr mean = parse_distribution("expmean:4");
  for (int i = 0; i < 100; ++i) {
    ASSERT_DOUBLE_EQ(rate->sample(a), mean->sample(b));
  }
}

class DeterminismTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismTest, SampleStreamDependsOnlyOnTheSeed) {
  const DistributionPtr law = parse_distribution(GetParam());
  for (const std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{0xDEAD},
                                   std::uint64_t{1} << 62}) {
    Prng a(seed), b(seed);
    for (int i = 0; i < 500; ++i) {
      ASSERT_DOUBLE_EQ(law->sample(a), law->sample(b))
          << GetParam() << " seed " << seed << " draw " << i;
    }
  }
}

TEST_P(DeterminismTest, DifferentSeedsDecorrelateTheStream) {
  const DistributionPtr law = parse_distribution(GetParam());
  if (law->variance() == 0.0) return;  // constants are seed independent
  Prng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (law->sample(a) != law->sample(b)) ++differing;
  }
  EXPECT_GT(differing, 90) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, DeterminismTest,
                         ::testing::ValuesIn(kAllFamilies));

TEST(Distributions, Cv2MatchesMoments) {
  EXPECT_DOUBLE_EQ(parse_distribution("const:2")->cv2(), 0.0);
  EXPECT_NEAR(parse_distribution("exp:0.5")->cv2(), 1.0, 1e-12);
  EXPECT_NEAR(parse_distribution("gamma:4,1")->cv2(), 0.25, 1e-12);
  // Rescaling never changes the squared coefficient of variation.
  const DistributionPtr law = parse_distribution("weibull:1.5,2");
  EXPECT_NEAR(law->with_mean(9.0)->cv2(), law->cv2(), 1e-12);
}

}  // namespace
}  // namespace streamflow
