// Replay test over the checked-in corpus fixtures (tests/fixtures/
// s0..s14.scenario — seed-1 corpus indices 0..14, three scenarios per
// regime, emitted by `streamflow_cli fuzz --seed 1 --count 15
// --emit-corpus`). Pins three things:
//   * the fixtures parse and are byte-stable (file == re-emitted text), so
//     the on-disk corpus format cannot drift silently;
//   * each fixture still equals the generator's draw for (seed 1, id) —
//     regenerating the corpus is a no-op until the generator changes, and a
//     generator change shows up as a fixture diff in review;
//   * the differential verdict of every fixture: all four checks PASS, with
//     exactly one principled exception (the N.B.U.E. sandwich is SKIP for
//     non-N.B.U.E. laws). Statuses are pinned, floats are not — the
//     verdicts survive tolerance retuning.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "fuzz/diff_harness.hpp"

#ifndef STREAMFLOW_FIXTURE_DIR
#error "CMake must define STREAMFLOW_FIXTURE_DIR for test_fuzz_replay"
#endif

namespace streamflow {
namespace {

constexpr std::size_t kNumFixtures = 15;

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot open fixture " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::filesystem::path fixture_path(std::size_t k) {
  return std::filesystem::path(STREAMFLOW_FIXTURE_DIR) /
         ("s" + std::to_string(k) + ".scenario");
}

TEST(FuzzReplay, FixturesAreByteStableAndMatchTheGenerator) {
  std::vector<bool> regime_seen(kNumRegimes, false);
  for (std::size_t k = 0; k < kNumFixtures; ++k) {
    const std::string text = read_file(fixture_path(k));
    ASSERT_FALSE(text.empty());
    const Scenario scenario = scenario_from_string(text);
    EXPECT_EQ(scenario.id, k);
    regime_seen[static_cast<std::size_t>(scenario.regime)] = true;
    // Byte-stable: parsing and re-emitting reproduces the file exactly.
    EXPECT_EQ(scenario_to_string(scenario), text) << fixture_path(k);
    // Still the generator's draw: the corpus is reproducible from (1, k).
    CorpusOptions corpus;
    corpus.seed = 1;
    EXPECT_EQ(scenario_to_string(draw_scenario(corpus, k)), text)
        << "fixture " << k << " no longer matches draw_scenario(seed 1, " << k
        << ") — regenerate tests/fixtures with --emit-corpus and review the "
           "generator change";
  }
  // 15 fixtures = exactly three per regime.
  for (std::size_t r = 0; r < kNumRegimes; ++r) {
    EXPECT_TRUE(regime_seen[r]) << to_string(static_cast<ScenarioRegime>(r));
  }
}

TEST(FuzzReplay, PinnedVerdicts) {
  HarnessOptions options;
  options.replications = 4;
  options.data_sets = 1500;
  for (std::size_t k = 0; k < kNumFixtures; ++k) {
    const Scenario scenario =
        scenario_from_string(read_file(fixture_path(k)));
    const ScenarioVerdict verdict = check_scenario(scenario, options);
    EXPECT_EQ(verdict.checks[0].status, CheckStatus::kPass)
        << scenario.label() << ": " << verdict.checks[0].detail;
    const CheckStatus expected_sandwich =
        scenario.law->is_nbue() ? CheckStatus::kPass : CheckStatus::kSkip;
    EXPECT_EQ(verdict.checks[1].status, expected_sandwich)
        << scenario.label() << ": " << verdict.checks[1].detail;
    EXPECT_EQ(verdict.checks[2].status, CheckStatus::kPass)
        << scenario.label() << ": " << verdict.checks[2].detail;
    EXPECT_EQ(verdict.checks[3].status, CheckStatus::kPass)
        << scenario.label() << ": " << verdict.checks[3].detail;
    EXPECT_FALSE(verdict.diverged());
  }
}

}  // namespace
}  // namespace streamflow
