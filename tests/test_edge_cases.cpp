// Boundary shapes: one-stage applications, zero-size files, single-processor
// platforms, extreme heterogeneity — places where index arithmetic and
// degenerate patterns tend to break.
#include <gtest/gtest.h>

#include <limits>

#include "core/analyzer.hpp"
#include "maxplus/deterministic.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/teg_sim.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"

namespace streamflow {
namespace {

TEST(EdgeCases, OneStageOneProcessor) {
  Application app = Application::uniform(1, 4.0);
  Platform platform({2.0});
  Mapping mapping(app, platform, {{0}});
  EXPECT_EQ(mapping.num_paths(), 1);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    EXPECT_NEAR(deterministic_throughput(mapping, model).throughput, 0.5,
                1e-12);
    EXPECT_NEAR(exponential_throughput(mapping, model).throughput, 0.5,
                1e-12);
  }
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kStrict);
  EXPECT_EQ(g.num_transitions(), 1u);
  EXPECT_EQ(g.num_places(), 1u);  // one marked self-loop
}

TEST(EdgeCases, OneStageReplicatedEverywhere) {
  // A single stage replicated on every processor: pure parallel farm.
  Application app = Application::uniform(1, 6.0);
  Platform platform({1.0, 2.0, 3.0});
  Mapping mapping(app, platform, {{0, 1, 2}});
  // Completion rates add: 1/6 + 2/6 + 3/6 = 1.
  const auto det = deterministic_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(det.throughput, 1.0, 1e-9);
  // In-order delivery is paced by the slowest replica: 3 * (1/6).
  EXPECT_NEAR(det.in_order_throughput, 0.5, 1e-9);
  const auto exp = exponential_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(exp.throughput, 1.0, 1e-9);
}

TEST(EdgeCases, ZeroSizeFileMeansFreeCommunication) {
  // A zero-byte file needs no link and no transfer time; the deterministic
  // analysis and the column method both treat the communication as free.
  Application app({2.0, 3.0}, {0.0});
  Platform platform({1.0, 1.0});  // no links defined: legal for empty files
  Mapping mapping(app, platform, {{0}, {1}});
  EXPECT_DOUBLE_EQ(mapping.comm_time(0, 1), 0.0);
  const auto det = deterministic_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(det.throughput, 1.0 / 3.0, 1e-12);
  // Strict: the cycle still sums to comp + 0 + 0.
  const auto strict =
      deterministic_throughput(mapping, ExecutionModel::kStrict);
  EXPECT_NEAR(strict.throughput, 1.0 / 3.0, 1e-12);
}

TEST(EdgeCases, GeneralCtmcRejectsZeroDurations) {
  // Exponential firing with an infinite rate is not representable in the
  // reachability CTMC: the general method must refuse cleanly.
  Application app({2.0, 3.0}, {0.0});
  Platform platform({1.0, 1.0});
  Mapping mapping(app, platform, {{0}, {1}});
  ExponentialOptions options;
  options.method = ExponentialMethod::kGeneralCtmc;
  EXPECT_THROW(
      exponential_throughput(mapping, ExecutionModel::kStrict, options),
      InvalidArgument);
}

TEST(EdgeCases, ExtremeHeterogeneityStaysFinite) {
  // 10^6 speed ratio across a replicated stage: analyses stay finite and
  // ordered.
  Application app = Application::uniform(2);
  Platform platform({1.0, 1e6, 1e-3});
  platform.set_bandwidth(0, 1, 1e3);
  platform.set_bandwidth(0, 2, 1e3);
  Mapping mapping(app, platform, {{0}, {1, 2}});
  const auto det = deterministic_throughput(mapping, ExecutionModel::kOverlap);
  const auto exp = exponential_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_TRUE(std::isfinite(det.throughput));
  EXPECT_TRUE(std::isfinite(exp.throughput));
  EXPECT_LE(exp.throughput, det.throughput * (1.0 + 1e-9));
  EXPECT_GT(det.in_order_throughput, 0.0);
}

TEST(EdgeCases, TwoStageFullyReplicatedEqualTeams) {
  // u = v teams: gcd = u, all patterns 1x1, so exponential == deterministic
  // exactly (each data set crosses one link).
  const Mapping mapping = testing::single_comm_mapping(4, 4, 2.0);
  const auto det = deterministic_throughput(mapping, ExecutionModel::kOverlap);
  const auto exp = exponential_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(det.throughput, exp.throughput, 1e-9 * det.throughput);
  EXPECT_NEAR(det.throughput, 4.0 / 2.0, 1e-6);
}

TEST(EdgeCases, LongChainManyStages) {
  // 24 stages without replication: analyses stay exact and cheap.
  std::vector<double> comps(24), comms(23);
  for (std::size_t i = 0; i < 24; ++i) comps[i] = 1.0 + 0.1 * static_cast<double>(i);
  for (std::size_t i = 0; i < 23; ++i) comms[i] = 0.3;
  const Mapping mapping = testing::chain_mapping(comps, comms);
  const auto det = deterministic_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(det.throughput, 1.0 / comps.back(), 1e-9);
  const auto exp = exponential_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(exp.throughput, 1.0 / comps.back(), 1e-9);
}

TEST(EdgeCases, SimOptionsRejectOutOfRangeWarmupFraction) {
  // warmup_fraction must lie in [0, 1). The checks are written so NaN also
  // fails (every comparison with NaN is false), and validation runs on every
  // entry point — including the injected-Prng overloads used by the engine.
  const double bad_fractions[] = {1.0, 1.5, -0.1,
                                  std::numeric_limits<double>::quiet_NaN(),
                                  std::numeric_limits<double>::infinity()};
  for (const double fraction : bad_fractions) {
    TegSimOptions teg;
    teg.warmup_fraction = fraction;
    EXPECT_THROW(teg.validate(), InvalidArgument) << fraction;
    PipelineSimOptions pipe;
    pipe.warmup_fraction = fraction;
    EXPECT_THROW(pipe.validate(), InvalidArgument) << fraction;
  }
  // Boundary values that must stay legal.
  TegSimOptions teg_ok;
  teg_ok.warmup_fraction = 0.0;
  EXPECT_NO_THROW(teg_ok.validate());
  PipelineSimOptions pipe_ok;
  pipe_ok.warmup_fraction = 0.999;
  EXPECT_NO_THROW(pipe_ok.validate());
}

TEST(EdgeCases, InjectedPrngOverloadsValidateOptions) {
  const Mapping mapping = testing::chain_mapping({1.0, 1.0}, {0.5});
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  Prng prng(1);
  PipelineSimOptions pipe;
  pipe.warmup_fraction = -0.25;
  EXPECT_THROW(
      simulate_pipeline(mapping, ExecutionModel::kOverlap, det, prng, pipe),
      InvalidArgument);
  TegSimOptions teg;
  teg.warmup_fraction = 2.0;
  EXPECT_THROW(
      simulate_teg(g, transition_laws(g, det), prng, teg), InvalidArgument);
}

TEST(EdgeCases, SimulatorsHandleDegenerateShapes) {
  // One stage, one processor; and one stage replicated: both simulators run
  // and agree with the analyses.
  {
    Application app = Application::uniform(1, 2.0);
    Platform platform({1.0});
    Mapping mapping(app, platform, {{0}});
    PipelineSimOptions options;
    options.data_sets = 10'000;
    const auto sim = simulate_pipeline(
        mapping, ExecutionModel::kStrict,
        StochasticTiming::exponential(mapping), options);
    EXPECT_NEAR(sim.throughput, 0.5, 0.02);
  }
  {
    Application app = Application::uniform(1, 2.0);
    Platform platform({1.0, 1.0, 1.0});
    Mapping mapping(app, platform, {{0, 1, 2}});
    const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
    TegSimOptions options;
    options.rounds = 5'000;
    const auto sim = simulate_teg(
        g, transition_laws(g, StochasticTiming::exponential(mapping)),
        options);
    EXPECT_NEAR(sim.throughput, 1.5, 0.05);
  }
}

}  // namespace
}  // namespace streamflow
