#include "common/prng.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"

namespace streamflow {
namespace {

TEST(Prng, DeterministicAcrossInstances) {
  Prng a(12345), b(12345);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (a() == b()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Prng, Uniform01MomentsAndRange) {
  Prng prng(7);
  RunningStats stats;
  for (int i = 0; i < 200'000; ++i) {
    const double x = prng.uniform01();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    stats.add(x);
  }
  EXPECT_NEAR(stats.mean(), 0.5, 0.005);
  EXPECT_NEAR(stats.variance(), 1.0 / 12.0, 0.005);
}

TEST(Prng, UniformIndexIsUnbiased) {
  Prng prng(11);
  constexpr std::uint64_t n = 7;
  std::vector<int> counts(n, 0);
  constexpr int draws = 140'000;
  for (int i = 0; i < draws; ++i) ++counts[prng.uniform_index(n)];
  for (std::uint64_t k = 0; k < n; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]), draws / 7.0,
                5.0 * std::sqrt(draws / 7.0));
  }
}

TEST(Prng, ExponentialMoments) {
  Prng prng(3);
  const double lambda = 2.5;
  RunningStats stats;
  for (int i = 0; i < 400'000; ++i) stats.add(prng.exponential(lambda));
  EXPECT_NEAR(stats.mean(), 1.0 / lambda, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0 / (lambda * lambda), 0.01);
}

TEST(Prng, NormalMoments) {
  Prng prng(5);
  RunningStats stats;
  for (int i = 0; i < 400'000; ++i) stats.add(prng.normal01());
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.variance(), 1.0, 0.02);
}

class GammaMomentsTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaMomentsTest, MeanAndVarianceMatchShape) {
  const double shape = GetParam();
  Prng prng(17);
  RunningStats stats;
  for (int i = 0; i < 300'000; ++i) stats.add(prng.gamma(shape));
  EXPECT_NEAR(stats.mean(), shape, 0.05 * std::max(shape, 0.2));
  EXPECT_NEAR(stats.variance(), shape, 0.08 * std::max(shape, 0.3));
}

INSTANTIATE_TEST_SUITE_P(Shapes, GammaMomentsTest,
                         ::testing::Values(0.25, 0.5, 1.0, 2.0, 5.0));

TEST(Prng, BetaMoments) {
  Prng prng(23);
  const double alpha = 2.0, beta = 3.0;
  RunningStats stats;
  for (int i = 0; i < 300'000; ++i) stats.add(prng.beta(alpha, beta));
  EXPECT_NEAR(stats.mean(), alpha / (alpha + beta), 0.005);
  const double var = alpha * beta / ((alpha + beta) * (alpha + beta) *
                                     (alpha + beta + 1.0));
  EXPECT_NEAR(stats.variance(), var, 0.005);
}

TEST(Prng, SplitProducesIndependentStreams) {
  Prng parent(99);
  Prng c1 = parent.split(0);
  Prng c2 = parent.split(1);
  int same = 0;
  for (int i = 0; i < 1000; ++i)
    if (c1() == c2()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Prng, InvalidArguments) {
  Prng prng(1);
  EXPECT_THROW(prng.exponential(0.0), InvalidArgument);
  EXPECT_THROW(prng.exponential(-1.0), InvalidArgument);
  EXPECT_THROW(prng.gamma(0.0), InvalidArgument);
  EXPECT_THROW(prng.uniform(2.0, 1.0), InvalidArgument);
  EXPECT_THROW(prng.uniform_index(0), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
