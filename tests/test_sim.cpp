#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "core/analyzer.hpp"
#include "maxplus/deterministic.hpp"
#include "model/random_instance.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/teg_sim.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"

namespace streamflow {
namespace {

class PipelineVsMcrTest : public ::testing::TestWithParam<std::uint64_t> {};

// The direct pipeline simulator with constant times must reproduce the
// analytical deterministic throughput (it is an independent implementation
// of the same semantics).
TEST_P(PipelineVsMcrTest, DeterministicPipelineMatchesAnalysis) {
  Prng prng(GetParam());
  RandomInstanceOptions instance;
  instance.num_stages = 4;
  instance.num_processors = 10;
  instance.max_paths = 40;
  const Mapping mapping = random_instance(instance, prng);
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    const double analytic = deterministic_throughput(mapping, model).throughput;
    PipelineSimOptions options;
    options.data_sets = 20'000;
    const auto sim = simulate_pipeline(mapping, model, det, options);
    EXPECT_LT(relative_difference(analytic, sim.throughput), 5e-3)
        << mapping.to_string() << " " << to_string(model);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, PipelineVsMcrTest,
                         ::testing::Range<std::uint64_t>(500, 510));

class FidelityTest : public ::testing::TestWithParam<std::uint64_t> {};

// §7.4 fidelity: the TPN-based simulator and the direct pipeline simulator
// agree under exponential times (independent implementations, same model).
TEST_P(FidelityTest, TegSimAgreesWithPipelineSim) {
  Prng prng(GetParam());
  RandomInstanceOptions instance;
  instance.num_stages = 3;
  instance.num_processors = 8;
  instance.max_paths = 24;
  const Mapping mapping = random_instance(instance, prng);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    const TimedEventGraph g = build_tpn(mapping, model);
    TegSimOptions teg_options;
    teg_options.rounds = 3000;
    const auto teg = simulate_teg(g, transition_laws(g, timing), teg_options);
    PipelineSimOptions pipe_options;
    pipe_options.data_sets = 60'000;
    pipe_options.seed = GetParam() + 1;
    const auto pipe = simulate_pipeline(mapping, model, timing, pipe_options);
    EXPECT_LT(relative_difference(teg.throughput, pipe.throughput), 0.05)
        << mapping.to_string() << " " << to_string(model);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, FidelityTest,
                         ::testing::Range<std::uint64_t>(600, 607));

TEST(PipelineSim, StrictNeverFasterThanOverlap) {
  Prng prng(888);
  RandomInstanceOptions instance;
  instance.num_stages = 3;
  instance.num_processors = 8;
  instance.max_paths = 24;
  for (int trial = 0; trial < 5; ++trial) {
    const Mapping mapping = random_instance(instance, prng);
    const StochasticTiming timing = StochasticTiming::exponential(mapping);
    PipelineSimOptions options;
    options.data_sets = 30'000;
    const auto overlap =
        simulate_pipeline(mapping, ExecutionModel::kOverlap, timing, options);
    const auto strict =
        simulate_pipeline(mapping, ExecutionModel::kStrict, timing, options);
    EXPECT_LE(strict.throughput, overlap.throughput * 1.02)
        << mapping.to_string();
  }
}

TEST(PipelineSim, BandwidthEfficiencyScalesCommBoundThroughput) {
  // A communication-bound chain: halving the effective bandwidth halves the
  // throughput.
  const Mapping mapping = testing::chain_mapping({0.01, 0.01}, {1.0});
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  PipelineSimOptions fast;
  fast.data_sets = 5'000;
  const auto full = simulate_pipeline(mapping, ExecutionModel::kOverlap, det,
                                      fast);
  PipelineSimOptions slow = fast;
  slow.bandwidth_efficiency = 0.5;
  const auto half = simulate_pipeline(mapping, ExecutionModel::kOverlap, det,
                                      slow);
  EXPECT_NEAR(half.throughput / full.throughput, 0.5, 0.01);
}

TEST(PipelineSim, WarmupZeroReproducesTotalTimeProtocol) {
  const Mapping mapping = testing::chain_mapping({1.0, 1.0}, {0.5});
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  PipelineSimOptions options;
  options.data_sets = 100;
  options.warmup_fraction = 0.0;
  const auto sim =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, det, options);
  EXPECT_EQ(sim.completed, 100);
  EXPECT_DOUBLE_EQ(sim.elapsed, sim.makespan);
  // Finite-horizon throughput is below the steady-state value (ramp-up).
  EXPECT_LT(sim.throughput, 1.0);
  EXPECT_GT(sim.throughput, 0.9);
}

TEST(PipelineSim, AssociatedOrderingOfTheorem8) {
  // Theorem 8: rho(det means) >= rho(associated) >= rho(iid with the same
  // marginals). In §6.2's model (works and sizes independent across
  // columns, scope = kPerStage) each data set materializes only one
  // resource per column, so the associated case coincides with the
  // independent one and the ordering holds with equality on the right.
  const Mapping mapping = testing::replicated_chain_mapping(2, 3, 2, 4.0, 2.0);
  const auto size_law = make_exponential_mean(1.0);

  PipelineSimOptions options;
  options.data_sets = 120'000;

  const double det =
      deterministic_throughput(mapping, ExecutionModel::kStrict).throughput;
  const auto associated = simulate_pipeline_associated(
      mapping, ExecutionModel::kStrict, *size_law, options,
      AssociationScope::kPerStage);
  const StochasticTiming iid =
      StochasticTiming::scaled(mapping, *size_law->with_mean(4.0));
  const auto independent =
      simulate_pipeline(mapping, ExecutionModel::kStrict, iid, options);

  EXPECT_GE(det * 1.01, associated.throughput);
  EXPECT_LT(relative_difference(associated.throughput, independent.throughput),
            0.03);
}

TEST(PipelineSim, PathWideCorrelationHurtsStrictThroughput) {
  // Extension beyond §6.2: when ONE size drives a data set's every time
  // along the path, each row's service block becomes icx-larger (perfectly
  // correlated sums have the largest variance), and the Strict throughput
  // drops below the independent case.
  const Mapping mapping = testing::replicated_chain_mapping(2, 3, 2, 4.0, 2.0);
  const auto size_law = make_exponential_mean(1.0);
  PipelineSimOptions options;
  options.data_sets = 120'000;
  const auto path_wide = simulate_pipeline_associated(
      mapping, ExecutionModel::kStrict, *size_law, options,
      AssociationScope::kPerDataSet);
  const StochasticTiming iid =
      StochasticTiming::scaled(mapping, *size_law->with_mean(4.0));
  const auto independent =
      simulate_pipeline(mapping, ExecutionModel::kStrict, iid, options);
  EXPECT_LT(path_wide.throughput, independent.throughput);
}

TEST(PipelineSim, PerStageAssociationDegeneratesToIndependent) {
  // With one independent multiplier per (stage, data set), each data set
  // touches one processor per stage and one link per file, so the
  // "association" is distributionally identical to the independent case.
  const Mapping mapping = testing::replicated_chain_mapping(2, 3, 2, 4.0, 2.0);
  const auto size_law = make_exponential_mean(1.0);
  PipelineSimOptions options;
  options.data_sets = 120'000;
  const auto per_stage = simulate_pipeline_associated(
      mapping, ExecutionModel::kOverlap, *size_law, options,
      AssociationScope::kPerStage);
  const StochasticTiming iid =
      StochasticTiming::scaled(mapping, *size_law->with_mean(4.0));
  const auto independent =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, iid, options);
  EXPECT_LT(relative_difference(per_stage.throughput, independent.throughput),
            0.03);
}

TEST(PipelineSim, OptionValidation) {
  const Mapping mapping = testing::chain_mapping({1.0}, {});
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  PipelineSimOptions bad;
  bad.data_sets = 1;
  EXPECT_THROW(
      simulate_pipeline(mapping, ExecutionModel::kOverlap, det, bad),
      InvalidArgument);
  bad = {};
  bad.warmup_fraction = 1.0;
  EXPECT_THROW(
      simulate_pipeline(mapping, ExecutionModel::kOverlap, det, bad),
      InvalidArgument);
  bad = {};
  bad.bandwidth_efficiency = 0.0;
  EXPECT_THROW(
      simulate_pipeline(mapping, ExecutionModel::kOverlap, det, bad),
      InvalidArgument);
}

TEST(TegSim, OptionValidation) {
  const Mapping mapping = testing::chain_mapping({1.0}, {});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  TegSimOptions bad;
  bad.rounds = 2;
  EXPECT_THROW(simulate_teg_deterministic(g, bad), InvalidArgument);
  bad = {};
  bad.warmup_fraction = -0.5;
  EXPECT_THROW(simulate_teg_deterministic(g, bad), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
