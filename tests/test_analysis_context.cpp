// AnalysisContext invariants: cached and incremental evaluations are
// bit-identical to the throwaway path, evaluate_move equals full
// re-evaluation for every move kind (feasible and infeasible alike), and
// the cache statistics are exact.
#include "core/analysis_context.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "core/analyzer.hpp"
#include "core/heuristics.hpp"
#include "model/random_instance.hpp"
#include "young/pattern_analysis.hpp"

namespace streamflow {
namespace {

/// Fully heterogeneous platform: distinct speeds and per-link bandwidths,
/// so every multi-link communication pattern needs a CTMC solve. The links
/// listed in `missing` are left unset (mappings using them are invalid).
Platform heterogeneous_platform(
    std::vector<double> speeds,
    const std::vector<std::pair<std::size_t, std::size_t>>& missing = {},
    std::uint64_t seed = 7) {
  const std::size_t m = speeds.size();
  Platform platform{std::move(speeds)};
  Prng prng(seed);
  for (std::size_t p = 0; p < m; ++p) {
    for (std::size_t q = p + 1; q < m; ++q) {
      const double bandwidth = 1.0 + 2.0 * prng.uniform01();
      if (std::find(missing.begin(), missing.end(), std::make_pair(p, q)) ==
          missing.end()) {
        platform.set_bandwidth(p, q, bandwidth);
      }
    }
  }
  return platform;
}

/// 4-stage pipeline with replications (2, 3, 1, 3) on 9 processors; the
/// platform lacks the (0, 7) link, so moves that pair them are infeasible.
Mapping base_instance() {
  Application app({2.0, 6.0, 4.0, 1.0}, {1.0, 3.0, 1.0});
  Platform platform = heterogeneous_platform(
      {2.0, 1.5, 1.0, 1.2, 0.8, 1.1, 2.5, 0.9, 1.4}, {{0, 7}});
  return Mapping(app, platform,
                 {{0, 1}, {2, 3, 4}, {5}, {6, 7, 8}});
}

/// Reference implementation of base (+) move -> objective: rebuild the
/// assignment, re-derive teams, validate, and evaluate from scratch.
std::optional<double> full_reevaluation(const Mapping& base,
                                        const MappingMove& move,
                                        const MappingSearchOptions& options) {
  std::vector<std::size_t> assignment(base.num_processors());
  for (std::size_t p = 0; p < base.num_processors(); ++p)
    assignment[p] = base.stage_of(p);
  if (move.kind == MappingMove::Kind::kMigrate) {
    assignment[move.p] = move.target;
  } else {
    std::swap(assignment[move.p], assignment[move.q]);
  }
  std::vector<std::vector<std::size_t>> teams(base.num_stages());
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    if (assignment[p] != Mapping::kUnused) teams[assignment[p]].push_back(p);
  }
  for (const auto& team : teams) {
    if (team.empty()) return std::nullopt;
  }
  try {
    Mapping mapping(base.application(), base.platform(), teams);
    if (mapping.num_paths() > options.max_paths) return std::nullopt;
    return evaluate_mapping(mapping, options);
  } catch (const InvalidArgument&) {
    return std::nullopt;
  }
}

TEST(AnalysisContext, MatchesFreeFunctionBitwiseColdAndWarm) {
  const Mapping mapping = base_instance();
  const ExponentialThroughput direct =
      exponential_throughput(mapping, ExecutionModel::kOverlap);

  AnalysisContext context;
  const ExponentialThroughput cold =
      context.exponential(mapping, ExecutionModel::kOverlap);
  const ExponentialThroughput warm =
      context.exponential(mapping, ExecutionModel::kOverlap);

  for (const ExponentialThroughput* r : {&cold, &warm}) {
    EXPECT_EQ(r->throughput, direct.throughput);
    EXPECT_EQ(r->in_order_throughput, direct.in_order_throughput);
    ASSERT_EQ(r->components.size(), direct.components.size());
    for (std::size_t c = 0; c < direct.components.size(); ++c) {
      EXPECT_EQ(r->components[c].label, direct.components[c].label);
      EXPECT_EQ(r->components[c].inner, direct.components[c].inner);
      EXPECT_EQ(r->components[c].effective, direct.components[c].effective);
      EXPECT_EQ(r->components[c].bottleneck, direct.components[c].bottleneck);
    }
  }
  // The warm pass answered every heterogeneous solve from the cache.
  EXPECT_GT(context.stats().pattern_misses, 0u);
  EXPECT_EQ(context.stats().pattern_hits, context.stats().pattern_misses);
}

TEST(AnalysisContext, RandomInstancesBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Prng prng(seed);
    RandomInstanceOptions options;
    options.num_stages = 4;
    options.num_processors = 9;
    options.max_paths = 64;
    const Mapping mapping = random_instance(options, prng);
    AnalysisContext context;
    const auto direct = exponential_throughput(mapping, ExecutionModel::kOverlap);
    const auto cold = context.exponential(mapping);
    const auto warm = context.exponential(mapping);
    EXPECT_EQ(cold.throughput, direct.throughput) << "seed " << seed;
    EXPECT_EQ(warm.throughput, direct.throughput) << "seed " << seed;
    EXPECT_EQ(warm.in_order_throughput, direct.in_order_throughput);
  }
}

TEST(AnalysisContext, PatternRateBitIdenticalToDirectSolve) {
  const Mapping mapping = base_instance();
  AnalysisContext context;
  for (std::size_t file = 0; file + 1 < mapping.num_stages(); ++file) {
    for (const CommPattern& pattern : comm_patterns(mapping, file)) {
      const double direct =
          pattern.homogeneous()
              ? pattern_flow_exponential_homogeneous(
                    pattern.u, pattern.v, 1.0 / pattern.durations.front())
              : pattern_flow_exponential(pattern).inner_flow;
      EXPECT_EQ(context.pattern_rate(pattern), direct);
      EXPECT_EQ(context.pattern_rate(pattern), direct);  // warm hit
    }
  }
}

TEST(AnalysisContext, EvaluateMoveMatchesFullForEveryMoveKind) {
  const Mapping base = base_instance();
  const std::size_t n = base.num_stages();
  const std::size_t m = base.num_processors();

  for (const MappingObjective objective :
       {MappingObjective::kExponential, MappingObjective::kDeterministic}) {
    MappingSearchOptions options;
    options.objective = objective;
    AnalysisContext context;
    const double base_score = context.set_base(base, options);

    std::size_t feasible = 0;
    std::size_t infeasible = 0;
    auto check = [&](const MappingMove& move) {
      const auto incremental = context.evaluate_move(move);
      const auto full = full_reevaluation(base, move, options);
      ASSERT_EQ(incremental.has_value(), full.has_value());
      if (incremental) {
        EXPECT_EQ(*incremental, *full);
        ++feasible;
      } else {
        ++infeasible;
      }
      // Probing must not disturb the base.
      EXPECT_EQ(context.base_score(), base_score);
    };

    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t i = 0; i <= n; ++i) {
        const std::size_t target = i == n ? Mapping::kUnused : i;
        if (target == base.stage_of(p)) continue;
        check(MappingMove::migrate(p, target));
      }
    }
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t q = p + 1; q < m; ++q) {
        if (base.stage_of(p) == base.stage_of(q)) continue;
        check(MappingMove::swap(p, q));
      }
    }
    // The instance exercises both outcomes: singleton-team moves and the
    // missing (0, 7) link make some neighbours infeasible.
    EXPECT_GT(feasible, 0u);
    EXPECT_GT(infeasible, 0u);
  }
}

TEST(AnalysisContext, MaxPathsRejectionMatchesRealize) {
  Application app({1.0, 2.0, 1.0}, {0.5, 0.5});
  Platform platform = heterogeneous_platform({1.0, 1.0, 1.0, 1.0, 1.0, 1.0});
  const Mapping base(app, platform, {{0}, {1, 2, 3}, {4, 5}});  // lcm = 6
  MappingSearchOptions options;
  options.max_paths = 6;
  AnalysisContext context;
  context.set_base(base, options);
  // Migrating P5 into the middle team gives replications (1, 4, 1): lcm 4,
  // within the cap of 6.
  EXPECT_TRUE(context.evaluate_move(MappingMove::migrate(5, 1)).has_value());
  // Shrink the cap: the same move (lcm 4) and any move keeping the base
  // shape (lcm 6) are now rejected, while benching P5 (lcm 3) stays
  // feasible. set_base itself never applies the cap; only moves do.
  options.max_paths = 3;
  context.set_base(base, options);
  EXPECT_FALSE(context.evaluate_move(MappingMove::migrate(5, 1)).has_value());
  EXPECT_FALSE(context.evaluate_move(MappingMove::swap(0, 1)).has_value());
  EXPECT_TRUE(
      context.evaluate_move(MappingMove::migrate(5, Mapping::kUnused))
          .has_value());
}

TEST(AnalysisContext, CommitMoveRebasesOntoTheEvaluatedCandidate) {
  const Mapping base = base_instance();
  MappingSearchOptions options;
  AnalysisContext context;
  context.set_base(base, options);

  const MappingMove move = MappingMove::swap(2, 5);
  const auto probed = context.evaluate_move(move);
  ASSERT_TRUE(probed.has_value());
  EXPECT_EQ(context.commit_move(move), *probed);
  EXPECT_EQ(context.base_score(), *probed);
  EXPECT_EQ(context.base_mapping().stage_of(2), base.stage_of(5));
  EXPECT_EQ(context.base_mapping().stage_of(5), base.stage_of(2));

  // Probes against the new base agree with full re-evaluation again.
  const MappingMove next = MappingMove::migrate(8, 1);
  const auto incremental = context.evaluate_move(next);
  const auto full = full_reevaluation(context.base_mapping(), next, options);
  ASSERT_EQ(incremental.has_value(), full.has_value());
  if (incremental) EXPECT_EQ(*incremental, *full);

  // Committing without (or after) a matching probe is a contract violation.
  EXPECT_THROW(context.commit_move(MappingMove::swap(0, 3)), InvalidArgument);
}

TEST(AnalysisContext, CacheStatsAreExact) {
  Application app({1.0, 2.0}, {1.0});
  Platform het = heterogeneous_platform({1.0, 1.0, 1.0, 1.0, 1.0});
  const Mapping mapping(app, het, {{0, 1}, {2, 3, 4}});  // one 2x3 pattern

  AnalysisContext context;
  context.exponential(mapping);
  EXPECT_EQ(context.stats().pattern_misses, 1u);
  EXPECT_EQ(context.stats().pattern_hits, 0u);
  EXPECT_EQ(context.stats().closed_form, 0u);
  EXPECT_EQ(context.pattern_cache_size(), 1u);

  context.exponential(mapping);
  EXPECT_EQ(context.stats().pattern_misses, 1u);
  EXPECT_EQ(context.stats().pattern_hits, 1u);

  // A homogeneous network goes through Theorem 4's closed form: no cache.
  Platform uniform = Platform::fully_connected({1.0, 1.0, 1.0, 1.0, 1.0}, 2.0);
  const Mapping homogeneous(app, uniform, {{0, 1}, {2, 3, 4}});
  AnalysisContext closed;
  closed.exponential(homogeneous);
  EXPECT_EQ(closed.stats().closed_form, 1u);
  EXPECT_EQ(closed.stats().pattern_misses, 0u);
  EXPECT_EQ(closed.stats().pattern_hits, 0u);
  EXPECT_EQ(closed.pattern_cache_size(), 0u);

  context.clear();
  EXPECT_EQ(context.stats().pattern_misses, 0u);
  EXPECT_EQ(context.pattern_cache_size(), 0u);
}

TEST(AnalysisContext, ColumnReuseCountsAreExact) {
  // Six singleton stages: a swap of P0/P1 touches stages 0 and 1, so
  // columns 0 and 1 are re-solved and columns 2..4 are reused.
  Application app({1.0, 1.0, 1.0, 1.0, 1.0, 1.0},
                  {1.0, 1.0, 1.0, 1.0, 1.0});
  Platform platform =
      heterogeneous_platform({2.0, 1.0, 1.5, 1.2, 0.8, 1.1});
  const Mapping base(app, platform, {{0}, {1}, {2}, {3}, {4}, {5}});

  MappingSearchOptions options;
  AnalysisContext context;
  context.set_base(base, options);
  const AnalysisCacheStats before = context.stats();
  ASSERT_TRUE(context.evaluate_move(MappingMove::swap(0, 1)).has_value());
  const AnalysisCacheStats& after = context.stats();
  EXPECT_EQ(after.columns_recomputed - before.columns_recomputed, 2u);
  EXPECT_EQ(after.columns_reused - before.columns_reused, 3u);
  EXPECT_EQ(after.move_evaluations - before.move_evaluations, 1u);
  EXPECT_EQ(after.evaluations - before.evaluations, 1u);
}

TEST(AnalysisContext, CacheSharesPatternsAcrossMappings) {
  // Two mappings of the same instance sharing the stage-0 column: the
  // second evaluation hits the cached (0, 1) pattern solve.
  Application app({2.0, 6.0, 1.0}, {1.0, 1.0});
  Platform platform =
      heterogeneous_platform({2.0, 1.5, 1.0, 1.2, 0.8, 1.1, 2.5});
  const Mapping first(app, platform, {{0, 1}, {2, 3, 4}, {5}});
  const Mapping second(app, platform, {{0, 1}, {2, 3, 4}, {6}});

  AnalysisContext context;
  context.exponential(first);
  const std::size_t misses_after_first = context.stats().pattern_misses;
  context.exponential(second);
  EXPECT_GT(context.stats().pattern_hits, 0u);  // the shared 2x3 pattern
  // Only genuinely new patterns were solved for the second mapping.
  EXPECT_GE(context.stats().pattern_misses, misses_after_first);
}

TEST(AnalysisContext, EvaluateAndCommitShareTheBaseInstance) {
  // Candidate mappings derive from the base via Mapping::with_teams: the
  // instance allocation is shared through probe and commit alike, never
  // copied.
  const Mapping base = base_instance();
  const Instance* allocation = base.instance().get();
  MappingSearchOptions options;
  AnalysisContext context;
  context.set_base(base, options);
  EXPECT_EQ(context.base_mapping().instance().get(), allocation);

  const MappingMove move = MappingMove::swap(2, 5);
  ASSERT_TRUE(context.evaluate_move(move).has_value());
  context.commit_move(move);
  EXPECT_EQ(context.base_mapping().instance().get(), allocation);
}

TEST(AnalysisContext, CandidatePolicyScoresAreBitIdentical) {
  // Every move of the full neighbourhood — feasible and infeasible alike —
  // must score identically under the deep-copy reference policy and the
  // shared-derive policy, for both objectives.
  const Mapping base = base_instance();
  const std::size_t n = base.num_stages();
  const std::size_t m = base.num_processors();

  for (const MappingObjective objective :
       {MappingObjective::kExponential, MappingObjective::kDeterministic}) {
    MappingSearchOptions options;
    options.objective = objective;
    AnalysisContext shared_context;
    shared_context.set_candidate_policy(CandidatePolicy::kSharedDerive);
    AnalysisContext copy_context;
    copy_context.set_candidate_policy(CandidatePolicy::kCopyValidate);
    shared_context.set_base(base, options);
    copy_context.set_base(base, options);

    auto check = [&](const MappingMove& move) {
      const auto shared = shared_context.evaluate_move(move);
      const auto copied = copy_context.evaluate_move(move);
      ASSERT_EQ(shared.has_value(), copied.has_value());
      if (shared) EXPECT_EQ(*shared, *copied);
    };
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t i = 0; i <= n; ++i) {
        const std::size_t target = i == n ? Mapping::kUnused : i;
        if (target == base.stage_of(p)) continue;
        check(MappingMove::migrate(p, target));
      }
    }
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t q = p + 1; q < m; ++q) {
        if (base.stage_of(p) == base.stage_of(q)) continue;
        check(MappingMove::swap(p, q));
      }
    }
  }
}

TEST(AnalysisContext, SetBaseRequiresSortedTeams) {
  Application app({1.0, 1.0}, {1.0});
  Platform platform = Platform::fully_connected({1.0, 1.0, 1.0}, 1.0);
  const Mapping unsorted(app, platform, {{0}, {2, 1}});
  MappingSearchOptions options;
  AnalysisContext context;
  EXPECT_THROW(context.set_base(unsorted, options), InvalidArgument);
  EXPECT_THROW(context.evaluate_move(MappingMove::migrate(0, 1)),
               InvalidArgument);  // no base pinned
}

}  // namespace
}  // namespace streamflow
