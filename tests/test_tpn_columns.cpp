#include "tpn/columns.hpp"

#include <gtest/gtest.h>

#include <set>

#include "test_helpers.hpp"

namespace streamflow {
namespace {

TEST(CommPatterns, StructureOfCoprimeColumn) {
  const Mapping mapping = testing::single_comm_mapping(3, 2);
  const auto patterns = comm_patterns(mapping, 0);
  ASSERT_EQ(patterns.size(), 1u);  // gcd(3,2) = 1
  const CommPattern& p = patterns[0];
  EXPECT_EQ(p.u, 3u);
  EXPECT_EQ(p.v, 2u);
  EXPECT_EQ(p.g, 1u);
  EXPECT_EQ(p.copies, 1);
  EXPECT_EQ(p.size(), 6u);
  EXPECT_TRUE(p.homogeneous());
  // CRT bijection: every (sender, receiver) pair appears exactly once.
  std::set<std::pair<std::size_t, std::size_t>> pairs;
  for (std::size_t t = 0; t < p.size(); ++t)
    pairs.insert({p.sender_of(t), p.receiver_of(t)});
  EXPECT_EQ(pairs.size(), 6u);
}

TEST(CommPatterns, SplitsIntoGcdComponents) {
  // 4 senders, 6 receivers: g = 2 components with u = 2, v = 3.
  Application app = Application::uniform(2);
  Platform platform =
      Platform::fully_connected(std::vector<double>(10, 1.0), 1.0);
  std::vector<std::size_t> senders{0, 1, 2, 3}, receivers{4, 5, 6, 7, 8, 9};
  Mapping mapping(app, platform, {senders, receivers});
  EXPECT_EQ(mapping.num_paths(), 12);

  const auto patterns = comm_patterns(mapping, 0);
  ASSERT_EQ(patterns.size(), 2u);
  for (std::size_t c = 0; c < 2; ++c) {
    EXPECT_EQ(patterns[c].u, 2u);
    EXPECT_EQ(patterns[c].v, 3u);
    EXPECT_EQ(patterns[c].copies, 1);
    // Component c owns the senders/receivers with team index = c (mod 2).
    EXPECT_EQ(patterns[c].senders, (std::vector<std::size_t>{c, c + 2}));
    EXPECT_EQ(patterns[c].receivers,
              (std::vector<std::size_t>{4 + c, 6 + c, 8 + c}));
  }
}

TEST(CommPatterns, ExampleCSecondCommunication) {
  // Example C (§5.2): 21 senders and 27 receivers split into g = 3
  // components of pattern size 7 x 9 with 55 copies (m = lcm(5,21,27,11)).
  Application app = Application::uniform(4);
  const std::size_t total = 5 + 21 + 27 + 11;
  Platform platform =
      Platform::fully_connected(std::vector<double>(total, 1.0), 1.0);
  std::vector<std::vector<std::size_t>> teams(4);
  std::size_t next = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    const std::size_t count = std::vector<std::size_t>{5, 21, 27, 11}[i];
    for (std::size_t k = 0; k < count; ++k) teams[i].push_back(next++);
  }
  Mapping mapping(app, platform, teams);
  EXPECT_EQ(mapping.num_paths(), 10395);

  const auto patterns = comm_patterns(mapping, 1);
  ASSERT_EQ(patterns.size(), 3u);
  EXPECT_EQ(patterns[0].u, 7u);
  EXPECT_EQ(patterns[0].v, 9u);
  EXPECT_EQ(patterns[0].copies, 10395 / (3 * 7 * 9));
  EXPECT_EQ(patterns[0].copies, 55);
}

TEST(PatternTeg, StructureAndLiveness) {
  const Mapping mapping = testing::single_comm_mapping(3, 2);
  const auto patterns = comm_patterns(mapping, 0);
  const TimedEventGraph teg = build_pattern_teg(patterns[0]);
  EXPECT_EQ(teg.num_transitions(), 6u);
  // u sender chains of v places + v receiver chains of u places = 2uv.
  EXPECT_EQ(teg.num_places(), 12u);
  std::size_t tokens = 0;
  for (const Place& p : teg.places())
    tokens += static_cast<std::size_t>(p.initial_tokens);
  EXPECT_EQ(tokens, 5u);  // u + v chains
  EXPECT_NO_THROW(teg.check_liveness());
}

TEST(PatternTeg, HeterogeneousDurationsPropagate) {
  const std::vector<double> times{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const Mapping mapping =
      testing::single_comm_mapping_heterogeneous(3, 2, times);
  const auto patterns = comm_patterns(mapping, 0);
  EXPECT_FALSE(patterns[0].homogeneous());
  const TimedEventGraph teg = build_pattern_teg(patterns[0]);
  for (std::size_t t = 0; t < teg.num_transitions(); ++t) {
    const Transition& tr = teg.transition(t);
    EXPECT_DOUBLE_EQ(tr.duration,
                     mapping.comm_time(tr.proc, tr.proc2));
  }
}

TEST(CommPatterns, RejectsBadFileIndex) {
  const Mapping mapping = testing::single_comm_mapping(2, 2);
  EXPECT_THROW(comm_patterns(mapping, 1), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
