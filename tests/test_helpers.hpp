// Shared fixture builders for the streamflow test suite.
#pragma once

#include <cstddef>
#include <vector>

#include "model/mapping.hpp"

namespace streamflow::testing {

/// Linear chain without replication: stage i on processor i, with the given
/// per-stage computation times and per-file communication times (sizes are
/// folded into unit works/files via speeds and bandwidths).
inline Mapping chain_mapping(const std::vector<double>& comp_times,
                             const std::vector<double>& comm_times) {
  const std::size_t n = comp_times.size();
  Application app = Application::uniform(n);
  std::vector<double> speeds(n);
  for (std::size_t i = 0; i < n; ++i) speeds[i] = 1.0 / comp_times[i];
  Platform platform{speeds};
  for (std::size_t i = 0; i + 1 < n; ++i)
    platform.set_bandwidth(i, i + 1, 1.0 / comm_times[i]);
  std::vector<std::vector<std::size_t>> teams(n);
  for (std::size_t i = 0; i < n; ++i) teams[i] = {i};
  return Mapping(std::move(app), std::move(platform), std::move(teams));
}

/// Two stages, u senders and v receivers, one shared communication time and
/// fast (but nonzero) computations: the "single costly communication"
/// workload of §7.4. Homogeneous network.
inline Mapping single_comm_mapping(std::size_t u, std::size_t v,
                                   double comm_time = 1.0,
                                   double comp_time = 1e-3) {
  Application app = Application::uniform(2);
  std::vector<double> speeds(u + v, 1.0 / comp_time);
  Platform platform{speeds};
  for (std::size_t a = 0; a < u; ++a)
    for (std::size_t b = 0; b < v; ++b)
      platform.set_bandwidth(a, u + b, 1.0 / comm_time);
  std::vector<std::size_t> senders(u), receivers(v);
  for (std::size_t a = 0; a < u; ++a) senders[a] = a;
  for (std::size_t b = 0; b < v; ++b) receivers[b] = u + b;
  return Mapping(std::move(app), std::move(platform), {senders, receivers});
}

/// Like single_comm_mapping but with one communication time per link,
/// provided row-major (sender-major: times[a * v + b]).
inline Mapping single_comm_mapping_heterogeneous(
    std::size_t u, std::size_t v, const std::vector<double>& times,
    double comp_time = 1e-3) {
  Application app = Application::uniform(2);
  std::vector<double> speeds(u + v, 1.0 / comp_time);
  Platform platform{speeds};
  for (std::size_t a = 0; a < u; ++a)
    for (std::size_t b = 0; b < v; ++b)
      platform.set_bandwidth(a, u + b, 1.0 / times[a * v + b]);
  std::vector<std::size_t> senders(u), receivers(v);
  for (std::size_t a = 0; a < u; ++a) senders[a] = a;
  for (std::size_t b = 0; b < v; ++b) receivers[b] = u + b;
  return Mapping(std::move(app), std::move(platform), {senders, receivers});
}

/// Three stages replicated (r0, r1, r2) on consecutive processors with
/// uniform computation time `comp` and uniform communication time `comm`.
inline Mapping replicated_chain_mapping(std::size_t r0, std::size_t r1,
                                        std::size_t r2, double comp = 1.0,
                                        double comm = 1.0) {
  Application app = Application::uniform(3);
  const std::size_t m = r0 + r1 + r2;
  Platform platform = Platform::fully_connected(
      std::vector<double>(m, 1.0 / comp), 1.0 / comm);
  std::vector<std::size_t> t0(r0), t1(r1), t2(r2);
  for (std::size_t i = 0; i < r0; ++i) t0[i] = i;
  for (std::size_t i = 0; i < r1; ++i) t1[i] = r0 + i;
  for (std::size_t i = 0; i < r2; ++i) t2[i] = r0 + r1 + i;
  return Mapping(std::move(app), std::move(platform), {t0, t1, t2});
}

}  // namespace streamflow::testing
