#include "model/serialization.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "maxplus/deterministic.hpp"
#include "model/random_instance.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

TEST(Serialization, RoundTripPreservesEverything) {
  Prng prng(404);
  RandomInstanceOptions options;
  options.num_stages = 4;
  options.num_processors = 9;
  for (int trial = 0; trial < 5; ++trial) {
    const Mapping original = random_instance(options, prng);
    const Mapping loaded = instance_from_string(instance_to_string(original));
    EXPECT_EQ(loaded.to_string(), original.to_string());
    EXPECT_EQ(loaded.num_paths(), original.num_paths());
    for (std::size_t p = 0; p < original.num_processors(); ++p) {
      EXPECT_EQ(loaded.stage_of(p), original.stage_of(p));
      if (original.stage_of(p) != Mapping::kUnused) {
        EXPECT_DOUBLE_EQ(loaded.comp_time(p), original.comp_time(p));
      }
    }
    // The analyses agree bit-for-bit on the round-tripped instance.
    const double rho_a =
        deterministic_throughput(original, ExecutionModel::kOverlap).throughput;
    const double rho_b =
        deterministic_throughput(loaded, ExecutionModel::kOverlap).throughput;
    EXPECT_DOUBLE_EQ(rho_a, rho_b);
  }
}

TEST(Serialization, AcceptsCommentsAndBlankLines) {
  const Mapping original = testing::chain_mapping({1.0, 2.0}, {0.5});
  std::string text = instance_to_string(original);
  text = "# a comment\n\n" + text + "\n   \n# trailing\n";
  const Mapping loaded = instance_from_string(text);
  EXPECT_EQ(loaded.to_string(), original.to_string());
}

TEST(Serialization, DiagnosesMalformedInput) {
  EXPECT_THROW(instance_from_string(""), InvalidArgument);
  EXPECT_THROW(instance_from_string("not-an-instance\n"), InvalidArgument);

  const std::string base = instance_to_string(
      testing::chain_mapping({1.0, 2.0}, {0.5}));

  // Unknown keyword.
  EXPECT_THROW(instance_from_string(base + "bogus 1 2\n"), InvalidArgument);
  // Duplicate team.
  EXPECT_THROW(instance_from_string(base + "team 0 1\n"), InvalidArgument);
  // Missing sections.
  EXPECT_THROW(instance_from_string("streamflow-instance v1\nstages 2\n"),
               InvalidArgument);

  // Semantic failure (processor on two stages) surfaces as InvalidArgument.
  std::string twisted = base;
  const auto pos = twisted.find("team 1");
  twisted.replace(pos, std::string("team 1 1").size(), "team 1 0");
  EXPECT_THROW(instance_from_string(twisted), InvalidArgument);
}

// Round-trip fuzz over every corpus regime knob setting: emit -> parse ->
// emit must be byte-stable (precision-17 doubles round-trip exactly), so a
// serialized instance is a faithful replayable artifact, not a lossy
// snapshot.
TEST(Serialization, EmitParseEmitIsByteStableAcrossRegimes) {
  std::vector<RandomInstanceOptions> regimes(4);
  regimes[0].num_stages = 4;
  regimes[0].num_processors = 9;
  regimes[1].num_stages = 3;
  regimes[1].num_processors = 8;
  regimes[1].bandwidth_heterogeneity = 100.0;
  regimes[2].num_stages = 5;
  regimes[2].num_processors = 10;
  regimes[2].zero_cost_fraction = 0.5;
  regimes[2].degenerate_scale = 1e-4;
  regimes[3].num_stages = 2;
  regimes[3].num_processors = 11;
  regimes[3].team_skew = 3.0;
  Prng prng(2024);
  for (const RandomInstanceOptions& options : regimes) {
    for (int trial = 0; trial < 10; ++trial) {
      const Mapping original = random_instance(options, prng);
      const std::string first = instance_to_string(original);
      const std::string second =
          instance_to_string(instance_from_string(first));
      EXPECT_EQ(first, second);
    }
  }
}

// Trailing tokens the value parser cannot consume are corrupt input, not
// ignorable noise: before the hardening, "works 1 2 x" silently parsed as
// works = {1, 2} and dropped the rest.
TEST(Serialization, RejectsTrailingGarbageOnEveryLine) {
  const std::string good = instance_to_string(
      testing::chain_mapping({1.0, 2.0}, {0.5}));
  const auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string text = good;
    const auto pos = text.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    EXPECT_THROW(instance_from_string(text), InvalidArgument) << to;
  };
  corrupt("stages 2", "stages 2 bogus");
  corrupt("works 1 1", "works 1 1 x");
  corrupt("files 1", "files 1 ,");
  corrupt("processors 2", "processors 2 2");
  corrupt("speeds 1 0.5", "speeds 1 0.5 fast");
  corrupt("team 0 0", "team 0 0 x");
  // A link line with a fourth numeric token is also corrupt.
  std::string text = good;
  const auto pos = text.find('\n', text.find("link"));
  ASSERT_NE(pos, std::string::npos);
  text.insert(pos, " 9");
  EXPECT_THROW(instance_from_string(text), InvalidArgument);
}

TEST(Serialization, CountMismatchesAreCaught) {
  EXPECT_THROW(instance_from_string("streamflow-instance v1\n"
                                    "stages 2\n"
                                    "works 1 2 3\n"  // too many
                                    "files 1\n"
                                    "processors 2\n"
                                    "speeds 1 1\n"
                                    "link 0 1 1\n"
                                    "team 0 0\n"
                                    "team 1 1\n"),
               InvalidArgument);
}

}  // namespace
}  // namespace streamflow
