// Planted violation fixture: rule `using-namespace-header`.
// Line 6 fires; line 7 is suppressed. The same directive in a .cpp
// policy path never fires (header-only rule).
#pragma once
#include <string>
using namespace std;
using namespace std::literals;  // lint:allow(using-namespace-header): fixture proving suppression
