// Planted fixture: a file-level allow suppresses the missing-pragma
// violation for the whole header.
// lint:allow-file(header-pragma-once): fixture proving file-level suppression
inline int planted_allowed = 0;
