// Planted violation fixture: rule `ambient-entropy`.
// Line 5 fires (std::random_device); line 7 fires (rand()); line 9 is
// suppressed by a standalone allow comment on line 8.
#include <random>
std::random_device planted_fire;
#include <cstdlib>
int planted_rand_fire = std::rand();
// lint:allow(ambient-entropy): fixture proving next-line suppression
int planted_allowed = std::rand();
