// Planted violation fixture: rule `wall-clock`.
// Line 5 fires; line 7 is suppressed; line 9 (chrono clock) fires.
#include <chrono>
#include <ctime>
std::time_t planted_fire = std::time(nullptr);
std::time_t planted_allowed =
    std::time(nullptr);  // lint:allow(wall-clock): fixture proving suppression
auto planted_clock_fire =
    std::chrono::system_clock::now();
