// Planted violation fixture: rule `unordered-iter`.
// Line 9 (range-for) and line 10 (.begin() loop) fire; line 12 is
// suppressed by the justification comment on line 11. Vector iteration
// (line 18) never fires.
#include <unordered_map>
std::unordered_map<int, int> counts;
int sum() {
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  for (auto it = counts.begin(); it != counts.end(); ++it) total += it->second;
  // lint:allow(unordered-iter): fixture — fold is order-insensitive (sum)
  for (const auto& kv : counts) total += kv.second;
  return total;
}
std::vector<int> ordered;
int sum_ordered() {
  int total = 0;
  for (int v : ordered) total += v;
  return total;
}
