// Planted violation fixture: rule `allow-syntax`.
// Line 4 fires (unknown rule id); line 5 fires (missing ": reason").
// Line 7 carries a well-formed allow, so line 8 reports nothing at all.
int planted_unknown_rule = 0;  // lint:allow(not-a-rule): unknown ids must be rejected
int planted_missing_reason = 0;  // lint:allow(ambient-entropy)
#include <random>
// lint:allow(ambient-entropy): fixture — well-formed suppression works
std::random_device planted_allowed;
