// Planted violation fixture: rule `raw-mutex`.
// Line 5 fires (std::mutex); line 6 fires (std::lock_guard); line 7 is
// suppressed. The #include alone (line 4) must not fire.
#include <mutex>
std::mutex planted_fire;
std::lock_guard<std::mutex> planted_guard_fire(planted_fire);
std::condition_variable planted_allowed_cv;  // lint:allow(raw-mutex): fixture proving suppression
