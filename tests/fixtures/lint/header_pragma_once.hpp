// Planted violation fixture: rule `header-pragma-once`, reported at line 1.
// Mentioning #pragma once in a comment must not count — the scan only
// looks at the code view.
inline int planted_fire = 0;
