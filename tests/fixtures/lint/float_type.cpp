// Planted violation fixture: rule `float-type` (fires only under src/).
// Line 4 fires; line 5 is suppressed; doubles never fire.
double fine = 1.0;
float planted_fire = 1.0f;
float planted_allowed = 2.0f;  // lint:allow(float-type): fixture proving suppression
