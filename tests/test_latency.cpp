#include <gtest/gtest.h>

#include "sim/pipeline_sim.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

TEST(Latency, DeterministicChainLatencyIsSumOfServiceTimes) {
  // Without replication, with a clear bottleneck, every data set's
  // traversal latency settles to... at least the raw service sum; with the
  // bottleneck mid-chain, upstream items queue so the mean latency exceeds
  // the raw sum. With the bottleneck FIRST, no internal queueing happens
  // and the latency equals the sum of the remaining service times exactly.
  const Mapping mapping = testing::chain_mapping({5.0, 1.0, 1.0}, {0.5, 0.5});
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  PipelineSimOptions options;
  options.data_sets = 5'000;
  const auto sim =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, det, options);
  // Raw traversal: 5 + 0.5 + 1 + 0.5 + 1 = 8.
  EXPECT_NEAR(sim.mean_latency, 8.0, 1e-9);
  EXPECT_NEAR(sim.max_latency, 8.0, 1e-9);
}

TEST(Latency, InternalBottleneckQueuesUnboundedly) {
  // Bottleneck at the END: items pile up in front of it, so the traversal
  // latency keeps growing with the horizon (unbounded internal buffers).
  const Mapping mapping = testing::chain_mapping({1.0, 5.0}, {0.1});
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  PipelineSimOptions small;
  small.data_sets = 2'000;
  PipelineSimOptions large;
  large.data_sets = 8'000;
  const auto a =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, det, small);
  const auto b =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, det, large);
  EXPECT_GT(b.mean_latency, 2.0 * a.mean_latency);
}

TEST(Latency, StrictBlocksInsteadOfQueueing) {
  // Under Strict, the first stage cannot run ahead (its send blocks until
  // the downstream cycle frees), so the latency stays bounded even with a
  // downstream bottleneck.
  const Mapping mapping = testing::chain_mapping({1.0, 5.0}, {0.1});
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  PipelineSimOptions small;
  small.data_sets = 2'000;
  PipelineSimOptions large;
  large.data_sets = 8'000;
  const auto a =
      simulate_pipeline(mapping, ExecutionModel::kStrict, det, small);
  const auto b =
      simulate_pipeline(mapping, ExecutionModel::kStrict, det, large);
  EXPECT_NEAR(a.mean_latency, b.mean_latency, 0.05 * a.mean_latency);
  EXPECT_LT(b.max_latency, 20.0);
}

TEST(Latency, ExponentialLatencyExceedsDeterministic) {
  const Mapping mapping = testing::replicated_chain_mapping(1, 2, 1, 2.0, 0.5);
  PipelineSimOptions options;
  options.data_sets = 30'000;
  const auto det = simulate_pipeline(mapping, ExecutionModel::kStrict,
                                     StochasticTiming::deterministic(mapping),
                                     options);
  const auto exp = simulate_pipeline(mapping, ExecutionModel::kStrict,
                                     StochasticTiming::exponential(mapping),
                                     options);
  EXPECT_GT(exp.mean_latency, det.mean_latency);
  EXPECT_GT(exp.max_latency, exp.mean_latency);
}

}  // namespace
}  // namespace streamflow
