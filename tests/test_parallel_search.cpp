// Determinism of the parallel portfolio mapping search.
//
// The contract under test (engine/parallel_search.hpp): the portfolio result
// — best mapping, scores, the whole per-restart trace, and every counter —
// is a pure function of (instance, search options, seeding). In particular
// it is bit-identical for any thread count, equal to the serial
// optimize_mapping under sequential-compat seeding, equal to a hand-rolled
// serial replay of the exposed single-restart primitives, and ties in the
// reduction always resolve to the lowest restart index.
#include "engine/parallel_search.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/prng.hpp"
#include "core/analysis_context.hpp"
#include "engine/stream_factory.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

/// The heterogeneous 3-stage / 7-processor instance the heuristics suite
/// pins its serial scores on: every multi-link pattern needs a real CTMC
/// solve, and random restarts genuinely move the result around.
InstancePtr heterogeneous_instance() {
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  Prng prng(3);
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t q = p + 1; q < 7; ++q) {
      platform.set_bandwidth(p, q, 2.0 + 3.0 * prng.uniform01());
    }
  }
  return make_instance(std::move(app), std::move(platform));
}

/// Six identical processors on a homogeneous network: many restarts reach
/// the same optimum, exercising the tie-break rule.
InstancePtr symmetric_instance() {
  Application app({1.0, 12.0, 1.0}, {0.1, 0.1});
  Platform platform =
      Platform::fully_connected(std::vector<double>(6, 1.0), 100.0);
  return make_instance(std::move(app), std::move(platform));
}

MappingSearchOptions search_options(std::size_t restarts,
                                    std::uint64_t seed = 42) {
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = restarts;
  options.seed = seed;
  return options;
}

void expect_same_trace_row(const RestartResult& a, const RestartResult& b,
                           std::size_t k) {
  EXPECT_EQ(a.feasible, b.feasible) << "restart " << k;
  EXPECT_EQ(a.score, b.score) << "restart " << k;  // bitwise
  EXPECT_EQ(a.start_score, b.start_score) << "restart " << k;
  EXPECT_EQ(a.assignment, b.assignment) << "restart " << k;
  EXPECT_EQ(a.evaluations, b.evaluations) << "restart " << k;
  EXPECT_EQ(a.pattern_requests, b.pattern_requests) << "restart " << k;
}

void expect_same_result(const ParallelSearchResult& a,
                        const ParallelSearchResult& b) {
  ASSERT_EQ(a.mapping.num_stages(), b.mapping.num_stages());
  for (std::size_t i = 0; i < a.mapping.num_stages(); ++i) {
    EXPECT_EQ(a.mapping.team(i), b.mapping.team(i));
  }
  EXPECT_EQ(a.throughput, b.throughput);  // bitwise
  EXPECT_EQ(a.greedy_throughput, b.greedy_throughput);
  EXPECT_EQ(a.best_restart, b.best_restart);
  EXPECT_EQ(a.restarts, b.restarts);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.pattern_requests, b.pattern_requests);
  ASSERT_EQ(a.trace.size(), b.trace.size());
  for (std::size_t k = 0; k < a.trace.size(); ++k) {
    expect_same_trace_row(a.trace[k], b.trace[k], k);
  }
}

TEST(ParallelSearch, BitIdenticalAcrossThreadCounts) {
  const InstancePtr instance = heterogeneous_instance();
  for (const RestartSeeding seeding :
       {RestartSeeding::kSequentialCompat, RestartSeeding::kSubstreams}) {
    ParallelSearchOptions options;
    options.search = search_options(6);
    options.seeding = seeding;
    options.threads = 1;
    const ParallelSearchResult reference =
        parallel_optimize_mapping(instance, options);
    EXPECT_EQ(reference.threads_used, 1u);
    EXPECT_EQ(reference.restarts, 6u);
    for (const std::size_t threads : {2, 8}) {
      options.threads = threads;
      const ParallelSearchResult result =
          parallel_optimize_mapping(instance, options);
      EXPECT_EQ(result.threads_used, std::min<std::size_t>(threads, 6));
      expect_same_result(reference, result);
    }
  }
}

TEST(ParallelSearch, CompatSeedingEqualsTheSerialSearch) {
  // Under sequential-compat seeding the portfolio IS the serial
  // optimize_mapping, restart for restart: same mapping, bitwise-equal
  // scores, same total evaluation count, and the same number of pattern
  // solves requested (the serial hit/miss split differs — one shared cache
  // versus per-worker caches — but the request total is cache-independent).
  const InstancePtr instance = heterogeneous_instance();
  const MappingSearchOptions search = search_options(5);

  const MappingSearchResult serial = optimize_mapping(instance, search);

  for (const std::size_t threads : {1, 4}) {
    ParallelSearchOptions options;
    options.search = search;
    options.threads = threads;
    const ParallelSearchResult parallel =
        parallel_optimize_mapping(instance, options);
    ASSERT_EQ(parallel.mapping.num_stages(), serial.mapping.num_stages());
    for (std::size_t i = 0; i < serial.mapping.num_stages(); ++i) {
      EXPECT_EQ(parallel.mapping.team(i), serial.mapping.team(i));
    }
    EXPECT_EQ(parallel.throughput, serial.throughput);  // bitwise
    EXPECT_EQ(parallel.greedy_throughput, serial.greedy_throughput);
    EXPECT_EQ(parallel.evaluations, serial.evaluations);
    EXPECT_EQ(parallel.pattern_requests,
              serial.pattern_cache_hits + serial.pattern_cache_misses);
    EXPECT_EQ(parallel.mapping.instance().get(), instance.get());
  }
}

TEST(ParallelSearch, TraceMatchesAHandRolledSerialReplay) {
  // Replay every restart through the exposed single-restart primitives,
  // each on a fresh private context — the parallel trace must match row for
  // row (trajectories, scores, and counts), for both seeding disciplines.
  const InstancePtr instance = heterogeneous_instance();
  const MappingSearchOptions search = search_options(5, 1234);
  const Application& app = instance->application;
  const Platform& platform = instance->platform;

  for (const RestartSeeding seeding :
       {RestartSeeding::kSequentialCompat, RestartSeeding::kSubstreams}) {
    ParallelSearchOptions options;
    options.search = search;
    options.seeding = seeding;
    options.threads = 4;
    const ParallelSearchResult result =
        parallel_optimize_mapping(instance, options);
    ASSERT_EQ(result.trace.size(), 5u);

    {
      AnalysisContext context;
      expect_same_trace_row(
          result.trace[0], run_greedy_restart(instance, search, context), 0);
    }
    StreamFactory factory(search.seed);
    Prng sequential(search.seed);
    for (std::size_t k = 1; k < 5; ++k) {
      StageAssignment start;
      if (seeding == RestartSeeding::kSequentialCompat) {
        start = draw_restart_assignment(app, platform, sequential);
      } else {
        // Substream mode: restart k's start comes from StreamFactory
        // substream k — a pure function of (seed, k).
        Prng stream = factory.stream(k);
        start = draw_restart_assignment(app, platform, stream);
      }
      AnalysisContext context;
      expect_same_trace_row(
          result.trace[k],
          run_random_restart(instance, std::move(start), search, context), k);
    }
  }
}

TEST(ParallelSearch, TiesResolveToTheLowestRestartIndex) {
  // On the symmetric instance many restarts reach the same best score; the
  // reduction must report the first of them, never a later one.
  const InstancePtr instance = symmetric_instance();
  ParallelSearchOptions options;
  options.search = search_options(8, 7);
  options.threads = 4;
  const ParallelSearchResult result =
      parallel_optimize_mapping(instance, options);

  double best = -std::numeric_limits<double>::infinity();
  for (const RestartResult& row : result.trace) {
    if (row.feasible && row.score > best) best = row.score;
  }
  std::size_t first_attaining = result.trace.size();
  std::size_t attaining = 0;
  for (std::size_t k = 0; k < result.trace.size(); ++k) {
    if (result.trace[k].feasible && result.trace[k].score == best) {
      ++attaining;
      first_attaining = std::min(first_attaining, k);
    }
  }
  ASSERT_GE(attaining, 2u) << "instance too asymmetric to exercise ties";
  EXPECT_EQ(result.best_restart, first_attaining);
  EXPECT_EQ(result.throughput, best);
}

TEST(ParallelSearch, SubstreamSeedingHasThePrefixProperty) {
  // Restart k is a pure function of (seed, k) under substream seeding, so
  // growing the portfolio never changes the restarts already computed.
  const InstancePtr instance = heterogeneous_instance();
  ParallelSearchOptions options;
  options.search = search_options(3, 99);
  options.seeding = RestartSeeding::kSubstreams;
  options.threads = 2;
  const ParallelSearchResult small = parallel_optimize_mapping(instance, options);

  options.search.restarts = 7;
  options.threads = 8;
  const ParallelSearchResult large = parallel_optimize_mapping(instance, options);

  ASSERT_EQ(small.trace.size(), 3u);
  ASSERT_EQ(large.trace.size(), 7u);
  for (std::size_t k = 0; k < 3; ++k) {
    expect_same_trace_row(small.trace[k], large.trace[k], k);
  }
}

TEST(ParallelSearch, AggregateStatsAreSumsOfTheTrace) {
  const InstancePtr instance = heterogeneous_instance();
  ParallelSearchOptions options;
  options.search = search_options(6);
  options.threads = 8;
  const ParallelSearchResult result =
      parallel_optimize_mapping(instance, options);

  std::size_t evaluations = 0, requests = 0;
  for (const RestartResult& row : result.trace) {
    evaluations += row.evaluations;
    requests += row.pattern_requests;
  }
  EXPECT_EQ(result.evaluations, evaluations);
  EXPECT_EQ(result.pattern_requests, requests);
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_GT(result.pattern_requests, 0u);
}

TEST(ParallelSearch, RestartsZeroAndOneAreEquivalent) {
  const InstancePtr instance = heterogeneous_instance();
  ParallelSearchOptions options;
  options.search = search_options(0);
  const ParallelSearchResult zero = parallel_optimize_mapping(instance, options);
  options.search.restarts = 1;
  const ParallelSearchResult one = parallel_optimize_mapping(instance, options);
  expect_same_result(zero, one);
  EXPECT_EQ(zero.restarts, 1u);
  EXPECT_EQ(zero.best_restart, 0u);
  EXPECT_EQ(zero.greedy_throughput, zero.trace[0].start_score);
}

TEST(ParallelSearch, BatchMatchesPerInstancePortfolios) {
  // Scenario rows come back in order and equal the single-instance
  // portfolio run on the same options; identical instances produce
  // identical rows under the default shared seed.
  std::vector<InstancePtr> instances{heterogeneous_instance(),
                                     symmetric_instance(),
                                     heterogeneous_instance()};
  ParallelSearchOptions options;
  options.search = search_options(4);
  options.threads = 3;
  const std::vector<ParallelSearchResult> batch =
      parallel_optimize_batch(instances, options);
  ASSERT_EQ(batch.size(), 3u);

  for (std::size_t j = 0; j < 3; ++j) {
    ParallelSearchOptions single = options;
    single.threads = 1;
    const ParallelSearchResult expected =
        parallel_optimize_mapping(instances[j], single);
    expect_same_result(batch[j], expected);
    EXPECT_EQ(batch[j].mapping.instance().get(), instances[j].get());
  }
  // Instances 0 and 2 are identical files: identical rows.
  expect_same_result(batch[0], batch[2]);
}

TEST(ParallelSearch, ScenarioStreamsDecorrelateIdenticalScenarios) {
  // With per-scenario streams, scenario j's restarts draw from the seed
  // stream advanced j long jumps: identical instance files now explore
  // different random starts (deterministically), while the whole batch
  // stays bit-identical across thread counts.
  std::vector<InstancePtr> instances{heterogeneous_instance(),
                                     heterogeneous_instance()};
  ParallelSearchOptions options;
  options.search = search_options(6, 5);
  options.scenario_streams = true;
  options.threads = 1;
  const std::vector<ParallelSearchResult> reference =
      parallel_optimize_batch(instances, options);

  // Scenario 0 is the un-jumped stream: equal to the single-instance run.
  expect_same_result(reference[0],
                     parallel_optimize_mapping(instances[0], options));

  // The random-restart traces must differ between the two scenarios (the
  // greedy restart 0 is seed-independent and stays equal).
  expect_same_trace_row(reference[0].trace[0], reference[1].trace[0], 0);
  bool any_difference = false;
  for (std::size_t k = 1; k < reference[0].trace.size(); ++k) {
    if (reference[0].trace[k].assignment != reference[1].trace[k].assignment) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference)
      << "scenario streams did not decorrelate the restarts";

  for (const std::size_t threads : {2, 8}) {
    options.threads = threads;
    const std::vector<ParallelSearchResult> result =
        parallel_optimize_batch(instances, options);
    ASSERT_EQ(result.size(), reference.size());
    for (std::size_t j = 0; j < result.size(); ++j) {
      expect_same_result(result[j], reference[j]);
    }
  }
}

TEST(ParallelSearch, SharesOneInstanceAcrossWorkers) {
  // Worker-private contexts all read the SAME Instance allocation (the
  // thread-safety contract TSan verifies); after the run the only handles
  // left are the caller's and the returned mapping's.
  const InstancePtr instance = heterogeneous_instance();
  ASSERT_EQ(instance.use_count(), 1);
  ParallelSearchOptions options;
  options.search = search_options(6);
  options.threads = 4;
  const ParallelSearchResult result =
      parallel_optimize_mapping(instance, options);
  EXPECT_EQ(result.mapping.instance().get(), instance.get());
  EXPECT_EQ(instance.use_count(), 2);
}

MappingSearchOptions island_options(RestartKind kind, std::uint64_t seed = 42) {
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.kind = kind;
  options.seed = seed;
  // A tabu step probes the whole neighbourhood while an SA step probes one
  // move; keep the tabu legs short so the suite stays fast.
  options.moves_per_leg = kind == RestartKind::kTabu ? 4 : 48;
  return options;
}

TEST(ParallelSearch, IslandPortfoliosBitIdenticalAcrossThreadCounts) {
  // The metaheuristic islands inherit the portfolio determinism contract:
  // every counter and trace row is a pure function of (seed, options),
  // never of the worker-thread count — and the greedy-seeded island 0
  // keeps the result from ever falling below the greedy baseline.
  const InstancePtr instance = heterogeneous_instance();
  for (const RestartKind kind :
       {RestartKind::kAnnealing, RestartKind::kTabu}) {
    ParallelSearchOptions options;
    options.search = island_options(kind);
    options.islands = 4;
    options.sync_rounds = 3;
    options.threads = 1;
    const ParallelSearchResult reference =
        parallel_optimize_mapping(instance, options);
    EXPECT_EQ(reference.restarts, 4u);
    EXPECT_GE(reference.throughput, reference.greedy_throughput);
    for (const std::size_t threads : {2, 4, 8}) {
      options.threads = threads;
      expect_same_result(reference,
                         parallel_optimize_mapping(instance, options));
    }
  }
}

TEST(ParallelSearch, IslandStartsReplayFromSubstreams) {
  // Island 0 enters with the greedy construction; island k >= 1 enters with
  // the assignment drawn from StreamFactory substream k — a pure function
  // of (seed, k). trace[k].start_score pins the entry score of the first
  // feasible leg, so replaying the draw by hand must reproduce it bitwise.
  const InstancePtr instance = heterogeneous_instance();
  ParallelSearchOptions options;
  options.search = island_options(RestartKind::kAnnealing, 99);
  options.islands = 4;
  options.sync_rounds = 2;
  options.threads = 2;
  const ParallelSearchResult result =
      parallel_optimize_mapping(instance, options);
  ASSERT_EQ(result.trace.size(), 4u);

  {
    AnalysisContext context;
    const RestartResult greedy =
        run_greedy_restart(instance, options.search, context);
    EXPECT_EQ(result.trace[0].start_score, greedy.start_score);
    EXPECT_EQ(result.greedy_throughput, greedy.start_score);
  }
  StreamFactory factory(options.search.seed);
  for (std::size_t k = 1; k < 4; ++k) {
    Prng stream = factory.stream(k);
    StageAssignment start = draw_restart_assignment(
        instance->application, instance->platform, stream);
    AnalysisContext context;
    const RestartResult replay = run_random_restart(
        instance, std::move(start), search_options(1, 99), context);
    ASSERT_TRUE(replay.feasible) << "island " << k;
    EXPECT_EQ(result.trace[k].start_score, replay.start_score)
        << "island " << k;
  }
}

TEST(ParallelSearch, IslandStartScoresHaveThePrefixProperty) {
  // The exchange ring depends on the island count, so full trajectories may
  // differ — but each island's ENTRY stays a pure function of (seed, k):
  // growing the archipelago never changes where an existing island starts.
  const InstancePtr instance = heterogeneous_instance();
  ParallelSearchOptions options;
  options.search = island_options(RestartKind::kTabu, 7);
  options.islands = 3;
  options.sync_rounds = 2;
  options.threads = 4;
  const ParallelSearchResult small =
      parallel_optimize_mapping(instance, options);
  options.islands = 5;
  const ParallelSearchResult large =
      parallel_optimize_mapping(instance, options);
  ASSERT_EQ(small.trace.size(), 3u);
  ASSERT_EQ(large.trace.size(), 5u);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_EQ(small.trace[k].start_score, large.trace[k].start_score)
        << "island " << k;
  }
}

TEST(ParallelSearch, ScreenedIslandsMatchUnscreenedBitwise) {
  // The bound screens may not disturb a single metaheuristic decision: a
  // pruned probe is proven unable to beat the acceptance threshold, so the
  // accept/reject sequence — and with it the mapping, the score, and the
  // evaluation counters — is bit-identical with screening on. Only the
  // exact-solve split moves: solved probes become pruned ones.
  const InstancePtr instance = heterogeneous_instance();
  for (const RestartKind kind :
       {RestartKind::kAnnealing, RestartKind::kTabu}) {
    ParallelSearchOptions options;
    options.search = island_options(kind, 5);
    options.islands = 3;
    options.sync_rounds = 2;
    options.threads = 2;
    const ParallelSearchResult plain =
        parallel_optimize_mapping(instance, options);
    options.search.bounds = BoundPolicy::kMctMaxplus;
    const ParallelSearchResult screened =
        parallel_optimize_mapping(instance, options);

    ASSERT_EQ(screened.mapping.num_stages(), plain.mapping.num_stages());
    for (std::size_t i = 0; i < plain.mapping.num_stages(); ++i) {
      EXPECT_EQ(screened.mapping.team(i), plain.mapping.team(i));
    }
    EXPECT_EQ(screened.throughput, plain.throughput);  // bitwise
    EXPECT_EQ(screened.best_restart, plain.best_restart);
    EXPECT_EQ(screened.evaluations, plain.evaluations);
    EXPECT_EQ(plain.moves_pruned_mct + plain.moves_pruned_maxplus, 0u);
    EXPECT_EQ(screened.moves_solved + screened.moves_pruned_mct +
                  screened.moves_pruned_maxplus,
              plain.moves_solved);
    EXPECT_GT(screened.moves_pruned_mct + screened.moves_pruned_maxplus, 0u);
  }
}

TEST(ParallelSearch, Validation) {
  EXPECT_THROW(parallel_optimize_mapping(nullptr, ParallelSearchOptions{}),
               InvalidArgument);
  EXPECT_THROW(parallel_optimize_batch({}, ParallelSearchOptions{}),
               InvalidArgument);

  // Option errors surface on the caller's thread, before any fan-out.
  ParallelSearchOptions bad;
  bad.search.model = ExecutionModel::kStrict;
  bad.search.objective = MappingObjective::kExponential;
  EXPECT_THROW(parallel_optimize_mapping(heterogeneous_instance(), bad),
               InvalidArgument);

  // Degenerate island shapes are rejected up front, and the batch axis
  // requires the greedy kind (islands run per instance).
  ParallelSearchOptions zero_islands;
  zero_islands.search.kind = RestartKind::kTabu;
  zero_islands.islands = 0;
  EXPECT_THROW(parallel_optimize_mapping(heterogeneous_instance(), zero_islands),
               InvalidArgument);
  ParallelSearchOptions zero_rounds;
  zero_rounds.search.kind = RestartKind::kAnnealing;
  zero_rounds.sync_rounds = 0;
  EXPECT_THROW(parallel_optimize_mapping(heterogeneous_instance(), zero_rounds),
               InvalidArgument);
  ParallelSearchOptions island_batch;
  island_batch.search.kind = RestartKind::kAnnealing;
  EXPECT_THROW(
      parallel_optimize_batch({heterogeneous_instance()}, island_batch),
      InvalidArgument);
}

}  // namespace
}  // namespace streamflow
