#include <gtest/gtest.h>

#include "model/application.hpp"
#include "model/mapping.hpp"
#include "model/platform.hpp"
#include "model/timing.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

TEST(Application, ValidatesShape) {
  EXPECT_NO_THROW(Application({1.0, 2.0}, {3.0}));
  EXPECT_THROW(Application({}, {}), InvalidArgument);
  EXPECT_THROW(Application({1.0, 2.0}, {}), InvalidArgument);
  EXPECT_THROW(Application({1.0, 2.0}, {1.0, 2.0}), InvalidArgument);
  EXPECT_THROW(Application({0.0}, {}), InvalidArgument);
  EXPECT_THROW(Application({1.0, 1.0}, {-1.0}), InvalidArgument);
}

TEST(Application, Accessors) {
  Application app({2.0, 4.0, 8.0}, {16.0, 32.0});
  EXPECT_EQ(app.num_stages(), 3u);
  EXPECT_DOUBLE_EQ(app.work(1), 4.0);
  EXPECT_DOUBLE_EQ(app.file_size(1), 32.0);
  EXPECT_THROW(app.work(3), InvalidArgument);
  EXPECT_THROW(app.file_size(2), InvalidArgument);
  EXPECT_NE(app.to_string().find("3 stages"), std::string::npos);
}

TEST(Platform, FullyConnectedAndStar) {
  Platform full = Platform::fully_connected({1.0, 2.0, 3.0}, 10.0);
  EXPECT_DOUBLE_EQ(full.bandwidth(0, 2), 10.0);
  EXPECT_TRUE(full.homogeneous_network());

  Platform star = Platform::star({1.0, 1.0, 1.0}, {10.0, 4.0, 6.0});
  EXPECT_DOUBLE_EQ(star.bandwidth(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(star.bandwidth(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(star.bandwidth(1, 2), 4.0);
  EXPECT_FALSE(star.homogeneous_network());
}

TEST(Platform, Validation) {
  EXPECT_THROW(Platform{std::vector<double>{}}, InvalidArgument);
  EXPECT_THROW(Platform{std::vector<double>{0.0}}, InvalidArgument);
  Platform p({1.0, 1.0});
  EXPECT_THROW(p.set_bandwidth(0, 0, 1.0), InvalidArgument);
  EXPECT_THROW(p.set_bandwidth(0, 1, 0.0), InvalidArgument);
  EXPECT_THROW(p.set_bandwidth(0, 5, 1.0), InvalidArgument);
}

TEST(Mapping, RejectsProcessorOnTwoStages) {
  Application app = Application::uniform(2);
  Platform platform = Platform::fully_connected({1.0, 1.0}, 1.0);
  EXPECT_THROW(Mapping(app, platform, {{0}, {0}}), InvalidArgument);
}

TEST(Mapping, RejectsEmptyTeamAndBadIndices) {
  Application app = Application::uniform(2);
  Platform platform = Platform::fully_connected({1.0, 1.0}, 1.0);
  EXPECT_THROW(Mapping(app, platform, {{0}, {}}), InvalidArgument);
  EXPECT_THROW(Mapping(app, platform, {{0}, {7}}), InvalidArgument);
  EXPECT_THROW(Mapping(app, platform, {{0}}), InvalidArgument);
}

TEST(Mapping, RequiresBandwidthOnUsedLinks) {
  Application app = Application::uniform(2);
  Platform platform({1.0, 1.0});  // no links set
  EXPECT_THROW(Mapping(app, platform, {{0}, {1}}), InvalidArgument);
  // A zero-size file needs no link.
  Application zero_file({1.0, 1.0}, {0.0});
  EXPECT_NO_THROW(Mapping(zero_file, platform, {{0}, {1}}));
}

TEST(Mapping, StageOfAndTeamIndex) {
  Mapping mapping = testing::replicated_chain_mapping(2, 3, 1);
  EXPECT_EQ(mapping.stage_of(0), 0u);
  EXPECT_EQ(mapping.stage_of(2), 1u);
  EXPECT_EQ(mapping.stage_of(5), 2u);
  EXPECT_EQ(mapping.team_index_of(3), 1u);
  EXPECT_EQ(mapping.replication(1), 3u);
}

struct PathCountCase {
  std::vector<std::size_t> replications;
  std::int64_t expected_paths;
};

class PathCountTest : public ::testing::TestWithParam<PathCountCase> {};

// Proposition 1: the number of round-robin paths is lcm(R_1, .., R_N).
TEST_P(PathCountTest, MatchesLcm) {
  const auto& c = GetParam();
  const std::size_t n = c.replications.size();
  std::size_t total = 0;
  for (std::size_t r : c.replications) total += r;
  Application app = Application::uniform(n);
  Platform platform =
      Platform::fully_connected(std::vector<double>(total, 1.0), 1.0);
  std::vector<std::vector<std::size_t>> teams(n);
  std::size_t next = 0;
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = 0; k < c.replications[i]; ++k)
      teams[i].push_back(next++);
  Mapping mapping(app, platform, teams);
  EXPECT_EQ(mapping.num_paths(), c.expected_paths);

  // Every path follows the round-robin rule.
  for (std::int64_t j = 0; j < mapping.num_paths(); ++j) {
    const auto path = mapping.path(j);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(path[i],
                teams[i][static_cast<std::size_t>(j) % c.replications[i]]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Proposition1, PathCountTest,
    ::testing::Values(PathCountCase{{1, 1, 1}, 1}, PathCountCase{{2, 3}, 6},
                      PathCountCase{{2, 4}, 4}, PathCountCase{{3, 3, 3}, 3},
                      PathCountCase{{1, 3, 4, 5}, 60},
                      PathCountCase{{2, 6, 4}, 12},
                      // Example A of Figure 1: 1, 2, 3, 1 -> 6 paths.
                      PathCountCase{{1, 2, 3, 1}, 6}));

TEST(Mapping, PathRejectsOutOfRangeIndices) {
  // Regression: path(j) used to silently return path(j mod m) for
  // j >= num_paths(), masking index bugs in callers. Both bounds now throw.
  Mapping mapping = testing::replicated_chain_mapping(2, 3, 1);  // m = 6
  ASSERT_EQ(mapping.num_paths(), 6);
  EXPECT_NO_THROW(mapping.path(0));
  EXPECT_NO_THROW(mapping.path(5));
  EXPECT_THROW(mapping.path(6), InvalidArgument);
  EXPECT_THROW(mapping.path(7), InvalidArgument);
  EXPECT_THROW(mapping.path(-1), InvalidArgument);
}

TEST(Mapping, SharesInstanceAcrossConstructionPaths) {
  const InstancePtr instance = make_instance(
      Application::uniform(2), Platform::fully_connected({1.0, 2.0, 3.0}, 4.0));
  ASSERT_EQ(instance.use_count(), 1);

  const Mapping a(instance, {{0}, {1, 2}});
  const Mapping b(instance, {{0, 1}, {2}});
  // Mappings reference the instance, they do not copy it.
  EXPECT_EQ(a.instance().get(), instance.get());
  EXPECT_EQ(b.instance().get(), instance.get());
  EXPECT_EQ(instance.use_count(), 3);

  // Copying a mapping shares too (no bandwidth-matrix duplication).
  const Mapping c = a;
  EXPECT_EQ(c.instance().get(), instance.get());
  EXPECT_EQ(instance.use_count(), 4);

  // The compatibility constructor wraps its arguments into a fresh
  // instance of its own.
  const Mapping legacy(Application::uniform(2),
                       Platform::fully_connected({1.0, 1.0}, 1.0),
                       {{0}, {1}});
  EXPECT_NE(legacy.instance().get(), instance.get());
  EXPECT_EQ(legacy.instance().use_count(), 1);
}

TEST(Mapping, WithTeamsSharesInstanceAndRevalidatesTouchedTeams) {
  // P0 -> P1 exists, P0 -> P2 does not: deriving teams that use the
  // missing link must throw when (and only when) the touched list names
  // the stage whose team changed.
  Application app = Application::uniform(2);
  Platform platform({1.0, 1.0, 1.0});
  platform.set_bandwidth(0, 1, 1.0);
  const Mapping base(make_instance(std::move(app), std::move(platform)),
                     {{0}, {1}});

  // A valid derive shares the instance allocation.
  const Mapping same = Mapping::with_teams(base, {{0}, {1}}, {});
  EXPECT_EQ(same.instance().get(), base.instance().get());
  EXPECT_EQ(same.num_paths(), 1);

  // Moving P2 into stage 1 uses the missing (0, 2) link; naming stage 1 as
  // touched triggers the revalidation of column 0.
  EXPECT_THROW(Mapping::with_teams(base, {{0}, {1, 2}}, {1}),
               InvalidArgument);

  // Structural checks always run, touched or not.
  EXPECT_THROW(Mapping::with_teams(base, {{0}, {}}, {1}), InvalidArgument);
  EXPECT_THROW(Mapping::with_teams(base, {{0}, {1}, {2}}, {}),
               InvalidArgument);
  EXPECT_THROW(Mapping::with_teams(base, {{0}, {1}}, {5}), InvalidArgument);
}

TEST(Mapping, CompAndCommTimes) {
  Mapping mapping = testing::chain_mapping({2.0, 4.0}, {3.0});
  EXPECT_DOUBLE_EQ(mapping.comp_time(0), 2.0);
  EXPECT_DOUBLE_EQ(mapping.comp_time(1), 4.0);
  EXPECT_DOUBLE_EQ(mapping.comm_time(0, 1), 3.0);
  EXPECT_THROW(mapping.comm_time(1, 0), InvalidArgument);
}

TEST(Mapping, CycleTimeChainNoReplication) {
  Mapping mapping = testing::chain_mapping({2.0, 4.0, 1.0}, {3.0, 5.0});
  const CycleTime ct0 = mapping.cycle_time(0);
  EXPECT_DOUBLE_EQ(ct0.input, 0.0);  // first stage receives nothing
  EXPECT_DOUBLE_EQ(ct0.compute, 2.0);
  EXPECT_DOUBLE_EQ(ct0.output, 3.0);
  const CycleTime ct1 = mapping.cycle_time(1);
  EXPECT_DOUBLE_EQ(ct1.input, 3.0);
  EXPECT_DOUBLE_EQ(ct1.compute, 4.0);
  EXPECT_DOUBLE_EQ(ct1.output, 5.0);
  // Overlap: max of the three; Strict: their sum.
  EXPECT_DOUBLE_EQ(ct1.exec(ExecutionModel::kOverlap), 5.0);
  EXPECT_DOUBLE_EQ(ct1.exec(ExecutionModel::kStrict), 12.0);
  EXPECT_DOUBLE_EQ(mapping.max_cycle_time(ExecutionModel::kOverlap), 5.0);
  EXPECT_DOUBLE_EQ(mapping.max_cycle_time(ExecutionModel::kStrict), 12.0);
}

TEST(Mapping, CycleTimeWithReplication) {
  // Stage 2 replicated on two processors: each handles every other data
  // set, so its per-data-set compute time halves; C_comp uses the slowest
  // team member (§2.2).
  Application app = Application::uniform(2);
  Platform platform({1.0, 1.0, 0.5});  // P2 is half speed
  platform.set_bandwidth(0, 1, 0.5);   // comm time 2
  platform.set_bandwidth(0, 2, 0.25);  // comm time 4
  Mapping mapping(app, platform, {{0}, {1, 2}});

  // Per-processor busy time per global data set: c_p / R.
  EXPECT_DOUBLE_EQ(mapping.cycle_time(1).compute, 0.5);
  EXPECT_DOUBLE_EQ(mapping.cycle_time(2).compute, 1.0);
  // P0 sends alternately over both links: (2 + 4) / 2 per data set.
  EXPECT_DOUBLE_EQ(mapping.cycle_time(0).output, 3.0);
  // P1 receives its file every 2 data sets: 2 / 2 = 1 per data set.
  EXPECT_DOUBLE_EQ(mapping.cycle_time(1).input, 1.0);
  EXPECT_DOUBLE_EQ(mapping.cycle_time(2).input, 2.0);
}

TEST(StochasticTiming, BuildersCoverUsedResourcesOnly) {
  Mapping mapping = testing::replicated_chain_mapping(1, 2, 1);
  const StochasticTiming det = StochasticTiming::deterministic(mapping);
  EXPECT_DOUBLE_EQ(det.comp(0)->mean(), mapping.comp_time(0));
  EXPECT_DOUBLE_EQ(det.comm(0, 1)->mean(), mapping.comm_time(0, 1));
  EXPECT_DOUBLE_EQ(det.comp(0)->variance(), 0.0);
  EXPECT_THROW(det.comm(3, 0), InvalidArgument);  // unused direction

  const StochasticTiming exp = StochasticTiming::exponential(mapping);
  EXPECT_DOUBLE_EQ(exp.comp(1)->mean(), mapping.comp_time(1));
  EXPECT_TRUE(exp.all_exponential());
  EXPECT_TRUE(exp.all_nbue());

  const StochasticTiming heavy =
      StochasticTiming::scaled(mapping, *make_gamma(0.5, 1.0));
  EXPECT_DOUBLE_EQ(heavy.comp(1)->mean(), mapping.comp_time(1));
  EXPECT_FALSE(heavy.all_nbue());
  EXPECT_FALSE(heavy.all_exponential());
}

TEST(StochasticTiming, OverridesApply) {
  Mapping mapping = testing::chain_mapping({1.0, 1.0}, {1.0});
  StochasticTiming timing = StochasticTiming::deterministic(mapping);
  timing.set_comp(0, make_exponential_mean(5.0));
  EXPECT_DOUBLE_EQ(timing.comp(0)->mean(), 5.0);
  EXPECT_THROW(timing.set_comp(0, nullptr), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
