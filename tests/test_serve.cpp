// Protocol battery for streamflow serve (serve/server.hpp).
//
// What is pinned here:
//  * the golden transcript: the checked-in request fixture replayed through
//    run_serve_loop must reproduce the checked-in response bytes exactly —
//    in every build configuration, for every thread count and batch size,
//    warm or cold pattern store;
//  * malformed-request rejection: truncated JSON, unknown ops, bad field
//    types, duplicate keys, and nested values each produce an "ok":false
//    diagnostic WITHOUT stopping the loop;
//  * cross-request determinism: the same request line yields byte-identical
//    responses no matter how often or in what interleaving it is served
//    (Debug builds additionally assert this inside the loop itself);
//  * graceful shutdown: the shutdown request's batch is drained and
//    answered, lines after it are never read.
#include "serve/server.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/pattern_store.hpp"
#include "serve/protocol.hpp"

#ifndef STREAMFLOW_FIXTURE_DIR
#define STREAMFLOW_FIXTURE_DIR "tests/fixtures"
#endif

namespace streamflow {
namespace {

std::string read_fixture(const std::string& name) {
  const std::string path =
      std::string(STREAMFLOW_FIXTURE_DIR) + "/serve/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

/// The analyze request of the golden transcript, re-usable standalone.
std::string analyze_request_line() {
  const std::string requests = read_fixture("requests.jsonl");
  std::istringstream in(requests);
  std::string line;
  std::getline(in, line);  // ping
  std::getline(in, line);  // analyze
  EXPECT_NE(line.find("\"analyze\""), std::string::npos);
  return line;
}

TEST(Serve, GoldenTranscript) {
  PatternStore store(4);
  ServeOptions options;
  options.threads = 2;
  options.store = &store;

  std::istringstream in(read_fixture("requests.jsonl"));
  std::ostringstream out;
  const ServeResult result = run_serve_loop(in, out, options);

  EXPECT_EQ(out.str(), read_fixture("responses.golden.jsonl"));
  EXPECT_EQ(result.requests, 7u);
  EXPECT_EQ(result.responses, 7u);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_TRUE(result.shutdown_requested);
}

TEST(Serve, BytesInvariantAcrossThreadsBatchingAndWarmth) {
  const std::string requests = read_fixture("requests.jsonl");
  const std::string golden = read_fixture("responses.golden.jsonl");

  PatternStore shared(4);
  struct Config {
    std::size_t threads;
    std::size_t max_batch;
    PatternStore* store;
  };
  // The last two configs reuse `shared`: the second of them serves every
  // analyze/search request from a warm store and must still emit the same
  // bytes as the cold run (its shutdown happens to reset nothing).
  const Config configs[] = {{1, 1, nullptr},
                            {4, 8, nullptr},
                            {2, 16, &shared},
                            {3, 5, &shared}};
  for (const Config& config : configs) {
    ServeOptions options;
    options.threads = config.threads;
    options.max_batch = config.max_batch;
    options.store = config.store;
    std::istringstream in(requests);
    std::ostringstream out;
    run_serve_loop(in, out, options);
    EXPECT_EQ(out.str(), golden)
        << config.threads << " threads, batch " << config.max_batch
        << (config.store ? ", shared store" : ", no store");
  }
  EXPECT_GT(shared.size(), 0u);
}

TEST(Serve, MalformedRequestsAreRejectedWithDiagnostics) {
  ServeOptions options;
  options.threads = 1;
  const std::string analyze = analyze_request_line();
  const std::string instance_field =
      analyze.substr(analyze.find("\"instance\""));

  struct Case {
    const char* label;
    std::string line;
    const char* expect;  // substring of the error diagnostic
  };
  const Case cases[] = {
      {"truncated JSON", "{\"op\":\"analyze\"", "truncated request?"},
      {"unknown op", "{\"op\":\"frobnicate\"}", "unknown op 'frobnicate'"},
      {"bad seed", "{\"op\":\"simulate\",\"seed\":-1," + instance_field,
       "must be a nonnegative integer"},
      {"missing instance", "{\"op\":\"analyze\"}", "instance"},
      {"unknown field", "{\"op\":\"ping\",\"volume\":11}",
       "unknown field(s) for this op"},
      {"duplicate key", "{\"op\":\"ping\",\"op\":\"ping\"}",
       "duplicate field"},
      {"nested value", "{\"op\":\"analyze\",\"instance\":[1,2]}",
       "not part of the flat protocol"},
      {"bad model",
       "{\"op\":\"analyze\",\"model\":\"fast\"," + instance_field,
       "must be "},
  };
  for (const Case& test_case : cases) {
    const HandledRequest handled = handle_request(test_case.line, options);
    EXPECT_TRUE(handled.is_error) << test_case.label;
    EXPECT_FALSE(handled.is_shutdown) << test_case.label;
    EXPECT_NE(handled.response.find("\"ok\":false"), std::string::npos)
        << test_case.label;
    EXPECT_NE(handled.response.find(test_case.expect), std::string::npos)
        << test_case.label << ": " << handled.response;
  }

  // The loop survives every rejection and keeps serving.
  std::ostringstream stream_text;
  for (const Case& test_case : cases) stream_text << test_case.line << "\n";
  stream_text << "{\"id\":99,\"op\":\"ping\"}\n";
  std::istringstream in(stream_text.str());
  std::ostringstream out;
  const ServeResult result = run_serve_loop(in, out, options);
  EXPECT_EQ(result.requests, 9u);
  EXPECT_EQ(result.errors, 8u);
  EXPECT_FALSE(result.shutdown_requested);
  EXPECT_NE(out.str().find("{\"id\":99,\"ok\":true,\"result\":{\"pong\":true}}"),
            std::string::npos);
}

TEST(Serve, RepeatedAndInterleavedRequestsAreByteIdentical) {
  PatternStore store(4);
  ServeOptions options;
  options.threads = 2;
  options.store = &store;
  const std::string analyze = analyze_request_line();

  // Point evaluation: the same line handled repeatedly — cold, then against
  // a progressively warmer store — produces one byte string.
  const std::string first = handle_request(analyze, options).response;
  for (int k = 0; k < 3; ++k) {
    EXPECT_EQ(handle_request(analyze, options).response, first);
  }

  // Interleaved inside one stream: every repetition of a request line must
  // emit the identical response line. (Debug builds re-assert this inside
  // the loop's replay map; this test keeps Release honest too.)
  std::ostringstream stream_text;
  for (int k = 0; k < 3; ++k) {
    stream_text << analyze << "\n";
    stream_text << "{\"op\":\"ping\"}\n";
  }
  std::istringstream in(stream_text.str());
  std::ostringstream out;
  run_serve_loop(in, out, options);

  std::istringstream lines(out.str());
  std::vector<std::string> responses;
  std::string line;
  while (std::getline(lines, line)) responses.push_back(line);
  ASSERT_EQ(responses.size(), 6u);
  for (std::size_t k = 0; k < 6; k += 2) {
    EXPECT_EQ(responses[k], first);
    EXPECT_EQ(responses[k + 1], "{\"ok\":true,\"result\":{\"pong\":true}}");
  }
}

TEST(Serve, ShutdownDrainsItsBatchAndStopsReading) {
  ServeOptions options;
  options.threads = 1;
  options.max_batch = 1;  // one request per batch: lines after shutdown
                          // must never be read
  std::istringstream in(
      "{\"id\":1,\"op\":\"ping\"}\n"
      "{\"id\":2,\"op\":\"shutdown\"}\n"
      "{\"id\":3,\"op\":\"ping\"}\n");
  std::ostringstream out;
  const ServeResult result = run_serve_loop(in, out, options);
  EXPECT_EQ(result.requests, 2u);
  EXPECT_EQ(result.responses, 2u);
  EXPECT_TRUE(result.shutdown_requested);
  EXPECT_EQ(out.str(),
            "{\"id\":1,\"ok\":true,\"result\":{\"pong\":true}}\n"
            "{\"id\":2,\"ok\":true,\"result\":{\"stopping\":true}}\n");
  // The post-shutdown line is still sitting in the stream, unread.
  std::string leftover;
  EXPECT_TRUE(std::getline(in, leftover).good());
  EXPECT_EQ(leftover, "{\"id\":3,\"op\":\"ping\"}");
}

TEST(Serve, StatsReportsLiveStoreCounters) {
  // stats is the one op excluded from the determinism contract: it reports
  // live store state.
  ServeOptions storeless;
  storeless.threads = 1;
  EXPECT_EQ(handle_request("{\"op\":\"stats\"}", storeless).response,
            "{\"ok\":true,\"result\":{\"store\":false}}");

  PatternStore store(4);
  ServeOptions options;
  options.threads = 1;
  options.store = &store;
  const std::string cold = handle_request("{\"op\":\"stats\"}", options).response;
  EXPECT_NE(cold.find("\"store\":true"), std::string::npos);
  EXPECT_NE(cold.find("\"entries\":0"), std::string::npos);
  EXPECT_NE(cold.find("\"shards\":4"), std::string::npos);

  (void)handle_request(analyze_request_line(), options);
  const std::string warm = handle_request("{\"op\":\"stats\"}", options).response;
  EXPECT_EQ(warm.find("\"entries\":0"), std::string::npos)
      << "analyze should have published patterns: " << warm;
}

TEST(Serve, ResponseIdEchoPreservesRawToken) {
  ServeOptions options;
  options.threads = 1;
  // String, integer, and fractional ids echo back in their original form;
  // a request without an id omits the field entirely.
  EXPECT_EQ(handle_request("{\"id\":\"a-7\",\"op\":\"ping\"}", options).response,
            "{\"id\":\"a-7\",\"ok\":true,\"result\":{\"pong\":true}}");
  EXPECT_EQ(handle_request("{\"id\":42,\"op\":\"ping\"}", options).response,
            "{\"id\":42,\"ok\":true,\"result\":{\"pong\":true}}");
  EXPECT_EQ(handle_request("{\"op\":\"ping\"}", options).response,
            "{\"ok\":true,\"result\":{\"pong\":true}}");
  // The id survives into error responses when it parsed before the failure.
  const std::string error =
      handle_request("{\"id\":13,\"op\":\"frobnicate\"}", options).response;
  EXPECT_NE(error.find("\"id\":13"), std::string::npos);
  EXPECT_NE(error.find("\"ok\":false"), std::string::npos);
}

}  // namespace
}  // namespace streamflow
