// Determinism and statistics of the parallel Monte-Carlo experiment engine.
//
// The contract under test: ExperimentRunner output is a pure function of
// (seed, replications, body) — bit-identical for any thread count, equal to
// a hand-rolled serial loop over the same substreams, with CI half-widths
// shrinking like 1/sqrt(R).
#include "engine/experiment_runner.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis_context.hpp"
#include "core/heuristics.hpp"
#include "engine/sim_replication.hpp"
#include "engine/stream_factory.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"

namespace streamflow {
namespace {

/// A cheap stochastic body: mean and max of 1,000 exponential draws.
std::vector<double> toy_body(Prng& prng, std::size_t /*replication*/) {
  double sum = 0.0, max = 0.0;
  for (int i = 0; i < 1'000; ++i) {
    const double x = prng.exponential(2.0);
    sum += x;
    max = std::max(max, x);
  }
  return {sum / 1'000.0, max};
}

ExperimentOptions experiment(std::size_t replications, std::size_t threads,
                             std::uint64_t seed = 0xFEED) {
  ExperimentOptions options;
  options.replications = replications;
  options.threads = threads;
  options.seed = seed;
  return options;
}

TEST(ExperimentRunner, BitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> metrics{"mean", "max"};
  ReplicatedResult reference;
  for (const std::size_t threads : {1, 2, 8}) {
    ExperimentRunner runner(experiment(16, threads));
    const ReplicatedResult result = runner.run(metrics, toy_body);
    EXPECT_EQ(result.threads_used, std::min<std::size_t>(threads, 16));
    if (threads == 1) {
      reference = result;
      continue;
    }
    ASSERT_EQ(result.per_replication.size(),
              reference.per_replication.size());
    for (std::size_t k = 0; k < result.per_replication.size(); ++k)
      EXPECT_EQ(result.per_replication[k], reference.per_replication[k])
          << "replication " << k << " with " << threads << " threads";
    for (std::size_t m = 0; m < metrics.size(); ++m) {
      // Aggregation is serial in replication order, so summaries are
      // bit-identical too, not merely close.
      EXPECT_EQ(result.summaries[m].mean, reference.summaries[m].mean);
      EXPECT_EQ(result.summaries[m].stddev, reference.summaries[m].stddev);
      EXPECT_EQ(result.summaries[m].min, reference.summaries[m].min);
      EXPECT_EQ(result.summaries[m].max, reference.summaries[m].max);
    }
  }
}

TEST(ExperimentRunner, EqualsHandRolledSerialLoopOverSubstreams) {
  ExperimentRunner runner(experiment(12, 4, 777));
  const ReplicatedResult result = runner.run({"mean", "max"}, toy_body);

  StreamFactory factory(777);
  for (std::size_t k = 0; k < 12; ++k) {
    Prng prng = factory.stream(k);
    const std::vector<double> expected = toy_body(prng, k);
    EXPECT_EQ(result.per_replication[k], expected) << "replication " << k;
  }
}

TEST(ExperimentRunner, SmallerRunIsAPrefixOfALargerOne) {
  // Replication k always consumes substream k, so shrinking R keeps the
  // surviving rows bit-identical — experiments can be extended without
  // invalidating earlier replications.
  ExperimentRunner small(experiment(4, 2));
  ExperimentRunner large(experiment(16, 8));
  const ReplicatedResult a = small.run({"mean", "max"}, toy_body);
  const ReplicatedResult b = large.run({"mean", "max"}, toy_body);
  for (std::size_t k = 0; k < 4; ++k)
    EXPECT_EQ(a.per_replication[k], b.per_replication[k]);
}

TEST(ExperimentRunner, CiHalfWidthShrinksLikeOneOverSqrtR) {
  // The stddev estimate is very noisy at R = 4 (relative error ~40%), so
  // average the CI half-width over several independent experiment seeds
  // before checking the 1/sqrt(R) law.
  const std::vector<std::string> metrics{"mean", "max"};
  std::vector<double> ci;
  for (const std::size_t r : {4, 16, 64}) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      ExperimentRunner runner(experiment(r, 0, 0xC1 + seed));
      total += runner.run(metrics, toy_body).metric("mean").ci95_halfwidth;
    }
    ci.push_back(total / 8.0);
  }
  EXPECT_LT(ci[1], ci[0]);
  EXPECT_LT(ci[2], ci[1]);
  // The 16x increase in R shrinks the averaged CI by about sqrt(16) = 4,
  // stretched further by the Student-t factor: at R = 4 the 97.5% quantile
  // is 3.182 while at R = 64 it is 1.96, so the expected ratio is about
  // 4 * 3.182 / 1.96 = 6.5.
  const double shrink = ci[0] / ci[2];
  EXPECT_GT(shrink, 4.0);
  EXPECT_LT(shrink, 10.5);
}

TEST(ExperimentRunner, PipelineReplicasBitIdenticalAcrossThreadCounts) {
  const Mapping mapping = testing::replicated_chain_mapping(2, 3, 2, 4.0, 2.0);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  PipelineSimOptions sim;
  sim.data_sets = 2'000;

  ReplicatedResult reference;
  for (const std::size_t threads : {1, 2, 8}) {
    const ReplicatedResult result = run_replicated_pipeline(
        mapping, ExecutionModel::kOverlap, timing, sim,
        experiment(8, threads, 0xABCD));
    if (threads == 1) {
      reference = result;
      continue;
    }
    for (std::size_t k = 0; k < 8; ++k)
      EXPECT_EQ(result.per_replication[k], reference.per_replication[k])
          << "replication " << k << " with " << threads << " threads";
  }
  // And the parallel result equals serial injected-Prng simulation calls.
  StreamFactory factory(0xABCD);
  for (std::size_t k = 0; k < 8; ++k) {
    Prng prng = factory.stream(k);
    const PipelineSimResult expected = simulate_pipeline(
        mapping, ExecutionModel::kOverlap, timing, prng, sim);
    EXPECT_EQ(reference.per_replication[k][0], expected.throughput);
    EXPECT_EQ(reference.per_replication[k][4], expected.makespan);
  }
}

TEST(ExperimentRunner, TegReplicasBitIdenticalAcrossThreadCounts) {
  const Mapping mapping = testing::replicated_chain_mapping(1, 2, 1, 2.0, 1.0);
  const TimedEventGraph graph = build_tpn(mapping, ExecutionModel::kOverlap);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  const std::vector<DistributionPtr> laws = transition_laws(graph, timing);
  TegSimOptions sim;
  sim.rounds = 500;

  ReplicatedResult reference;
  for (const std::size_t threads : {1, 2, 8}) {
    const ReplicatedResult result = run_replicated_teg(
        graph, laws, sim, experiment(8, threads, 0xBEE));
    if (threads == 1) {
      reference = result;
      continue;
    }
    for (std::size_t k = 0; k < 8; ++k)
      EXPECT_EQ(result.per_replication[k], reference.per_replication[k])
          << "replication " << k << " with " << threads << " threads";
  }
}

TEST(ExperimentRunner, ReplicatedSearchSharesOneInstanceAcrossThreads) {
  // The shared immutable instance must be safe to read from every pool
  // thread at once (this is what makes the by-value -> shared_ptr Mapping
  // refactor thread-correct, and what the TSan CI job exercises): fan a
  // replicated mapping search over the pool, every replication reading the
  // SAME Instance allocation through its own AnalysisContext. Results must
  // be bit-identical across replications and thread counts, and identical
  // to a serial search.
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  const InstancePtr instance = make_instance(std::move(app),
                                             std::move(platform));
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = 2;

  auto search_body = [&](Prng& prng, std::size_t) -> std::vector<double> {
    // Each replication searches with its own seed (drawn from its
    // substream) but reads the shared instance concurrently.
    MappingSearchOptions local = options;
    local.seed = prng();
    AnalysisContext context;  // per-replication context, shared instance
    const auto result = optimize_mapping(instance, local, context);
    SF_ASSERT(result.mapping.instance().get() == instance.get(),
              "search copied the shared instance");
    return {result.throughput, static_cast<double>(result.evaluations)};
  };

  ReplicatedResult reference;
  for (const std::size_t threads : {1, 4}) {
    const ReplicatedResult result =
        ExperimentRunner(experiment(6, threads, 0xD15C))
            .run({"throughput", "evaluations"}, search_body);
    if (threads == 1) {
      reference = result;
      continue;
    }
    for (std::size_t k = 0; k < 6; ++k)
      EXPECT_EQ(result.per_replication[k], reference.per_replication[k])
          << "replication " << k << " with " << threads << " threads";
  }
  // The instance survives the fan-out with only our handle left.
  EXPECT_EQ(instance.use_count(), 1);
}

TEST(ExperimentRunner, Validation) {
  ExperimentOptions zero_replications;
  zero_replications.replications = 0;
  EXPECT_THROW(ExperimentRunner{zero_replications}, InvalidArgument);

  ExperimentRunner runner{experiment(4, 2)};
  EXPECT_THROW(runner.run({}, toy_body), InvalidArgument);
  EXPECT_THROW(runner.run({"mean"}, ReplicationBody{}), InvalidArgument);
  // A body returning the wrong row width is rejected.
  EXPECT_THROW(
      runner.run({"a", "b", "c"},
                 [](Prng&, std::size_t) { return std::vector<double>{1.0}; }),
      InvalidArgument);
}

TEST(ExperimentRunner, WorkerExceptionsPropagateToCaller) {
  ExperimentRunner runner(experiment(8, 4));
  EXPECT_THROW(runner.run({"x"},
                          [](Prng& prng, std::size_t k) -> std::vector<double> {
                            if (k == 5) throw NumericalError("boom in worker");
                            return {prng.uniform01()};
                          }),
               NumericalError);
}

TEST(ExperimentRunner, InvalidSimOptionsFailBeforeFanOut) {
  const Mapping mapping = testing::chain_mapping({1.0}, {});
  const StochasticTiming timing = StochasticTiming::deterministic(mapping);
  PipelineSimOptions bad;
  bad.warmup_fraction = 1.5;
  EXPECT_THROW(run_replicated_pipeline(mapping, ExecutionModel::kOverlap,
                                       timing, bad, experiment(4, 2)),
               InvalidArgument);
}

}  // namespace
}  // namespace streamflow
