// The SIMD-batched sampling layer's core contract: batching changes HOW FAST
// draws are materialized, never WHICH draws. Every test here pins
// byte-equality between a batch-filled stream and the plain scalar Prng on
// every kernel compiled into this build (scalar fallback always; SSE4/AVX2
// when the host supports them), including refill-boundary crossings, partial
// drains, and the batched transform kernels of the inversion families.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/buffered_prng.hpp"
#include "common/prng.hpp"
#include "common/simd_fill.hpp"
#include "dist/batch_sampler.hpp"
#include "dist/distribution.hpp"
#include "engine/sim_replication.hpp"
#include "model/timing.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/teg_sim.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"

namespace streamflow {
namespace {

using testing::replicated_chain_mapping;
using testing::single_comm_mapping;

// A deliberately small block (3 refills over 300 draws) so every test
// crosses refill boundaries many times. Must be a multiple of kLanes * 8.
constexpr std::size_t kSmallBlock = simd::kLanes * 8 * 3;

std::vector<simd::Isa> isas() { return simd::available_isas(); }

TEST(SimdDispatch, ScalarAlwaysAvailableAndAutoResolves) {
  EXPECT_TRUE(simd::isa_available(simd::Isa::kScalar));
  const simd::Isa best = simd::best_isa();
  EXPECT_NE(best, simd::Isa::kAuto);
  EXPECT_TRUE(simd::isa_available(best));
  EXPECT_NE(simd::fill_fn(simd::Isa::kAuto), nullptr);
  EXPECT_NE(simd::fill_u01_fn(simd::Isa::kAuto), nullptr);
}

TEST(BufferedPrng, RawStreamByteEqualOnEveryIsa) {
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    Prng scalar(12345);
    BufferedPrng buffered(Prng(12345), isa, kSmallBlock);
    for (std::size_t i = 0; i < 10 * kSmallBlock + 7; ++i) {
      ASSERT_EQ(buffered.next_u64(), scalar()) << "draw " << i;
    }
  }
}

TEST(BufferedPrng, ContinuesFromMidStreamState) {
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    Prng scalar(99);
    for (int i = 0; i < 1234; ++i) scalar();  // advance off block alignment
    BufferedPrng buffered(scalar, isa, kSmallBlock);
    Prng reference = scalar;
    for (std::size_t i = 0; i < 3 * kSmallBlock; ++i) {
      ASSERT_EQ(buffered.next_u64(), reference()) << "draw " << i;
    }
  }
}

TEST(BufferedPrng, Uniform01ByteEqualIncludingPartialDrains) {
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    Prng scalar(7);
    BufferedPrng buffered(Prng(7), isa, kSmallBlock);
    // Interleave scalar-wise consumption with bulk fills of awkward sizes so
    // the bulk path starts both block-aligned and mid-block.
    const std::size_t chunks[] = {5,   kSmallBlock - 5, 1, 2 * kSmallBlock + 3,
                                  129, kSmallBlock,     31};
    for (const std::size_t chunk : chunks) {
      ASSERT_EQ(buffered.uniform01(), scalar.uniform01());
      std::vector<double> bulk(chunk);
      buffered.fill_uniform01(bulk.data(), bulk.size());
      for (std::size_t i = 0; i < chunk; ++i) {
        const double expected = scalar.uniform01();
        ASSERT_EQ(bulk[i], expected) << "chunk " << chunk << " index " << i;
      }
    }
  }
}

TEST(BufferedPrng, TakeCoversTheStreamInOrder) {
  Prng scalar(2024);
  BufferedPrng buffered(Prng(2024), simd::Isa::kAuto, kSmallBlock);
  std::size_t covered = 0;
  while (covered < 5 * kSmallBlock) {
    const std::uint64_t* run = nullptr;
    const std::size_t n = buffered.take(&run, 37);  // never aligned to blocks
    ASSERT_GE(n, 1u);
    ASSERT_LE(n, 37u);
    for (std::size_t i = 0; i < n; ++i) ASSERT_EQ(run[i], scalar());
    covered += n;
  }
}

TEST(BufferedPrng, TransformsMatchScalarSource) {
  // The inherited RandomSource transforms (normal01 with its cached second
  // deviate, gamma, uniform_index rejection loops) consume the buffered raw
  // stream draw for draw like the scalar engine.
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    Prng scalar(31337);
    BufferedPrng buffered(Prng(31337), isa, kSmallBlock);
    for (int i = 0; i < 500; ++i) {
      ASSERT_EQ(buffered.normal01(), scalar.normal01());
      ASSERT_EQ(buffered.gamma(2.5), scalar.gamma(2.5));
      ASSERT_EQ(buffered.uniform_index(97), scalar.uniform_index(97));
      ASSERT_EQ(buffered.exponential(3.0), scalar.exponential(3.0));
    }
  }
}

TEST(SampleBatch, InversionFamiliesBitIdenticalToScalarLoop) {
  const DistributionPtr laws[] = {
      make_constant(2.5),        make_exponential_rate(1.7),
      make_uniform(0.5, 4.0),    make_weibull(2.0, 1.5),
      make_pareto(3.0, 1.0),     make_truncated_normal(10.0, 3.0),
      make_gamma(2.0, 1.0),      make_beta(2.0, 3.0, 1.0),
      make_lognormal(0.0, 0.5),  make_hyperexponential(0.3, 1.0, 4.0),
  };
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    for (const DistributionPtr& law : laws) {
      SCOPED_TRACE(law->name());
      Prng scalar(4242);
      BufferedPrng buffered(Prng(4242), isa, kSmallBlock);
      std::vector<double> batch(777);  // not a multiple of any block size
      law->sample_batch(buffered, batch.data(), batch.size());
      for (std::size_t i = 0; i < batch.size(); ++i) {
        const double expected = law->sample(scalar);
        ASSERT_EQ(batch[i], expected) << "index " << i;
      }
    }
  }
}

TEST(BatchSamplerTest, ServesTheExactScalarSequence) {
  const DistributionPtr laws[] = {make_exponential_rate(0.8),
                                  make_gamma(0.7, 2.0)};
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    for (const DistributionPtr& law : laws) {
      SCOPED_TRACE(law->name());
      Prng stream(5);
      const Prng reference = stream;  // BatchSampler must not touch `stream`
      BatchSampler sampler(law, stream, isa, kSmallBlock, 16);
      Prng scalar = reference;
      for (int i = 0; i < 1000; ++i) {
        ASSERT_EQ(sampler.next(), law->sample(scalar)) << "draw " << i;
      }
      ASSERT_EQ(stream.state(), reference.state());
    }
  }
}

// --- simulator-level pinning ---------------------------------------------

TegSimOptions teg_options(simd::Isa isa) {
  TegSimOptions options;
  options.rounds = 400;
  options.refill_isa = isa;
  return options;
}

TEST(SimSampling, TegResultsIdenticalAcrossRefillKernels) {
  const Mapping mapping = single_comm_mapping(3, 2);
  const TimedEventGraph graph = build_tpn(mapping, ExecutionModel::kOverlap);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  const std::vector<DistributionPtr> laws = transition_laws(graph, timing);

  Prng baseline_prng(11);
  const TegSimResult baseline =
      simulate_teg(graph, laws, baseline_prng, teg_options(simd::Isa::kScalar));
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    Prng prng(11);
    const TegSimResult result =
        simulate_teg(graph, laws, prng, teg_options(isa));
    EXPECT_EQ(result.throughput, baseline.throughput);
    EXPECT_EQ(result.in_order_throughput, baseline.in_order_throughput);
    EXPECT_EQ(result.horizon, baseline.horizon);
    // The injected stream advances identically (exactly one root draw).
    EXPECT_EQ(prng.state(), baseline_prng.state());
  }
}

TEST(SimSampling, PipelineResultsIdenticalAcrossRefillKernels) {
  const Mapping mapping = replicated_chain_mapping(2, 3, 2);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  PipelineSimOptions options;
  options.data_sets = 600;

  options.refill_isa = simd::Isa::kScalar;
  Prng baseline_prng(13);
  const PipelineSimResult baseline = simulate_pipeline(
      mapping, ExecutionModel::kOverlap, timing, baseline_prng, options);
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    options.refill_isa = isa;
    Prng prng(13);
    const PipelineSimResult result = simulate_pipeline(
        mapping, ExecutionModel::kOverlap, timing, prng, options);
    EXPECT_EQ(result.throughput, baseline.throughput);
    EXPECT_EQ(result.makespan, baseline.makespan);
    EXPECT_EQ(result.mean_latency, baseline.mean_latency);
    EXPECT_EQ(prng.state(), baseline_prng.state());
  }
}

TEST(SimSampling, AssociatedPipelineIdenticalAcrossRefillKernels) {
  const Mapping mapping = replicated_chain_mapping(2, 2, 2);
  const DistributionPtr size_law = make_gamma(2.0, 1.0);
  PipelineSimOptions options;
  options.data_sets = 500;
  for (const AssociationScope scope :
       {AssociationScope::kPerDataSet, AssociationScope::kPerStage}) {
    options.refill_isa = simd::Isa::kScalar;
    const PipelineSimResult baseline = simulate_pipeline_associated(
        mapping, ExecutionModel::kStrict, *size_law, options, scope);
    for (const simd::Isa isa : isas()) {
      SCOPED_TRACE(simd::isa_name(isa));
      options.refill_isa = isa;
      const PipelineSimResult result = simulate_pipeline_associated(
          mapping, ExecutionModel::kStrict, *size_law, options, scope);
      EXPECT_EQ(result.throughput, baseline.throughput);
      EXPECT_EQ(result.makespan, baseline.makespan);
    }
  }
}

TEST(SimSampling, BatchedAndScalarCompatAgreeStatistically) {
  // The two modes assign draws to resources differently, so they are
  // different (deterministic) realizations of the same process; their
  // long-run throughputs must agree within Monte-Carlo noise.
  const Mapping mapping = single_comm_mapping(4, 3);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  PipelineSimOptions batched;
  batched.data_sets = 40'000;
  PipelineSimOptions compat = batched;
  compat.sampling = SamplingMode::kScalarCompat;
  const PipelineSimResult a =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, timing, batched);
  const PipelineSimResult b =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, timing, compat);
  EXPECT_NEAR(a.throughput, b.throughput, 0.08 * b.throughput);
}

TEST(SimSampling, ReplicatedTegIdenticalAcrossKernelsAndThreads) {
  const Mapping mapping = single_comm_mapping(2, 2);
  const TimedEventGraph graph = build_tpn(mapping, ExecutionModel::kOverlap);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  const std::vector<DistributionPtr> laws = transition_laws(graph, timing);

  ExperimentOptions exp;
  exp.replications = 6;
  exp.seed = 19;
  exp.threads = 1;
  const ReplicatedResult baseline =
      run_replicated_teg(graph, laws, teg_options(simd::Isa::kScalar), exp);
  for (const simd::Isa isa : isas()) {
    SCOPED_TRACE(simd::isa_name(isa));
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      exp.threads = threads;
      const ReplicatedResult result =
          run_replicated_teg(graph, laws, teg_options(isa), exp);
      ASSERT_EQ(result.per_replication.size(),
                baseline.per_replication.size());
      for (std::size_t r = 0; r < result.per_replication.size(); ++r) {
        ASSERT_EQ(result.per_replication[r], baseline.per_replication[r])
            << "replication " << r << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace streamflow
