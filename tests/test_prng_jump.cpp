// Jump-ahead correctness for the xoshiro256++ engine.
//
// The decisive check is independent of the jump code path: the xoshiro256
// state transition T is linear over GF(2), so T^(2^128) can be computed by
// repeated squaring of the 256x256 transition matrix. Prng::jump() (the
// published jump polynomial) must send every state s to M^(2^128) * s, and
// long_jump() to M^(2^192) * s. The remaining tests cover the stream-
// partitioning properties the experiment engine relies on.
#include "common/prng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <set>
#include <vector>

#include "engine/stream_factory.hpp"

namespace streamflow {
namespace {

using Vec256 = std::array<std::uint64_t, 4>;
using Matrix = std::vector<Vec256>;  // 256 columns, column j = M * e_j

std::uint64_t rotl64(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// One application of the documented xoshiro256 state transition (the state
/// part of Prng::operator(), re-stated here so the matrix is built from the
/// specification, not from the code under test).
Vec256 step(Vec256 s) {
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl64(s[3], 45);
  return s;
}

Vec256 apply(const Matrix& m, const Vec256& v) {
  Vec256 out{};
  for (int j = 0; j < 256; ++j) {
    if ((v[j / 64] >> (j % 64)) & 1ULL) {
      for (int w = 0; w < 4; ++w) out[w] ^= m[j][w];
    }
  }
  return out;
}

Matrix multiply(const Matrix& a, const Matrix& b) {
  Matrix c(256);
  for (int j = 0; j < 256; ++j) c[j] = apply(a, b[j]);
  return c;
}

/// M^(2^power) for the transition matrix M, by `power` squarings.
Matrix transition_power_of_two(int power) {
  Matrix m(256);
  for (int j = 0; j < 256; ++j) {
    Vec256 e{};
    e[j / 64] = 1ULL << (j % 64);
    m[j] = step(e);
  }
  for (int i = 0; i < power; ++i) m = multiply(m, m);
  return m;
}

TEST(PrngJump, JumpEqualsTwoTo128SequentialSteps) {
  const Matrix m128 = transition_power_of_two(128);
  for (const std::uint64_t seed : {0ULL, 1ULL, 42ULL, 0xDEADBEEFULL}) {
    Prng jumped(seed);
    const Vec256 expected = apply(m128, jumped.state());
    jumped.jump();
    EXPECT_EQ(jumped.state(), expected) << "seed " << seed;
  }
}

TEST(PrngJump, LongJumpEqualsTwoTo192SequentialSteps) {
  const Matrix m192 = transition_power_of_two(192);
  Prng jumped(42);
  const Vec256 expected = apply(m192, jumped.state());
  jumped.long_jump();
  EXPECT_EQ(jumped.state(), expected);
}

TEST(PrngJump, JumpCommutesWithStepping) {
  // jump() is a polynomial in the transition, so it commutes with stepping:
  // step-then-jump == jump-then-step (both advance by 2^128 + 1).
  Prng a(7), b(7);
  (void)a();
  a.jump();
  b.jump();
  (void)b();
  EXPECT_EQ(a.state(), b.state());
}

TEST(PrngJump, JumpedStreamNeverCollidesWithOriginal) {
  Prng original(123);
  Prng jumped(123);
  jumped.jump();
  int collisions = 0;
  for (int i = 0; i < 100'000; ++i) {
    if (original() == jumped()) ++collisions;
  }
  EXPECT_EQ(collisions, 0);
}

TEST(PrngJump, JumpDiscardsCachedNormal) {
  // a holds a cached polar deviate at the jump, b does not, but both have
  // consumed the same raw draws (b's second normal01() only drained its
  // cache). After jumping, their normal sequences must agree — i.e. the
  // pre-jump cache must not leak into the post-jump stream.
  Prng a(5), b(5);
  (void)a.normal01();
  (void)b.normal01();
  (void)b.normal01();
  a.jump();
  b.jump();
  EXPECT_EQ(a.state(), b.state());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(a.normal01(), b.normal01());
}

TEST(PrngSplit, LeavesParentStateAndStreamUntouched) {
  // split() must be observationally pure on the parent: identical state
  // words before and after, and the parent's subsequent draw sequence equal
  // to that of a never-split control. (The pre-PR6 derivation consumed a
  // parent draw, shifting every later parent draw by one position.)
  Prng parent(0xABCDEF), control(0xABCDEF);
  const std::array<std::uint64_t, 4> before = parent.state();
  (void)parent.split(0);
  (void)parent.split(7);
  (void)parent.split(0xFFFFFFFFFFFFFFFFULL);
  EXPECT_EQ(parent.state(), before);
  for (int i = 0; i < 1'000; ++i) EXPECT_EQ(parent(), control());
}

TEST(PrngSplit, PureFunctionOfStateAndIndex) {
  // Same (parent state, index) -> bit-identical child, no matter how the
  // parent state was reached or how many times split() is called.
  Prng a(42);
  const Prng b(a.state());  // state-copy via the explicit-state constructor
  EXPECT_EQ(a.split(3).state(), a.split(3).state());
  EXPECT_EQ(a.split(3).state(), b.split(3).state());

  // Advancing the parent changes the child deterministically: the child is
  // a function of the *current* state, and equal states agree again.
  const std::array<std::uint64_t, 4> child_before = a.split(3).state();
  a.jump();
  EXPECT_NE(a.split(3).state(), child_before);
  Prng c(42);
  c.jump();
  EXPECT_EQ(a.split(3).state(), c.split(3).state());
}

TEST(PrngSplit, ChildrenDecorrelatedFromParentAndSiblings) {
  Prng parent(2026);
  constexpr std::size_t kChildren = 8;
  constexpr int kDraws = 1'000;
  std::vector<Prng> streams;
  streams.push_back(parent);  // copy: the parent stream itself
  for (std::size_t k = 0; k < kChildren; ++k)
    streams.push_back(parent.split(k));
  // No positional collisions between any pair of streams, and all draws
  // globally distinct (a 64-bit birthday collision over 9k draws would
  // signal a structurally broken derivation, not bad luck).
  std::set<std::uint64_t> seen;
  for (int i = 0; i < kDraws; ++i) {
    std::set<std::uint64_t> at_position;
    for (auto& stream : streams) at_position.insert(stream());
    EXPECT_EQ(at_position.size(), streams.size()) << "position " << i;
    seen.insert(at_position.begin(), at_position.end());
  }
  EXPECT_EQ(seen.size(), streams.size() * kDraws);
}

TEST(PrngSplit, DeterministicAcrossSeedsAndInstances) {
  // Cross-instance reproducibility: rebuilding the parent from the same
  // seed yields bit-identical children, and distinct seeds yield distinct
  // children at every index — experiments keyed by (seed, stream) are
  // stable across runs and machines.
  for (std::uint64_t seed : {std::uint64_t{1}, std::uint64_t{0xFEED}}) {
    Prng first(seed), second(seed);
    for (std::uint64_t k = 0; k < 4; ++k)
      EXPECT_EQ(first.split(k).state(), second.split(k).state());
  }
  Prng one(1), two(2);
  for (std::uint64_t k = 0; k < 4; ++k)
    EXPECT_NE(one.split(k).state(), two.split(k).state());
}

TEST(StreamFactory, SubstreamsArePairwiseDistinct) {
  StreamFactory factory(99);
  constexpr std::size_t kStreams = 8;
  constexpr int kDraws = 1'000;
  std::vector<std::vector<std::uint64_t>> draws(kStreams);
  for (std::size_t k = 0; k < kStreams; ++k) {
    Prng prng = factory.stream(k);
    for (int i = 0; i < kDraws; ++i) draws[k].push_back(prng());
  }
  for (std::size_t i = 0; i < kStreams; ++i) {
    for (std::size_t j = i + 1; j < kStreams; ++j) {
      int collisions = 0;
      for (int d = 0; d < kDraws; ++d)
        if (draws[i][d] == draws[j][d]) ++collisions;
      EXPECT_EQ(collisions, 0) << "streams " << i << " and " << j;
    }
  }
  // All 8000 outputs distinct across streams (no cross-position collisions
  // either, with overwhelming probability for a healthy partition).
  std::set<std::uint64_t> all;
  for (const auto& stream : draws) all.insert(stream.begin(), stream.end());
  EXPECT_EQ(all.size(), kStreams * kDraws);
}

TEST(StreamFactory, ReproducibleAcrossInstancesAndAccessOrder) {
  // Substream k is a pure function of (seed, k): a second factory, even one
  // asked out of order, yields bit-identical generators — the property that
  // makes replicated experiments reproducible across processes.
  StreamFactory forward(2026);
  StreamFactory scrambled(2026);
  std::vector<Prng> in_order;
  for (std::size_t k = 0; k < 6; ++k) in_order.push_back(forward.stream(k));
  for (const std::size_t k : {5, 0, 3, 1, 4, 2}) {
    Prng p = scrambled.stream(k);
    EXPECT_EQ(p.state(), in_order[k].state()) << "substream " << k;
    for (int i = 0; i < 100; ++i) EXPECT_EQ(p(), in_order[k]());
  }
}

TEST(StreamFactory, DifferentSeedsGiveDifferentSubstreams) {
  StreamFactory a(1), b(2);
  Prng pa = a.stream(3);
  Prng pb = b.stream(3);
  int same = 0;
  for (int i = 0; i < 1'000; ++i)
    if (pa() == pb()) ++same;
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace streamflow
