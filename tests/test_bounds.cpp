// Section 6 reproduced as properties: the N.B.U.E. sandwich of Theorem 7
// (deterministic above, exponential below) holds for N.B.U.E. laws and can
// fail for non-N.B.U.E. laws (the Fig 16 / Fig 17 dichotomy).
#include <gtest/gtest.h>

#include "core/analyzer.hpp"
#include "dist/distribution.hpp"
#include "sim/pipeline_sim.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

/// Simulated throughput of the 3x2 single-communication workload when every
/// resource follows `law` rescaled to its deterministic mean.
double simulated_throughput(const Mapping& mapping, const Distribution& law,
                            std::uint64_t seed) {
  const StochasticTiming timing = StochasticTiming::scaled(mapping, law);
  PipelineSimOptions options;
  options.data_sets = 80'000;
  options.seed = seed;
  return simulate_pipeline(mapping, ExecutionModel::kOverlap, timing, options)
      .throughput;
}

class NbueSandwichTest : public ::testing::TestWithParam<const char*> {};

TEST_P(NbueSandwichTest, ThroughputLiesBetweenExponentialAndDeterministic) {
  const DistributionPtr law = parse_distribution(GetParam());
  ASSERT_TRUE(law->is_nbue()) << law->name();
  const Mapping mapping = testing::single_comm_mapping(3, 2, 2.0);
  const NbueBounds bounds =
      nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
  const double sim = simulated_throughput(mapping, *law, 0xBEEF);
  // 2% slack for simulation noise.
  EXPECT_GE(sim, bounds.lower * 0.98) << law->name();
  EXPECT_LE(sim, bounds.upper * 1.02) << law->name();
}

INSTANTIATE_TEST_SUITE_P(NbueLaws, NbueSandwichTest,
                         ::testing::Values("const:1",
                                           "exp:1",
                                           "uniform:0.5,1.5",
                                           "gauss:10,5",       // Gauss-like
                                           "gauss:10,2.2",
                                           "beta:1,1,2",
                                           "beta:2,2,2",
                                           "gamma:2,0.5",
                                           "gamma:5,0.2",
                                           "weibull:1.5,1"));

TEST(NbueSandwich, ExponentialLawSitsOnTheLowerBound) {
  const Mapping mapping = testing::single_comm_mapping(3, 2, 2.0);
  const NbueBounds bounds =
      nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
  const double sim =
      simulated_throughput(mapping, *make_exponential_mean(1.0), 0xCAFE);
  EXPECT_NEAR(sim, bounds.lower, 0.02 * bounds.lower);
}

TEST(NbueSandwich, ConstantLawSitsOnTheUpperBound) {
  const Mapping mapping = testing::single_comm_mapping(3, 2, 2.0);
  const NbueBounds bounds =
      nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
  const double sim = simulated_throughput(mapping, *make_constant(1.0), 1);
  EXPECT_NEAR(sim, bounds.upper, 0.01 * bounds.upper);
}

class NonNbueViolationTest : public ::testing::TestWithParam<const char*> {};

// Strongly DFR laws (CV^2 > 1) push the throughput BELOW the exponential
// lower bound: the sandwich genuinely requires N.B.U.E. (Fig 17).
TEST_P(NonNbueViolationTest, MoreVariableThanExponentialBreaksLowerBound) {
  const DistributionPtr law = parse_distribution(GetParam());
  ASSERT_FALSE(law->is_nbue()) << law->name();
  const Mapping mapping = testing::single_comm_mapping(3, 2, 2.0);
  const NbueBounds bounds =
      nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
  const double sim = simulated_throughput(mapping, *law, 0xF00D);
  EXPECT_LT(sim, bounds.lower * 0.97) << law->name();
}

INSTANTIATE_TEST_SUITE_P(HeavyLaws, NonNbueViolationTest,
                         ::testing::Values("gamma:0.25,4",
                                           "hyperexp:0.5,10,0.1",
                                           "lognormal:0,1.5"));

TEST(Bounds, GapClosesWithoutReplication) {
  // With a single critical resource and no replication contention, the
  // chain throughput equals the bottleneck rate in BOTH the deterministic
  // and exponential cases, so the sandwich is tight.
  const Mapping mapping = testing::chain_mapping({4.0, 1.0}, {0.5});
  const NbueBounds bounds =
      nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(bounds.lower, bounds.upper, 1e-9);
  EXPECT_NEAR(bounds.upper, 0.25, 1e-9);
}

TEST(Bounds, GapWidensWithPatternSize) {
  // Fig 15: the det/exp ratio is (u+v-1)/max(u,v), growing with contention.
  double previous_ratio = 1.0;
  for (std::size_t u : {2u, 3u, 4u, 5u}) {
    const Mapping mapping = testing::single_comm_mapping(u, u + 1, 2.0);
    const NbueBounds bounds =
        nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
    const double ratio = bounds.upper / bounds.lower;
    EXPECT_NEAR(ratio,
                static_cast<double>(2 * u) / static_cast<double>(u + 1), 1e-6);
    EXPECT_GT(ratio, previous_ratio);
    previous_ratio = ratio;
  }
}

}  // namespace
}  // namespace streamflow
