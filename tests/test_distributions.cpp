#include "dist/distribution.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/prng.hpp"
#include "common/stats.hpp"

namespace streamflow {
namespace {

/// Empirical mean/variance of a law must match its reported moments.
void check_moments(const Distribution& law, int samples = 300'000,
                   double mean_tol = 0.02, double var_tol = 0.05) {
  Prng prng(2024);
  RunningStats stats;
  for (int i = 0; i < samples; ++i) {
    const double x = law.sample(prng);
    ASSERT_GE(x, 0.0) << law.name() << " produced a negative time";
    stats.add(x);
  }
  const double m = law.mean();
  EXPECT_NEAR(stats.mean(), m, mean_tol * std::max(m, 0.1)) << law.name();
  const double v = law.variance();
  if (std::isfinite(v)) {
    EXPECT_NEAR(stats.variance(), v, var_tol * std::max(v, 0.1)) << law.name();
  }
}

TEST(Distributions, ConstantMoments) {
  const auto law = make_constant(3.5);
  Prng prng(1);
  EXPECT_DOUBLE_EQ(law->sample(prng), 3.5);
  EXPECT_DOUBLE_EQ(law->mean(), 3.5);
  EXPECT_DOUBLE_EQ(law->variance(), 0.0);
  EXPECT_TRUE(law->is_nbue());
}

TEST(Distributions, ExponentialMoments) {
  check_moments(*make_exponential_rate(0.5));
  check_moments(*make_exponential_mean(4.0));
  EXPECT_DOUBLE_EQ(make_exponential_mean(4.0)->mean(), 4.0);
  EXPECT_TRUE(make_exponential_rate(2.0)->is_nbue());
}

TEST(Distributions, UniformMoments) {
  check_moments(*make_uniform(1.0, 3.0));
  EXPECT_TRUE(make_uniform(1.0, 3.0)->is_nbue());
}

TEST(Distributions, TruncatedNormalMoments) {
  // Far from zero: behaves like the untruncated normal.
  const auto far = make_truncated_normal(10.0, 1.0);
  EXPECT_NEAR(far->mean(), 10.0, 1e-6);
  EXPECT_NEAR(far->variance(), 1.0, 1e-6);
  check_moments(*far);
  // Near zero: truncation shifts the mean up; the reported moments must
  // still match the samples.
  check_moments(*make_truncated_normal(1.0, 1.0));
  EXPECT_GT(make_truncated_normal(1.0, 1.0)->mean(), 1.0);
  EXPECT_TRUE(far->is_nbue());
}

TEST(Distributions, GammaMomentsAndNbueBoundary) {
  check_moments(*make_gamma(2.0, 1.5));
  check_moments(*make_gamma(0.5, 2.0), 300'000, 0.03, 0.08);
  EXPECT_TRUE(make_gamma(1.0, 1.0)->is_nbue());
  EXPECT_TRUE(make_gamma(3.0, 1.0)->is_nbue());
  EXPECT_FALSE(make_gamma(0.5, 1.0)->is_nbue());  // DFR
}

TEST(Distributions, BetaMoments) {
  check_moments(*make_beta(2.0, 2.0, 10.0));
  check_moments(*make_beta(1.0, 3.0, 4.0));
  EXPECT_TRUE(make_beta(2.0, 2.0, 1.0)->is_nbue());
  EXPECT_FALSE(make_beta(0.5, 0.5, 1.0)->is_nbue());
}

TEST(Distributions, WeibullMoments) {
  check_moments(*make_weibull(1.5, 2.0));
  check_moments(*make_weibull(0.8, 1.0), 300'000, 0.03, 0.1);
  EXPECT_TRUE(make_weibull(2.0, 1.0)->is_nbue());
  EXPECT_FALSE(make_weibull(0.8, 1.0)->is_nbue());
}

TEST(Distributions, LognormalMoments) {
  check_moments(*make_lognormal(0.0, 0.5));
  EXPECT_FALSE(make_lognormal(0.0, 1.0)->is_nbue());
}

TEST(Distributions, ParetoMoments) {
  const auto law = make_pareto(3.0, 2.0);
  EXPECT_NEAR(law->mean(), 3.0, 1e-12);
  EXPECT_NEAR(law->variance(), 2.0 * 2.0 * 3.0 / (4.0 * 1.0), 1e-12);
  check_moments(*law, 600'000, 0.03, 0.2);
  EXPECT_FALSE(law->is_nbue());
  EXPECT_THROW(make_pareto(1.0, 1.0), InvalidArgument);
}

TEST(Distributions, HyperexponentialMoments) {
  const auto law = make_hyperexponential(0.3, 2.0, 0.5);
  EXPECT_NEAR(law->mean(), 0.3 / 2.0 + 0.7 / 0.5, 1e-12);
  check_moments(*law);
  EXPECT_FALSE(law->is_nbue());
}

class WithMeanTest : public ::testing::TestWithParam<const char*> {};

TEST_P(WithMeanTest, RescalesExactlyAndPreservesShape) {
  const DistributionPtr base = parse_distribution(GetParam());
  for (double target : {0.25, 1.0, 7.5}) {
    const DistributionPtr scaled = base->with_mean(target);
    EXPECT_NEAR(scaled->mean(), target, 1e-9 * target)
        << base->name() << " -> " << target;
    EXPECT_EQ(scaled->is_nbue(), base->is_nbue());
    // Linear rescale preserves the coefficient of variation.
    if (base->variance() > 0.0 && std::isfinite(base->variance())) {
      const double cv_base = base->variance() / (base->mean() * base->mean());
      const double cv_scaled =
          scaled->variance() / (scaled->mean() * scaled->mean());
      EXPECT_NEAR(cv_base, cv_scaled, 1e-9) << base->name();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLaws, WithMeanTest,
    ::testing::Values("const:3", "exp:0.5", "uniform:1,3", "gauss:10,2",
                      "gamma:2,1.5", "beta:2,2,10", "weibull:1.5,2",
                      "lognormal:0,0.5", "pareto:3,2", "hyperexp:0.3,2,0.5"));

TEST(ParseDistribution, RoundTripsAndValidates) {
  EXPECT_DOUBLE_EQ(parse_distribution("const:2.5")->mean(), 2.5);
  EXPECT_DOUBLE_EQ(parse_distribution("expmean:3")->mean(), 3.0);
  EXPECT_NEAR(parse_distribution("exp:0.25")->mean(), 4.0, 1e-12);
  EXPECT_THROW(parse_distribution("nope:1"), InvalidArgument);
  EXPECT_THROW(parse_distribution("exp:1,2"), InvalidArgument);
  EXPECT_THROW(parse_distribution("exp:abc"), InvalidArgument);
  EXPECT_THROW(parse_distribution("uniform:3,1"), InvalidArgument);
  EXPECT_THROW(parse_distribution("const:-1"), InvalidArgument);
}

TEST(Distributions, ParameterValidation) {
  EXPECT_THROW(make_exponential_rate(0.0), InvalidArgument);
  EXPECT_THROW(make_uniform(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW(make_truncated_normal(-50.0, 1.0), InvalidArgument);
  EXPECT_THROW(make_gamma(-1.0, 1.0), InvalidArgument);
  EXPECT_THROW(make_beta(0.0, 1.0, 1.0), InvalidArgument);
  EXPECT_THROW(make_hyperexponential(1.5, 1.0, 1.0), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
