#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/table.hpp"

#include <sstream>

namespace streamflow {
namespace {

TEST(RunningStats, MatchesHandComputation) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 3.0 + i * 0.01;
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  RunningStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, StudentTQuantiles) {
  // Spot-check the 97.5% table against published values and the cutoff
  // behavior: exact through df = 30, normal approximation beyond.
  EXPECT_DOUBLE_EQ(RunningStats::t975_quantile(1), 12.706);
  EXPECT_DOUBLE_EQ(RunningStats::t975_quantile(3), 3.182);
  EXPECT_DOUBLE_EQ(RunningStats::t975_quantile(7), 2.365);
  EXPECT_DOUBLE_EQ(RunningStats::t975_quantile(30), 2.042);
  EXPECT_DOUBLE_EQ(RunningStats::t975_quantile(31), 1.96);
  EXPECT_DOUBLE_EQ(RunningStats::t975_quantile(1000), 1.96);
  EXPECT_TRUE(std::isinf(RunningStats::t975_quantile(0)));
}

TEST(RunningStats, CiHalfWidthUsesStudentT) {
  // Two samples (df = 1): half-width = 12.706 * s / sqrt(2). The old normal
  // constant would give an interval 6.5x too narrow here.
  RunningStats s;
  s.add(1.0);
  s.add(3.0);
  const double sd = s.stddev();  // sqrt(2)
  EXPECT_NEAR(s.ci95_halfwidth(), 12.706 * sd / std::sqrt(2.0), 1e-12);

  RunningStats one;
  EXPECT_TRUE(std::isinf(one.ci95_halfwidth()));
  one.add(4.2);
  EXPECT_TRUE(std::isinf(one.ci95_halfwidth()));
}

TEST(RelativeDifference, Basics) {
  EXPECT_DOUBLE_EQ(relative_difference(1.0, 1.0), 0.0);
  EXPECT_NEAR(relative_difference(1.0, 1.1), 0.1 / 1.1, 1e-12);
  EXPECT_NEAR(relative_difference(-2.0, 2.0), 2.0, 1e-12);
  EXPECT_GT(relative_difference(0.0, 1e-300), 0.0);
}

TEST(Quantile, LinearInterpolation) {
  std::vector<double> data{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(data, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(data, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(data, 0.5), 2.5);
  EXPECT_THROW(quantile({}, 0.5), InvalidArgument);
  EXPECT_THROW(quantile(data, 1.5), InvalidArgument);
}

TEST(Table, AlignsAndRendersCsv) {
  Table t({"name", "value"});
  t.add_row({std::string("alpha"), 1.5});
  t.add_row({std::string("b"), std::int64_t{42}});
  EXPECT_EQ(t.row_count(), 2u);
  std::ostringstream text;
  t.print(text, "demo");
  EXPECT_NE(text.str().find("== demo =="), std::string::npos);
  EXPECT_NE(text.str().find("alpha"), std::string::npos);
  std::ostringstream csv;
  t.print_csv(csv);
  EXPECT_EQ(csv.str(), "name,value\nalpha,1.5000\nb,42\n");
}

TEST(Table, RejectsBadRows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({std::string("only-one")}), InvalidArgument);
  EXPECT_THROW(Table({}), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
