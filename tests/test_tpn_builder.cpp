#include "tpn/builder.hpp"

#include <gtest/gtest.h>

#include <map>

#include "test_helpers.hpp"

namespace streamflow {
namespace {

using testing::replicated_chain_mapping;

struct BuilderCase {
  std::size_t r0, r1, r2;
};

class BuilderStructureTest : public ::testing::TestWithParam<BuilderCase> {};

TEST_P(BuilderStructureTest, OverlapCountsAndLiveness) {
  const auto& c = GetParam();
  const Mapping mapping = replicated_chain_mapping(c.r0, c.r1, c.r2);
  const std::int64_t m = mapping.num_paths();
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);

  const std::size_t n = 3;
  EXPECT_EQ(g.num_rows(), m);
  EXPECT_EQ(g.num_columns(), 2 * n - 1);
  EXPECT_EQ(g.num_transitions(), static_cast<std::size_t>(m) * (2 * n - 1));

  // Flow places: 2N-2 per row. Resource places: one chain element per
  // occurrence — m per compute column, 2m per communication column.
  const std::size_t flow = static_cast<std::size_t>(m) * (2 * n - 2);
  const std::size_t resource =
      static_cast<std::size_t>(m) * n + static_cast<std::size_t>(m) * 2 * (n - 1);
  EXPECT_EQ(g.num_places(), flow + resource);

  // Token count = number of chains: compute units + output ports of stages
  // 1..N-1 + input ports of stages 2..N.
  std::size_t tokens = 0;
  for (const Place& p : g.places()) {
    EXPECT_GE(p.initial_tokens, 0);
    EXPECT_LE(p.initial_tokens, 1);
    tokens += static_cast<std::size_t>(p.initial_tokens);
  }
  const std::size_t expected_tokens =
      (c.r0 + c.r1 + c.r2) + (c.r0 + c.r1) + (c.r1 + c.r2);
  EXPECT_EQ(tokens, expected_tokens);

  EXPECT_NO_THROW(g.check_liveness());
}

TEST_P(BuilderStructureTest, StrictCountsAndLiveness) {
  const auto& c = GetParam();
  const Mapping mapping = replicated_chain_mapping(c.r0, c.r1, c.r2);
  const std::int64_t m = mapping.num_paths();
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kStrict);

  const std::size_t n = 3;
  const std::size_t flow = static_cast<std::size_t>(m) * (2 * n - 2);
  const std::size_t resource = static_cast<std::size_t>(m) * n;
  EXPECT_EQ(g.num_places(), flow + resource);

  std::size_t tokens = 0;
  for (const Place& p : g.places())
    tokens += static_cast<std::size_t>(p.initial_tokens);
  EXPECT_EQ(tokens, c.r0 + c.r1 + c.r2);  // one chain per processor

  EXPECT_NO_THROW(g.check_liveness());
}

INSTANTIATE_TEST_SUITE_P(Shapes, BuilderStructureTest,
                         ::testing::Values(BuilderCase{1, 1, 1},
                                           BuilderCase{1, 2, 1},
                                           BuilderCase{2, 3, 2},
                                           BuilderCase{3, 4, 5},
                                           BuilderCase{2, 6, 4}));

TEST(Builder, TransitionGridIsRowMajorWithCorrectResources) {
  const Mapping mapping = replicated_chain_mapping(1, 2, 1);
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  ASSERT_EQ(mapping.num_paths(), 2);
  // Row 0 path: P0 -> P1 -> P3; row 1 path: P0 -> P2 -> P3.
  const auto& t_comp1_r0 = g.transition(tpn_transition_id(g, 0, 2));
  EXPECT_EQ(t_comp1_r0.kind, TransitionKind::kCompute);
  EXPECT_EQ(t_comp1_r0.proc, 1u);
  const auto& t_comp1_r1 = g.transition(tpn_transition_id(g, 1, 2));
  EXPECT_EQ(t_comp1_r1.proc, 2u);
  const auto& comm = g.transition(tpn_transition_id(g, 1, 1));
  EXPECT_EQ(comm.kind, TransitionKind::kComm);
  EXPECT_EQ(comm.proc, 0u);
  EXPECT_EQ(comm.proc2, 2u);
}

TEST(Builder, SelfLoopWhenProcessorOwnsOneRow) {
  // Replications {1, 3}: m = 3, each stage-2 processor appears in exactly
  // one row, so its serialization chain degenerates to a marked self-loop.
  Application app = Application::uniform(2);
  Platform platform = Platform::fully_connected({1, 1, 1, 1}, 1.0);
  Mapping mapping(app, platform, {{0}, {1, 2, 3}});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  int self_loops_with_token = 0;
  for (const Place& p : g.places()) {
    if (p.from == p.to) {
      EXPECT_EQ(p.initial_tokens, 1);
      ++self_loops_with_token;
    }
  }
  // 3 compute self-loops + 3 input-port self-loops for P1..P3.
  EXPECT_EQ(self_loops_with_token, 6);
}

TEST(Builder, DurationsComeFromMapping) {
  const Mapping mapping = testing::chain_mapping({2.0, 4.0}, {3.0});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kStrict);
  EXPECT_DOUBLE_EQ(g.transition(tpn_transition_id(g, 0, 0)).duration, 2.0);
  EXPECT_DOUBLE_EQ(g.transition(tpn_transition_id(g, 0, 1)).duration, 3.0);
  EXPECT_DOUBLE_EQ(g.transition(tpn_transition_id(g, 0, 2)).duration, 4.0);
}

TEST(Builder, RowCapIsEnforced) {
  const Mapping mapping = replicated_chain_mapping(3, 4, 5);  // m = 60
  TpnBuildOptions options;
  options.max_rows = 32;
  EXPECT_THROW(build_tpn(mapping, ExecutionModel::kOverlap, options),
               CapacityExceeded);
}

TEST(Builder, EventGraphProperty) {
  // Every place must have exactly one producer and one consumer — true by
  // construction; verify adjacency sizes add up.
  const Mapping mapping = replicated_chain_mapping(2, 3, 2);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    const TimedEventGraph g = build_tpn(mapping, model);
    std::size_t in_sum = 0, out_sum = 0;
    for (std::size_t t = 0; t < g.num_transitions(); ++t) {
      in_sum += g.input_places(t).size();
      out_sum += g.output_places(t).size();
      if (model == ExecutionModel::kOverlap) {
        // Overlap: every transition is directly serialized by a resource
        // chain (compute unit or port). In the Strict net the chain only
        // touches the first and last transition of each occurrence; the
        // middle ones are serialized transitively through flow places.
        bool has_resource_input = false;
        for (std::size_t pid : g.input_places(t)) {
          if (g.place(pid).kind == PlaceKind::kResource)
            has_resource_input = true;
        }
        EXPECT_TRUE(has_resource_input) << g.transition_label(t);
      }
    }
    EXPECT_EQ(in_sum, g.num_places());
    EXPECT_EQ(out_sum, g.num_places());
  }
}

TEST(Builder, DotExportMentionsEveryTransition) {
  const Mapping mapping = replicated_chain_mapping(1, 2, 1);
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  std::ostringstream os;
  g.write_dot(os);
  const std::string dot = os.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("T2/P1@r0"), std::string::npos);
  EXPECT_NE(dot.find("F1:P0->P2@r1"), std::string::npos);
}

}  // namespace
}  // namespace streamflow
