#include "maxplus/mcr.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "maxplus/deterministic.hpp"
#include "model/random_instance.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"

namespace streamflow {
namespace {

/// Builds a bare event graph from explicit (from, to, tokens) arcs where the
/// "duration" of each vertex is given; used to test MCR on hand examples.
TimedEventGraph hand_graph(const std::vector<double>& durations,
                           const std::vector<std::tuple<int, int, int>>& arcs) {
  TimedEventGraph g(static_cast<std::int64_t>(durations.size()), 1);
  for (std::size_t i = 0; i < durations.size(); ++i) {
    g.add_transition(Transition{.kind = TransitionKind::kCompute,
                                .row = static_cast<std::int64_t>(i),
                                .column = 0,
                                .duration = durations[i]});
  }
  for (const auto& [from, to, tokens] : arcs) {
    g.add_place(Place{static_cast<std::size_t>(from),
                      static_cast<std::size_t>(to), PlaceKind::kResource,
                      tokens});
  }
  g.finalize();
  return g;
}

TEST(Mcr, SelfLoop) {
  const auto g = hand_graph({3.5}, {{0, 0, 1}});
  const CriticalCycle c = max_cycle_ratio(g);
  EXPECT_DOUBLE_EQ(c.ratio, 3.5);
  EXPECT_EQ(c.tokens, 1);
  EXPECT_EQ(c.transitions.size(), 1u);
}

TEST(Mcr, TwoCyclesPicksLarger) {
  // Cycle A: 0 <-> 1, durations 1 + 2 over 2 tokens -> 1.5.
  // Cycle B: 2 self loop, duration 2 over 1 token -> 2.
  const auto g = hand_graph({1.0, 2.0, 2.0},
                            {{0, 1, 1}, {1, 0, 1}, {2, 2, 1}, {1, 2, 0}});
  const CriticalCycle c = max_cycle_ratio(g);
  EXPECT_DOUBLE_EQ(c.ratio, 2.0);
  EXPECT_EQ(c.transitions, std::vector<std::size_t>{2});
}

TEST(Mcr, TokensInDenominator) {
  // One cycle through 3 vertices with durations 2,3,4 and 2 tokens: 4.5.
  const auto g = hand_graph({2.0, 3.0, 4.0},
                            {{0, 1, 1}, {1, 2, 0}, {2, 0, 1}});
  const CriticalCycle c = max_cycle_ratio(g);
  EXPECT_DOUBLE_EQ(c.ratio, 4.5);
  EXPECT_EQ(c.tokens, 2);
  EXPECT_EQ(c.transitions.size(), 3u);
}

TEST(Mcr, InterleavedCyclesSharedVertices) {
  // Two cycles sharing vertex 0: {0,1} ratio (1+5)/1 = 6 and {0,2} ratio
  // (1+3)/2 = 2.
  const auto g = hand_graph({1.0, 5.0, 3.0},
                            {{0, 1, 0}, {1, 0, 1}, {0, 2, 1}, {2, 0, 1}});
  EXPECT_DOUBLE_EQ(max_cycle_ratio(g).ratio, 6.0);
}

TEST(Mcr, AcyclicGraphRejected) {
  const auto g = hand_graph({1.0, 2.0}, {{0, 1, 0}});
  EXPECT_THROW(max_cycle_ratio(g), InvalidArgument);
  EXPECT_THROW(max_cycle_ratio_lawler(g), InvalidArgument);
}

TEST(Mcr, LawlerAgreesOnHandExamples) {
  const auto g = hand_graph({2.0, 3.0, 4.0},
                            {{0, 1, 1}, {1, 2, 0}, {2, 0, 1}});
  EXPECT_NEAR(max_cycle_ratio_lawler(g, 1e-10), 4.5, 1e-8);
}

class McrCrossValidationTest : public ::testing::TestWithParam<std::uint64_t> {
};

// Property: on random replicated mappings, the Dinkelbach MCR equals the
// Lawler binary-search MCR for both execution models.
TEST_P(McrCrossValidationTest, DinkelbachEqualsLawler) {
  Prng prng(GetParam());
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 8;
  options.max_paths = 24;
  const Mapping mapping = random_instance(options, prng);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    const TimedEventGraph g = build_tpn(mapping, model);
    const double dinkelbach = max_cycle_ratio(g).ratio;
    const double lawler = max_cycle_ratio_lawler(g, 1e-9);
    EXPECT_NEAR(dinkelbach, lawler, 1e-6)
        << mapping.to_string() << " model=" << to_string(model);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, McrCrossValidationTest,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ColumnDecomposition, OverlapPeriodIsColumnMax) {
  Prng prng(77);
  RandomInstanceOptions options;
  options.num_stages = 4;
  options.num_processors = 10;
  options.max_paths = 60;
  for (int trial = 0; trial < 8; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
    const double full = max_cycle_ratio(g).ratio;
    const std::vector<double> columns = column_periods_overlap(mapping);
    double column_max = 0.0;
    for (double c : columns) column_max = std::max(column_max, c);
    EXPECT_NEAR(full, column_max, 1e-9 * std::max(full, 1.0))
        << mapping.to_string();
  }
}

TEST(ColumnSubgraph, KeepsOnlyColumnPlaces) {
  const Mapping mapping = testing::replicated_chain_mapping(2, 3, 2);
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const TimedEventGraph sub = column_subgraph(g, 1);  // first comm column
  EXPECT_EQ(sub.num_transitions(), static_cast<std::size_t>(g.num_rows()));
  for (const Place& p : sub.places())
    EXPECT_EQ(p.kind, PlaceKind::kResource);
}

}  // namespace
}  // namespace streamflow
