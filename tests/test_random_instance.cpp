#include "model/random_instance.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.hpp"
#include "model/serialization.hpp"

namespace streamflow {
namespace {

TEST(RandomInstance, RespectsShapeAndRanges) {
  RandomInstanceOptions options;
  options.num_stages = 5;
  options.num_processors = 12;
  options.comp_min = 5.0;
  options.comp_max = 15.0;
  options.comm_min = 10.0;
  options.comm_max = 50.0;
  Prng prng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    EXPECT_EQ(mapping.num_stages(), 5u);
    EXPECT_EQ(mapping.num_processors(), 12u);
    std::size_t used = 0;
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_GE(mapping.replication(i), 1u);
      used += mapping.replication(i);
      for (std::size_t p : mapping.team(i)) {
        EXPECT_GE(mapping.comp_time(p), options.comp_min - 1e-9);
        EXPECT_LE(mapping.comp_time(p), options.comp_max + 1e-9);
        if (i + 1 < 5) {
          for (std::size_t q : mapping.team(i + 1)) {
            EXPECT_GE(mapping.comm_time(p, q), options.comm_min - 1e-9);
            EXPECT_LE(mapping.comm_time(p, q), options.comm_max + 1e-9);
          }
        }
      }
    }
    EXPECT_EQ(used, 12u);  // every processor is assigned
    EXPECT_LE(mapping.num_paths(), options.max_paths);
  }
}

TEST(RandomInstance, HomogeneousOptionMakesColumnsUniform) {
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 9;
  options.homogeneous_network = true;
  Prng prng(11);
  const Mapping mapping = random_instance(options, prng);
  for (std::size_t i = 0; i + 1 < 3; ++i) {
    double seen = -1.0;
    for (std::size_t p : mapping.team(i)) {
      for (std::size_t q : mapping.team(i + 1)) {
        const double t = mapping.comm_time(p, q);
        if (seen < 0.0) seen = t;
        EXPECT_NEAR(t, seen, 1e-12);
      }
    }
  }
}

TEST(RandomInstance, DeterministicGivenSeed) {
  RandomInstanceOptions options;
  options.num_stages = 4;
  options.num_processors = 10;
  Prng a(99), b(99);
  const Mapping m1 = random_instance(options, a);
  const Mapping m2 = random_instance(options, b);
  EXPECT_EQ(m1.to_string(), m2.to_string());
  for (std::size_t p = 0; p < 10; ++p)
    EXPECT_EQ(m1.stage_of(p), m2.stage_of(p));
}

TEST(RandomInstance, Validation) {
  Prng prng(1);
  RandomInstanceOptions bad;
  bad.num_stages = 5;
  bad.num_processors = 3;
  EXPECT_THROW(random_instance(bad, prng), InvalidArgument);
  RandomInstanceOptions bad_range;
  bad_range.comp_min = 0.0;
  EXPECT_THROW(random_instance(bad_range, prng), InvalidArgument);
}

// ---- Regime knobs (PR 7: scenario-corpus generation) -----------------------

TEST(RandomInstance, ZeroCostFractionScalesFlaggedStages) {
  RandomInstanceOptions options;
  options.num_stages = 4;
  options.num_processors = 8;
  options.zero_cost_fraction = 1.0;  // every stage degenerate
  options.degenerate_scale = 1e-4;
  Prng prng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    for (std::size_t p = 0; p < mapping.num_processors(); ++p) {
      if (mapping.stage_of(p) == Mapping::kUnused) continue;
      // comp_time in [comp_min, comp_max] * degenerate_scale.
      EXPECT_GE(mapping.comp_time(p), options.comp_min * 1e-4 - 1e-15);
      EXPECT_LE(mapping.comp_time(p), options.comp_max * 1e-4 + 1e-15);
    }
  }
}

TEST(RandomInstance, ZeroCostFractionHalfMixesRegularAndDegenerate) {
  RandomInstanceOptions options;
  options.num_stages = 5;
  options.num_processors = 10;
  options.zero_cost_fraction = 0.5;
  options.degenerate_scale = 1e-4;
  Prng prng(32);
  std::size_t degenerate_stages = 0, regular_stages = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    for (std::size_t i = 0; i < mapping.num_stages(); ++i) {
      // The whole stage is flagged or not, so any member's time tells.
      const double t = mapping.comp_time(mapping.team(i)[0]);
      if (t <= options.comp_max * 1e-4) {
        ++degenerate_stages;
      } else {
        ASSERT_GE(t, options.comp_min);
        ++regular_stages;
      }
    }
  }
  // 100 stages, each a fair coin: both kinds must appear.
  EXPECT_GT(degenerate_stages, 10u);
  EXPECT_GT(regular_stages, 10u);
}

TEST(RandomInstance, BandwidthHeterogeneitySpreadsLinkTimes) {
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 9;
  options.bandwidth_heterogeneity = 100.0;
  Prng prng(33);
  double min_time = 1e300, max_time = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    for (std::size_t i = 0; i + 1 < mapping.num_stages(); ++i) {
      for (std::size_t p : mapping.team(i)) {
        for (std::size_t q : mapping.team(i + 1)) {
          const double t = mapping.comm_time(p, q);
          min_time = std::min(min_time, t);
          max_time = std::max(max_time, t);
        }
      }
    }
  }
  // Base times span [1, 5] (defaults); a x100 log-uniform multiplier must
  // spread the observed ratio far beyond that factor-5 envelope.
  EXPECT_GT(max_time / min_time, 50.0);
}

TEST(RandomInstance, TeamSkewConcentratesReplication) {
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 24;
  options.max_paths = 1'000'000;  // don't let the lcm cap redraw skewed splits
  options.team_skew = 3.0;
  Prng skewed_prng(34), uniform_prng(34);
  double skewed_max = 0.0, uniform_max = 0.0;
  for (int trial = 0; trial < 20; ++trial) {
    const Mapping skewed = random_instance(options, skewed_prng);
    RandomInstanceOptions flat = options;
    flat.team_skew = 0.0;
    const Mapping uniform = random_instance(flat, uniform_prng);
    std::size_t s = 0, u = 0;
    for (std::size_t i = 0; i < 3; ++i) {
      s = std::max(s, skewed.replication(i));
      u = std::max(u, uniform.replication(i));
    }
    skewed_max += static_cast<double>(s);
    uniform_max += static_cast<double>(u);
  }
  // Preferential attachment with skew 3 piles almost all 21 free units onto
  // one team; the uniform composition averages far below that.
  EXPECT_GT(skewed_max / 20.0, uniform_max / 20.0 + 2.0);
  EXPECT_GT(skewed_max / 20.0, 17.0);
}

TEST(RandomInstance, KnobValidation) {
  Prng prng(35);
  RandomInstanceOptions options;
  options.zero_cost_fraction = 1.5;
  EXPECT_THROW(random_instance(options, prng), InvalidArgument);
  options = {};
  options.degenerate_scale = 0.0;
  EXPECT_THROW(random_instance(options, prng), InvalidArgument);
  options = {};
  options.bandwidth_heterogeneity = 0.5;
  EXPECT_THROW(random_instance(options, prng), InvalidArgument);
  options = {};
  options.team_skew = -1.0;
  EXPECT_THROW(random_instance(options, prng), InvalidArgument);
}

TEST(RandomInstance, KnobbedDrawsStayDeterministicAcrossSeeds) {
  RandomInstanceOptions options;
  options.num_stages = 4;
  options.num_processors = 12;
  options.zero_cost_fraction = 0.3;
  options.bandwidth_heterogeneity = 10.0;
  options.team_skew = 2.0;
  Prng a(77), b(77), c(78);
  const Mapping m1 = random_instance(options, a);
  const Mapping m2 = random_instance(options, b);
  EXPECT_EQ(m1.to_string(), m2.to_string());
  EXPECT_EQ(instance_to_string(m1), instance_to_string(m2));
  // A different seed must actually change the draw.
  const Mapping m3 = random_instance(options, c);
  EXPECT_NE(instance_to_string(m1), instance_to_string(m3));
}

TEST(RandomInstance, LcmCapIsEnforced) {
  RandomInstanceOptions options;
  options.num_stages = 6;
  options.num_processors = 30;
  options.max_paths = 64;
  Prng prng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    EXPECT_LE(mapping.num_paths(), 64);
  }
}

}  // namespace
}  // namespace streamflow
