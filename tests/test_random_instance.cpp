#include "model/random_instance.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"

namespace streamflow {
namespace {

TEST(RandomInstance, RespectsShapeAndRanges) {
  RandomInstanceOptions options;
  options.num_stages = 5;
  options.num_processors = 12;
  options.comp_min = 5.0;
  options.comp_max = 15.0;
  options.comm_min = 10.0;
  options.comm_max = 50.0;
  Prng prng(7);
  for (int trial = 0; trial < 25; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    EXPECT_EQ(mapping.num_stages(), 5u);
    EXPECT_EQ(mapping.num_processors(), 12u);
    std::size_t used = 0;
    for (std::size_t i = 0; i < 5; ++i) {
      EXPECT_GE(mapping.replication(i), 1u);
      used += mapping.replication(i);
      for (std::size_t p : mapping.team(i)) {
        EXPECT_GE(mapping.comp_time(p), options.comp_min - 1e-9);
        EXPECT_LE(mapping.comp_time(p), options.comp_max + 1e-9);
        if (i + 1 < 5) {
          for (std::size_t q : mapping.team(i + 1)) {
            EXPECT_GE(mapping.comm_time(p, q), options.comm_min - 1e-9);
            EXPECT_LE(mapping.comm_time(p, q), options.comm_max + 1e-9);
          }
        }
      }
    }
    EXPECT_EQ(used, 12u);  // every processor is assigned
    EXPECT_LE(mapping.num_paths(), options.max_paths);
  }
}

TEST(RandomInstance, HomogeneousOptionMakesColumnsUniform) {
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 9;
  options.homogeneous_network = true;
  Prng prng(11);
  const Mapping mapping = random_instance(options, prng);
  for (std::size_t i = 0; i + 1 < 3; ++i) {
    double seen = -1.0;
    for (std::size_t p : mapping.team(i)) {
      for (std::size_t q : mapping.team(i + 1)) {
        const double t = mapping.comm_time(p, q);
        if (seen < 0.0) seen = t;
        EXPECT_NEAR(t, seen, 1e-12);
      }
    }
  }
}

TEST(RandomInstance, DeterministicGivenSeed) {
  RandomInstanceOptions options;
  options.num_stages = 4;
  options.num_processors = 10;
  Prng a(99), b(99);
  const Mapping m1 = random_instance(options, a);
  const Mapping m2 = random_instance(options, b);
  EXPECT_EQ(m1.to_string(), m2.to_string());
  for (std::size_t p = 0; p < 10; ++p)
    EXPECT_EQ(m1.stage_of(p), m2.stage_of(p));
}

TEST(RandomInstance, Validation) {
  Prng prng(1);
  RandomInstanceOptions bad;
  bad.num_stages = 5;
  bad.num_processors = 3;
  EXPECT_THROW(random_instance(bad, prng), InvalidArgument);
  RandomInstanceOptions bad_range;
  bad_range.comp_min = 0.0;
  EXPECT_THROW(random_instance(bad_range, prng), InvalidArgument);
}

TEST(RandomInstance, LcmCapIsEnforced) {
  RandomInstanceOptions options;
  options.num_stages = 6;
  options.num_processors = 30;
  options.max_paths = 64;
  Prng prng(5);
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    EXPECT_LE(mapping.num_paths(), 64);
  }
}

}  // namespace
}  // namespace streamflow
