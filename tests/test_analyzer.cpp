#include "core/analyzer.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "model/random_instance.hpp"
#include "sim/teg_sim.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"

namespace streamflow {
namespace {

TEST(Analyzer, SingleProcessorExponential) {
  const Mapping mapping = testing::chain_mapping({2.0}, {});
  const auto overlap =
      exponential_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(overlap.throughput, 0.5, 1e-12);
  EXPECT_EQ(overlap.method_used, ExponentialMethod::kColumns);
  const auto strict = exponential_throughput(mapping, ExecutionModel::kStrict);
  EXPECT_NEAR(strict.throughput, 0.5, 1e-12);
  EXPECT_EQ(strict.method_used, ExponentialMethod::kGeneralCtmc);
}

TEST(Analyzer, ColumnsRequiresOverlap) {
  const Mapping mapping = testing::chain_mapping({1.0, 1.0}, {1.0});
  ExponentialOptions options;
  options.method = ExponentialMethod::kColumns;
  EXPECT_THROW(
      exponential_throughput(mapping, ExecutionModel::kStrict, options),
      InvalidArgument);
}

TEST(Analyzer, TandemChainIsMinOfRates) {
  // Overlap chain without replication: saturation rule gives the min rate.
  const Mapping mapping = testing::chain_mapping({2.0, 5.0, 4.0}, {1.0, 1.0});
  const auto r = exponential_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(r.throughput, 0.2, 1e-12);
}

TEST(Analyzer, SingleCommThroughputIsPatternFlowTimesNothing) {
  // Fast computations around one homogeneous u x v communication: the
  // throughput is Theorem 4's u*v*lambda/(u+v-1).
  for (const auto& [u, v] : std::vector<std::pair<std::size_t, std::size_t>>{
           {2, 3}, {3, 2}, {4, 3}, {1, 4}}) {
    const double d = 2.0;
    const Mapping mapping = testing::single_comm_mapping(u, v, d);
    const auto r = exponential_throughput(mapping, ExecutionModel::kOverlap);
    const double expected = static_cast<double>(u) * static_cast<double>(v) /
                            (d * static_cast<double>(u + v - 1));
    EXPECT_NEAR(r.throughput, expected, 1e-6) << "u=" << u << " v=" << v;
  }
}

TEST(Analyzer, ComponentDiagnosticsMarkBottleneck) {
  // A slow source gates everything downstream.
  const Mapping mapping = testing::chain_mapping({10.0, 1.0}, {1.0});
  const auto r = exponential_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_NEAR(r.throughput, 0.1, 1e-12);
  bool found_bottlenecked_sink = false;
  for (const auto& c : r.components) {
    if (c.label == "T2/P1") {
      EXPECT_TRUE(c.bottleneck);
      EXPECT_NEAR(c.effective, 0.1, 1e-12);
      found_bottlenecked_sink = true;
    }
  }
  EXPECT_TRUE(found_bottlenecked_sink);
}

class ColumnsVsGeneralTest : public ::testing::TestWithParam<std::uint64_t> {};

// Cross-validation of Theorem 3's column method against Theorem 2's general
// CTMC (finite buffers): the general method with growing capacity must
// approach the column value from below.
TEST_P(ColumnsVsGeneralTest, GeneralCtmcApproachesColumns) {
  Prng prng(GetParam());
  RandomInstanceOptions instance;
  instance.num_stages = 2;
  instance.num_processors = 4;
  instance.max_paths = 4;
  instance.comp_min = 2.0;
  instance.comp_max = 8.0;
  instance.comm_min = 2.0;
  instance.comm_max = 8.0;
  const Mapping mapping = random_instance(instance, prng);

  const double columns =
      exponential_throughput(mapping, ExecutionModel::kOverlap).throughput;

  ExponentialOptions general;
  general.method = ExponentialMethod::kGeneralCtmc;
  general.max_states = 600'000;
  double previous = 0.0;
  for (int capacity : {2, 4, 8, 12}) {
    general.place_capacity = capacity;
    const auto r =
        exponential_throughput(mapping, ExecutionModel::kOverlap, general);
    EXPECT_GE(r.throughput, previous - 1e-9) << mapping.to_string();
    EXPECT_LE(r.throughput, columns * (1.0 + 1e-6)) << mapping.to_string();
    previous = r.throughput;
  }
  EXPECT_LT(relative_difference(previous, columns), 0.06)
      << mapping.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, ColumnsVsGeneralTest,
                         ::testing::Range<std::uint64_t>(300, 308));

class ColumnsVsSimulationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

// Theorem 3/4 vs brute-force stochastic simulation of the unbounded net.
TEST_P(ColumnsVsSimulationTest, SimulationConfirmsColumnMethod) {
  Prng prng(GetParam());
  RandomInstanceOptions instance;
  instance.num_stages = 3;
  instance.num_processors = 8;
  instance.max_paths = 24;
  const Mapping mapping = random_instance(instance, prng);

  const double columns =
      exponential_throughput(mapping, ExecutionModel::kOverlap).throughput;

  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  TegSimOptions sim_options;
  sim_options.rounds = 4000;
  sim_options.seed = GetParam() * 7 + 1;
  const auto sim = simulate_teg(g, transition_laws(g, timing), sim_options);
  EXPECT_LT(relative_difference(columns, sim.throughput), 0.05)
      << mapping.to_string();
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, ColumnsVsSimulationTest,
                         ::testing::Range<std::uint64_t>(400, 408));

TEST(Analyzer, StrictGeneralCtmcMatchesSimulation) {
  const Mapping mapping = testing::replicated_chain_mapping(1, 2, 1, 2.0, 1.0);
  const auto analytic =
      exponential_throughput(mapping, ExecutionModel::kStrict);
  EXPECT_FALSE(analytic.capacity_clipped);  // Strict nets are 1-safe
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kStrict);
  const StochasticTiming timing = StochasticTiming::exponential(mapping);
  TegSimOptions sim_options;
  sim_options.rounds = 30'000;
  const auto sim = simulate_teg(g, transition_laws(g, timing), sim_options);
  EXPECT_LT(relative_difference(analytic.throughput, sim.throughput), 0.03);
}

TEST(Analyzer, NbueBoundsAreOrdered) {
  Prng prng(555);
  RandomInstanceOptions instance;
  instance.num_stages = 3;
  instance.num_processors = 7;
  instance.max_paths = 12;
  for (int trial = 0; trial < 6; ++trial) {
    const Mapping mapping = random_instance(instance, prng);
    const NbueBounds bounds =
        nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
    EXPECT_GT(bounds.lower, 0.0);
    EXPECT_LE(bounds.lower, bounds.upper * (1.0 + 1e-9))
        << mapping.to_string();
  }
}

}  // namespace
}  // namespace streamflow
