// Concurrency battery for the process-wide PatternStore
// (core/pattern_store.hpp) and its AnalysisContext integration.
//
// What is pinned here:
//  * exact hit/miss/publish/duplicate accounting — under one thread AND
//    under N threads hammering disjoint or overlapping signature sets
//    (the counters are maintained under shard locks, so they are exact,
//    not sampled);
//  * shard distribution sanity (every shard populated, no pathological
//    skew for the FNV-mixed signature hash);
//  * bit-identity: a store hit returns the bits a local solve would have
//    produced, a warm-store search equals the cold-store search equals
//    the storeless search, serial and parallel, any thread count;
//  * the Debug cross-context agreement probe: a deliberately staled store
//    entry (transform_rates) trips the re-solve assertion;
//  * snapshot persistence: byte-stable save, digest-validated load,
//    negative fixtures (version skew, truncation, corrupted digest), and
//    load-from-missing-path as a cold start.
#include "core/pattern_store.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "core/analysis_context.hpp"
#include "core/heuristics.hpp"
#include "engine/parallel_search.hpp"
#include "model/mapping.hpp"
#include "tpn/columns.hpp"

#ifndef STREAMFLOW_FIXTURE_DIR
#define STREAMFLOW_FIXTURE_DIR "tests/fixtures"
#endif

namespace streamflow {
namespace {

/// Synthetic signature k: distinct for distinct k, deterministic.
PatternSignature synthetic_signature(std::uint64_t k) {
  PatternSignature signature;
  signature.u = 2;
  signature.v = 3;
  signature.duration_bits = {k * 0x9E3779B97F4A7C15ull + 1, k ^ 0xABCDEFull,
                             k + 7};
  return signature;
}

/// Synthetic (deterministic) rate for signature k, so concurrent
/// publishers of the same signature always agree — the contract real
/// solves satisfy by construction.
double synthetic_rate(std::uint64_t k) {
  return 1.0 + static_cast<double>(k) / 3.0;
}

/// A mapping whose middle communication crosses teams of coprime sizes
/// (2 -> 3) over links with distinct bandwidths: its comm patterns are
/// heterogeneous (u = 2, v = 3, six distinct durations), so evaluating it
/// exercises real CTMC pattern solves, not the homogeneous closed form.
Mapping heterogeneous_mapping() {
  Application application({2.0, 6.0, 4.0, 1.0}, {1.0, 3.0, 1.0});
  std::vector<double> speeds{2.0, 1.5, 1.0, 1.2, 0.8, 1.1, 2.5};
  Platform platform{std::move(speeds)};
  double bandwidth = 0.6;
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t q = p + 1; q < 7; ++q) {
      platform.set_bandwidth(p, q, bandwidth);
      bandwidth += 0.1;
    }
  }
  return Mapping(application, platform, {{0}, {1, 2}, {3, 4, 5}, {6}});
}

std::string fixture_path(const std::string& name) {
  return std::string(STREAMFLOW_FIXTURE_DIR) + "/pattern_store/" + name;
}

TEST(PatternStore, HitMissAccountingIsExact) {
  PatternStore store(4);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_FALSE(store.lookup(synthetic_signature(0)).has_value());
  store.publish(synthetic_signature(0), synthetic_rate(0));
  store.publish(synthetic_signature(1), synthetic_rate(1));
  const auto hit = store.lookup(synthetic_signature(0));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, synthetic_rate(0));
  EXPECT_FALSE(store.lookup(synthetic_signature(2)).has_value());

  const PatternStoreStats stats = store.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.publishes, 2u);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(store.size(), 2u);
}

TEST(PatternStore, FirstWriterWinsAndDisagreementAsserts) {
  PatternStore store(2);
  store.publish(synthetic_signature(5), synthetic_rate(5));
  // Agreement: counted as a duplicate, entry untouched.
  store.publish(synthetic_signature(5), synthetic_rate(5));
  EXPECT_EQ(store.stats().duplicates, 1u);
  EXPECT_EQ(store.size(), 1u);
  // Disagreement violates the solve-determinism contract and must throw.
  EXPECT_THROW(
      store.publish(synthetic_signature(5), synthetic_rate(5) + 1e-9),
      InvalidArgument);
}

TEST(PatternStore, ClearDropsEntriesAndCounters) {
  PatternStore store(2);
  store.publish(synthetic_signature(0), synthetic_rate(0));
  (void)store.lookup(synthetic_signature(0));
  store.clear();
  const PatternStoreStats stats = store.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.publishes, 0u);
  EXPECT_FALSE(store.lookup(synthetic_signature(0)).has_value());
}

TEST(PatternStore, ShardDistributionIsSane) {
  const std::size_t kShards = 8;
  const std::size_t kEntries = 1000;
  PatternStore store(kShards);
  EXPECT_EQ(store.shard_count(), kShards);
  for (std::uint64_t k = 0; k < kEntries; ++k) {
    const PatternSignature signature = synthetic_signature(k);
    EXPECT_EQ(store.shard_of(signature), signature.hash() % kShards);
    store.publish(signature, synthetic_rate(k));
  }
  std::size_t total = 0;
  std::size_t largest = 0;
  for (std::size_t s = 0; s < kShards; ++s) {
    const std::size_t size = store.shard_size(s);
    EXPECT_GT(size, 0u) << "shard " << s << " is empty";
    total += size;
    largest = std::max(largest, size);
  }
  EXPECT_EQ(total, kEntries);
  // No pathological skew: the fullest shard stays within 4x the mean.
  EXPECT_LE(largest, 4 * (kEntries / kShards));
}

TEST(PatternStore, ConcurrentDisjointSetsCountExactly) {
  const std::size_t kThreads = 8;
  const std::uint64_t kPerThread = 200;
  PatternStore store(4);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store, t] {
      for (std::uint64_t k = 0; k < kPerThread; ++k) {
        const std::uint64_t id = t * kPerThread + k;
        const PatternSignature signature = synthetic_signature(id);
        EXPECT_FALSE(store.lookup(signature).has_value());
        store.publish(signature, synthetic_rate(id));
        const auto hit = store.lookup(signature);
        ASSERT_TRUE(hit.has_value());
        EXPECT_EQ(*hit, synthetic_rate(id));
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const PatternStoreStats stats = store.stats();
  const std::size_t expected = kThreads * kPerThread;
  EXPECT_EQ(stats.misses, expected);
  EXPECT_EQ(stats.hits, expected);
  EXPECT_EQ(stats.publishes, expected);
  EXPECT_EQ(stats.duplicates, 0u);
  EXPECT_EQ(stats.entries, expected);
}

TEST(PatternStore, ConcurrentOverlappingSetsAgreeBitExactly) {
  const std::size_t kThreads = 8;
  const std::uint64_t kShared = 64;
  const std::size_t kRounds = 3;
  PatternStore store(4);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&store] {
      for (std::size_t round = 0; round < kRounds; ++round) {
        for (std::uint64_t k = 0; k < kShared; ++k) {
          const PatternSignature signature = synthetic_signature(k);
          const auto cached = store.lookup(signature);
          if (cached.has_value()) {
            EXPECT_EQ(*cached, synthetic_rate(k));
          } else {
            store.publish(signature, synthetic_rate(k));
          }
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  const PatternStoreStats stats = store.stats();
  // The hit/miss split depends on interleaving; the totals do not.
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kRounds * kShared);
  EXPECT_EQ(stats.entries, kShared);
  // Every miss triggered exactly one publish call, first writer won.
  EXPECT_EQ(stats.publishes, kShared);
  EXPECT_EQ(stats.publishes + stats.duplicates, stats.misses);
}

TEST(PatternStore, ProcessWideIsOneInstance) {
  PatternStore& a = PatternStore::process_wide();
  PatternStore& b = PatternStore::process_wide();
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.shard_count(), PatternStore::kDefaultShards);
}

// ---- AnalysisContext integration -------------------------------------------

TEST(PatternStoreContext, StoreHitReturnsSolveBits) {
  const Mapping mapping = heterogeneous_mapping();
  const std::vector<CommPattern> patterns = comm_patterns(mapping, 1);
  ASSERT_FALSE(patterns.empty());
  ASSERT_FALSE(patterns.front().homogeneous());

  // Reference: the private-cache path, no store attached.
  AnalysisContext reference;
  std::vector<double> expected;
  for (const CommPattern& pattern : patterns) {
    expected.push_back(reference.pattern_rate(pattern));
  }

  PatternStore store(4);
  AnalysisContext writer;
  writer.set_pattern_store(&store);
  EXPECT_EQ(writer.pattern_store(), &store);
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    EXPECT_EQ(writer.pattern_rate(patterns[k]), expected[k]);
  }
  EXPECT_GT(store.size(), 0u);
  EXPECT_EQ(writer.stats().store_publishes, store.size());
  EXPECT_EQ(writer.stats().store_hits, 0u);

  // A second context sees the first one's solves as store hits — and the
  // hits must be bit-identical to the local solves above.
  AnalysisContext reader;
  reader.set_pattern_store(&store);
  for (std::size_t k = 0; k < patterns.size(); ++k) {
    EXPECT_EQ(reader.pattern_rate(patterns[k]), expected[k]);
  }
  EXPECT_GT(reader.stats().store_hits, 0u);
  EXPECT_EQ(reader.stats().store_publishes, 0u);
  // hits + misses stays cache-state invariant across all three contexts.
  EXPECT_EQ(reader.stats().pattern_hits + reader.stats().pattern_misses,
            reference.stats().pattern_hits + reference.stats().pattern_misses);
}

TEST(PatternStoreContext, StaleStoreEntryIsDetected) {
  const Mapping mapping = heterogeneous_mapping();
  const std::vector<CommPattern> patterns = comm_patterns(mapping, 1);
  ASSERT_FALSE(patterns.empty());

  PatternStore store(4);
  AnalysisContext writer;
  writer.set_pattern_store(&store);
  const double honest = writer.pattern_rate(patterns.front());
  ASSERT_GT(store.size(), 0u);

  // Fault injection: stale every stored rate by one ulp. The store now
  // violates the solve-determinism contract its hits rely on.
  store.transform_rates(
      [](double rate) { return std::nextafter(rate, 2.0 * rate + 1.0); });

  AnalysisContext reader;
  reader.set_pattern_store(&store);
#ifndef NDEBUG
  // Debug: the sampled re-solve probe checks the FIRST store hit of a
  // context, so the staleness trips the assertion immediately.
  EXPECT_THROW(reader.pattern_rate(patterns.front()), InvalidArgument);
#else
  // Release: the stale bits flow through — proving the Debug probe is
  // what detects this class of corruption (and why the fuzz harness's
  // shared-store check compares full component vectors).
  EXPECT_NE(reader.pattern_rate(patterns.front()), honest);
#endif
}

// ---- Warm-store search bit-identity ----------------------------------------

TEST(PatternStoreSearch, WarmStoreSearchIsBitIdentical) {
  const Mapping mapping = heterogeneous_mapping();
  MappingSearchOptions search;
  search.restarts = 2;
  search.seed = 7;

  const MappingSearchResult baseline =
      optimize_mapping(mapping.instance(), search);

  PatternStore store(4);
  AnalysisContext cold;
  cold.set_pattern_store(&store);
  const MappingSearchResult via_cold_store =
      optimize_mapping(mapping.instance(), search, cold);
  EXPECT_GT(store.size(), 0u);

  AnalysisContext warm;
  warm.set_pattern_store(&store);
  const MappingSearchResult via_warm_store =
      optimize_mapping(mapping.instance(), search, warm);
  EXPECT_GT(warm.stats().store_hits, 0u);

  for (const MappingSearchResult* result : {&via_cold_store, &via_warm_store}) {
    EXPECT_EQ(result->throughput, baseline.throughput);
    EXPECT_EQ(result->evaluations, baseline.evaluations);
    EXPECT_EQ(result->mapping.to_string(), baseline.mapping.to_string());
    EXPECT_EQ(result->pattern_cache_hits + result->pattern_cache_misses,
              baseline.pattern_cache_hits + baseline.pattern_cache_misses);
  }
}

TEST(PatternStoreSearch, ParallelPortfolioWithStoreIsBitIdentical) {
  const Mapping mapping = heterogeneous_mapping();
  ParallelSearchOptions options;
  options.search.restarts = 3;
  options.search.seed = 11;
  options.threads = 1;

  const ParallelSearchResult baseline =
      parallel_optimize_mapping(mapping.instance(), options);

  PatternStore store(4);
  options.pattern_store = &store;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    options.threads = threads;
    // Two passes per thread count: the second runs against the warm store.
    for (int pass = 0; pass < 2; ++pass) {
      const ParallelSearchResult shared =
          parallel_optimize_mapping(mapping.instance(), options);
      EXPECT_EQ(shared.throughput, baseline.throughput)
          << threads << " threads, pass " << pass;
      EXPECT_EQ(shared.evaluations, baseline.evaluations);
      EXPECT_EQ(shared.pattern_requests, baseline.pattern_requests);
      EXPECT_EQ(shared.mapping.to_string(), baseline.mapping.to_string());
      EXPECT_EQ(shared.best_restart, baseline.best_restart);
    }
  }
  EXPECT_GT(store.size(), 0u);
}

// ---- Snapshots --------------------------------------------------------------

TEST(PatternStoreSnapshot, RoundTripIsByteStableAndDigestEqual) {
  PatternStore store(4);
  // Tricky doubles: snapshots must round-trip BITS, not decimal text.
  const double rates[] = {1.0 / 3.0, 0.1, 1e-300, 6.02e23,
                          std::nextafter(1.0, 2.0)};
  for (std::uint64_t k = 0; k < 5; ++k) {
    store.publish(synthetic_signature(k), rates[k]);
  }

  std::ostringstream first;
  store.save(first);

  // Load into a store with a DIFFERENT shard count: the snapshot is
  // canonical, so shard topology must be invisible.
  PatternStore reloaded(7);
  std::istringstream in(first.str());
  EXPECT_EQ(reloaded.load(in), 5u);
  EXPECT_EQ(reloaded.digest(), store.digest());
  for (std::uint64_t k = 0; k < 5; ++k) {
    const auto hit = reloaded.lookup(synthetic_signature(k));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, rates[k]);
  }

  std::ostringstream second;
  reloaded.save(second);
  EXPECT_EQ(first.str(), second.str());
}

TEST(PatternStoreSnapshot, LoadMergesAndRejectsConflicts) {
  PatternStore source(2);
  source.publish(synthetic_signature(1), synthetic_rate(1));
  std::ostringstream snapshot;
  source.save(snapshot);

  // Merging into a store that already agrees: counted as a duplicate.
  PatternStore agreeing(2);
  agreeing.publish(synthetic_signature(1), synthetic_rate(1));
  std::istringstream in_agree(snapshot.str());
  EXPECT_EQ(agreeing.load(in_agree), 1u);
  EXPECT_EQ(agreeing.size(), 1u);
  EXPECT_EQ(agreeing.stats().duplicates, 1u);

  // Merging into a store that disagrees: the determinism contract is
  // violated somewhere — refuse.
  PatternStore disagreeing(2);
  disagreeing.publish(synthetic_signature(1), synthetic_rate(1) + 1e-9);
  std::istringstream in_conflict(snapshot.str());
  EXPECT_THROW(disagreeing.load(in_conflict), InvalidArgument);
}

TEST(PatternStoreSnapshot, NegativeFixturesAreRejectedWithDiagnostics) {
  const auto load_fixture = [](const std::string& name) {
    PatternStore store(2);
    return store.load_file(fixture_path(name));
  };
  const auto message_of = [&](const std::string& name) {
    try {
      load_fixture(name);
    } catch (const InvalidArgument& error) {
      return std::string(error.what());
    }
    return std::string("NO THROW");
  };
  EXPECT_NE(message_of("bad_version.snapshot").find("unsupported snapshot "
                                                    "version 'v9'"),
            std::string::npos);
  EXPECT_NE(message_of("truncated.snapshot").find("truncated"),
            std::string::npos);
  EXPECT_NE(message_of("corrupt_digest.snapshot").find("digest mismatch"),
            std::string::npos);
}

TEST(PatternStoreSnapshot, MissingPathIsAColdStart) {
  PatternStore store(2);
  EXPECT_EQ(store.load_file(fixture_path("does_not_exist.snapshot")), 0u);
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace streamflow
