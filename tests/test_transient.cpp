#include "markov/transient.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <numeric>

#include "common/stats.hpp"
#include "markov/throughput.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"
#include "tpn/columns.hpp"

namespace streamflow {
namespace {

/// Single exponential server (self-loop): N(t) is Poisson(lambda * t), and
/// the transient distribution is the trivial single state.
TEST(Transient, SingleServerPoissonCount) {
  const Mapping mapping = testing::chain_mapping({2.0}, {});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const auto rates = rates_from_durations(g);
  const auto chain = explore_markings(g, rates);
  for (const double horizon : {0.5, 4.0, 40.0}) {
    const auto r = transient_analysis(g, chain, rates,
                                      g.last_column_transitions(), horizon);
    EXPECT_NEAR(r.expected_firings, 0.5 * horizon, 1e-6 * horizon);
    ASSERT_EQ(r.distribution.size(), 1u);
    EXPECT_NEAR(r.distribution[0], 1.0, 1e-9);
  }
}

TEST(Transient, TwoStateChainDistribution) {
  // A ring of two exponential transitions (rates a and b) alternates
  // between two markings; the transient distribution must match the
  // closed-form two-state CTMC solution.
  TimedEventGraph g(2, 1);
  g.add_transition(Transition{.duration = 1.0});        // rate 1
  g.add_transition(Transition{.row = 1, .duration = 0.5});  // rate 2
  g.add_place(Place{0, 1, PlaceKind::kResource, 1});
  g.add_place(Place{1, 0, PlaceKind::kResource, 0});
  g.finalize();
  const std::vector<double> rates{1.0, 2.0};
  const auto chain = explore_markings(g, rates);
  ASSERT_EQ(chain.num_states, 2u);

  // The initial marking (state 0) holds a token in the place FEEDING
  // transition 1, so state 0 exits at rate 2 and state 1 at rate 1.
  const double a = 2.0, b = 1.0;  // 0 -> 1 at rate a, 1 -> 0 at rate b
  for (const double t : {0.1, 0.7, 3.0}) {
    const auto r = transient_analysis(g, chain, rates, {0}, t);
    const double p0 =
        b / (a + b) + a / (a + b) * std::exp(-(a + b) * t);
    EXPECT_NEAR(r.distribution[0], p0, 1e-8) << "t=" << t;
    EXPECT_NEAR(r.distribution[1], 1.0 - p0, 1e-8) << "t=" << t;
  }
}

TEST(Transient, AverageThroughputConvergesToStationary) {
  // Finite-horizon throughput must climb toward the stationary value as the
  // horizon grows — the theoretical Fig 10.
  const Mapping mapping = testing::single_comm_mapping(2, 3, 1.0, 0.2);
  const auto patterns = comm_patterns(mapping, 0);
  const TimedEventGraph teg = build_pattern_teg(patterns[0]);
  const auto rates = rates_from_durations(teg);
  const auto chain = explore_markings(teg, rates);
  std::vector<std::size_t> all(teg.num_transitions());
  std::iota(all.begin(), all.end(), std::size_t{0});

  const auto stationary =
      exponential_throughput_general(teg, rates, all);
  // The gap to the stationary value must shrink as the horizon grows and
  // essentially vanish at a long horizon.
  double previous_gap = std::numeric_limits<double>::infinity();
  for (const double horizon : {2.0, 10.0, 50.0, 400.0}) {
    const auto r = transient_analysis(teg, chain, rates, all, horizon);
    const double gap =
        relative_difference(r.average_throughput, stationary.throughput);
    EXPECT_LE(gap, previous_gap * 1.05) << "horizon " << horizon;
    previous_gap = gap;
  }
  EXPECT_LT(previous_gap, 0.01);
}

TEST(Transient, DistributionConvergesToStationaryDistribution) {
  const Mapping mapping = testing::single_comm_mapping(3, 2, 1.0, 0.2);
  const auto patterns = comm_patterns(mapping, 0);
  const TimedEventGraph teg = build_pattern_teg(patterns[0]);
  const auto rates = rates_from_durations(teg);
  const auto chain = explore_markings(teg, rates);
  const auto r = transient_analysis(teg, chain, rates, {0}, 500.0);
  // Homogeneous pattern: the stationary distribution is uniform (Thm 4).
  for (const double p : r.distribution) {
    EXPECT_NEAR(p, 1.0 / static_cast<double>(chain.num_states), 1e-6);
  }
  // Probabilities sum to one at every horizon.
  double sum = 0.0;
  for (const double p : r.distribution) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Transient, Validation) {
  const Mapping mapping = testing::chain_mapping({1.0}, {});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const auto rates = rates_from_durations(g);
  const auto chain = explore_markings(g, rates);
  EXPECT_THROW(
      transient_analysis(g, chain, rates, g.last_column_transitions(), -1.0),
      InvalidArgument);
  EXPECT_THROW(transient_analysis(g, chain, rates, {42}, 1.0),
               InvalidArgument);
  // The step cap triggers on a chain with genuine state changes (the
  // single-server chain above has only a self-loop, so its uniformization
  // rate is degenerate): use a two-transition ring at a huge horizon.
  TimedEventGraph ring(2, 1);
  ring.add_transition(Transition{.duration = 1.0});
  ring.add_transition(Transition{.row = 1, .duration = 0.5});
  ring.add_place(Place{0, 1, PlaceKind::kResource, 1});
  ring.add_place(Place{1, 0, PlaceKind::kResource, 0});
  ring.finalize();
  const std::vector<double> ring_rates{1.0, 2.0};
  const auto ring_chain = explore_markings(ring, ring_rates);
  TransientOptions tight;
  tight.max_steps = 10;
  EXPECT_THROW(
      transient_analysis(ring, ring_chain, ring_rates, {0}, 1e6, tight),
      NumericalError);
}

}  // namespace
}  // namespace streamflow
