#include "dist/nbue_test.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "dist/distribution.hpp"

namespace streamflow {
namespace {

std::vector<double> draw(const Distribution& law, std::size_t n,
                         std::uint64_t seed = 7) {
  Prng prng(seed);
  std::vector<double> samples(n);
  for (double& x : samples) x = law.sample(prng);
  return samples;
}

TEST(NbueTest, ExponentialIsBorderlineConsistent) {
  // Exponential is memoryless: mrl(t) == mean for all t, so the excess
  // hovers around zero and the sample passes the test.
  const auto result = nbue_test(draw(*make_exponential_mean(2.0), 50'000));
  EXPECT_TRUE(result.consistent_with_nbue);
  EXPECT_NEAR(result.worst_excess, 0.0, 0.1);
}

TEST(NbueTest, IfrLawsPassWithNegativeExcess) {
  for (const char* spec :
       {"const:1", "uniform:0,2", "gauss:10,2", "gamma:3,1", "weibull:2,1"}) {
    const auto result = nbue_test(draw(*parse_distribution(spec), 50'000));
    EXPECT_TRUE(result.consistent_with_nbue) << spec;
    EXPECT_LT(result.worst_excess, 0.05) << spec;
  }
}

TEST(NbueTest, DfrLawsFail) {
  for (const char* spec :
       {"gamma:0.3,3", "hyperexp:0.5,10,0.1", "lognormal:0,1.5",
        "pareto:2.2,1"}) {
    const auto result = nbue_test(draw(*parse_distribution(spec), 50'000));
    EXPECT_FALSE(result.consistent_with_nbue) << spec;
    EXPECT_GT(result.worst_excess, 0.1) << spec;
  }
}

TEST(NbueTest, AgreesWithDistributionFlags) {
  // The empirical verdict must match is_nbue() for clear-cut laws.
  for (const char* spec :
       {"uniform:0,2", "gamma:2,1", "gamma:0.3,3", "lognormal:0,1.5",
        "weibull:0.6,1", "weibull:1.8,1"}) {
    const DistributionPtr law = parse_distribution(spec);
    const auto result = nbue_test(draw(*law, 80'000, 0xABC));
    EXPECT_EQ(result.consistent_with_nbue, law->is_nbue()) << spec;
  }
}

TEST(NbueTest, Validation) {
  EXPECT_THROW(nbue_test(std::vector<double>(10, 1.0)), InvalidArgument);
  EXPECT_THROW(nbue_test(std::vector<double>(200, -1.0)), InvalidArgument);
  EXPECT_THROW(nbue_test(std::vector<double>(200, 1.0), 0), InvalidArgument);
  EXPECT_THROW(nbue_test(std::vector<double>(200, 1.0), 10, 1.5),
               InvalidArgument);
  EXPECT_THROW(nbue_test(std::vector<double>(200, 0.0)), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
