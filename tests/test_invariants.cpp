// Global invariants and the stochastic-comparison theorems (Theorems 5/6)
// as executable properties over random instances.
#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "core/analyzer.hpp"
#include "model/random_instance.hpp"
#include "sim/pipeline_sim.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

Mapping scaled_instance(const Mapping& base, double work_scale,
                        double speed_scale) {
  const Application& app = base.application();
  std::vector<double> works = app.stage_works();
  std::vector<double> files = app.file_sizes();
  for (double& w : works) w *= work_scale;
  for (double& f : files) f *= work_scale;
  std::vector<double> speeds;
  for (std::size_t p = 0; p < base.num_processors(); ++p)
    speeds.push_back(base.platform().speed(p) * speed_scale);
  Platform platform(speeds);
  for (std::size_t p = 0; p < base.num_processors(); ++p)
    for (std::size_t q = p + 1; q < base.num_processors(); ++q)
      if (base.platform().bandwidth(p, q) > 0.0)
        platform.set_bandwidth(p, q,
                               base.platform().bandwidth(p, q) * speed_scale);
  std::vector<std::vector<std::size_t>> teams;
  for (std::size_t i = 0; i < base.num_stages(); ++i)
    teams.push_back(base.team(i));
  return Mapping(Application(works, files), platform, teams);
}

class ScalingTest : public ::testing::TestWithParam<std::uint64_t> {};

// Time scaling: multiplying every work/file by c (or dividing every
// speed/bandwidth by c) divides the throughput by c, in every analysis.
TEST_P(ScalingTest, ThroughputScalesInverselyWithTime) {
  Prng prng(GetParam());
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 8;
  options.max_paths = 24;
  const Mapping base = random_instance(options, prng);
  const double c = 3.7;
  const Mapping slower = scaled_instance(base, c, 1.0);
  const Mapping faster = scaled_instance(base, 1.0, c);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    const double rho = deterministic_throughput(base, model).throughput;
    EXPECT_NEAR(deterministic_throughput(slower, model).throughput, rho / c,
                1e-9 * rho);
    EXPECT_NEAR(deterministic_throughput(faster, model).throughput, rho * c,
                1e-9 * rho * c);
  }
  const double exp_rho =
      exponential_throughput(base, ExecutionModel::kOverlap).throughput;
  EXPECT_NEAR(
      exponential_throughput(slower, ExecutionModel::kOverlap).throughput,
      exp_rho / c, 1e-9 * exp_rho);
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, ScalingTest,
                         ::testing::Range<std::uint64_t>(800, 805));

TEST(Invariants, ProcessorRelabelingDoesNotChangeThroughput) {
  // Renaming processors (consistently across platform and teams) is
  // physically meaningless and must not change any analysis.
  Prng prng(42);
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 7;
  options.max_paths = 12;
  const Mapping base = random_instance(options, prng);
  // Reverse-relabel: p -> M-1-p.
  const std::size_t m = base.num_processors();
  std::vector<double> speeds(m);
  for (std::size_t p = 0; p < m; ++p)
    speeds[m - 1 - p] = base.platform().speed(p);
  Platform platform(speeds);
  for (std::size_t p = 0; p < m; ++p)
    for (std::size_t q = p + 1; q < m; ++q)
      if (base.platform().bandwidth(p, q) > 0.0)
        platform.set_bandwidth(m - 1 - p, m - 1 - q,
                               base.platform().bandwidth(p, q));
  std::vector<std::vector<std::size_t>> teams;
  for (std::size_t i = 0; i < base.num_stages(); ++i) {
    std::vector<std::size_t> team;
    for (std::size_t p : base.team(i)) team.push_back(m - 1 - p);
    teams.push_back(team);
  }
  const Mapping relabeled(base.application(), platform, teams);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    EXPECT_NEAR(deterministic_throughput(base, model).throughput,
                deterministic_throughput(relabeled, model).throughput, 1e-12);
  }
  EXPECT_NEAR(
      exponential_throughput(base, ExecutionModel::kOverlap).throughput,
      exponential_throughput(relabeled, ExecutionModel::kOverlap).throughput,
      1e-12);
}

class MonotonicityTest : public ::testing::TestWithParam<std::uint64_t> {};

// Theorem 5 (strong order): stochastically enlarging ONE resource's times —
// here by scaling its mean up — can only decrease the throughput. Checked
// on the analytical paths (det + exponential columns).
TEST_P(MonotonicityTest, SlowingAnyResourceNeverHelps) {
  Prng prng(GetParam());
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 7;
  options.max_paths = 12;
  const Mapping base = random_instance(options, prng);
  const double det_base =
      deterministic_throughput(base, ExecutionModel::kOverlap).throughput;
  const double exp_base =
      exponential_throughput(base, ExecutionModel::kOverlap).throughput;
  // Slow each processor in turn by 25%.
  for (std::size_t victim = 0; victim < base.num_processors(); ++victim) {
    std::vector<double> speeds;
    for (std::size_t p = 0; p < base.num_processors(); ++p)
      speeds.push_back(base.platform().speed(p) / (p == victim ? 1.25 : 1.0));
    Platform platform(speeds);
    for (std::size_t p = 0; p < base.num_processors(); ++p)
      for (std::size_t q = p + 1; q < base.num_processors(); ++q)
        if (base.platform().bandwidth(p, q) > 0.0)
          platform.set_bandwidth(p, q, base.platform().bandwidth(p, q));
    std::vector<std::vector<std::size_t>> teams;
    for (std::size_t i = 0; i < base.num_stages(); ++i)
      teams.push_back(base.team(i));
    const Mapping slowed(base.application(), platform, teams);
    EXPECT_LE(
        deterministic_throughput(slowed, ExecutionModel::kOverlap).throughput,
        det_base * (1.0 + 1e-9))
        << "victim P" << victim;
    EXPECT_LE(
        exponential_throughput(slowed, ExecutionModel::kOverlap).throughput,
        exp_base * (1.0 + 1e-9))
        << "victim P" << victim;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, MonotonicityTest,
                         ::testing::Range<std::uint64_t>(900, 905));

TEST(Invariants, SimulationsAreSeedDeterministic) {
  const Mapping mapping = testing::replicated_chain_mapping(2, 3, 2);
  const StochasticTiming exp = StochasticTiming::exponential(mapping);
  PipelineSimOptions options;
  options.data_sets = 5'000;
  options.seed = 12345;
  const auto a =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, exp, options);
  const auto b =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, exp, options);
  EXPECT_DOUBLE_EQ(a.throughput, b.throughput);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
  options.seed = 54321;
  const auto c =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, exp, options);
  EXPECT_NE(a.throughput, c.throughput);
}

// Theorem 6 corollary at the analysis level: exponential (CV = 1) never
// beats deterministic (CV = 0) — the icx comparison, over random instances.
TEST(Invariants, ExponentialNeverBeatsDeterministic) {
  Prng prng(31337);
  RandomInstanceOptions options;
  options.num_stages = 4;
  options.num_processors = 10;
  options.max_paths = 48;
  for (int trial = 0; trial < 10; ++trial) {
    const Mapping mapping = random_instance(options, prng);
    const double det =
        deterministic_throughput(mapping, ExecutionModel::kOverlap).throughput;
    const double exp =
        exponential_throughput(mapping, ExecutionModel::kOverlap).throughput;
    EXPECT_LE(exp, det * (1.0 + 1e-9)) << mapping.to_string();
  }
}

}  // namespace
}  // namespace streamflow
