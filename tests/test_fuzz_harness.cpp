// Mutation-style negative tests for the differential harness
// (fuzz/diff_harness.hpp): each of the six cross-checks must actually FAIL
// when its evaluator is skewed through a HarnessHooks shim — the guard
// against a vacuously green harness — and every divergence must be reported
// and minimized into a replayable fixture. Also pins the library-level
// determinism contract: digest identical across sampling modes, full JSON
// identical across thread counts.
#include "fuzz/diff_harness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/analyzer.hpp"
#include "fuzz/minimize.hpp"

namespace streamflow {
namespace {

/// Small-but-honest statistics: the checks hold with real evaluators at
/// these sizes (verified below), so a FAIL under a skewed hook is the
/// hook's doing, not noise.
HarnessOptions fast_options() {
  HarnessOptions options;
  options.count = 2;
  options.replications = 4;
  options.data_sets = 1500;
  return options;
}

TEST(FuzzHarness, AllChecksPassWithHonestEvaluators) {
  const HarnessOptions options = fast_options();
  for (std::uint64_t k = 0; k < 5; ++k) {
    const Scenario scenario = draw_scenario(options.corpus, k);
    const ScenarioVerdict verdict = check_scenario(scenario, options);
    EXPECT_FALSE(verdict.diverged()) << scenario.label();
    for (std::size_t c = 0; c < kNumChecks; ++c) {
      EXPECT_NE(verdict.checks[c].status, CheckStatus::kFail)
          << scenario.label() << " " << to_string(static_cast<CheckId>(c))
          << ": " << verdict.checks[c].detail;
    }
  }
}

// ---- Invariant 1: analyzer inside the exponential-simulation CI ------------

TEST(FuzzHarness, AnalyzerCiCheckDetectsSkewedAnalyzer) {
  const HarnessOptions options = fast_options();
  const Scenario scenario = draw_scenario(options.corpus, 0);
  HarnessHooks hooks;
  hooks.exponential_throughput = [](const Mapping& m, ExecutionModel model) {
    return exponential_throughput(m, model).throughput * 1.5;
  };
  EXPECT_TRUE(
      check_fails(scenario, CheckId::kAnalyzerCi, options, hooks));
  // The honest analyzer passes the same scenario at the same sizes.
  EXPECT_FALSE(check_fails(scenario, CheckId::kAnalyzerCi, options, {}));
}

// ---- Invariant 2: Theorem 7 N.B.U.E. sandwich ------------------------------

TEST(FuzzHarness, NbueSandwichCheckDetectsEscapingSimulation) {
  const HarnessOptions options = fast_options();
  const Scenario scenario = draw_scenario(options.corpus, 0);  // const law
  ASSERT_TRUE(scenario.law->is_nbue());
  HarnessHooks hooks;
  // Push the measured throughput 40% above the deterministic upper bound.
  hooks.sim_throughput_transform = [](double t) { return t * 1.4; };
  EXPECT_TRUE(
      check_fails(scenario, CheckId::kNbueSandwich, options, hooks));
  // ...and 60% below the exponential lower bound.
  HarnessHooks low;
  low.sim_throughput_transform = [](double t) { return t * 0.4; };
  EXPECT_TRUE(check_fails(scenario, CheckId::kNbueSandwich, options, low));
  EXPECT_FALSE(check_fails(scenario, CheckId::kNbueSandwich, options, {}));

  // The sandwich is NEVER asserted for a non-N.B.U.E. law: even the skewed
  // simulation comes back kSkip, not kFail (Fig 17: those laws genuinely
  // escape the sandwich).
  const Scenario heavy = draw_scenario(options.corpus, 8);  // lognormal
  ASSERT_FALSE(heavy.law->is_nbue());
  const ScenarioVerdict verdict = check_scenario(
      heavy, options, hooks,
      1u << static_cast<unsigned>(CheckId::kNbueSandwich));
  EXPECT_EQ(verdict.checks[1].status, CheckStatus::kSkip);
}

// ---- Invariant 3: max-plus deterministic upper bound -----------------------

TEST(FuzzHarness, MaxplusBoundCheckDetectsInflatedSimulation) {
  const HarnessOptions options = fast_options();
  // Use a non-N.B.U.E. scenario so this invariant is exercised where the
  // sandwich is not: the deterministic bound holds for EVERY law.
  const Scenario scenario = draw_scenario(options.corpus, 8);
  HarnessHooks hooks;
  // A heavy-tailed law's measured throughput sits far below the bound, so
  // the inflation must be large to push the simulation over it.
  hooks.sim_throughput_transform = [](double t) { return t * 8.0; };
  EXPECT_TRUE(
      check_fails(scenario, CheckId::kMaxplusBound, options, hooks));
  EXPECT_FALSE(check_fails(scenario, CheckId::kMaxplusBound, options, {}));

  // Equivalent fault on the analytic side: a deflated bound. A heavy-tailed
  // law's measured throughput sits well below the honest bound, so the
  // deflation must be deep to land under the measurement.
  HarnessHooks deflated;
  deflated.deterministic_throughput = [](const Mapping& m,
                                         ExecutionModel model) {
    return deterministic_throughput(m, model).throughput * 0.05;
  };
  EXPECT_TRUE(
      check_fails(scenario, CheckId::kMaxplusBound, options, deflated));
}

// ---- Invariant 4: serial == parallel, bit for bit --------------------------

TEST(FuzzHarness, DeterminismCheckDetectsOneUlpDrift) {
  const HarnessOptions options = fast_options();
  const Scenario scenario = draw_scenario(options.corpus, 0);
  HarnessHooks hooks;
  // The literal off-by-epsilon: one ulp above the true serial score.
  hooks.serial_search_score = [](const InstancePtr& instance,
                                 const MappingSearchOptions& search) {
    const double score = optimize_mapping(instance, search).throughput;
    return std::nextafter(score, 2.0 * score + 1.0);
  };
  EXPECT_TRUE(
      check_fails(scenario, CheckId::kDeterminism, options, hooks));
  EXPECT_FALSE(check_fails(scenario, CheckId::kDeterminism, options, {}));
}

// ---- Invariant 5: bound-screened search == unscreened, bit for bit ---------

TEST(FuzzHarness, PrunedSearchCheckDetectsOneUlpBoundSkew) {
  const HarnessOptions options = fast_options();
  const Scenario scenario = draw_scenario(options.corpus, 0);
  HarnessHooks hooks;
  // The literal off-by-one-ulp fault a sloppy bound comparison produces:
  // the screened search's score drifts one ulp above the true score (as it
  // would if a screen pruned the winning move on a boundary tie).
  hooks.pruned_search_score = [](const InstancePtr& instance,
                                 const MappingSearchOptions& search) {
    const double score = optimize_mapping(instance, search).throughput;
    return std::nextafter(score, 2.0 * score + 1.0);
  };
  EXPECT_TRUE(check_fails(scenario, CheckId::kPrunedSearch, options, hooks));
  // The real screened searches are bit-identical on the same scenario.
  EXPECT_FALSE(check_fails(scenario, CheckId::kPrunedSearch, options, {}));
}

// ---- Invariant 6: warm shared store == private cache, bit for bit ----------

TEST(FuzzHarness, SharedStoreCheckDetectsStaleEntry) {
  const HarnessOptions options = fast_options();
  HarnessHooks hooks;
  // The stale-entry fault the Debug re-solve probe exists for: every rate
  // in the warm store drifts one ulp before the warm re-read. An honest
  // store hands back exactly the published bits, so any drift here is a
  // contract violation the check must catch.
  hooks.store_rate_transform = [](double rate) {
    return std::nextafter(rate, 2.0 * rate + 1.0);
  };
  // The shim only bites where the analysis actually consults the store
  // (Overlap model with heterogeneous patterns); scan the corpus slice for
  // the first such scenario and require the flip FAIL -> PASS there.
  bool found = false;
  for (std::uint64_t k = 0; k < 25 && !found; ++k) {
    const Scenario scenario = draw_scenario(options.corpus, k);
    if (check_fails(scenario, CheckId::kSharedStore, options, hooks)) {
      found = true;
      EXPECT_FALSE(check_fails(scenario, CheckId::kSharedStore, options, {}))
          << scenario.label();
    }
  }
  EXPECT_TRUE(found)
      << "no corpus scenario routes pattern solves through the shared store";
}

// ---- Divergence reporting and minimization ---------------------------------

TEST(FuzzHarness, HarnessReportsAndMinimizesInjectedDivergence) {
  HarnessOptions options = fast_options();
  options.count = 1;
  HarnessHooks hooks;
  // A global analytic fault: fails on the full scenario and keeps failing
  // on every shrunk scenario, so the minimizer can walk all the way down.
  hooks.exponential_throughput = [](const Mapping& m, ExecutionModel model) {
    return exponential_throughput(m, model).throughput * 2.0;
  };
  const HarnessReport report = run_diff_harness(options, hooks);
  ASSERT_FALSE(report.divergences.empty());
  EXPECT_GT(report.fails, 0u);

  const DivergenceRecord& record = report.divergences.front();
  EXPECT_EQ(record.check, CheckId::kAnalyzerCi);
  EXPECT_FALSE(record.detail.empty());
  const Scenario original = draw_scenario(options.corpus, record.scenario_id);
  // Minimization made progress and never grew the scenario.
  EXPECT_GE(record.shrink_steps, 1u);
  EXPECT_LT(record.minimized.mapping.num_processors() +
                record.minimized.mapping.num_stages(),
            original.mapping.num_processors() + original.mapping.num_stages());
  // The emitted fixture replays: parse it back, and the same check still
  // fails on it under the same fault.
  const Scenario replayed = scenario_from_string(record.fixture_text);
  EXPECT_TRUE(check_fails(replayed, record.check, options, hooks));
  // The digest marks the failure.
  EXPECT_NE(report.digest().find("analyzer-ci=FAIL"), std::string::npos);
}

TEST(FuzzHarness, MinimizationIsDeterministic) {
  HarnessOptions options = fast_options();
  const Scenario scenario = draw_scenario(options.corpus, 3);
  HarnessHooks hooks;
  hooks.exponential_throughput = [](const Mapping& m, ExecutionModel model) {
    return exponential_throughput(m, model).throughput * 2.0;
  };
  std::size_t steps_a = 0, steps_b = 0;
  const Scenario a = minimize_divergence(scenario, CheckId::kAnalyzerCi,
                                         options, hooks, &steps_a);
  const Scenario b = minimize_divergence(scenario, CheckId::kAnalyzerCi,
                                         options, hooks, &steps_b);
  EXPECT_EQ(scenario_to_string(a), scenario_to_string(b));
  EXPECT_EQ(steps_a, steps_b);
}

TEST(FuzzHarness, ShrinkCandidatesOnlyShrink) {
  const Scenario scenario = draw_scenario(CorpusOptions{}, 3);
  const std::size_t stages = scenario.mapping.num_stages();
  const std::size_t procs = scenario.mapping.num_processors();
  for (const Scenario& candidate : shrink_candidates(scenario)) {
    EXPECT_LT(candidate.mapping.num_stages() +
                  candidate.mapping.num_processors(),
              stages + procs);
    // Candidates are valid scenarios: serialization round-trips.
    EXPECT_EQ(scenario_to_string(scenario_from_string(
                  scenario_to_string(candidate))),
              scenario_to_string(candidate));
  }
}

// ---- Library-level determinism contract ------------------------------------

TEST(FuzzHarness, DigestIdenticalAcrossSamplingModesAndJsonAcrossThreads) {
  HarnessOptions batched = fast_options();
  HarnessOptions scalar = fast_options();
  scalar.sampling = SamplingMode::kScalarCompat;
  const HarnessReport r_batched = run_diff_harness(batched);
  const HarnessReport r_scalar = run_diff_harness(scalar);
  EXPECT_EQ(r_batched.digest(), r_scalar.digest());

  HarnessOptions threaded = fast_options();
  threaded.threads = 2;
  const HarnessReport r_threaded = run_diff_harness(threaded);
  EXPECT_EQ(r_batched.to_json(), r_threaded.to_json());
}

}  // namespace
}  // namespace streamflow
