#include <gtest/gtest.h>

#include "common/math_utils.hpp"
#include "linalg/stationary.hpp"
#include "markov/reachability.hpp"
#include "markov/throughput.hpp"
#include "test_helpers.hpp"
#include "tpn/columns.hpp"
#include "young/diagram.hpp"
#include "young/pattern_analysis.hpp"

namespace streamflow {
namespace {

using PatternDims = std::pair<std::size_t, std::size_t>;

class YoungStateSpaceTest : public ::testing::TestWithParam<PatternDims> {};

// Theorem 3's counting: the reachable markings of the folded u x v pattern
// are exactly S(u,v) = C(u+v-1, u-1) * v, triangulated four ways: closed
// form, the paper's double sum, literal path enumeration, and the actual
// reachability graph of the pattern TEG.
TEST_P(YoungStateSpaceTest, FourWayCountAgreement) {
  const auto [u, v] = GetParam();
  if (std::gcd(u, v) != 1) GTEST_SKIP() << "patterns require gcd(u,v)=1";
  const std::int64_t closed = young_state_count(
      static_cast<std::int64_t>(u), static_cast<std::int64_t>(v));
  EXPECT_EQ(closed, young_state_count_double_sum(u, v));
  EXPECT_EQ(closed, young_state_count_enumerated(u, v));

  const Mapping mapping = testing::single_comm_mapping(u, v);
  const auto patterns = comm_patterns(mapping, 0);
  const TimedEventGraph teg = build_pattern_teg(patterns[0]);
  const auto chain = explore_markings(teg, rates_from_durations(teg));
  EXPECT_EQ(static_cast<std::int64_t>(chain.num_states), closed)
      << "u=" << u << " v=" << v;
}

INSTANTIATE_TEST_SUITE_P(
    Dims, YoungStateSpaceTest,
    ::testing::Values(PatternDims{1, 1}, PatternDims{1, 2}, PatternDims{2, 1},
                      PatternDims{2, 3}, PatternDims{3, 2}, PatternDims{3, 4},
                      PatternDims{4, 3}, PatternDims{1, 6}, PatternDims{5, 2},
                      PatternDims{5, 4}));

TEST(YoungEnabledCount, DoubleSumMatchesClosedForm) {
  for (std::int64_t u = 1; u <= 8; ++u)
    for (std::int64_t v = 1; v <= 8; ++v)
      EXPECT_EQ(young_enabled_count(u, v),
                young_enabled_count_double_sum(u, v))
          << "u=" << u << " v=" << v;
}

TEST(YoungStationary, HomogeneousDistributionIsUniform) {
  // Theorem 4's key step: with one rate everywhere, every state has as many
  // incoming as outgoing edges, so the stationary distribution is uniform.
  const Mapping mapping = testing::single_comm_mapping(3, 4, 2.0);
  const auto patterns = comm_patterns(mapping, 0);
  const TimedEventGraph teg = build_pattern_teg(patterns[0]);
  const auto rates = rates_from_durations(teg);
  const auto chain = explore_markings(teg, rates);
  DenseMatrix q(chain.num_states, chain.num_states, 0.0);
  for (const auto& e : chain.edges) {
    if (e.from == e.to) continue;
    q(e.from, e.to) += rates[e.transition];
    q(e.from, e.from) -= rates[e.transition];
  }
  const Vector pi = stationary_dense(q);
  for (double p : pi)
    EXPECT_NEAR(p, 1.0 / static_cast<double>(chain.num_states), 1e-10);
}

class HomogeneousClosedFormTest
    : public ::testing::TestWithParam<PatternDims> {};

// Theorem 4 vs Theorem 3: the CTMC inner flow of a homogeneous pattern
// equals u*v*lambda/(u+v-1).
TEST_P(HomogeneousClosedFormTest, CtmcMatchesClosedForm) {
  const auto [u, v] = GetParam();
  if (std::gcd(u, v) != 1) GTEST_SKIP() << "patterns require gcd(u,v)=1";
  const double d = 2.5;  // rate 0.4
  const Mapping mapping = testing::single_comm_mapping(u, v, d);
  const auto patterns = comm_patterns(mapping, 0);
  const PatternFlow ctmc = pattern_flow_exponential(patterns[0]);
  const double closed =
      pattern_flow_exponential_homogeneous(u, v, 1.0 / d);
  EXPECT_NEAR(ctmc.inner_flow, closed, 1e-9 * closed)
      << "u=" << u << " v=" << v;
  EXPECT_EQ(static_cast<std::int64_t>(ctmc.num_states),
            young_state_count(static_cast<std::int64_t>(u),
                              static_cast<std::int64_t>(v)));
}

INSTANTIATE_TEST_SUITE_P(
    Dims, HomogeneousClosedFormTest,
    ::testing::Values(PatternDims{1, 1}, PatternDims{2, 1}, PatternDims{1, 3},
                      PatternDims{2, 3}, PatternDims{3, 2}, PatternDims{4, 3},
                      PatternDims{3, 4}, PatternDims{5, 3}, PatternDims{5, 2},
                      PatternDims{2, 5}));

TEST(PatternFlow, HeterogeneousIsBelowBestAndAboveWorstHomogeneous) {
  const std::vector<double> times{1.0, 1.5, 2.0, 2.5, 3.0, 3.5};
  const Mapping mapping =
      testing::single_comm_mapping_heterogeneous(3, 2, times);
  const auto patterns = comm_patterns(mapping, 0);
  const PatternFlow flow = pattern_flow_exponential(patterns[0]);
  const double best = pattern_flow_exponential_homogeneous(3, 2, 1.0);
  const double worst = pattern_flow_exponential_homogeneous(3, 2, 1.0 / 3.5);
  EXPECT_LT(flow.inner_flow, best);
  EXPECT_GT(flow.inner_flow, worst);
}

TEST(PatternFlow, DeterministicHomogeneousIsMinUV) {
  for (const auto& [u, v] :
       std::vector<PatternDims>{{2, 3}, {3, 2}, {4, 3}, {1, 5}, {3, 3}}) {
    if (std::gcd(u, v) != 1) continue;
    const double d = 2.0;
    const Mapping mapping = testing::single_comm_mapping(u, v, d);
    const auto patterns = comm_patterns(mapping, 0);
    EXPECT_NEAR(pattern_flow_deterministic(patterns[0]),
                static_cast<double>(std::min(u, v)) / d, 1e-9)
        << "u=" << u << " v=" << v;
  }
}

TEST(PatternFlow, ExponentialBelowDeterministic) {
  // Theorem 7 at the pattern level: exponential flow < deterministic flow
  // whenever the pattern has genuine contention (u, v >= 2).
  for (const auto& [u, v] : std::vector<PatternDims>{{2, 3}, {3, 4}, {5, 2}}) {
    const Mapping mapping = testing::single_comm_mapping(u, v, 1.0);
    const auto patterns = comm_patterns(mapping, 0);
    const double exp_flow = pattern_flow_exponential(patterns[0]).inner_flow;
    const double det_flow = pattern_flow_deterministic(patterns[0]);
    EXPECT_LT(exp_flow, det_flow);
    // Fig 15's exact ratio: max(u,v) / (u+v-1).
    EXPECT_NEAR(exp_flow / det_flow,
                static_cast<double>(std::max(u, v)) /
                    static_cast<double>(u + v - 1),
                1e-9);
  }
}

}  // namespace
}  // namespace streamflow
