// Property tests for the deterministic scenario corpus (fuzz/corpus.hpp):
// purity of (seed, index), the prefix property, regime shapes, law cycling,
// and byte-stable scenario serialization with malformed-input diagnostics.
#include "fuzz/corpus.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace streamflow {
namespace {

TEST(FuzzCorpus, ScenarioIsPureFunctionOfSeedAndIndex) {
  CorpusOptions options;
  // Drawing the same index twice — and in any order relative to other
  // indices — yields byte-identical scenarios (the prefix property).
  const std::string late_seven =
      scenario_to_string(draw_scenario(options, 7));
  const std::string zero = scenario_to_string(draw_scenario(options, 0));
  const std::string early_seven =
      scenario_to_string(draw_scenario(options, 7));
  EXPECT_EQ(late_seven, early_seven);
  EXPECT_EQ(zero, scenario_to_string(draw_scenario(options, 0)));

  // A different corpus seed redraws everything.
  CorpusOptions other;
  other.seed = 2;
  EXPECT_NE(zero, scenario_to_string(draw_scenario(other, 0)));
}

TEST(FuzzCorpus, RegimesAndLawsCycleCoprime) {
  CorpusOptions options;
  for (std::uint64_t k = 0; k < 25; ++k) {
    const Scenario scenario = draw_scenario(options, k);
    EXPECT_EQ(scenario.id, k);
    EXPECT_EQ(static_cast<std::size_t>(scenario.regime), k % kNumRegimes);
    EXPECT_EQ(scenario.law->spec(), corpus_law_spec(k));
    EXPECT_LE(scenario.mapping.num_paths(), options.max_paths);
  }
  // gcd(5, 11) = 1: 25 scenarios cover every regime five times and every
  // law family at least twice.
  std::vector<int> law_hits(kNumCorpusLaws, 0);
  for (std::uint64_t k = 0; k < 25; ++k) ++law_hits[k % kNumCorpusLaws];
  EXPECT_EQ(*std::min_element(law_hits.begin(), law_hits.end()), 2);
}

TEST(FuzzCorpus, EachRegimeProducesItsShape) {
  CorpusOptions options;
  bool saw_degenerate_stage = false;
  std::size_t deepest_team = 0;
  double comm_min = 1e300, comm_max = 0.0;
  for (std::uint64_t k = 0; k < 25; ++k) {
    const Scenario scenario = draw_scenario(options, k);
    const Mapping& mapping = scenario.mapping;
    switch (scenario.regime) {
      case ScenarioRegime::kWidePattern:
        // The generator redraws until the u x v pattern is genuinely wide.
        ASSERT_EQ(mapping.num_stages(), 2u);
        EXPECT_GE(mapping.replication(0), 3u);
        EXPECT_GE(mapping.replication(1), 3u);
        break;
      case ScenarioRegime::kDegenerateStages:
        for (std::size_t i = 0; i < mapping.num_stages(); ++i) {
          // Degenerate comp times sit 1e-4 below the regular [1, 5] range.
          if (mapping.comp_time(mapping.team(i)[0]) < 1e-3) {
            saw_degenerate_stage = true;
          }
        }
        break;
      case ScenarioRegime::kDeepReplication:
        for (std::size_t i = 0; i < mapping.num_stages(); ++i) {
          deepest_team = std::max(deepest_team, mapping.replication(i));
        }
        break;
      case ScenarioRegime::kHeteroBandwidth:
        for (std::size_t i = 0; i + 1 < mapping.num_stages(); ++i) {
          for (std::size_t p : mapping.team(i)) {
            for (std::size_t q : mapping.team(i + 1)) {
              const double t = mapping.comm_time(p, q);
              comm_min = std::min(comm_min, t);
              comm_max = std::max(comm_max, t);
            }
          }
        }
        break;
      case ScenarioRegime::kBaseline:
        break;
    }
  }
  EXPECT_TRUE(saw_degenerate_stage);
  EXPECT_GE(deepest_team, 4u);
  // Base comm times span [1, 5]; the x100 multiplier must blow far past
  // that factor-5 envelope across the hetero scenarios.
  EXPECT_GT(comm_max / comm_min, 25.0);
}

TEST(FuzzCorpus, ScenarioSerializationIsByteStable) {
  CorpusOptions options;
  for (std::uint64_t k = 0; k < 10; ++k) {
    const Scenario original = draw_scenario(options, k);
    const std::string first = scenario_to_string(original);
    const Scenario loaded = scenario_from_string(first);
    EXPECT_EQ(scenario_to_string(loaded), first);
    EXPECT_EQ(loaded.id, original.id);
    EXPECT_EQ(loaded.regime, original.regime);
    EXPECT_EQ(loaded.law->spec(), original.law->spec());
    EXPECT_EQ(loaded.model, original.model);
    EXPECT_EQ(loaded.mapping.to_string(), original.mapping.to_string());
  }
}

TEST(FuzzCorpus, MalformedScenarioDiagnostics) {
  EXPECT_THROW(scenario_from_string(""), InvalidArgument);
  EXPECT_THROW(scenario_from_string("not-a-scenario\n"), InvalidArgument);

  const std::string good =
      scenario_to_string(draw_scenario(CorpusOptions{}, 0));
  const auto corrupt = [&](const std::string& from, const std::string& to) {
    std::string text = good;
    const auto pos = text.find(from);
    ASSERT_NE(pos, std::string::npos) << from;
    text.replace(pos, from.size(), to);
    EXPECT_THROW(scenario_from_string(text), InvalidArgument) << to;
  };
  corrupt("regime baseline", "regime warp-speed");    // unknown regime
  corrupt("law const:1", "law klingon:1");            // unknown law
  corrupt("model overlap", "model sometimes");        // unknown model
  corrupt("id 0", "id x");                            // bad id value
  corrupt("end-instance", "");                        // unterminated block
  corrupt("regime baseline", "vibe baseline");        // unknown keyword

  // Dropping a header line entirely must be diagnosed, not defaulted.
  corrupt("law const:1\n", "");

  // Corruption inside the embedded instance block surfaces as the instance
  // parser's own diagnostic.
  corrupt("streamflow-instance v1", "streamflow-wrong v1");
  corrupt("works", "wirks");
}

TEST(FuzzCorpus, RegimeNamesRoundTrip) {
  for (std::size_t r = 0; r < kNumRegimes; ++r) {
    const ScenarioRegime regime = static_cast<ScenarioRegime>(r);
    EXPECT_EQ(parse_regime(to_string(regime)), regime);
  }
  EXPECT_THROW(parse_regime("nope"), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
