// Statistical honesty of replicated simulations on the Fig 15 (§7.5)
// exp-vs-det scenario: a single u x v communication where randomness hurts
// most (rho_exp / rho_det = max(u,v) / (u+v-1)). Replicated means must agree
// with one long run, and Theorem 7's sandwich rho_exp <= rho <= rho_det must
// hold for EVERY replication of an N.B.U.E. law, not just on average.
#include "engine/sim_replication.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "core/analyzer.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"

namespace streamflow {
namespace {

// u = 4 senders, v = 3 receivers (gcd 1), unit communication time: the
// middle of Fig 15's sweep.
const Mapping& fig15_mapping() {
  static const Mapping mapping = testing::single_comm_mapping(4, 3, 1.0);
  return mapping;
}

ExperimentOptions experiment(std::size_t replications,
                             std::uint64_t seed = 0xF15) {
  ExperimentOptions options;
  options.replications = replications;
  options.threads = 0;  // all cores
  options.seed = seed;
  return options;
}

TEST(SimReplication, PipelineMeanMatchesOneLongRun) {
  const Mapping& mapping = fig15_mapping();
  const StochasticTiming exp = StochasticTiming::exponential(mapping);

  PipelineSimOptions sim;
  sim.data_sets = 20'000;
  const ReplicatedResult replicated = run_replicated_pipeline(
      mapping, ExecutionModel::kOverlap, exp, sim, experiment(8));
  const MetricSummary& throughput = replicated.metric("throughput");

  PipelineSimOptions long_run;
  long_run.data_sets = 200'000;
  long_run.seed = 9090;
  const double reference =
      simulate_pipeline(mapping, ExecutionModel::kOverlap, exp, long_run)
          .throughput;

  // The long run is itself noisy, so allow its own ~1% on top of the CI.
  EXPECT_NEAR(throughput.mean, reference,
              throughput.ci95_halfwidth + 0.01 * reference);
  EXPECT_GT(throughput.ci95_halfwidth, 0.0);
  EXPECT_LE(throughput.min, throughput.mean);
  EXPECT_LE(throughput.mean, throughput.max);
}

TEST(SimReplication, TegMeanAgreesWithPipelineMean) {
  // §7.4 fidelity, replicated: the TPN simulator and the direct simulator
  // are independent implementations of the same semantics.
  const Mapping& mapping = fig15_mapping();
  const StochasticTiming exp = StochasticTiming::exponential(mapping);
  const TimedEventGraph graph = build_tpn(mapping, ExecutionModel::kOverlap);

  TegSimOptions teg;
  teg.rounds = 3'000;
  const ReplicatedResult teg_runs = run_replicated_teg(
      graph, transition_laws(graph, exp), teg, experiment(8));

  PipelineSimOptions pipe;
  pipe.data_sets = 30'000;
  const ReplicatedResult pipe_runs = run_replicated_pipeline(
      mapping, ExecutionModel::kOverlap, exp, pipe, experiment(8, 0xF16));

  EXPECT_LT(relative_difference(teg_runs.metric("throughput").mean,
                                pipe_runs.metric("throughput").mean),
            0.03);
}

TEST(SimReplication, Theorem7SandwichHoldsPerReplication) {
  const Mapping& mapping = fig15_mapping();
  const NbueBounds bounds =
      nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
  ASSERT_LT(bounds.lower, bounds.upper);  // randomness genuinely hurts here

  // gamma(shape 2) is N.B.U.E. and sits strictly between exponential and
  // constant; every replication — not just the mean — must land inside the
  // sandwich (up to finite-run noise).
  const StochasticTiming gamma_timing =
      StochasticTiming::scaled(mapping, *parse_distribution("gamma:2,1"));
  PipelineSimOptions sim;
  sim.data_sets = 30'000;
  const ReplicatedResult replicated = run_replicated_pipeline(
      mapping, ExecutionModel::kOverlap, gamma_timing, sim, experiment(12));

  const std::vector<double> throughputs = replicated.column("throughput");
  ASSERT_EQ(throughputs.size(), 12u);
  for (std::size_t k = 0; k < throughputs.size(); ++k) {
    EXPECT_GE(throughputs[k], bounds.lower * 0.97) << "replication " << k;
    EXPECT_LE(throughputs[k], bounds.upper * 1.03) << "replication " << k;
  }
  // The mean sits strictly inside, away from both walls.
  const double mean = replicated.metric("throughput").mean;
  EXPECT_GT(mean, bounds.lower);
  EXPECT_LT(mean, bounds.upper);
}

TEST(SimReplication, ExponentialReplicationsSitAtTheLowerWall) {
  // With exponential laws the N.B.U.E. lower bound is the exact throughput:
  // each replication must track it within simulation noise.
  const Mapping& mapping = fig15_mapping();
  const NbueBounds bounds =
      nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
  PipelineSimOptions sim;
  sim.data_sets = 30'000;
  const ReplicatedResult replicated = run_replicated_pipeline(
      mapping, ExecutionModel::kOverlap,
      StochasticTiming::exponential(mapping), sim, experiment(8, 0xF17));
  for (const double throughput : replicated.column("throughput"))
    EXPECT_LT(relative_difference(throughput, bounds.lower), 0.04);
}

TEST(SimReplication, TegSandwichHoldsPerReplication) {
  const Mapping& mapping = fig15_mapping();
  const NbueBounds bounds =
      nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
  const TimedEventGraph graph = build_tpn(mapping, ExecutionModel::kOverlap);
  const StochasticTiming gamma_timing =
      StochasticTiming::scaled(mapping, *parse_distribution("gamma:2,1"));

  TegSimOptions sim;
  sim.rounds = 4'000;
  const ReplicatedResult replicated = run_replicated_teg(
      graph, transition_laws(graph, gamma_timing), sim, experiment(12, 0xF18));
  for (const double throughput : replicated.column("throughput")) {
    EXPECT_GE(throughput, bounds.lower * 0.97);
    EXPECT_LE(throughput, bounds.upper * 1.03);
  }
}

}  // namespace
}  // namespace streamflow
