#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"
#include "linalg/stationary.hpp"

namespace streamflow {
namespace {

TEST(DenseMatrix, MultiplyAndTranspose) {
  DenseMatrix a(2, 3);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(0, 2) = 3;
  a(1, 0) = 4;
  a(1, 1) = 5;
  a(1, 2) = 6;
  const Vector y = a.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 15.0);
  const Vector z = a.multiply_transpose({1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
  const DenseMatrix t = a.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
}

TEST(Lu, SolvesKnownSystem) {
  DenseMatrix a(3, 3);
  a(0, 0) = 2;
  a(0, 1) = 1;
  a(0, 2) = 1;
  a(1, 0) = 1;
  a(1, 1) = 3;
  a(1, 2) = 2;
  a(2, 0) = 1;
  a(2, 1) = 0;
  a(2, 2) = 0;
  // x = (1, 2, 3): b = (2+2+3, 1+6+6, 1) = (7, 13, 1).
  const Vector x = solve_dense(a, {7.0, 13.0, 1.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(Lu, RandomRoundTrip) {
  Prng prng(41);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 1 + prng.uniform_index(30);
    DenseMatrix a(n, n);
    for (std::size_t r = 0; r < n; ++r)
      for (std::size_t c = 0; c < n; ++c) a(r, c) = prng.uniform(-2.0, 2.0);
    // Diagonal dominance guarantees non-singularity.
    for (std::size_t r = 0; r < n; ++r) a(r, r) += 4.0 * static_cast<double>(n);
    Vector x_true(n);
    for (std::size_t i = 0; i < n; ++i) x_true[i] = prng.uniform(-1.0, 1.0);
    const Vector b = a.multiply(x_true);
    const Vector x = solve_dense(a, b);
    for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-9);
  }
}

TEST(Lu, DetectsSingular) {
  DenseMatrix a(2, 2);
  a(0, 0) = 1;
  a(0, 1) = 2;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_THROW(LuFactorization{a}, NumericalError);
}

TEST(Lu, Determinant) {
  DenseMatrix a(2, 2);
  a(0, 0) = 3;
  a(0, 1) = 1;
  a(1, 0) = 2;
  a(1, 1) = 4;
  EXPECT_NEAR(LuFactorization{a}.determinant(), 10.0, 1e-12);
}

TEST(Csr, AssemblesAndMultiplies) {
  std::vector<Triplet> t{{0, 1, 2.0}, {1, 0, 3.0}, {1, 2, 1.0}, {0, 1, 0.5}};
  CsrMatrix m(2, 3, t);
  EXPECT_EQ(m.nonzeros(), 3u);  // duplicate (0,1) merged
  const auto y = m.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 2.5);
  EXPECT_DOUBLE_EQ(y[1], 4.0);
  const auto z = m.multiply_transpose({1.0, 2.0});
  EXPECT_DOUBLE_EQ(z[0], 6.0);
  EXPECT_DOUBLE_EQ(z[1], 2.5);
  EXPECT_DOUBLE_EQ(z[2], 2.0);
}

TEST(Csr, RejectsOutOfRange) {
  std::vector<Triplet> t{{5, 0, 1.0}};
  EXPECT_THROW(CsrMatrix(2, 2, t), InvalidArgument);
}

TEST(Stationary, TwoStateChain) {
  // 0 -> 1 at rate a, 1 -> 0 at rate b: pi = (b, a) / (a + b).
  const double a = 2.0, b = 5.0;
  DenseMatrix q(2, 2);
  q(0, 0) = -a;
  q(0, 1) = a;
  q(1, 0) = b;
  q(1, 1) = -b;
  const Vector pi = stationary_dense(q);
  EXPECT_NEAR(pi[0], b / (a + b), 1e-12);
  EXPECT_NEAR(pi[1], a / (a + b), 1e-12);
  EXPECT_LT(stationary_residual(q, pi), 1e-12);
}

TEST(Stationary, BirthDeathMatchesMm1k) {
  // M/M/1/K with arrival l, service mu: pi_i ~ (l/mu)^i.
  const double l = 1.0, mu = 2.0;
  const std::size_t k = 6;
  DenseMatrix q(k + 1, k + 1);
  for (std::size_t i = 0; i <= k; ++i) {
    if (i < k) {
      q(i, i + 1) = l;
      q(i, i) -= l;
    }
    if (i > 0) {
      q(i, i - 1) = mu;
      q(i, i) -= mu;
    }
  }
  const Vector pi = stationary_dense(q);
  const double rho = l / mu;
  double norm = 0.0;
  for (std::size_t i = 0; i <= k; ++i) norm += std::pow(rho, i);
  for (std::size_t i = 0; i <= k; ++i)
    EXPECT_NEAR(pi[i], std::pow(rho, i) / norm, 1e-12) << "state " << i;
}

TEST(Stationary, UniformizedAgreesWithDense) {
  Prng prng(1234);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t n = 3 + prng.uniform_index(20);
    // Random strongly connected generator: a cycle plus random extra edges.
    std::vector<Triplet> triplets;
    DenseMatrix q(n, n, 0.0);
    auto add = [&](std::size_t i, std::size_t j, double r) {
      triplets.push_back({i, j, r});
      q(i, j) += r;
      q(i, i) -= r;
    };
    for (std::size_t i = 0; i < n; ++i)
      add(i, (i + 1) % n, prng.uniform(0.5, 2.0));
    for (std::size_t e = 0; e < 2 * n; ++e) {
      const std::size_t i = prng.uniform_index(n);
      const std::size_t j = prng.uniform_index(n);
      if (i != j) add(i, j, prng.uniform(0.1, 1.0));
    }
    const Vector pi_dense = stationary_dense(q);
    const Vector pi_iter =
        stationary_uniformized(CsrMatrix(n, n, triplets));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_NEAR(pi_dense[i], pi_iter[i], 1e-8) << "state " << i;
  }
}

TEST(Stationary, RejectsEmptyAndNonSquare) {
  EXPECT_THROW(stationary_dense(DenseMatrix(0, 0)), InvalidArgument);
  EXPECT_THROW(stationary_dense(DenseMatrix(2, 3)), InvalidArgument);
}

}  // namespace
}  // namespace streamflow
