#include "core/heuristics.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "core/analysis_context.hpp"
#include "core/analyzer.hpp"
#include "model/random_instance.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

void expect_same_result(const MappingSearchResult& a,
                        const MappingSearchResult& b) {
  ASSERT_EQ(a.mapping.num_stages(), b.mapping.num_stages());
  for (std::size_t i = 0; i < a.mapping.num_stages(); ++i) {
    EXPECT_EQ(a.mapping.team(i), b.mapping.team(i));
  }
  EXPECT_EQ(a.throughput, b.throughput);  // bitwise
  EXPECT_EQ(a.greedy_throughput, b.greedy_throughput);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(Heuristics, TrivialInstanceAssignsEverything) {
  // One processor per stage: the only feasible shape.
  Application app({1.0, 2.0}, {1.0});
  Platform platform = Platform::fully_connected({1.0, 2.0}, 10.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kDeterministic;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_EQ(result.mapping.replication(0), 1u);
  EXPECT_EQ(result.mapping.replication(1), 1u);
  // The heavy stage (T2, w=2) should get the fast processor (P1, s=2):
  // throughput 1 instead of 1/4... times comm constraints.
  EXPECT_EQ(result.mapping.team(1)[0], 1u);
  EXPECT_GT(result.throughput, 0.0);
}

TEST(Heuristics, ReplicatesTheBottleneckStage) {
  // A heavy middle stage and six identical processors: the optimizer must
  // replicate the middle stage on most of them.
  Application app({1.0, 12.0, 1.0}, {0.1, 0.1});
  Platform platform = Platform::fully_connected(
      std::vector<double>(6, 1.0), 100.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = 2;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_GE(result.mapping.replication(1), 3u);
  EXPECT_GE(result.throughput, result.greedy_throughput * 0.999);
}

TEST(Heuristics, LeavesStragglersOutWhenAllowed) {
  // A crippled processor (1000x slower) would pace a middle replicated
  // stage; with allow_unused_processors the search should bench it.
  Application app({1.0, 4.0, 1.0}, {0.1, 0.1});
  Platform platform = Platform::fully_connected(
      {10.0, 2.0, 2.0, 0.002, 10.0}, 100.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kDeterministic;
  options.restarts = 3;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_EQ(result.mapping.stage_of(3), Mapping::kUnused);
}

TEST(Heuristics, BeatsOrMatchesRandomMappings) {
  // The searched mapping must dominate a sample of random valid mappings
  // of the same instance.
  Prng prng(99);
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = 3;
  const auto result = optimize_mapping(app, platform, options);

  RandomInstanceOptions random_options;
  random_options.num_stages = 3;
  random_options.num_processors = 7;
  // Random instances redraw speeds, so instead randomize team shapes on OUR
  // platform: sample partitions via random_instance's composition logic by
  // shuffling processors into teams.
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::size_t> procs{0, 1, 2, 3, 4, 5, 6};
    for (std::size_t i = procs.size(); i > 1; --i)
      std::swap(procs[i - 1], procs[prng.uniform_index(i)]);
    const std::size_t cut1 = 1 + prng.uniform_index(5);
    const std::size_t cut2 = cut1 + 1 + prng.uniform_index(7 - cut1 - 1);
    std::vector<std::vector<std::size_t>> teams(3);
    teams[0].assign(procs.begin(), procs.begin() + static_cast<long>(cut1));
    teams[1].assign(procs.begin() + static_cast<long>(cut1),
                    procs.begin() + static_cast<long>(cut2));
    teams[2].assign(procs.begin() + static_cast<long>(cut2), procs.end());
    const Mapping candidate(app, platform, teams);
    const double rho =
        exponential_throughput(candidate, ExecutionModel::kOverlap).throughput;
    EXPECT_LE(rho, result.throughput * (1.0 + 1e-9))
        << candidate.to_string();
  }
}

TEST(Heuristics, DeterministicObjectiveWorksForStrict) {
  Application app({1.0, 6.0}, {0.5});
  Platform platform = Platform::fully_connected({1.0, 1.0, 1.0, 1.0}, 5.0);
  MappingSearchOptions options;
  options.model = ExecutionModel::kStrict;
  options.objective = MappingObjective::kDeterministic;
  options.restarts = 2;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_GE(result.mapping.replication(1), 2u);  // heavy stage replicated
}

TEST(Heuristics, Validation) {
  Application app({1.0, 1.0, 1.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected({1.0, 1.0}, 1.0);
  EXPECT_THROW(optimize_mapping(app, platform), InvalidArgument);

  Application app2({1.0}, {});
  Platform platform2({1.0});
  MappingSearchOptions bad;
  bad.model = ExecutionModel::kStrict;
  bad.objective = MappingObjective::kExponential;
  EXPECT_THROW(optimize_mapping(app2, platform2, bad), InvalidArgument);
}

TEST(Heuristics, RestartsZeroMatchesRestartsOne) {
  // restarts = 0 must still run the greedy start plus one local-search
  // pass: it is equivalent to restarts = 1, not an empty result.
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.seed = 11;
  options.restarts = 0;
  const auto zero = optimize_mapping(app, platform, options);
  options.restarts = 1;
  const auto one = optimize_mapping(app, platform, options);
  expect_same_result(zero, one);
  EXPECT_GT(zero.throughput, 0.0);
  EXPECT_GE(zero.throughput, zero.greedy_throughput);
  EXPECT_GT(zero.evaluations, 0u);
}

TEST(Heuristics, EvaluationAccountingIsExact) {
  // With no local-search sweeps and forced placement, the count is fully
  // determined: 1 evaluation of the initial greedy seed, then for each of
  // the m - n extra processors n candidate probes plus one re-probe of the
  // chosen placement. Every greedy-construction scoring call is tallied.
  Application app({1.0, 2.0}, {0.5});
  Platform platform = Platform::fully_connected({2.0, 1.0, 1.0, 1.0, 1.0},
                                                10.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.allow_unused_processors = false;
  options.max_sweeps = 0;
  options.restarts = 1;
  const auto result = optimize_mapping(app, platform, options);
  const std::size_t m = 5, n = 2;
  EXPECT_EQ(result.evaluations, 1 + (m - n) * (n + 1));
  // No sweeps ran: the result is exactly the greedy construction.
  EXPECT_EQ(result.throughput, result.greedy_throughput);
}

TEST(Heuristics, WarmCacheDoesNotChangeTheResult) {
  // The search trajectory must be independent of the cache state: a shared
  // context warmed by a previous identical search returns the identical
  // mapping, scores, and evaluation count — with all pattern solves served
  // from the cache.
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  Prng prng(3);
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t q = p + 1; q < 7; ++q) {
      platform.set_bandwidth(p, q, 2.0 + 3.0 * prng.uniform01());
    }
  }
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = 3;
  options.seed = 42;

  const auto cold = optimize_mapping(app, platform, options);
  AnalysisContext shared;
  const auto first = optimize_mapping(app, platform, options, shared);
  const auto warm = optimize_mapping(app, platform, options, shared);

  expect_same_result(cold, first);
  expect_same_result(cold, warm);
  EXPECT_GT(first.pattern_cache_misses, 0u);
  EXPECT_EQ(warm.pattern_cache_misses, 0u);  // fully warm
  EXPECT_GT(warm.pattern_cache_hits, 0u);
}

TEST(Heuristics, InstanceIsSharedNotCopiedAcrossAWholeSearch) {
  // The tentpole contract of the instance-sharing refactor: a search
  // constructs thousands of candidate mappings but never duplicates the
  // Application/Platform payload. shared_ptr use counts make that
  // observable — if any step copied the instance, the returned mapping
  // would reference a different allocation.
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  const InstancePtr instance = make_instance(std::move(app),
                                             std::move(platform));
  ASSERT_EQ(instance.use_count(), 1);

  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = 3;

  {
    // Throwaway-context overload: after it returns, the only handles left
    // are ours and the result mapping's.
    const auto result = optimize_mapping(instance, options);
    EXPECT_EQ(result.mapping.instance().get(), instance.get());
    EXPECT_EQ(instance.use_count(), 2);
  }
  EXPECT_EQ(instance.use_count(), 1);

  // Shared-context overload: exactly two more handles live inside the
  // context — the pinned base mapping and the pending scratch candidate of
  // the last (uncommitted) evaluate_move probe. Still the same allocation:
  // handles are O(1) copies of the pointer, never of the payload.
  AnalysisContext context;
  const auto result = optimize_mapping(instance, options, context);
  EXPECT_EQ(result.mapping.instance().get(), instance.get());
  EXPECT_EQ(context.base_mapping().instance().get(), instance.get());
  EXPECT_EQ(instance.use_count(), 4);
  context.clear();
  EXPECT_EQ(instance.use_count(), 2);  // ours + the result mapping's
}

TEST(Heuristics, PinnedScoresMatchThePreSharingImplementation) {
  // Regression pin for the by-value -> shared-instance refactor: these
  // exact values (bitwise, printf %.17g) were produced by the pre-refactor
  // library built from the PR 3 tree on this instance, for both
  // objectives. Searches must stay byte-for-byte reproducible across the
  // candidate-construction change.
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  Prng prng(3);
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t q = p + 1; q < 7; ++q) {
      platform.set_bandwidth(p, q, 2.0 + 3.0 * prng.uniform01());
    }
  }
  MappingSearchOptions options;
  options.restarts = 3;
  options.seed = 42;
  for (const MappingObjective objective :
       {MappingObjective::kExponential, MappingObjective::kDeterministic}) {
    options.objective = objective;
    const auto result = optimize_mapping(app, platform, options);
    EXPECT_EQ(result.throughput, 0.65000000000000002);
    EXPECT_EQ(result.greedy_throughput, 0.3125);
    EXPECT_EQ(result.evaluations, 238u);
    EXPECT_EQ(result.mapping.to_string(),
              "Mapping[m=3 paths; T1->{P1} T2->{P2,P4,P5} T3->{P0,P3,P6}]");
  }
}

TEST(Heuristics, CandidatePoliciesProduceIdenticalSearches) {
  // kCopyValidate is the pre-refactor candidate-construction path kept as
  // the reference implementation; a whole search under it must retrace the
  // kSharedDerive search exactly (same trajectory, scores, and counts).
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  Prng prng(3);
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t q = p + 1; q < 7; ++q) {
      platform.set_bandwidth(p, q, 2.0 + 3.0 * prng.uniform01());
    }
  }
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = 3;
  options.seed = 42;

  AnalysisContext shared_context;
  shared_context.set_candidate_policy(CandidatePolicy::kSharedDerive);
  const auto shared = optimize_mapping(app, platform, options, shared_context);

  AnalysisContext copy_context;
  copy_context.set_candidate_policy(CandidatePolicy::kCopyValidate);
  const auto copied = optimize_mapping(app, platform, options, copy_context);

  expect_same_result(shared, copied);
  EXPECT_EQ(shared.pattern_cache_misses, copied.pattern_cache_misses);
  EXPECT_EQ(shared.pattern_cache_hits, copied.pattern_cache_hits);
}

TEST(Heuristics, ReportsCacheStatsPerObjective) {
  Application app({1.0, 12.0, 1.0}, {0.1, 0.1});
  Platform platform = Platform::fully_connected(
      std::vector<double>(6, 1.0), 100.0);
  MappingSearchOptions options;
  options.restarts = 2;
  options.objective = MappingObjective::kDeterministic;
  const auto det = optimize_mapping(app, platform, options);
  // The deterministic objective never touches the pattern cache.
  EXPECT_EQ(det.pattern_cache_hits, 0u);
  EXPECT_EQ(det.pattern_cache_misses, 0u);
  EXPECT_GT(det.evaluations, 0u);
}

// ---- Bound screens (BoundPolicy) -------------------------------------------

TEST(Heuristics, StageRateBoundIsAdmissibleOnRandomInstances) {
  // The tier-1 screen's bound — min over stages of stage_rate_bound — must
  // dominate BOTH search objectives on arbitrary instances; otherwise a
  // screen could prune a winning move.
  RandomInstanceOptions random;
  random.num_stages = 3;
  random.num_processors = 6;
  random.max_paths = 64;
  Prng prng(2025);
  for (int trial = 0; trial < 12; ++trial) {
    const Mapping mapping = random_instance(random, prng);
    double bound = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < mapping.num_stages(); ++i) {
      bound = std::min(bound, mapping.stage_rate_bound(i));
    }
    const double rho_exp =
        exponential_throughput(mapping, ExecutionModel::kOverlap).throughput;
    const double rho_det =
        deterministic_throughput(mapping, ExecutionModel::kOverlap).throughput;
    EXPECT_GE(bound * (1.0 + 1e-9), rho_exp) << mapping.to_string();
    EXPECT_GE(bound * (1.0 + 1e-9), rho_det) << mapping.to_string();
  }
}

TEST(Heuristics, BoundScreenNeverPrunesAnImprovingMove) {
  // Exhaustive probe-level admissibility: for every feasible move of a
  // random base, take the exact score from an unscreened probe, then
  // re-probe with a threshold just below that score. An admissible screen
  // must come back kScored — bit-identically — never kPruned.
  RandomInstanceOptions random;
  random.num_stages = 3;
  random.num_processors = 6;
  random.max_paths = 64;
  Prng prng(77);
  for (const BoundPolicy policy :
       {BoundPolicy::kMct, BoundPolicy::kMctMaxplus}) {
    for (int trial = 0; trial < 3; ++trial) {
      // set_base requires the search normal form (teams in increasing
      // processor order); the random generator makes no such promise.
      const Mapping raw = random_instance(random, prng);
      std::vector<std::vector<std::size_t>> teams;
      for (std::size_t i = 0; i < raw.num_stages(); ++i) {
        teams.push_back(raw.team(i));
        std::sort(teams.back().begin(), teams.back().end());
      }
      const Mapping base(raw.instance(), std::move(teams));
      MappingSearchOptions options;
      options.objective = MappingObjective::kExponential;
      options.bounds = policy;
      options.max_paths = random.max_paths;
      AnalysisContext context;
      context.set_base(base, options);
      const std::size_t n = base.num_stages();
      std::vector<MappingMove> moves;
      for (std::size_t p = 0; p < base.num_processors(); ++p) {
        for (std::size_t i = 0; i <= n; ++i) {
          const std::size_t target = i == n ? Mapping::kUnused : i;
          if (target == base.stage_of(p)) continue;
          moves.push_back(MappingMove::migrate(p, target));
        }
        for (std::size_t q = p + 1; q < base.num_processors(); ++q) {
          if (base.stage_of(p) == base.stage_of(q)) continue;
          moves.push_back(MappingMove::swap(p, q));
        }
      }
      for (const MappingMove& move : moves) {
        const AnalysisContext::MoveProbe free = context.probe_move(
            move, -std::numeric_limits<double>::infinity());
        if (free.outcome != AnalysisContext::MoveProbe::Outcome::kScored)
          continue;
        const AnalysisContext::MoveProbe tight =
            context.probe_move(move, free.score * (1.0 - 1e-6));
        EXPECT_EQ(tight.outcome,
                  AnalysisContext::MoveProbe::Outcome::kScored)
            << base.to_string() << " score " << free.score;
        EXPECT_EQ(tight.score, free.score);
      }
    }
  }
}

TEST(Heuristics, ScreenedSearchIsBitIdenticalWithExactAccounting) {
  // Whole-search invariant on the pinned instance: both screens return the
  // PR 5 pinned values bit-for-bit, and the probe accounting is exact —
  // every probe the unscreened search solved is either solved or pruned
  // under a screen, never lost.
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  Prng prng(3);
  for (std::size_t p = 0; p < 7; ++p) {
    for (std::size_t q = p + 1; q < 7; ++q) {
      platform.set_bandwidth(p, q, 2.0 + 3.0 * prng.uniform01());
    }
  }
  MappingSearchOptions options;
  options.restarts = 3;
  options.seed = 42;
  for (const MappingObjective objective :
       {MappingObjective::kExponential, MappingObjective::kDeterministic}) {
    options.objective = objective;
    options.bounds = BoundPolicy::kNone;
    const auto reference = optimize_mapping(app, platform, options);
    EXPECT_EQ(reference.throughput, 0.65000000000000002);
    EXPECT_EQ(reference.moves_pruned_mct, 0u);
    EXPECT_EQ(reference.moves_pruned_maxplus, 0u);
    EXPECT_GT(reference.moves_solved, 0u);
    for (const BoundPolicy policy :
         {BoundPolicy::kMct, BoundPolicy::kMctMaxplus}) {
      options.bounds = policy;
      const auto screened = optimize_mapping(app, platform, options);
      expect_same_result(reference, screened);
      EXPECT_EQ(screened.mapping.to_string(), reference.mapping.to_string());
      EXPECT_EQ(screened.moves_solved + screened.moves_pruned_mct +
                    screened.moves_pruned_maxplus,
                reference.moves_solved)
          << "accounting identity broken under a screen";
      // The tier-2 escalation only arms for the exponential objective.
      if (objective == MappingObjective::kDeterministic) {
        EXPECT_EQ(screened.moves_pruned_maxplus, 0u);
      }
    }
  }
}

TEST(Heuristics, RespectsMaxPathsConstraint) {
  Application app({1.0, 1.0, 1.0}, {0.1, 0.1});
  Platform platform = Platform::fully_connected(
      std::vector<double>(12, 1.0), 100.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kDeterministic;
  options.max_paths = 12;
  options.restarts = 2;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_LE(result.mapping.num_paths(), 12);
}

}  // namespace
}  // namespace streamflow
