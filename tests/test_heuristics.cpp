#include "core/heuristics.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "core/analyzer.hpp"
#include "model/random_instance.hpp"
#include "test_helpers.hpp"

namespace streamflow {
namespace {

TEST(Heuristics, TrivialInstanceAssignsEverything) {
  // One processor per stage: the only feasible shape.
  Application app({1.0, 2.0}, {1.0});
  Platform platform = Platform::fully_connected({1.0, 2.0}, 10.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kDeterministic;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_EQ(result.mapping.replication(0), 1u);
  EXPECT_EQ(result.mapping.replication(1), 1u);
  // The heavy stage (T2, w=2) should get the fast processor (P1, s=2):
  // throughput 1 instead of 1/4... times comm constraints.
  EXPECT_EQ(result.mapping.team(1)[0], 1u);
  EXPECT_GT(result.throughput, 0.0);
}

TEST(Heuristics, ReplicatesTheBottleneckStage) {
  // A heavy middle stage and six identical processors: the optimizer must
  // replicate the middle stage on most of them.
  Application app({1.0, 12.0, 1.0}, {0.1, 0.1});
  Platform platform = Platform::fully_connected(
      std::vector<double>(6, 1.0), 100.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = 2;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_GE(result.mapping.replication(1), 3u);
  EXPECT_GE(result.throughput, result.greedy_throughput * 0.999);
}

TEST(Heuristics, LeavesStragglersOutWhenAllowed) {
  // A crippled processor (1000x slower) would pace a middle replicated
  // stage; with allow_unused_processors the search should bench it.
  Application app({1.0, 4.0, 1.0}, {0.1, 0.1});
  Platform platform = Platform::fully_connected(
      {10.0, 2.0, 2.0, 0.002, 10.0}, 100.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kDeterministic;
  options.restarts = 3;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_EQ(result.mapping.stage_of(3), Mapping::kUnused);
}

TEST(Heuristics, BeatsOrMatchesRandomMappings) {
  // The searched mapping must dominate a sample of random valid mappings
  // of the same instance.
  Prng prng(99);
  Application app({2.0, 8.0, 3.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected(
      {1.0, 1.5, 2.0, 0.8, 1.2, 2.5, 0.9}, 4.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kExponential;
  options.restarts = 3;
  const auto result = optimize_mapping(app, platform, options);

  RandomInstanceOptions random_options;
  random_options.num_stages = 3;
  random_options.num_processors = 7;
  // Random instances redraw speeds, so instead randomize team shapes on OUR
  // platform: sample partitions via random_instance's composition logic by
  // shuffling processors into teams.
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<std::size_t> procs{0, 1, 2, 3, 4, 5, 6};
    for (std::size_t i = procs.size(); i > 1; --i)
      std::swap(procs[i - 1], procs[prng.uniform_index(i)]);
    const std::size_t cut1 = 1 + prng.uniform_index(5);
    const std::size_t cut2 = cut1 + 1 + prng.uniform_index(7 - cut1 - 1);
    std::vector<std::vector<std::size_t>> teams(3);
    teams[0].assign(procs.begin(), procs.begin() + static_cast<long>(cut1));
    teams[1].assign(procs.begin() + static_cast<long>(cut1),
                    procs.begin() + static_cast<long>(cut2));
    teams[2].assign(procs.begin() + static_cast<long>(cut2), procs.end());
    const Mapping candidate(app, platform, teams);
    const double rho =
        exponential_throughput(candidate, ExecutionModel::kOverlap).throughput;
    EXPECT_LE(rho, result.throughput * (1.0 + 1e-9))
        << candidate.to_string();
  }
}

TEST(Heuristics, DeterministicObjectiveWorksForStrict) {
  Application app({1.0, 6.0}, {0.5});
  Platform platform = Platform::fully_connected({1.0, 1.0, 1.0, 1.0}, 5.0);
  MappingSearchOptions options;
  options.model = ExecutionModel::kStrict;
  options.objective = MappingObjective::kDeterministic;
  options.restarts = 2;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_GT(result.throughput, 0.0);
  EXPECT_GE(result.mapping.replication(1), 2u);  // heavy stage replicated
}

TEST(Heuristics, Validation) {
  Application app({1.0, 1.0, 1.0}, {1.0, 1.0});
  Platform platform = Platform::fully_connected({1.0, 1.0}, 1.0);
  EXPECT_THROW(optimize_mapping(app, platform), InvalidArgument);

  Application app2({1.0}, {});
  Platform platform2({1.0});
  MappingSearchOptions bad;
  bad.model = ExecutionModel::kStrict;
  bad.objective = MappingObjective::kExponential;
  EXPECT_THROW(optimize_mapping(app2, platform2, bad), InvalidArgument);
}

TEST(Heuristics, RespectsMaxPathsConstraint) {
  Application app({1.0, 1.0, 1.0}, {0.1, 0.1});
  Platform platform = Platform::fully_connected(
      std::vector<double>(12, 1.0), 100.0);
  MappingSearchOptions options;
  options.objective = MappingObjective::kDeterministic;
  options.max_paths = 12;
  options.restarts = 2;
  const auto result = optimize_mapping(app, platform, options);
  EXPECT_LE(result.mapping.num_paths(), 12);
}

}  // namespace
}  // namespace streamflow
