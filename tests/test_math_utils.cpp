#include "common/math_utils.hpp"

#include <gtest/gtest.h>

#include <tuple>

namespace streamflow {
namespace {

TEST(CheckedLcm, BasicPairs) {
  EXPECT_EQ(checked_lcm(1, 1), 1);
  EXPECT_EQ(checked_lcm(2, 3), 6);
  EXPECT_EQ(checked_lcm(4, 6), 12);
  EXPECT_EQ(checked_lcm(21, 27), 189);
  EXPECT_EQ(checked_lcm(1024, 4096), 4096);
}

TEST(CheckedLcm, RangeMatchesPaperExampleC) {
  // Example C: stages replicated on 5, 21, 27, 11 processors.
  std::vector<std::int64_t> factors{5, 21, 27, 11};
  EXPECT_EQ(checked_lcm(std::span<const std::int64_t>(factors)),
            5LL * 21 * 27 * 11 / 3);  // lcm = 10395
}

TEST(CheckedLcm, RejectsNonPositive) {
  EXPECT_THROW(checked_lcm(0, 3), InvalidArgument);
  EXPECT_THROW(checked_lcm(3, -1), InvalidArgument);
}

TEST(CheckedLcm, DetectsOverflow) {
  const std::int64_t big_prime1 = 2'147'483'647;  // 2^31 - 1
  const std::int64_t big_prime2 = 2'147'483'629;
  EXPECT_NO_THROW(checked_lcm(big_prime1, big_prime2));
  EXPECT_THROW(checked_lcm(checked_lcm(big_prime1, big_prime2), 1'000'003),
               CapacityExceeded);
}

TEST(GcdRange, Basics) {
  std::vector<std::int64_t> a{12, 18, 24};
  EXPECT_EQ(gcd_range(std::span<const std::int64_t>(a)), 6);
  std::vector<std::int64_t> b{21, 27};
  EXPECT_EQ(gcd_range(std::span<const std::int64_t>(b)), 3);
}

TEST(Binomial, SmallValues) {
  EXPECT_EQ(binomial(0, 0), 1);
  EXPECT_EQ(binomial(5, 0), 1);
  EXPECT_EQ(binomial(5, 5), 1);
  EXPECT_EQ(binomial(5, 2), 10);
  EXPECT_EQ(binomial(10, 3), 120);
  EXPECT_EQ(binomial(3, 7), 0);
}

TEST(Binomial, PascalIdentityHolds) {
  for (std::int64_t n = 1; n <= 40; ++n) {
    for (std::int64_t k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Binomial, SymmetricAndExactAtLargeArguments) {
  EXPECT_EQ(binomial(60, 30), 118'264'581'564'861'424LL);
  EXPECT_EQ(binomial(60, 30), binomial(60, 30));
  EXPECT_EQ(binomial(52, 26), binomial(52, 52 - 26));
}

TEST(Binomial, ThrowsOnOverflow) {
  EXPECT_THROW(binomial(70, 35), CapacityExceeded);
  EXPECT_THROW(binomial(-1, 0), InvalidArgument);
}

struct YoungCountCase {
  std::int64_t u, v, expected;
};

class YoungCountTest : public ::testing::TestWithParam<YoungCountCase> {};

TEST_P(YoungCountTest, ClosedForm) {
  const auto& c = GetParam();
  EXPECT_EQ(young_state_count(c.u, c.v), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    HandComputed, YoungCountTest,
    ::testing::Values(
        YoungCountCase{1, 1, 1},    // single link: one marking
        YoungCountCase{1, 2, 2},    // C(2,0)*2 = 2
        YoungCountCase{2, 1, 2},    // C(2,1)*1 = 2
        YoungCountCase{2, 2, 6},    // C(3,1)*2
        YoungCountCase{3, 2, 12},   // C(4,2)*2
        YoungCountCase{2, 3, 12},   // C(4,1)*3
        YoungCountCase{9, 7, 45045} // Example C's second communication
        ));

TEST(YoungCount, AsymmetryIsExpected) {
  // S(u,v) = C(u+v-1, u-1) * v is not symmetric in (u, v): the marking
  // counts differ even though throughput formulas are symmetric.
  EXPECT_EQ(young_state_count(2, 1), 2);
  EXPECT_EQ(young_state_count(1, 2), 2);
  EXPECT_EQ(young_state_count(3, 1), 3);
  EXPECT_EQ(young_state_count(1, 3), 3);
}

TEST(YoungEnabledCount, MatchesRatioOfStateCount) {
  for (std::int64_t u = 1; u <= 8; ++u) {
    for (std::int64_t v = 1; v <= 8; ++v) {
      // S'(u,v) = S(u,v) / (u + v - 1).
      EXPECT_EQ(young_enabled_count(u, v) * (u + v - 1),
                young_state_count(u, v))
          << "u=" << u << " v=" << v;
    }
  }
}

}  // namespace
}  // namespace streamflow
