#include "maxplus/algebra.hpp"

#include <gtest/gtest.h>

#include "common/prng.hpp"
#include "common/stats.hpp"
#include "maxplus/deterministic.hpp"
#include "model/random_instance.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"

namespace streamflow {
namespace {

using maxplus::eps;
using maxplus::Matrix;

TEST(MaxPlusAlgebra, ScalarOps) {
  EXPECT_DOUBLE_EQ(maxplus::oplus(2.0, 3.0), 3.0);
  EXPECT_DOUBLE_EQ(maxplus::otimes(2.0, 3.0), 5.0);
  EXPECT_EQ(maxplus::otimes(eps, 3.0), eps);
  EXPECT_EQ(maxplus::oplus(eps, eps), eps);
  EXPECT_DOUBLE_EQ(maxplus::otimes(maxplus::e, 4.0), 4.0);
}

TEST(MaxPlusAlgebra, MatrixMultiplyAndIdentity) {
  Matrix a(2);
  a(0, 0) = 1.0;
  a(0, 1) = 2.0;
  a(1, 0) = eps;
  a(1, 1) = 3.0;
  const Matrix i2 = Matrix::identity(2);
  const Matrix ai = a.multiply(i2);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_EQ(ai(r, c), a(r, c));
  const Matrix a2 = a.multiply(a);
  // (A^2)(0,1) = max(a00+a01, a01+a11) = max(3, 5) = 5.
  EXPECT_DOUBLE_EQ(a2(0, 1), 5.0);
  EXPECT_EQ(a2(1, 0), eps);
}

TEST(MaxPlusAlgebra, ApplyVector) {
  Matrix a(2);
  a(0, 1) = 2.0;
  a(1, 0) = 1.0;
  const auto y = a.apply({5.0, 7.0});
  EXPECT_DOUBLE_EQ(y[0], 9.0);  // 2 + 7
  EXPECT_DOUBLE_EQ(y[1], 6.0);  // 1 + 5
}

TEST(MaxPlusAlgebra, StarOfAcyclicChain) {
  // 0 -> 1 -> 2 with weights 2 and 3: star holds all path maxima.
  Matrix a(3);
  a(1, 0) = 2.0;
  a(2, 1) = 3.0;
  const Matrix s = a.star();
  EXPECT_DOUBLE_EQ(s(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(s(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(s(2, 0), 5.0);
  EXPECT_EQ(s(0, 2), eps);
}

TEST(MaxPlusAlgebra, StarRejectsPositiveCycle) {
  Matrix a(2);
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  EXPECT_THROW(a.star(), InvalidArgument);
}

TEST(MaxPlusAlgebra, StateMatrixOfSelfLoopServer) {
  // One transition, duration 2, marked self-loop: x(k) = 2 + x(k-1).
  TimedEventGraph g(1, 1);
  g.add_transition(Transition{.duration = 2.0});
  g.add_place(Place{0, 0, PlaceKind::kResource, 1});
  g.finalize();
  const Matrix a = maxplus::state_matrix(g);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.0);
  const auto rates = maxplus::cycle_time_vector(a, 40);
  EXPECT_DOUBLE_EQ(rates[0], 2.0);
}

class CycleTimeVectorTest : public ::testing::TestWithParam<std::uint64_t> {};

// The (max,+) cycle-time vector must equal the SCC-condensation ancestor
// periods on random replicated mappings — two fully independent
// deterministic analyses.
TEST_P(CycleTimeVectorTest, MatchesTransitionPeriods) {
  Prng prng(GetParam());
  RandomInstanceOptions options;
  options.num_stages = 3;
  options.num_processors = 7;
  options.max_paths = 12;
  const Mapping mapping = random_instance(options, prng);
  for (const ExecutionModel model :
       {ExecutionModel::kOverlap, ExecutionModel::kStrict}) {
    const TimedEventGraph g = build_tpn(mapping, model);
    const Matrix a = maxplus::state_matrix(g);
    const auto maxplus_rates = maxplus::cycle_time_vector(a, 600);
    const auto scc_periods = transition_periods(g);
    ASSERT_EQ(maxplus_rates.size(), scc_periods.size());
    for (std::size_t t = 0; t < scc_periods.size(); ++t) {
      EXPECT_LT(relative_difference(maxplus_rates[t], scc_periods[t]), 1e-6)
          << mapping.to_string() << " " << to_string(model) << " t=" << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMappings, CycleTimeVectorTest,
                         ::testing::Range<std::uint64_t>(700, 708));

TEST(MaxPlusAlgebra, ThroughputFromCycleTimeVector) {
  // Third route to the deterministic throughput: sum the last column's
  // firing rates from the (max,+) growth rates.
  const Mapping mapping = testing::replicated_chain_mapping(1, 2, 1, 3.0, 1.0);
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const Matrix a = maxplus::state_matrix(g);
  const auto rates = maxplus::cycle_time_vector(a, 600);
  double rho = 0.0;
  for (const std::size_t t : g.last_column_transitions()) rho += 1.0 / rates[t];
  const auto reference =
      deterministic_throughput(mapping, ExecutionModel::kOverlap);
  EXPECT_LT(relative_difference(rho, reference.throughput), 1e-9);
}

}  // namespace
}  // namespace streamflow
