#include <gtest/gtest.h>

#include <numeric>

#include "markov/throughput.hpp"
#include "test_helpers.hpp"
#include "tpn/builder.hpp"
#include "tpn/columns.hpp"

namespace streamflow {
namespace {

TEST(Reachability, SingleSelfLoopTransition) {
  // One transition with a marked self-loop: a single state, one self-edge.
  TimedEventGraph g(1, 1);
  g.add_transition(Transition{.duration = 2.0});
  g.add_place(Place{0, 0, PlaceKind::kResource, 1});
  g.finalize();
  const auto chain = explore_markings(g, {0.5});
  EXPECT_EQ(chain.num_states, 1u);
  ASSERT_EQ(chain.edges.size(), 1u);
  EXPECT_EQ(chain.edges[0].from, chain.edges[0].to);
}

TEST(Reachability, TwoTransitionRing) {
  // 0 -> 1 -> 0 ring with one token: two states (token at either place).
  TimedEventGraph g(2, 1);
  g.add_transition(Transition{.duration = 1.0});
  g.add_transition(Transition{.row = 1, .duration = 1.0});
  g.add_place(Place{0, 1, PlaceKind::kResource, 1});
  g.add_place(Place{1, 0, PlaceKind::kResource, 0});
  g.finalize();
  const auto chain = explore_markings(g, {1.0, 2.0});
  EXPECT_EQ(chain.num_states, 2u);
  EXPECT_EQ(chain.edges.size(), 2u);
  EXPECT_FALSE(chain.capacity_clipped);
}

TEST(Reachability, StrictTpnIsOneSafe) {
  const Mapping mapping = testing::replicated_chain_mapping(1, 2, 1);
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kStrict);
  ReachabilityOptions options;
  options.place_capacity = 1;  // must never clip: the Strict net is 1-safe
  const auto chain =
      explore_markings(g, rates_from_durations(g), options);
  EXPECT_FALSE(chain.capacity_clipped);
  EXPECT_GT(chain.num_states, 1u);
}

TEST(Reachability, OverlapTpnNeedsBuffers) {
  // A fast first stage accumulates tokens ahead of a slow second stage:
  // with capacity 1 the chain clips, and raising the capacity grows the
  // state space.
  const Mapping mapping = testing::chain_mapping({0.1, 10.0}, {0.1});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const auto rates = rates_from_durations(g);
  ReachabilityOptions tight;
  tight.place_capacity = 1;
  const auto clipped = explore_markings(g, rates, tight);
  EXPECT_TRUE(clipped.capacity_clipped);
  ReachabilityOptions loose;
  loose.place_capacity = 6;
  const auto wide = explore_markings(g, rates, loose);
  EXPECT_GT(wide.num_states, clipped.num_states);
}

TEST(Reachability, StateCapIsEnforced) {
  const Mapping mapping = testing::replicated_chain_mapping(2, 3, 2);
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kStrict);
  ReachabilityOptions options;
  options.max_states = 10;
  EXPECT_THROW(explore_markings(g, rates_from_durations(g), options),
               CapacityExceeded);
}

TEST(Reachability, RejectsBadRates) {
  TimedEventGraph g(1, 1);
  g.add_transition(Transition{.duration = 1.0});
  g.add_place(Place{0, 0, PlaceKind::kResource, 1});
  g.finalize();
  EXPECT_THROW(explore_markings(g, {0.0}), InvalidArgument);
  EXPECT_THROW(explore_markings(g, {1.0, 1.0}), InvalidArgument);
}

TEST(GeneralMethod, SingleServerRateIsLambda) {
  // One processor with exponential service at rate lambda, always busy:
  // throughput = lambda.
  const Mapping mapping = testing::chain_mapping({4.0}, {});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const auto r = exponential_throughput_general(
      g, rates_from_durations(g), g.last_column_transitions());
  EXPECT_NEAR(r.throughput, 0.25, 1e-12);
}

TEST(GeneralMethod, TandemTwoServersIsSaturationMin) {
  // Saturated M -> M tandem with unbounded buffer: output rate min(a, b).
  // With a finite buffer the rate is slightly below min(a, b) and grows
  // with the buffer size.
  const Mapping mapping = testing::chain_mapping({1.0, 2.0}, {1e-3});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const auto rates = rates_from_durations(g);
  double previous = 0.0;
  for (int capacity : {1, 2, 4, 8, 16}) {
    GeneralMethodOptions options;
    options.reachability.place_capacity = capacity;
    const auto r = exponential_throughput_general(
        g, rates, g.last_column_transitions(), options);
    EXPECT_GE(r.throughput, previous - 1e-12);
    EXPECT_LE(r.throughput, 0.5 + 1e-9);
    previous = r.throughput;
  }
  EXPECT_NEAR(previous, 0.5, 0.02);  // converging to min(1, 1/2)
}

TEST(GeneralMethod, StationaryBackendCrossoverAtDenseThreshold) {
  // The default crossover is pinned: chains up to 1200 states solve dense.
  GeneralMethodOptions defaults;
  EXPECT_EQ(defaults.dense_threshold, 1200u);

  const Mapping mapping = testing::chain_mapping({1.0, 2.0}, {1e-3});
  const TimedEventGraph g = build_tpn(mapping, ExecutionModel::kOverlap);
  const auto rates = rates_from_durations(g);
  GeneralMethodOptions dense;
  dense.reachability.place_capacity = 4;
  const auto a = exponential_throughput_general(
      g, rates, g.last_column_transitions(), dense);
  ASSERT_GT(a.num_states, 1u);
  ASSERT_LE(a.num_states, dense.dense_threshold);
  EXPECT_EQ(a.backend, StationaryBackend::kDense);
  EXPECT_EQ(a.solver_iterations, 0u);       // direct solve: no sweeps
  EXPECT_LT(a.solver_residual, 1e-10);      // || pi Q ||_1 of the LU solve

  // Drop the threshold below the state count: the SAME chain now takes the
  // sparse uniformized path, reports it, and agrees on the throughput.
  GeneralMethodOptions sparse = dense;
  sparse.dense_threshold = a.num_states - 1;
  const auto b = exponential_throughput_general(
      g, rates, g.last_column_transitions(), sparse);
  EXPECT_EQ(b.backend, StationaryBackend::kUniformized);
  EXPECT_GT(b.solver_iterations, 0u);
  EXPECT_LT(b.solver_residual, sparse.stationary.tolerance);
  // The sweep stops on an L1-change tolerance, which bounds the pi error
  // only up to the chain's mixing factor — compare a few orders above it.
  EXPECT_NEAR(b.throughput, a.throughput, 1e-7);

  // saturated_flow (the pattern-cache entry point) dispatches identically —
  // it is NOT dense-only.
  const auto sf_dense = saturated_flow(g, rates, dense);
  EXPECT_EQ(sf_dense.backend, StationaryBackend::kDense);
  const auto sf_sparse = saturated_flow(g, rates, sparse);
  EXPECT_EQ(sf_sparse.backend, StationaryBackend::kUniformized);
  EXPECT_GT(sf_sparse.solver_iterations, 0u);
  EXPECT_NEAR(sf_sparse.throughput, sf_dense.throughput, 1e-7);
}

TEST(GeneralMethod, FrequenciesAreRowUniform) {
  // In steady state every transition of a strongly coupled pattern fires at
  // the same frequency (the round-robin equalizes rows).
  const Mapping mapping = testing::single_comm_mapping(2, 3, 1.0, 0.5);
  const auto patterns = comm_patterns(mapping, 0);
  const TimedEventGraph teg = build_pattern_teg(patterns[0]);
  const auto freq =
      stationary_frequencies(teg, rates_from_durations(teg));
  for (double f : freq) EXPECT_NEAR(f, freq[0], 1e-9);
}

}  // namespace
}  // namespace streamflow
