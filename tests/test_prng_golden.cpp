// Golden vectors for the xoshiro256++ engine: pinned raw and uniform01()
// outputs for fixed seeds, and pinned states/prefixes after jump(),
// long_jump() and split(). These constants were generated once from this
// repository's implementation (whose jump/step behavior is independently
// verified against GF(2) matrix powers in test_prng_jump.cpp) and are now
// frozen: any change to seeding, stepping, stream derivation or the
// uniform01 conversion — however well-intentioned — breaks byte-exact
// reproducibility of every recorded experiment and must show up here as a
// hard failure, not as silently different results.
#include "common/prng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <vector>

namespace streamflow {
namespace {

using State = std::array<std::uint64_t, 4>;

std::vector<std::uint64_t> raw_prefix(Prng prng, std::size_t n) {
  std::vector<std::uint64_t> out(n);
  for (auto& x : out) x = prng();
  return out;
}

TEST(PrngGolden, SeedExpansionPinned) {
  // Prng(seed) expands the seed through splitmix64; seed 1 must yield the
  // canonical splitmix64(1) output sequence as its initial state.
  const State expected{0x910A2DEC89025CC1ULL, 0xBEEB8DA1658EEC67ULL,
                       0xF893A2EEFB32555EULL, 0x71C18690EE42C90BULL};
  EXPECT_EQ(Prng(1).state(), expected);
}

TEST(PrngGolden, RawStreamSeed1) {
  const std::vector<std::uint64_t> expected{
      0xCFC5D07F6F03C29BULL, 0xBF424132963FE08DULL, 0x19A37D5757AAF520ULL,
      0xBF08119F05CD56D6ULL, 0x2F47184B86186FA4ULL, 0x97299FCAE7202345ULL,
      0xFCA3C79508F41507ULL, 0x85FEA5C90363F221ULL, 0x18BAE5B30D334BD0ULL,
      0x226113C9F026EC16ULL, 0xEB9E0EF9DCCFE649ULL, 0x57EFAEDD9F6CFFB3ULL};
  EXPECT_EQ(raw_prefix(Prng(1), expected.size()), expected);
}

TEST(PrngGolden, RawStreamSeedDeadbeef) {
  const std::vector<std::uint64_t> expected{
      0x0C520EB8FEA98EDEULL, 0x2B74A6338B80E0E2ULL, 0xBE238770C3795322ULL,
      0x5F235F98A244EA97ULL, 0xE004F0CC1514D858ULL, 0x436A209963FF9223ULL,
      0x8302E81B9685B6D4ULL, 0xA7EEC00B77EC3019ULL, 0x3F72A1F876D55149ULL,
      0x0CCB6894BEB49764ULL, 0x221D2399AE37BCAEULL, 0x65FBFBA6ED5FBB5FULL};
  EXPECT_EQ(raw_prefix(Prng(0xDEADBEEFULL), expected.size()), expected);
}

TEST(PrngGolden, RawStreamDefaultSeed) {
  const std::vector<std::uint64_t> expected{
      0x4045DEB82E7B587BULL, 0x3ACCF928C48D641EULL, 0xD35D0E6EBD47B807ULL,
      0x6F39E5822134FF3FULL, 0xBE4D2994A59740E1ULL, 0xB26A2492460AB9BBULL};
  EXPECT_EQ(raw_prefix(Prng(), expected.size()), expected);
}

TEST(PrngGolden, Uniform01Seed1) {
  // Pins the raw->double conversion ((x >> 11) * 2^-53) together with the
  // stream: exactly representable, so EXPECT_EQ, not EXPECT_NEAR.
  const std::vector<double> expected{
      0.81161215888188476, 0.74710471615821872, 0.10015090353378375,
      0.74621687061681041, 0.18467857211916938, 0.59047888473207921,
      0.98687407864140675, 0.52341686399030585};
  Prng prng(1);
  for (std::size_t i = 0; i < expected.size(); ++i)
    EXPECT_EQ(prng.uniform01(), expected[i]) << "draw " << i;
}

TEST(PrngGolden, PostJumpPrefixSeed1) {
  Prng prng(1);
  prng.jump();
  const State expected_state{0x53D630076A137DEDULL, 0xED07F666882EDFC6ULL,
                             0x963EC9617B0BDBD3ULL, 0x84B96906E4B2569AULL};
  EXPECT_EQ(prng.state(), expected_state);
  const std::vector<std::uint64_t> expected{
      0xDAFD92F1ADFFC5B9ULL, 0x89D5ED6828F5BECFULL, 0xC81A7B85673E9DACULL,
      0xE3ED98A07EF5A746ULL, 0xE294A7E13E75C33CULL, 0xCCF30D2611797724ULL};
  EXPECT_EQ(raw_prefix(prng, expected.size()), expected);
}

TEST(PrngGolden, PostLongJumpPrefixSeed1) {
  Prng prng(1);
  prng.long_jump();
  const State expected_state{0x7246D2EE04B0CA0DULL, 0x9FBE4F237A8BD3EFULL,
                             0x2AED86DC6EA00584ULL, 0x6742EBBB2F90FF4AULL};
  EXPECT_EQ(prng.state(), expected_state);
  const std::vector<std::uint64_t> expected{
      0xC6E0F3D2B09D8EECULL, 0x55AD95EEF7A40E42ULL, 0x8CC0E5594CB97AB0ULL,
      0x708019A0CB2B42E8ULL, 0x62C8BF2965D869BAULL, 0x63ECF411AA370CF7ULL};
  EXPECT_EQ(raw_prefix(prng, expected.size()), expected);
}

TEST(PrngGolden, SplitChildrenPinned) {
  // The split() derivation (PR6's pure splitmix64 absorb/squeeze chain over
  // parent state and index) is part of the reproducibility contract too:
  // experiment layouts key substreams by (seed, stream index).
  const Prng parent(42);
  const State child0{0xB18D344888AE5F83ULL, 0x99B7984E4E72CC27ULL,
                     0x76E7DFF6E572C2BBULL, 0x14107CC8D182D928ULL};
  const State child1{0xD23E60F1BE42FC23ULL, 0xDB8D4D53C00AF791ULL,
                     0xBBD8E5DA1ADA126EULL, 0x523CA8AE7DCF9134ULL};
  EXPECT_EQ(parent.split(0).state(), child0);
  EXPECT_EQ(parent.split(1).state(), child1);
  const std::vector<std::uint64_t> expected{
      0x3A3A4CE4DE912E5BULL, 0x7DB4C85D5C7DB0EDULL, 0x6D82A73CF27921ACULL,
      0x2B3851703C7F2FBCULL, 0x62AFD0500B042091ULL, 0x02C6C96B90F6711CULL};
  EXPECT_EQ(raw_prefix(parent.split(0), expected.size()), expected);
}

}  // namespace
}  // namespace streamflow
