// Differential cross-check harness: six independent evaluators of the
// same quantity, checked against each other over the whole scenario corpus.
//
// For every Scenario the harness cross-checks:
//   kAnalyzerCi    — the exponential column-method/CTMC analyzer
//                    (core/analyzer) falls inside the replicated-simulation
//                    Student-t 95% CI under exponential timing;
//   kNbueSandwich  — Theorem 7's ordering rho_exp <= rho <= rho_det holds
//                    for N.B.U.E. laws (skipped, by design, for the
//                    non-N.B.U.E. corpus laws — Fig 17 shows them escaping
//                    the sandwich);
//   kMaxplusBound  — the max-plus deterministic analysis (maxplus/
//                    deterministic) bounds the measured throughput from
//                    above for EVERY law (the daters are convex in the
//                    timings, so deterministic means maximize throughput);
//   kDeterminism   — serial optimize_mapping equals the parallel portfolio
//                    bit-for-bit, and the replicated simulator is
//                    bit-identical across thread counts in BOTH sampling
//                    modes (batched and scalar-compat);
//   kPrunedSearch  — the bound-screened search (BoundPolicy::kMct and
//                    kMctMaxplus) returns the same mapping, score, and
//                    evaluation count as the unscreened search, bit for bit
//                    — screens may only skip candidates that provably lose
//                    — and the prune accounting is exact: screened
//                    moves_solved + pruned equals unscreened moves_solved;
//   kSharedStore   — evaluating through a warm process-wide PatternStore
//                    (core/pattern_store) is bit-identical to the private-
//                    cache path: throughput, in-order rate, and every
//                    component (label, inner, effective, bottleneck flag)
//                    of the exponential analysis, plus the cache-state-
//                    invariant pattern-request total. Skipped for the
//                    Strict model (general CTMC — no pattern solves to
//                    share).
//
// Every analytic quantity flows through a HarnessHooks slot so tests can
// inject an off-by-epsilon evaluator shim and prove each check can actually
// fail (the mutation tests of tests/test_fuzz_harness.cpp — the guard
// against a vacuously green harness).
//
// A failing check is a divergence: the harness greedily minimizes the
// scenario (fuzz/minimize.hpp) while the same check keeps failing and emits
// the shrunk scenario as a replayable fixture (scenario_to_string).
//
// Determinism contract: with a fixed sampling mode the whole HarnessReport
// — every number in to_json() included — is a pure function of
// (HarnessOptions, hooks), independent of `threads`. The digest() (statuses
// only, no floats) is additionally identical across sampling modes, because
// the two draw disciplines are different but equally valid estimators of
// the same quantities. Pinned by tools/fuzz_smoke.cmake and
// tests/test_fuzz_harness.cpp.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include <functional>

#include "core/heuristics.hpp"
#include "fuzz/corpus.hpp"
#include "sim/pipeline_sim.hpp"

namespace streamflow {

enum class CheckId {
  kAnalyzerCi = 0,
  kNbueSandwich = 1,
  kMaxplusBound = 2,
  kDeterminism = 3,
  kPrunedSearch = 4,
  kSharedStore = 5,
};

constexpr std::size_t kNumChecks = 6;

std::string to_string(CheckId check);

enum class CheckStatus { kPass, kFail, kSkip };

std::string to_string(CheckStatus status);

struct CheckResult {
  CheckStatus status = CheckStatus::kSkip;
  /// Human diagnostic: why a check failed or was skipped (empty on pass).
  std::string detail;
};

/// Injectable evaluator slots. Null slots use the library evaluators; tests
/// override one slot with an epsilon-skewed shim to prove the paired check
/// actually detects divergence. Hooks receive the same inputs the defaults
/// consume, so a hook wrapping the default evaluator composes exactly.
struct HarnessHooks {
  /// Exponential-case analytic throughput (default:
  /// exponential_throughput(mapping, model).throughput).
  std::function<double(const Mapping&, ExecutionModel)> exponential_throughput;
  /// Deterministic analytic throughput — the max-plus bound (default:
  /// deterministic_throughput(mapping, model).throughput).
  std::function<double(const Mapping&, ExecutionModel)>
      deterministic_throughput;
  /// Applied to every per-replication simulated throughput before the CI is
  /// formed (default: identity). The mutation tests skew this to push the
  /// simulation out of the analytic bounds.
  std::function<double(double)> sim_throughput_transform;
  /// Serial search score the portfolio is compared against (default:
  /// optimize_mapping(instance, options).throughput). Receives the
  /// bandwidth-completed copy of the scenario's instance that the
  /// determinism check searches (unset links go infeasible otherwise).
  std::function<double(const InstancePtr&, const MappingSearchOptions&)>
      serial_search_score;
  /// Bound-screened search score the unscreened search is compared against
  /// (default: optimize_mapping(instance, options).throughput with
  /// options.bounds already set to the screened policy under test). The
  /// mutation test skews this by one ulp to prove the bit-equality check
  /// catches an off-by-one-ulp bound comparison.
  std::function<double(const InstancePtr&, const MappingSearchOptions&)>
      pruned_search_score;
  /// Applied to every rate in the warm PatternStore before the shared-store
  /// check re-reads it (default: none — the store keeps the published
  /// bits). The mutation test injects a one-ulp stale-entry shim to prove
  /// the check catches a store that hands back bits a fresh solve would not
  /// produce.
  std::function<double(double)> store_rate_transform;
};

struct HarnessOptions {
  CorpusOptions corpus;
  /// Scenarios drawn: indices 0..count-1 (25 covers every regime five
  /// times and every law family at least twice — gcd(5, 11) = 1).
  std::size_t count = 25;
  /// Replications per simulation estimate (Student-t CI from common/stats).
  std::size_t replications = 8;
  /// Data sets per replication.
  std::int64_t data_sets = 6000;
  /// Worker threads for the replicated sims and the parallel search; 0 =
  /// hardware concurrency. The report does not depend on this value.
  std::size_t threads = 1;
  /// Draw discipline of the simulators (see sim/pipeline_sim.hpp). The
  /// digest is identical across modes; the raw numbers are not.
  SamplingMode sampling = SamplingMode::kBatched;
  /// Minimize each divergence before reporting it.
  bool minimize = true;
  /// Statistical slack: a bound b and estimate (mean, hw) disagree only
  /// beyond ci_sigmas * hw + rel_slack * |b|. The relative term absorbs the
  /// finite-horizon bias of the simulators (they measure a finite window of
  /// a process that converges to the asymptotic rate).
  double ci_sigmas = 4.0;
  double rel_slack = 0.04;
  /// Experiment seed of the replicated simulations (distinct from the
  /// corpus seed so corpus index and replication substreams never alias).
  std::uint64_t sim_seed = 0x5EEDF00D;

  void validate() const;
};

struct ScenarioVerdict {
  std::uint64_t id = 0;
  ScenarioRegime regime = ScenarioRegime::kBaseline;
  std::string law_spec;
  std::string label;
  std::array<CheckResult, kNumChecks> checks;
  // Observed quantities (0 when the producing check was skipped):
  double analyzer_throughput = 0.0;  ///< exponential analytic
  double det_throughput = 0.0;       ///< max-plus deterministic analytic
  double exp_sim_mean = 0.0;         ///< exponential-timing sim mean
  double exp_sim_hw = 0.0;           ///< its t 95% CI halfwidth
  double law_sim_mean = 0.0;         ///< scenario-law sim mean
  double law_sim_hw = 0.0;

  bool diverged() const;
};

/// A failing check, minimized and packaged for replay.
struct DivergenceRecord {
  std::uint64_t scenario_id = 0;
  CheckId check = CheckId::kAnalyzerCi;
  std::string detail;          ///< the failing check's diagnostic
  std::string original_label;  ///< label of the un-shrunk scenario
  std::size_t shrink_steps = 0;
  Scenario minimized;          ///< smallest scenario still failing `check`
  std::string fixture_text;    ///< scenario_to_string(minimized)
};

struct HarnessReport {
  std::vector<ScenarioVerdict> verdicts;
  std::vector<DivergenceRecord> divergences;
  std::size_t passes = 0;
  std::size_t fails = 0;
  std::size_t skips = 0;
  // Echo of the options that produced the report (for the JSON artifact).
  std::uint64_t corpus_seed = 0;
  std::size_t count = 0;
  std::size_t replications = 0;
  std::int64_t data_sets = 0;
  SamplingMode sampling = SamplingMode::kBatched;

  /// Status-only verdict: one line per scenario plus a summary. Contains no
  /// floating-point values, so it is bit-identical across thread counts AND
  /// across sampling modes.
  std::string digest() const;

  /// Full machine-readable report (statuses, details, observed values).
  /// Bit-identical across thread counts for a fixed sampling mode.
  std::string to_json() const;
};

/// Runs every check on one scenario. `check_mask` selects checks (bit i =
/// CheckId i); unselected checks come back kSkip with an empty detail.
ScenarioVerdict check_scenario(const Scenario& scenario,
                               const HarnessOptions& options,
                               const HarnessHooks& hooks = {},
                               unsigned check_mask = 0x3F);

/// True when `check` fails on `scenario` — the minimizer's oracle (runs
/// only that check).
bool check_fails(const Scenario& scenario, CheckId check,
                 const HarnessOptions& options, const HarnessHooks& hooks);

/// Draws scenarios 0..count-1, checks each, minimizes every divergence.
HarnessReport run_diff_harness(const HarnessOptions& options,
                               const HarnessHooks& hooks = {});

}  // namespace streamflow
