// Divergence minimization: greedy structural shrinking of a scenario while
// a given differential check keeps failing.
//
// The shrink moves are purely structural and always produce a VALID
// scenario (candidates whose Mapping construction fails are discarded):
//   * drop the first or the last stage of the chain (with its team and its
//     adjacent communication column);
//   * remove the last member of a team with at least two members (shrinking
//     one replication factor).
// After every move the platform is compacted to the processors the
// remaining teams actually use, so minimized fixtures read small instead of
// carrying ghost processors.
//
// Minimization is deterministic: moves are tried in a fixed order and the
// first move that preserves the divergence is taken, so the minimized
// fixture is a pure function of (scenario, check, options, hooks).
#pragma once

#include <vector>

#include "fuzz/diff_harness.hpp"

namespace streamflow {

/// All structural one-step shrinks of `scenario` that produce a valid
/// scenario, in the deterministic order the minimizer tries them (stage
/// drops first — they remove the most — then team shrinks, largest team
/// first, lowest stage index on ties).
std::vector<Scenario> shrink_candidates(const Scenario& scenario);

/// Greedily shrinks `scenario` while `check` keeps failing; returns the
/// smallest scenario reached (the input itself when no shrink preserves the
/// divergence). `steps_out`, when non-null, receives the number of accepted
/// shrink steps.
Scenario minimize_divergence(const Scenario& scenario, CheckId check,
                             const HarnessOptions& options,
                             const HarnessHooks& hooks,
                             std::size_t* steps_out = nullptr);

}  // namespace streamflow
