#include "fuzz/minimize.hpp"

#include <algorithm>
#include <numeric>

namespace streamflow {

namespace {

/// Rebuilds a scenario from edited application vectors and teams, compacting
/// the platform to the processors the teams still use (ascending old-index
/// order, so compaction itself is deterministic). Throws (Error) when the
/// edited pieces no longer form a valid mapping.
Scenario rebuild(const Scenario& base, std::vector<double> works,
                 std::vector<double> files,
                 std::vector<std::vector<std::size_t>> teams) {
  const Platform& old = base.mapping.platform();
  std::vector<std::size_t> remap(old.num_processors(), Mapping::kUnused);
  std::vector<std::size_t> kept;
  std::vector<char> used(old.num_processors(), 0);
  for (const auto& team : teams) {
    for (const std::size_t p : team) used[p] = 1;
  }
  for (std::size_t p = 0; p < old.num_processors(); ++p) {
    if (used[p]) {
      remap[p] = kept.size();
      kept.push_back(p);
    }
  }
  std::vector<double> speeds;
  speeds.reserve(kept.size());
  for (const std::size_t p : kept) speeds.push_back(old.speed(p));
  Platform platform{std::move(speeds)};
  for (std::size_t i = 0; i < kept.size(); ++i) {
    for (std::size_t j = i + 1; j < kept.size(); ++j) {
      const double bandwidth = old.bandwidth(kept[i], kept[j]);
      if (bandwidth > 0.0) platform.set_bandwidth(i, j, bandwidth);
    }
  }
  for (auto& team : teams) {
    for (std::size_t& p : team) p = remap[p];
  }
  Mapping mapping{Application{std::move(works), std::move(files)},
                  std::move(platform), std::move(teams)};
  return Scenario{base.id, base.regime, std::move(mapping), base.law,
                  base.model};
}

std::vector<std::vector<std::size_t>> teams_of(const Mapping& mapping) {
  std::vector<std::vector<std::size_t>> teams;
  teams.reserve(mapping.num_stages());
  for (std::size_t i = 0; i < mapping.num_stages(); ++i) {
    teams.push_back(mapping.team(i));
  }
  return teams;
}

}  // namespace

std::vector<Scenario> shrink_candidates(const Scenario& scenario) {
  std::vector<Scenario> out;
  const Mapping& mapping = scenario.mapping;
  const std::vector<double>& works = mapping.application().stage_works();
  const std::vector<double>& files = mapping.application().file_sizes();
  const std::size_t num_stages = mapping.num_stages();

  if (num_stages >= 2) {
    // Drop the first stage (with file F_1 and Team_1)...
    try {
      auto teams = teams_of(mapping);
      teams.erase(teams.begin());
      out.push_back(rebuild(
          scenario, {works.begin() + 1, works.end()},
          {files.begin() + 1, files.end()}, std::move(teams)));
    } catch (const Error&) {
    }
    // ...then the last stage (with file F_{N-1} and Team_N).
    try {
      auto teams = teams_of(mapping);
      teams.pop_back();
      out.push_back(rebuild(
          scenario, {works.begin(), works.end() - 1},
          {files.begin(), files.end() - 1}, std::move(teams)));
    } catch (const Error&) {
    }
  }

  // Team shrinks, largest team first (they remove the most state), lowest
  // stage index on ties; each removes the team's last round-robin member.
  std::vector<std::size_t> order(num_stages);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return mapping.replication(a) > mapping.replication(b);
                   });
  for (const std::size_t stage : order) {
    if (mapping.replication(stage) < 2) continue;
    try {
      auto teams = teams_of(mapping);
      teams[stage].pop_back();
      out.push_back(rebuild(scenario, works, files, std::move(teams)));
    } catch (const Error&) {
    }
  }
  return out;
}

Scenario minimize_divergence(const Scenario& scenario, CheckId check,
                             const HarnessOptions& options,
                             const HarnessHooks& hooks,
                             std::size_t* steps_out) {
  Scenario current = scenario;
  std::size_t steps = 0;
  // Every accepted step strictly shrinks the scenario, so the loop
  // terminates; the cap only guards against a pathological oracle.
  constexpr std::size_t kMaxSteps = 64;
  bool progress = true;
  while (progress && steps < kMaxSteps) {
    progress = false;
    for (Scenario& candidate : shrink_candidates(current)) {
      if (check_fails(candidate, check, options, hooks)) {
        current = std::move(candidate);
        ++steps;
        progress = true;
        break;
      }
    }
  }
  if (steps_out != nullptr) *steps_out = steps;
  return current;
}

}  // namespace streamflow
