// Deterministic scenario corpus for the differential harness.
//
// A Scenario is one complete differential-testing input: a replicated
// mapping (drawn by model/random_instance under a regime-specific knob
// setting), a timing law family, and an execution model. Scenario k of a
// corpus is a PURE function of (corpus seed, k): its generator is
// Prng(seed).split(k), so growing the corpus never changes earlier
// scenarios (the prefix property), slices can be recomputed anywhere, and a
// divergence found at index k replays from (seed, k) alone.
//
// Regimes (cycled as k mod kNumRegimes) extend the Table 1 protocol into
// the corners the hand-built fixtures never reach:
//   baseline            — small chains, uniform times (the §7 protocol)
//   hetero-bandwidth    — per-link log-uniform bandwidth spread (x100)
//   degenerate-stages   — near-zero-cost forwarding stages (x1e-4)
//   deep-replication    — few stages, skewed teams (large R_i)
//   wide-pattern        — two stages, large u x v communication pattern
// Law families (cycled as k mod kNumCorpusLaws) cover every dist/ family,
// including the non-N.B.U.E. laws (DFR gamma, lognormal, Pareto,
// hyperexponential) for which Theorem 7's sandwich must NOT be asserted.
//
// Scenarios serialize to a line-oriented text format that embeds the
// model/serialization instance format; emit -> parse -> emit is byte-stable
// (pinned in tests/test_fuzz_corpus.cpp), which is what makes divergence
// fixtures replayable artifacts rather than screenshots.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "dist/distribution.hpp"
#include "model/mapping.hpp"
#include "model/random_instance.hpp"

namespace streamflow {

/// The knob regimes the corpus cycles through.
enum class ScenarioRegime {
  kBaseline,
  kHeteroBandwidth,
  kDegenerateStages,
  kDeepReplication,
  kWidePattern,
};

constexpr std::size_t kNumRegimes = 5;

/// Number of law families a corpus cycles through (every dist/ family).
constexpr std::size_t kNumCorpusLaws = 11;

std::string to_string(ScenarioRegime regime);

/// Parses the names produced by to_string; throws InvalidArgument.
ScenarioRegime parse_regime(const std::string& name);

/// The canonical law spec for corpus slot `index` (index mod kNumCorpusLaws).
std::string corpus_law_spec(std::size_t index);

struct CorpusOptions {
  std::uint64_t seed = 1;
  /// Cap on lcm(R_1..R_N) for every drawn mapping (keeps every analysis in
  /// the corpus cheap enough for CI).
  std::int64_t max_paths = 64;
};

/// One differential-testing input.
struct Scenario {
  /// Corpus index (or the index of the scenario a minimized fixture came
  /// from); part of the serialized form so fixtures self-describe.
  std::uint64_t id = 0;
  ScenarioRegime regime = ScenarioRegime::kBaseline;
  Mapping mapping;
  /// Timing-law family, rescaled per resource to its deterministic mean
  /// (the Fig 16/17 protocol).
  DistributionPtr law;
  ExecutionModel model = ExecutionModel::kOverlap;

  /// Short human label, e.g. "s7[deep-replication,lognormal:0,1.2]".
  std::string label() const;
};

/// Draws scenario `index` of the corpus — a pure function of
/// (options.seed, index); consults no global state.
Scenario draw_scenario(const CorpusOptions& options, std::uint64_t index);

/// The RandomInstanceOptions a regime draws its mapping with, exposed so
/// property tests can assert each regime actually produces its regime.
RandomInstanceOptions regime_instance_options(ScenarioRegime regime,
                                              Prng& prng);

/// Scenario serialization: a small header (id, regime, law, model) followed
/// by the embedded model/serialization instance block. emit -> parse ->
/// emit is byte-stable.
void save_scenario(std::ostream& os, const Scenario& scenario);
Scenario load_scenario(std::istream& is);
std::string scenario_to_string(const Scenario& scenario);
Scenario scenario_from_string(const std::string& text);

}  // namespace streamflow
