#include "fuzz/diff_harness.hpp"

#include <cmath>
#include <sstream>

#include "common/stats.hpp"
#include "core/analysis_context.hpp"
#include "core/analyzer.hpp"
#include "core/heuristics.hpp"
#include "core/pattern_store.hpp"
#include "engine/parallel_search.hpp"
#include "engine/sim_replication.hpp"
#include "fuzz/minimize.hpp"
#include "maxplus/deterministic.hpp"

namespace streamflow {

namespace {

constexpr const char* kCheckNames[kNumChecks] = {
    "analyzer-ci", "nbue-sandwich", "maxplus-bound", "determinism",
    "pruned-search", "shared-store"};

/// Formats a double with round-trip precision for diagnostics and JSON.
std::string fmt(double value) {
  std::ostringstream os;
  os.precision(17);
  os << value;
  return os.str();
}

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct SimEstimate {
  double mean = 0.0;
  double halfwidth = 0.0;
};

/// Replicated pipeline estimate of the throughput under `timing`, with the
/// per-replication transform hook applied before the CI is formed.
SimEstimate replicated_estimate(const Mapping& mapping, ExecutionModel model,
                                const StochasticTiming& timing,
                                const HarnessOptions& options,
                                const HarnessHooks& hooks,
                                std::uint64_t seed) {
  PipelineSimOptions sim;
  sim.data_sets = options.data_sets;
  sim.sampling = options.sampling;
  ExperimentOptions experiment;
  experiment.replications = options.replications;
  experiment.threads = options.threads;
  experiment.seed = seed;
  const ReplicatedResult result =
      run_replicated_pipeline(mapping, model, timing, sim, experiment);
  RunningStats stats;
  for (double value : result.column("throughput")) {
    stats.add(hooks.sim_throughput_transform
                  ? hooks.sim_throughput_transform(value)
                  : value);
  }
  return {stats.mean(), stats.ci95_halfwidth()};
}

/// The statistical slack around an analytic bound `b`: ci_sigmas CI
/// halfwidths plus a relative term absorbing finite-horizon simulation bias.
double slack(const HarnessOptions& options, double bound, double halfwidth) {
  return options.ci_sigmas * halfwidth + options.rel_slack * std::fabs(bound);
}

void set_pass(CheckResult& check) {
  check.status = CheckStatus::kPass;
  check.detail.clear();
}

void set_fail(CheckResult& check, const std::string& detail) {
  check.status = CheckStatus::kFail;
  check.detail = detail;
}

void set_skip(CheckResult& check, const std::string& detail) {
  check.status = CheckStatus::kSkip;
  check.detail = detail;
}

/// The corpus generator only defines bandwidths on links between
/// consecutive teams of the drawn mapping, so a mapping SEARCH over the raw
/// instance walks into unset (zero) links and goes infeasible. The
/// determinism check searches a completed copy instead: every unset link
/// gets the slowest bandwidth already present (a deterministic function of
/// the instance, so the check stays a pure function of the scenario).
InstancePtr completed_instance(const Mapping& mapping) {
  const Platform& old = mapping.platform();
  const std::size_t num_processors = old.num_processors();
  double slowest = 0.0;
  for (std::size_t p = 0; p < num_processors; ++p) {
    for (std::size_t q = p + 1; q < num_processors; ++q) {
      const double bandwidth = old.bandwidth(p, q);
      if (bandwidth > 0.0 && (slowest == 0.0 || bandwidth < slowest)) {
        slowest = bandwidth;
      }
    }
  }
  if (slowest == 0.0) slowest = 1.0;
  std::vector<double> speeds;
  speeds.reserve(num_processors);
  for (std::size_t p = 0; p < num_processors; ++p) {
    speeds.push_back(old.speed(p));
  }
  Platform platform{std::move(speeds)};
  for (std::size_t p = 0; p < num_processors; ++p) {
    for (std::size_t q = p + 1; q < num_processors; ++q) {
      const double bandwidth = old.bandwidth(p, q);
      platform.set_bandwidth(p, q, bandwidth > 0.0 ? bandwidth : slowest);
    }
  }
  Application application = mapping.application();
  return make_instance(std::move(application), std::move(platform));
}

}  // namespace

std::string to_string(CheckId check) {
  return kCheckNames[static_cast<std::size_t>(check)];
}

std::string to_string(CheckStatus status) {
  switch (status) {
    case CheckStatus::kPass: return "PASS";
    case CheckStatus::kFail: return "FAIL";
    case CheckStatus::kSkip: return "SKIP";
  }
  return "?";
}

void HarnessOptions::validate() const {
  SF_REQUIRE(count >= 1, "need at least one scenario");
  SF_REQUIRE(replications >= 2,
             "need at least two replications for a confidence interval");
  SF_REQUIRE(data_sets >= 10, "need at least 10 data sets per replication");
  SF_REQUIRE(ci_sigmas > 0.0 && std::isfinite(ci_sigmas),
             "ci_sigmas must be positive and finite");
  SF_REQUIRE(rel_slack >= 0.0 && std::isfinite(rel_slack),
             "rel_slack must be non-negative and finite");
}

bool ScenarioVerdict::diverged() const {
  for (const CheckResult& check : checks) {
    if (check.status == CheckStatus::kFail) return true;
  }
  return false;
}

ScenarioVerdict check_scenario(const Scenario& scenario,
                               const HarnessOptions& options,
                               const HarnessHooks& hooks,
                               unsigned check_mask) {
  options.validate();
  ScenarioVerdict verdict;
  verdict.id = scenario.id;
  verdict.regime = scenario.regime;
  verdict.law_spec = scenario.law->spec();
  verdict.label = scenario.label();
  for (std::size_t c = 0; c < kNumChecks; ++c) {
    verdict.checks[c].status = CheckStatus::kSkip;
    verdict.checks[c].detail = "not selected";
  }
  const auto selected = [&](CheckId check) {
    return (check_mask & (1u << static_cast<unsigned>(check))) != 0;
  };
  const Mapping& mapping = scenario.mapping;
  const ExecutionModel model = scenario.model;

  // ---- Shared analytic quantities -----------------------------------------
  const bool need_exp_analytic =
      selected(CheckId::kAnalyzerCi) || selected(CheckId::kNbueSandwich);
  const bool need_det =
      selected(CheckId::kNbueSandwich) || selected(CheckId::kMaxplusBound);

  bool have_exp_analytic = false;
  std::string exp_analytic_error;
  if (need_exp_analytic) {
    try {
      verdict.analyzer_throughput =
          hooks.exponential_throughput
              ? hooks.exponential_throughput(mapping, model)
              : exponential_throughput(mapping, model).throughput;
      have_exp_analytic = true;
    } catch (const Error& error) {
      exp_analytic_error =
          std::string("exponential analysis unavailable: ") + error.what();
    }
  }
  if (need_det) {
    verdict.det_throughput =
        hooks.deterministic_throughput
            ? hooks.deterministic_throughput(mapping, model)
            : deterministic_throughput(mapping, model).throughput;
  }

  // ---- Check 1: analyzer inside the exponential-timing simulation CI ------
  if (selected(CheckId::kAnalyzerCi)) {
    CheckResult& check = verdict.checks[0];
    if (!have_exp_analytic) {
      set_skip(check, exp_analytic_error);
    } else {
      const StochasticTiming timing = StochasticTiming::exponential(mapping);
      const SimEstimate sim = replicated_estimate(
          mapping, model, timing, options, hooks, options.sim_seed);
      verdict.exp_sim_mean = sim.mean;
      verdict.exp_sim_hw = sim.halfwidth;
      const double gap = std::fabs(verdict.analyzer_throughput - sim.mean);
      const double allowed =
          slack(options, verdict.analyzer_throughput, sim.halfwidth);
      if (gap <= allowed) {
        set_pass(check);
      } else {
        set_fail(check, "analyzer " + fmt(verdict.analyzer_throughput) +
                            " vs simulated " + fmt(sim.mean) + " +/- " +
                            fmt(sim.halfwidth) + " (gap " + fmt(gap) +
                            " > allowed " + fmt(allowed) + ")");
      }
    }
  }

  // ---- Scenario-law simulation (checks 2 and 3) ---------------------------
  const bool need_law_sim =
      (selected(CheckId::kNbueSandwich) && scenario.law->is_nbue() &&
       have_exp_analytic) ||
      selected(CheckId::kMaxplusBound);
  SimEstimate law_sim;
  if (need_law_sim) {
    const StochasticTiming timing =
        StochasticTiming::scaled(mapping, *scenario.law);
    law_sim = replicated_estimate(mapping, model, timing, options, hooks,
                                  options.sim_seed + 1);
    verdict.law_sim_mean = law_sim.mean;
    verdict.law_sim_hw = law_sim.halfwidth;
  }

  // ---- Check 2: Theorem 7 sandwich for N.B.U.E. laws ----------------------
  if (selected(CheckId::kNbueSandwich)) {
    CheckResult& check = verdict.checks[1];
    if (!scenario.law->is_nbue()) {
      set_skip(check, "law " + scenario.law->spec() +
                          " is not N.B.U.E.; Theorem 7 does not apply");
    } else if (!have_exp_analytic) {
      set_skip(check, exp_analytic_error);
    } else {
      const double lower = verdict.analyzer_throughput;
      const double upper = verdict.det_throughput;
      const double below =
          (lower - law_sim.mean) - slack(options, lower, law_sim.halfwidth);
      const double above =
          (law_sim.mean - upper) - slack(options, upper, law_sim.halfwidth);
      if (below <= 0.0 && above <= 0.0) {
        set_pass(check);
      } else {
        set_fail(check, "simulated " + fmt(law_sim.mean) + " +/- " +
                            fmt(law_sim.halfwidth) +
                            " escapes the sandwich [" + fmt(lower) + ", " +
                            fmt(upper) + "]");
      }
    }
  }

  // ---- Check 3: max-plus deterministic bound from above -------------------
  if (selected(CheckId::kMaxplusBound)) {
    CheckResult& check = verdict.checks[2];
    const double upper = verdict.det_throughput;
    const double excess =
        (law_sim.mean - upper) - slack(options, upper, law_sim.halfwidth);
    if (excess <= 0.0) {
      set_pass(check);
    } else {
      set_fail(check, "simulated " + fmt(law_sim.mean) + " +/- " +
                          fmt(law_sim.halfwidth) +
                          " exceeds the deterministic bound " + fmt(upper));
    }
  }

  // ---- Check 4: serial/parallel search + sampling-mode determinism --------
  if (selected(CheckId::kDeterminism)) {
    CheckResult& check = verdict.checks[3];
    std::string failure;

    // (a) Serial search == parallel portfolio, bit for bit.
    MappingSearchOptions search;
    search.model = model;
    search.objective = model == ExecutionModel::kStrict
                           ? MappingObjective::kDeterministic
                           : MappingObjective::kExponential;
    search.restarts = 2;
    search.max_paths = options.corpus.max_paths;
    search.seed = 1;
    ParallelSearchOptions portfolio;
    portfolio.search = search;
    portfolio.threads = options.threads;
    const InstancePtr searchable = completed_instance(mapping);
    const ParallelSearchResult parallel =
        parallel_optimize_mapping(searchable, portfolio);
    if (hooks.serial_search_score) {
      const double serial_score =
          hooks.serial_search_score(searchable, search);
      if (serial_score != parallel.throughput) {
        failure = "serial search score " + fmt(serial_score) +
                  " != parallel portfolio score " + fmt(parallel.throughput);
      }
    } else {
      const MappingSearchResult serial = optimize_mapping(searchable, search);
      if (serial.throughput != parallel.throughput ||
          serial.evaluations != parallel.evaluations ||
          serial.mapping.to_string() != parallel.mapping.to_string()) {
        failure = "serial search (score " + fmt(serial.throughput) + ", " +
                  std::to_string(serial.evaluations) +
                  " evaluations) != parallel portfolio (score " +
                  fmt(parallel.throughput) + ", " +
                  std::to_string(parallel.evaluations) + " evaluations)";
      }
    }

    // (b) Replicated simulation bit-identical across thread counts, in both
    // sampling modes. Small fixed sizes: this is a bit comparison, not an
    // estimate, so statistical resolution is irrelevant.
    if (failure.empty()) {
      const StochasticTiming timing = StochasticTiming::exponential(mapping);
      PipelineSimOptions sim;
      sim.data_sets = std::min<std::int64_t>(options.data_sets, 2000);
      for (const SamplingMode mode :
           {SamplingMode::kBatched, SamplingMode::kScalarCompat}) {
        sim.sampling = mode;
        ExperimentOptions one, two;
        one.replications = two.replications =
            std::min<std::size_t>(options.replications, 4);
        one.seed = two.seed = options.sim_seed + 2;
        one.threads = 1;
        two.threads = 2;
        const ReplicatedResult a =
            run_replicated_pipeline(mapping, model, timing, sim, one);
        const ReplicatedResult b =
            run_replicated_pipeline(mapping, model, timing, sim, two);
        if (a.per_replication != b.per_replication) {
          failure = std::string("replicated simulation differs between 1 and "
                                "2 threads in ") +
                    (mode == SamplingMode::kBatched ? "batched"
                                                    : "scalar-compat") +
                    " sampling mode";
          break;
        }
      }
    }

    if (failure.empty()) {
      set_pass(check);
    } else {
      set_fail(check, failure);
    }
  }

  // ---- Check 5: bound-screened search == unscreened search, bit for bit ---
  if (selected(CheckId::kPrunedSearch)) {
    CheckResult& check = verdict.checks[4];
    MappingSearchOptions search;
    search.model = model;
    search.objective = model == ExecutionModel::kStrict
                           ? MappingObjective::kDeterministic
                           : MappingObjective::kExponential;
    search.restarts = 2;
    search.max_paths = options.corpus.max_paths;
    search.seed = 1;
    const InstancePtr searchable = completed_instance(mapping);
    const MappingSearchResult reference = optimize_mapping(searchable, search);
    std::string failure;
    for (const BoundPolicy policy :
         {BoundPolicy::kMct, BoundPolicy::kMctMaxplus}) {
      MappingSearchOptions screened = search;
      screened.bounds = policy;
      const char* name = policy == BoundPolicy::kMct ? "mct" : "mct+maxplus";
      if (hooks.pruned_search_score) {
        const double score = hooks.pruned_search_score(searchable, screened);
        if (score != reference.throughput) {
          failure = std::string("screened search (") + name + ") score " +
                    fmt(score) + " != unscreened score " +
                    fmt(reference.throughput);
          break;
        }
        continue;
      }
      const MappingSearchResult pruned = optimize_mapping(searchable, screened);
      if (pruned.throughput != reference.throughput ||
          pruned.evaluations != reference.evaluations ||
          pruned.mapping.to_string() != reference.mapping.to_string()) {
        failure = std::string("screened search (") + name + ") score " +
                  fmt(pruned.throughput) + " / " +
                  std::to_string(pruned.evaluations) +
                  " evaluations != unscreened " + fmt(reference.throughput) +
                  " / " + std::to_string(reference.evaluations);
        break;
      }
      const std::size_t probes = pruned.moves_solved + pruned.moves_pruned_mct +
                                 pruned.moves_pruned_maxplus;
      if (probes != reference.moves_solved) {
        failure = std::string("screened search (") + name +
                  ") accounting: solved+pruned = " + std::to_string(probes) +
                  " != unscreened solved " +
                  std::to_string(reference.moves_solved);
        break;
      }
    }
    if (failure.empty()) {
      set_pass(check);
    } else {
      set_fail(check, failure);
    }
  }

  // ---- Check 6: warm shared PatternStore == private-cache path, bit-exact --
  if (selected(CheckId::kSharedStore)) {
    CheckResult& check = verdict.checks[5];
    if (model == ExecutionModel::kStrict) {
      set_skip(check,
               "strict model evaluates via the general CTMC; no pattern "
               "solves to share");
    } else {
      try {
        // Reference: the private-cache path every PR through 9 used.
        AnalysisContext cold;
        const ExponentialThroughput reference =
            cold.exponential(mapping, model);
        const std::size_t cold_requests =
            cold.stats().pattern_hits + cold.stats().pattern_misses;
        // Warm a shared store through one context, then re-evaluate through
        // a second context that sees the first one's solves as store hits.
        PatternStore store(4);
        AnalysisContext warmer;
        warmer.set_pattern_store(&store);
        (void)warmer.exponential(mapping, model);
        if (hooks.store_rate_transform) {
          store.transform_rates(hooks.store_rate_transform);
        }
        std::string failure;
        try {
          AnalysisContext reader;
          reader.set_pattern_store(&store);
          const ExponentialThroughput warmed =
              reader.exponential(mapping, model);
          const std::size_t warm_requests =
              reader.stats().pattern_hits + reader.stats().pattern_misses;
          if (warmed.throughput != reference.throughput ||
              warmed.in_order_throughput != reference.in_order_throughput) {
            failure = "warm-store throughput " + fmt(warmed.throughput) +
                      " / " + fmt(warmed.in_order_throughput) + " != cold " +
                      fmt(reference.throughput) + " / " +
                      fmt(reference.in_order_throughput);
          } else if (warm_requests != cold_requests) {
            failure = "warm-store pattern requests " +
                      std::to_string(warm_requests) + " != cold " +
                      std::to_string(cold_requests) +
                      " (request totals must be cache-state invariant)";
          } else if (warmed.components.size() != reference.components.size()) {
            failure = "warm-store component count " +
                      std::to_string(warmed.components.size()) + " != cold " +
                      std::to_string(reference.components.size());
          } else {
            for (std::size_t k = 0; k < reference.components.size(); ++k) {
              const ComponentInfo& a = reference.components[k];
              const ComponentInfo& b = warmed.components[k];
              if (a.label != b.label || a.inner != b.inner ||
                  a.effective != b.effective || a.bottleneck != b.bottleneck) {
                failure = "warm-store component '" + b.label + "' (inner " +
                          fmt(b.inner) + ", effective " + fmt(b.effective) +
                          ") != cold '" + a.label + "' (inner " + fmt(a.inner) +
                          ", effective " + fmt(a.effective) + ")";
                break;
              }
            }
          }
        } catch (const Error& error) {
          // In Debug the sampled re-solve probe inside AnalysisContext
          // throws on a stale store entry — that is a detection, not an
          // infrastructure failure.
          failure = std::string("warm-store evaluation failed: ") +
                    error.what();
        }
        if (failure.empty()) {
          set_pass(check);
        } else {
          set_fail(check, failure);
        }
      } catch (const Error& error) {
        set_skip(check, std::string("exponential analysis unavailable: ") +
                            error.what());
      }
    }
  }

  return verdict;
}

bool check_fails(const Scenario& scenario, CheckId check,
                 const HarnessOptions& options, const HarnessHooks& hooks) {
  const ScenarioVerdict verdict = check_scenario(
      scenario, options, hooks, 1u << static_cast<unsigned>(check));
  return verdict.checks[static_cast<std::size_t>(check)].status ==
         CheckStatus::kFail;
}

HarnessReport run_diff_harness(const HarnessOptions& options,
                               const HarnessHooks& hooks) {
  options.validate();
  HarnessReport report;
  report.corpus_seed = options.corpus.seed;
  report.count = options.count;
  report.replications = options.replications;
  report.data_sets = options.data_sets;
  report.sampling = options.sampling;
  report.verdicts.reserve(options.count);

  for (std::uint64_t index = 0; index < options.count; ++index) {
    const Scenario scenario = draw_scenario(options.corpus, index);
    ScenarioVerdict verdict = check_scenario(scenario, options, hooks);
    for (std::size_t c = 0; c < kNumChecks; ++c) {
      switch (verdict.checks[c].status) {
        case CheckStatus::kPass: ++report.passes; break;
        case CheckStatus::kFail: ++report.fails; break;
        case CheckStatus::kSkip: ++report.skips; break;
      }
      if (verdict.checks[c].status != CheckStatus::kFail) continue;
      const CheckId check = static_cast<CheckId>(c);
      DivergenceRecord record{scenario.id,
                              check,
                              verdict.checks[c].detail,
                              scenario.label(),
                              0,
                              scenario,
                              {}};
      if (options.minimize) {
        record.minimized = minimize_divergence(scenario, check, options,
                                               hooks, &record.shrink_steps);
      }
      record.fixture_text = scenario_to_string(record.minimized);
      report.divergences.push_back(std::move(record));
    }
    report.verdicts.push_back(std::move(verdict));
  }
  return report;
}

std::string HarnessReport::digest() const {
  std::ostringstream os;
  os << "diff-harness seed=" << corpus_seed << " count=" << count << "\n";
  for (const ScenarioVerdict& verdict : verdicts) {
    os << "s" << verdict.id << " " << to_string(verdict.regime) << " "
       << verdict.law_spec;
    for (std::size_t c = 0; c < kNumChecks; ++c) {
      os << " " << to_string(static_cast<CheckId>(c)) << "="
         << to_string(verdict.checks[c].status);
    }
    os << "\n";
  }
  os << "summary pass=" << passes << " fail=" << fails << " skip=" << skips
     << " divergences=" << divergences.size() << "\n";
  return os.str();
}

std::string HarnessReport::to_json() const {
  std::ostringstream os;
  os.precision(17);
  os << "{\n";
  os << "  \"corpus_seed\": " << corpus_seed << ",\n";
  os << "  \"count\": " << count << ",\n";
  os << "  \"replications\": " << replications << ",\n";
  os << "  \"data_sets\": " << data_sets << ",\n";
  os << "  \"sampling\": \""
     << (sampling == SamplingMode::kBatched ? "batched" : "scalar-compat")
     << "\",\n";
  os << "  \"summary\": {\"pass\": " << passes << ", \"fail\": " << fails
     << ", \"skip\": " << skips << ", \"divergences\": " << divergences.size()
     << "},\n";
  os << "  \"scenarios\": [\n";
  for (std::size_t v = 0; v < verdicts.size(); ++v) {
    const ScenarioVerdict& verdict = verdicts[v];
    os << "    {\"id\": " << verdict.id << ", \"regime\": \""
       << to_string(verdict.regime) << "\", \"law\": \""
       << json_escape(verdict.law_spec) << "\",\n";
    os << "     \"analyzer_throughput\": " << verdict.analyzer_throughput
       << ", \"det_throughput\": " << verdict.det_throughput << ",\n";
    os << "     \"exp_sim_mean\": " << verdict.exp_sim_mean
       << ", \"exp_sim_hw\": " << verdict.exp_sim_hw
       << ", \"law_sim_mean\": " << verdict.law_sim_mean
       << ", \"law_sim_hw\": " << verdict.law_sim_hw << ",\n";
    os << "     \"checks\": {";
    for (std::size_t c = 0; c < kNumChecks; ++c) {
      if (c > 0) os << ", ";
      os << "\"" << to_string(static_cast<CheckId>(c)) << "\": {\"status\": \""
         << to_string(verdict.checks[c].status) << "\", \"detail\": \""
         << json_escape(verdict.checks[c].detail) << "\"}";
    }
    os << "}}" << (v + 1 < verdicts.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"divergences\": [\n";
  for (std::size_t d = 0; d < divergences.size(); ++d) {
    const DivergenceRecord& record = divergences[d];
    os << "    {\"scenario\": " << record.scenario_id << ", \"check\": \""
       << to_string(record.check) << "\", \"detail\": \""
       << json_escape(record.detail) << "\",\n";
    os << "     \"original\": \"" << json_escape(record.original_label)
       << "\", \"shrink_steps\": " << record.shrink_steps
       << ", \"fixture\": \"" << json_escape(record.fixture_text) << "\"}"
       << (d + 1 < divergences.size() ? "," : "") << "\n";
  }
  os << "  ]\n";
  os << "}\n";
  return os.str();
}

}  // namespace streamflow
