#include "fuzz/corpus.hpp"

#include <array>
#include <sstream>

#include "model/serialization.hpp"

namespace streamflow {

namespace {

constexpr const char* kRegimeNames[kNumRegimes] = {
    "baseline", "hetero-bandwidth", "degenerate-stages", "deep-replication",
    "wide-pattern"};

constexpr const char* kLawSpecs[kNumCorpusLaws] = {
    "const:1",        "exp:1",          "uniform:0.5,1.5", "gauss:10,3",
    "gamma:2,0.5",    "beta:2,2,2",     "weibull:1.5,1",   "gamma:0.5,2",
    "lognormal:0,1.2", "pareto:2.5,1",  "hyperexp:0.5,4,0.4"};

std::string model_token(ExecutionModel model) {
  return model == ExecutionModel::kOverlap ? "overlap" : "strict";
}

ExecutionModel parse_model_token(const std::string& token) {
  if (token == "overlap") return ExecutionModel::kOverlap;
  if (token == "strict") return ExecutionModel::kStrict;
  throw InvalidArgument("unknown execution model '" + token + "'");
}

}  // namespace

std::string to_string(ScenarioRegime regime) {
  return kRegimeNames[static_cast<std::size_t>(regime)];
}

ScenarioRegime parse_regime(const std::string& name) {
  for (std::size_t r = 0; r < kNumRegimes; ++r) {
    if (name == kRegimeNames[r]) return static_cast<ScenarioRegime>(r);
  }
  throw InvalidArgument("unknown scenario regime '" + name + "'");
}

std::string corpus_law_spec(std::size_t index) {
  return kLawSpecs[index % kNumCorpusLaws];
}

std::string Scenario::label() const {
  return "s" + std::to_string(id) + "[" + to_string(regime) + "," +
         law->spec() + "]";
}

RandomInstanceOptions regime_instance_options(ScenarioRegime regime,
                                              Prng& prng) {
  RandomInstanceOptions options;
  switch (regime) {
    case ScenarioRegime::kBaseline:
      options.num_stages = 2 + prng.uniform_index(4);       // 2..5
      options.num_processors =
          options.num_stages + prng.uniform_index(7);       // +0..6
      break;
    case ScenarioRegime::kHeteroBandwidth:
      options.num_stages = 2 + prng.uniform_index(4);
      options.num_processors = options.num_stages + prng.uniform_index(7);
      options.bandwidth_heterogeneity = 100.0;
      break;
    case ScenarioRegime::kDegenerateStages:
      options.num_stages = 3 + prng.uniform_index(3);       // 3..5
      options.num_processors = options.num_stages + prng.uniform_index(7);
      options.zero_cost_fraction = 0.5;
      options.degenerate_scale = 1e-4;
      break;
    case ScenarioRegime::kDeepReplication:
      options.num_stages = 2 + prng.uniform_index(2);       // 2..3
      options.num_processors =
          options.num_stages + 4 + prng.uniform_index(6);   // up to 13
      options.team_skew = 3.0;
      break;
    case ScenarioRegime::kWidePattern:
      // Two stages, a single costly u x v communication pattern: faster
      // computations keep the pattern the bottleneck (the §7.4 workload).
      options.num_stages = 2;
      options.num_processors = 6 + prng.uniform_index(7);   // 6..12
      options.comp_min = 0.5;
      options.comp_max = 1.5;
      break;
  }
  return options;
}

Scenario draw_scenario(const CorpusOptions& options, std::uint64_t index) {
  // split(index) is a pure function of (seed state, index): scenario k
  // never depends on how many other scenarios were drawn.
  Prng prng = Prng(options.seed).split(index);
  const ScenarioRegime regime =
      static_cast<ScenarioRegime>(index % kNumRegimes);
  RandomInstanceOptions instance_options =
      regime_instance_options(regime, prng);
  instance_options.max_paths = options.max_paths;

  Mapping mapping = random_instance(instance_options, prng);
  if (regime == ScenarioRegime::kWidePattern) {
    // The uniform composition happily draws (1, M-1); redraw (from the same
    // stream, still deterministic) until the pattern is genuinely wide.
    for (int attempt = 0;
         attempt < 200 &&
         (mapping.replication(0) < 3 || mapping.replication(1) < 3);
         ++attempt) {
      mapping = random_instance(instance_options, prng);
    }
  }

  Scenario scenario{index, regime, std::move(mapping),
                    parse_distribution(corpus_law_spec(index)),
                    ExecutionModel::kOverlap};
  return scenario;
}

void save_scenario(std::ostream& os, const Scenario& scenario) {
  os << "streamflow-scenario v1\n";
  os << "id " << scenario.id << "\n";
  os << "regime " << to_string(scenario.regime) << "\n";
  os << "law " << scenario.law->spec() << "\n";
  os << "model " << model_token(scenario.model) << "\n";
  os << "instance\n";
  save_instance(os, scenario.mapping);
  os << "end-instance\n";
}

Scenario load_scenario(std::istream& is) {
  std::string line;
  int line_number = 0;
  auto next_line = [&]() -> std::string {
    while (std::getline(is, line)) {
      ++line_number;
      const auto hash = line.find('#');
      std::string stripped = line;
      if (hash != std::string::npos) stripped.erase(hash);
      if (stripped.find_first_not_of(" \t\r") == std::string::npos) continue;
      return stripped;
    }
    throw InvalidArgument("scenario parse error at line " +
                          std::to_string(line_number) +
                          ": unexpected end of input");
  };
  auto fail = [&](const std::string& what) -> void {
    throw InvalidArgument("scenario parse error at line " +
                          std::to_string(line_number) + ": " + what);
  };

  if (next_line().rfind("streamflow-scenario", 0) != 0)
    fail("missing 'streamflow-scenario v1' header");

  std::uint64_t id = 0;
  std::string regime_name, law_spec, model_name;
  bool have_id = false, have_regime = false, have_law = false,
       have_model = false;
  for (;;) {
    const std::string entry = next_line();
    std::istringstream ss(entry);
    std::string keyword;
    ss >> keyword;
    if (keyword == "id") {
      if (!(ss >> id)) fail("bad id line");
      have_id = true;
    } else if (keyword == "regime") {
      if (!(ss >> regime_name)) fail("bad regime line");
      have_regime = true;
    } else if (keyword == "law") {
      if (!(ss >> law_spec)) fail("bad law line");
      have_law = true;
    } else if (keyword == "model") {
      if (!(ss >> model_name)) fail("bad model line");
      have_model = true;
    } else if (keyword == "instance") {
      break;
    } else {
      fail("unknown keyword '" + keyword + "'");
    }
  }
  if (!have_id || !have_regime || !have_law || !have_model)
    fail("missing id/regime/law/model before the instance block");

  // The instance block is passed to model/serialization verbatim (no
  // comment stripping here — the instance parser owns its own grammar).
  std::string instance_text;
  bool closed = false;
  while (std::getline(is, line)) {
    ++line_number;
    std::string stripped = line;
    if (!stripped.empty() && stripped.back() == '\r') stripped.pop_back();
    if (stripped == "end-instance") {
      closed = true;
      break;
    }
    instance_text += line;
    instance_text += '\n';
  }
  if (!closed) fail("missing 'end-instance'");

  Scenario scenario{id, parse_regime(regime_name),
                    instance_from_string(instance_text),
                    parse_distribution(law_spec),
                    parse_model_token(model_name)};
  return scenario;
}

std::string scenario_to_string(const Scenario& scenario) {
  std::ostringstream os;
  save_scenario(os, scenario);
  return os.str();
}

Scenario scenario_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_scenario(is);
}

}  // namespace streamflow
