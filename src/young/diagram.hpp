// The Young-diagram combinatorics of Theorem 3: reachable markings of a
// u x v communication pattern correspond to borderlines made of two monotone
// lattice paths (Figures 8-9), giving S(u,v) = C(u+v-1, u-1) * v states, of
// which S'(u,v) = C(u+v-2, u-1) enable a fixed transition.
//
// This module provides independent evaluations of those counts (closed form,
// double-sum over path pairs, and literal path enumeration) so the property
// tests can triangulate them against the reachability graph of the pattern.
#pragma once

#include <cstdint>

namespace streamflow {

/// S(u,v) via the paper's double sum
///   sum_{i=0}^{u-1} sum_{j=0}^{v-1} C(i+j, i) * C(u+v-2-i-j, u-1-i),
/// which the closed form C(u+v-1, u-1) * v must equal.
std::int64_t young_state_count_double_sum(std::int64_t u, std::int64_t v);

/// Literal enumeration: generates every monotone lattice path pair and
/// counts them. Exponential; intended for small u, v in tests.
std::int64_t young_state_count_enumerated(std::int64_t u, std::int64_t v);

/// S'(u,v) via the double sum  sum_{i<=u-2, j<=v-2} C(i+j, i).
std::int64_t young_enabled_count_double_sum(std::int64_t u, std::int64_t v);

}  // namespace streamflow
