#include "young/pattern_analysis.hpp"

#include "markov/throughput.hpp"
#include "maxplus/mcr.hpp"

namespace streamflow {

PatternFlow pattern_flow_exponential(const CommPattern& pattern,
                                     std::size_t max_states) {
  const TimedEventGraph teg = build_pattern_teg(pattern);
  const std::vector<double> rates = rates_from_durations(teg);
  GeneralMethodOptions options;
  options.reachability.max_states = max_states;
  const GeneralMethodResult r = saturated_flow(teg, rates, options);
  SF_ASSERT(!r.capacity_clipped,
            "pattern TEG has no flow places; capacity cannot clip");
  return PatternFlow{r.throughput, r.num_states};
}

double pattern_flow_exponential_homogeneous(std::size_t u, std::size_t v,
                                            double rate) {
  SF_REQUIRE(u >= 1 && v >= 1, "pattern dimensions must be >= 1");
  SF_REQUIRE(rate > 0.0, "rate must be positive");
  return static_cast<double>(u) * static_cast<double>(v) * rate /
         static_cast<double>(u + v - 1);
}

double pattern_flow_deterministic(const CommPattern& pattern) {
  const TimedEventGraph teg = build_pattern_teg(pattern);
  const double period = max_cycle_ratio(teg).ratio;
  SF_ASSERT(period > 0.0, "degenerate pattern period");
  return static_cast<double>(pattern.size()) / period;
}

}  // namespace streamflow
