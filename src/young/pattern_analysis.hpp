// Inner throughput of a u x v communication pattern — the quantitative core
// of Theorems 3 and 4.
//
// "Inner flow" is the pattern's saturated data-set rate: the aggregate
// stationary firing frequency of its u*v transitions when all inputs are
// always available. Three evaluations:
//  * exponential, heterogeneous rates: exact CTMC on the Young-diagram state
//    space (Theorem 3);
//  * exponential, homogeneous rate lambda: closed form u*v*lambda/(u+v-1)
//    (Theorem 4; the stationary distribution is uniform);
//  * deterministic: u*v / Lambda with Lambda the pattern's critical-cycle
//    ratio (max(u,v)*d for a homogeneous time d, i.e. flow min(u,v)/d).
#pragma once

#include <cstddef>

#include "tpn/columns.hpp"

namespace streamflow {

struct PatternFlow {
  /// Saturated data-set rate through the whole pattern (all u*v links).
  double inner_flow = 0.0;
  /// CTMC state count (exponential CTMC evaluation only, else 0).
  std::size_t num_states = 0;
};

/// Exact exponential analysis via the pattern CTMC (rates = 1/duration per
/// link), through markov/throughput.hpp's saturated_flow. Cost grows as
/// S(u,v)^3; guarded by `max_states`. Deterministic: identical patterns
/// produce bit-identical flows, which is what lets AnalysisContext memoize
/// this solve by pattern signature.
PatternFlow pattern_flow_exponential(const CommPattern& pattern,
                                     std::size_t max_states = 250'000);

/// Theorem 4's closed form for a homogeneous pattern.
double pattern_flow_exponential_homogeneous(std::size_t u, std::size_t v,
                                            double rate);

/// Deterministic saturated flow via the pattern's critical cycle.
double pattern_flow_deterministic(const CommPattern& pattern);

}  // namespace streamflow
