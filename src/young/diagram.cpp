#include "young/diagram.hpp"

#include <functional>

#include "common/math_utils.hpp"

namespace streamflow {

std::int64_t young_state_count_double_sum(std::int64_t u, std::int64_t v) {
  SF_REQUIRE(u >= 1 && v >= 1, "pattern dimensions must be >= 1");
  std::int64_t total = 0;
  for (std::int64_t i = 0; i < u; ++i) {
    for (std::int64_t j = 0; j < v; ++j) {
      total += binomial(i + j, i) * binomial(u + v - 2 - i - j, u - 1 - i);
    }
  }
  return total;
}

namespace {

/// Counts monotone staircase paths from (a, 0) to (0, b) by walking every
/// branch (a steps left interleaved with b steps up, in any order).
std::int64_t count_paths(std::int64_t a, std::int64_t b) {
  if (a == 0 || b == 0) return 1;
  std::function<std::int64_t(std::int64_t, std::int64_t)> walk =
      [&](std::int64_t x, std::int64_t y) -> std::int64_t {
    if (x == 0 || y == 0) return 1;
    return walk(x - 1, y) + walk(x, y - 1);
  };
  return walk(a, b);
}

}  // namespace

std::int64_t young_state_count_enumerated(std::int64_t u, std::int64_t v) {
  SF_REQUIRE(u >= 1 && v >= 1, "pattern dimensions must be >= 1");
  std::int64_t total = 0;
  // Borderline = a corner position (i, j) plus one path (i,0) -> (0,j) and
  // one path (u-1-i, v-1-j)-shaped on the opposite corner (Figure 9).
  for (std::int64_t i = 0; i < u; ++i) {
    for (std::int64_t j = 0; j < v; ++j) {
      total += count_paths(i, j) * count_paths(u - 1 - i, v - 1 - j);
    }
  }
  return total;
}

std::int64_t young_enabled_count_double_sum(std::int64_t u, std::int64_t v) {
  SF_REQUIRE(u >= 1 && v >= 1, "pattern dimensions must be >= 1");
  // The RR displays sum_{i<=u-2} sum_{j<=v-2} C(i+j, i); that sum misses
  // the empty-borderline term (check u = v = 2: the sum gives 1 but
  // S' = S/(u+v-1) = 2). The corrected identity, which does match the
  // closed form C(u+v-2, u-1), is 1 + that sum.
  std::int64_t total = 1;
  for (std::int64_t i = 0; i + 2 <= u; ++i) {
    for (std::int64_t j = 0; j + 2 <= v; ++j) {
      total += binomial(i + j, i);
    }
  }
  return total;
}

}  // namespace streamflow
