// The serve-mode wire protocol: one flat JSON object per line.
//
// A request is a single line holding one JSON object whose values are
// strings, numbers, booleans, or null — never nested objects or arrays.
// That restriction is deliberate: requests stay greppable, the parser
// stays small enough to audit, and a malformed line can always be rejected
// with a precise diagnostic before any work is scheduled. Multi-line
// payloads (a serialized instance, for example) travel as JSON strings
// with escaped newlines.
//
// Parsing is strict: duplicate keys, trailing bytes after the closing
// brace, nested containers, and unknown fields are all errors
// (InvalidArgument with a position diagnostic). Field access goes through
// FlatRequest's take_* accessors, which mark fields consumed;
// expect_exhausted() then rejects any field the handler did not recognize,
// so a typo'd option fails loudly instead of being silently ignored.
//
// Responses are emitted through JsonWriter with every double printed at
// precision 17 (round-trip exact) — the response byte stream is part of
// the determinism contract (tests/test_serve.cpp), so formatting must be
// locale-free and bit-stable.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace streamflow {

/// One parsed request value. Numbers keep their raw token text so integer
/// fields can be range-checked without a double round-trip.
struct JsonValue {
  enum class Kind { kString, kNumber, kBool, kNull };
  Kind kind = Kind::kNull;
  std::string text;   ///< decoded string, or the raw number token
  bool flag = false;  ///< kBool only
};

/// `text` with JSON string escaping applied (quotes not included).
std::string json_escape(const std::string& text);

/// One parsed request line. Accessors consume fields; expect_exhausted()
/// rejects leftovers. All throws are InvalidArgument.
class FlatRequest {
 public:
  /// Parses one line. Throws InvalidArgument("request ...") on anything
  /// but a single strict flat JSON object spanning the whole line.
  static FlatRequest parse(const std::string& line);

  /// Consumes the optional "id" field and returns it re-encoded as a raw
  /// JSON token ("\"name\"" or the number text), or "" when absent. Taken
  /// first by the dispatcher so error responses can echo it.
  std::string take_id();

  /// Consumes a required string field.
  std::string take_string(const std::string& key);
  /// Consumes an optional string field.
  std::string take_string_or(const std::string& key, std::string fallback);
  /// Consumes an optional nonnegative-integer field. Rejects negative,
  /// fractional, and out-of-range numbers.
  std::uint64_t take_u64_or(const std::string& key, std::uint64_t fallback);

  /// Throws listing every field no take_* call consumed.
  void expect_exhausted() const;

 private:
  const JsonValue* take(const std::string& key, JsonValue::Kind kind,
                        const char* kind_name);

  std::vector<std::pair<std::string, JsonValue>> fields_;
  std::vector<bool> taken_;
};

/// Ordered single-line JSON object emitter. Doubles print with %.17g
/// (bit round-trip exact); field order is insertion order.
class JsonWriter {
 public:
  void string_field(const std::string& key, const std::string& value);
  void number_field(const std::string& key, double value);
  void integer_field(const std::string& key, std::uint64_t value);
  void bool_field(const std::string& key, bool value);
  /// Appends `json` verbatim as the field's value (for nested writers and
  /// echoed ids).
  void raw_field(const std::string& key, const std::string& json);

  /// The complete object, braces included.
  std::string str() const;

 private:
  void begin_field(const std::string& key);
  std::string body_;
};

}  // namespace streamflow
