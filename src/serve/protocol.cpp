#include "serve/protocol.hpp"

#include <cstdio>
#include <limits>

#include "common/error.hpp"

namespace streamflow {

namespace {

/// Cursor over one request line with position-stamped failures.
struct Cursor {
  const std::string& line;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& what) const {
    throw InvalidArgument("request byte " + std::to_string(pos + 1) + ": " +
                          what);
  }
  bool done() const { return pos >= line.size(); }
  char peek() const { return done() ? '\0' : line[pos]; }
  void skip_space() {
    while (!done() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
  }
  void expect(char c, const char* what) {
    skip_space();
    if (done() || line[pos] != c) fail(what);
    ++pos;
  }
};

std::string parse_string_token(Cursor& cursor) {
  // Opening quote already consumed.
  std::string out;
  for (;;) {
    if (cursor.done()) cursor.fail("unterminated string");
    const char c = cursor.line[cursor.pos++];
    if (c == '"') return out;
    if (c != '\\') {
      out.push_back(c);
      continue;
    }
    if (cursor.done()) cursor.fail("unterminated escape");
    const char escape = cursor.line[cursor.pos++];
    switch (escape) {
      case '"': out.push_back('"'); break;
      case '\\': out.push_back('\\'); break;
      case '/': out.push_back('/'); break;
      case 'n': out.push_back('\n'); break;
      case 't': out.push_back('\t'); break;
      case 'r': out.push_back('\r'); break;
      case 'b': out.push_back('\b'); break;
      case 'f': out.push_back('\f'); break;
      default:
        cursor.fail(std::string("unsupported escape '\\") + escape +
                    "' (the protocol is ASCII; \\u is not accepted)");
    }
  }
}

std::string parse_number_token(Cursor& cursor) {
  const std::size_t start = cursor.pos;
  if (cursor.peek() == '-') ++cursor.pos;
  const auto digits = [&cursor] {
    std::size_t n = 0;
    while (cursor.peek() >= '0' && cursor.peek() <= '9') {
      ++cursor.pos;
      ++n;
    }
    return n;
  };
  if (digits() == 0) cursor.fail("malformed number");
  if (cursor.peek() == '.') {
    ++cursor.pos;
    if (digits() == 0) cursor.fail("malformed number (bare trailing dot)");
  }
  if (cursor.peek() == 'e' || cursor.peek() == 'E') {
    ++cursor.pos;
    if (cursor.peek() == '+' || cursor.peek() == '-') ++cursor.pos;
    if (digits() == 0) cursor.fail("malformed number (empty exponent)");
  }
  return cursor.line.substr(start, cursor.pos - start);
}

bool consume_keyword(Cursor& cursor, const char* word) {
  const std::size_t len = std::char_traits<char>::length(word);
  if (cursor.line.compare(cursor.pos, len, word) != 0) return false;
  cursor.pos += len;
  return true;
}

JsonValue parse_value(Cursor& cursor) {
  cursor.skip_space();
  if (cursor.done()) cursor.fail("missing value");
  JsonValue value;
  const char c = cursor.peek();
  if (c == '"') {
    ++cursor.pos;
    value.kind = JsonValue::Kind::kString;
    value.text = parse_string_token(cursor);
  } else if (c == '{' || c == '[') {
    cursor.fail("nested objects/arrays are not part of the flat protocol");
  } else if (consume_keyword(cursor, "true")) {
    value.kind = JsonValue::Kind::kBool;
    value.flag = true;
  } else if (consume_keyword(cursor, "false")) {
    value.kind = JsonValue::Kind::kBool;
  } else if (consume_keyword(cursor, "null")) {
    value.kind = JsonValue::Kind::kNull;
  } else {
    value.kind = JsonValue::Kind::kNumber;
    value.text = parse_number_token(cursor);
  }
  return value;
}

const char* kind_name(JsonValue::Kind kind) {
  switch (kind) {
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kBool: return "boolean";
    case JsonValue::Kind::kNull: return "null";
  }
  return "?";
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

FlatRequest FlatRequest::parse(const std::string& line) {
  Cursor cursor{line};
  cursor.expect('{', "expected '{' opening the request object");
  FlatRequest request;
  cursor.skip_space();
  if (cursor.peek() != '}') {
    for (;;) {
      cursor.expect('"', "expected a quoted field name");
      std::string key = parse_string_token(cursor);
      for (const auto& [seen, value] : request.fields_) {
        (void)value;
        if (seen == key) cursor.fail("duplicate field \"" + key + "\"");
      }
      cursor.expect(':', "expected ':' after field name");
      request.fields_.emplace_back(std::move(key), parse_value(cursor));
      cursor.skip_space();
      if (cursor.peek() == ',') {
        ++cursor.pos;
        continue;
      }
      break;
    }
  }
  cursor.expect('}', "expected ',' or '}' (truncated request?)");
  cursor.skip_space();
  if (!cursor.done()) cursor.fail("trailing bytes after the request object");
  request.taken_.assign(request.fields_.size(), false);
  return request;
}

const JsonValue* FlatRequest::take(const std::string& key,
                                   JsonValue::Kind kind,
                                   const char* kind_name_text) {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].first != key) continue;
    taken_[i] = true;
    if (fields_[i].second.kind != kind) {
      throw InvalidArgument("field \"" + key + "\" must be a " +
                            kind_name_text + " (got " +
                            kind_name(fields_[i].second.kind) + ")");
    }
    return &fields_[i].second;
  }
  return nullptr;
}

std::string FlatRequest::take_id() {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].first != "id") continue;
    taken_[i] = true;
    const JsonValue& value = fields_[i].second;
    if (value.kind == JsonValue::Kind::kString) {
      return "\"" + json_escape(value.text) + "\"";
    }
    if (value.kind == JsonValue::Kind::kNumber) return value.text;
    throw InvalidArgument("field \"id\" must be a string or a number");
  }
  return "";
}

std::string FlatRequest::take_string(const std::string& key) {
  const JsonValue* value = take(key, JsonValue::Kind::kString, "string");
  if (value == nullptr) {
    throw InvalidArgument("missing required field \"" + key + "\"");
  }
  return value->text;
}

std::string FlatRequest::take_string_or(const std::string& key,
                                        std::string fallback) {
  const JsonValue* value = take(key, JsonValue::Kind::kString, "string");
  return value == nullptr ? std::move(fallback) : value->text;
}

std::uint64_t FlatRequest::take_u64_or(const std::string& key,
                                       std::uint64_t fallback) {
  const JsonValue* value = take(key, JsonValue::Kind::kNumber, "number");
  if (value == nullptr) return fallback;
  const std::string& text = value->text;
  const auto reject = [&key, &text](const char* why) {
    throw InvalidArgument("field \"" + key + "\" must be a nonnegative "
                          "integer (got '" + text + "': " + why + ")");
  };
  if (!text.empty() && text.front() == '-') reject("negative");
  if (text.find('.') != std::string::npos ||
      text.find('e') != std::string::npos ||
      text.find('E') != std::string::npos) {
    reject("not an integer");
  }
  if (text.size() > 20) reject("out of range");
  std::uint64_t parsed = 0;
  for (const char c : text) {
    if (parsed > std::numeric_limits<std::uint64_t>::max() / 10) {
      reject("out of range");
    }
    parsed = parsed * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return parsed;
}

void FlatRequest::expect_exhausted() const {
  std::string unknown;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (taken_[i]) continue;
    if (!unknown.empty()) unknown += ", ";
    unknown += "\"" + fields_[i].first + "\"";
  }
  if (!unknown.empty()) {
    throw InvalidArgument("unknown field(s) for this op: " + unknown);
  }
}

void JsonWriter::begin_field(const std::string& key) {
  if (!body_.empty()) body_ += ",";
  body_ += "\"" + json_escape(key) + "\":";
}

void JsonWriter::string_field(const std::string& key,
                              const std::string& value) {
  begin_field(key);
  body_ += "\"" + json_escape(value) + "\"";
}

void JsonWriter::number_field(const std::string& key, double value) {
  begin_field(key);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  body_ += buf;
}

void JsonWriter::integer_field(const std::string& key, std::uint64_t value) {
  begin_field(key);
  body_ += std::to_string(value);
}

void JsonWriter::bool_field(const std::string& key, bool value) {
  begin_field(key);
  body_ += value ? "true" : "false";
}

void JsonWriter::raw_field(const std::string& key, const std::string& json) {
  begin_field(key);
  body_ += json;
}

std::string JsonWriter::str() const { return "{" + body_ + "}"; }

}  // namespace streamflow
