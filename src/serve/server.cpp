#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <exception>
#include <istream>
#include <ostream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "core/analysis_context.hpp"
#include "core/heuristics.hpp"
#include "core/pattern_store.hpp"
#include "dist/distribution.hpp"
#include "engine/sim_replication.hpp"
#include "engine/thread_pool.hpp"
#include "maxplus/deterministic.hpp"
#include "model/serialization.hpp"
#include "model/timing.hpp"
#include "serve/fd_stream.hpp"
#include "serve/protocol.hpp"
#include "sim/pipeline_sim.hpp"

namespace streamflow {

namespace {

ExecutionModel parse_model(const std::string& text) {
  if (text == "overlap") return ExecutionModel::kOverlap;
  if (text == "strict") return ExecutionModel::kStrict;
  throw InvalidArgument("field \"model\" must be \"overlap\" or \"strict\" "
                        "(got '" + text + "')");
}

JsonWriter handle_ping(FlatRequest& request) {
  request.expect_exhausted();
  JsonWriter result;
  result.bool_field("pong", true);
  return result;
}

JsonWriter handle_stats(FlatRequest& request, const ServeOptions& options) {
  request.expect_exhausted();
  JsonWriter result;
  if (options.store == nullptr) {
    result.bool_field("store", false);
    return result;
  }
  const PatternStoreStats stats = options.store->stats();
  result.bool_field("store", true);
  result.integer_field("entries", stats.entries);
  result.integer_field("hits", stats.hits);
  result.integer_field("misses", stats.misses);
  result.integer_field("publishes", stats.publishes);
  result.integer_field("duplicates", stats.duplicates);
  result.integer_field("shards", options.store->shard_count());
  return result;
}

JsonWriter handle_analyze(FlatRequest& request, const ServeOptions& options) {
  const Mapping mapping = instance_from_string(request.take_string("instance"));
  const ExecutionModel model =
      parse_model(request.take_string_or("model", "overlap"));
  request.expect_exhausted();

  const DeterministicThroughput det = deterministic_throughput(mapping, model);
  AnalysisContext context;
  context.set_pattern_store(options.store);
  const ExponentialThroughput exp = context.exponential(mapping, model);
  const AnalysisCacheStats& stats = context.stats();

  JsonWriter result;
  result.number_field("deterministic", det.throughput);
  result.number_field("in_order", det.in_order_throughput);
  result.number_field("critical_resource", det.critical_resource_throughput);
  result.bool_field("critical_resource_attained",
                    det.critical_resource_attained);
  result.number_field("exponential", exp.throughput);
  result.number_field("exp_in_order", exp.in_order_throughput);
  result.string_field("method", exp.method_used == ExponentialMethod::kColumns
                                    ? "columns"
                                    : "ctmc");
  // hits + misses is the cache-state-invariant total (the warmth-dependent
  // hit/miss SPLIT is deliberately not exposed — response bytes must not
  // depend on store warmth).
  result.integer_field("pattern_requests",
                       stats.pattern_hits + stats.pattern_misses);
  return result;
}

JsonWriter handle_search(FlatRequest& request, const ServeOptions& options) {
  const Mapping mapping = instance_from_string(request.take_string("instance"));
  MappingSearchOptions search;
  search.model = parse_model(request.take_string_or("model", "overlap"));
  const std::string objective = request.take_string_or(
      "objective", search.model == ExecutionModel::kStrict ? "det" : "exp");
  if (objective == "det") {
    search.objective = MappingObjective::kDeterministic;
  } else if (objective == "exp") {
    search.objective = MappingObjective::kExponential;
  } else {
    throw InvalidArgument("field \"objective\" must be \"exp\" or \"det\" "
                          "(got '" + objective + "')");
  }
  search.restarts = request.take_u64_or("restarts", search.restarts);
  search.seed = request.take_u64_or("seed", search.seed);
  search.max_paths = request.take_u64_or("max_paths", search.max_paths);
  const std::string prune = request.take_string_or("prune", "none");
  if (prune == "mct") {
    search.bounds = BoundPolicy::kMct;
  } else if (prune == "maxplus") {
    search.bounds = BoundPolicy::kMctMaxplus;
  } else if (prune != "none") {
    throw InvalidArgument("field \"prune\" must be \"none\", \"mct\", or "
                          "\"maxplus\" (got '" + prune + "')");
  }
  request.expect_exhausted();

  AnalysisContext context;
  context.set_pattern_store(options.store);
  const MappingSearchResult best =
      optimize_mapping(mapping.instance(), search, context);

  JsonWriter result;
  result.string_field("instance", instance_to_string(best.mapping));
  result.number_field("throughput", best.throughput);
  result.integer_field("evaluations", best.evaluations);
  result.integer_field("pattern_requests",
                       best.pattern_cache_hits + best.pattern_cache_misses);
  return result;
}

JsonWriter handle_simulate(FlatRequest& request) {
  const Mapping mapping = instance_from_string(request.take_string("instance"));
  const ExecutionModel model =
      parse_model(request.take_string_or("model", "overlap"));
  const std::string law_spec = request.take_string_or("law", "exp:1");
  PipelineSimOptions sim;
  sim.data_sets = request.take_u64_or("data_sets", sim.data_sets);
  sim.seed = request.take_u64_or("seed", sim.seed);
  const std::uint64_t replications = request.take_u64_or("replications", 1);
  request.expect_exhausted();

  const DistributionPtr law = parse_distribution(law_spec);
  const StochasticTiming timing = StochasticTiming::scaled(mapping, *law);

  JsonWriter result;
  if (replications <= 1) {
    const PipelineSimResult r = simulate_pipeline(mapping, model, timing, sim);
    result.number_field("throughput", r.throughput);
    result.number_field("in_order", r.in_order_throughput);
    result.number_field("mean_latency", r.mean_latency);
    result.integer_field("completed", static_cast<std::uint64_t>(r.completed));
    return result;
  }
  ExperimentOptions experiment;
  experiment.replications = replications;
  // Serve parallelism is across requests; one request never nests a pool.
  // Replicated results are thread-count invariant anyway, so this is a
  // scheduling choice, not a determinism requirement.
  experiment.threads = 1;
  experiment.seed = sim.seed;
  const ReplicatedResult r =
      run_replicated_pipeline(mapping, model, timing, sim, experiment);
  result.number_field("throughput", r.metric("throughput").mean);
  result.number_field("ci95", r.metric("throughput").ci95_halfwidth);
  result.number_field("in_order", r.metric("in_order_throughput").mean);
  result.number_field("mean_latency", r.metric("mean_latency").mean);
  result.integer_field("replications", r.replications);
  return result;
}

std::string wrap_ok(const std::string& id_json, const JsonWriter& result) {
  JsonWriter response;
  if (!id_json.empty()) response.raw_field("id", id_json);
  response.bool_field("ok", true);
  response.raw_field("result", result.str());
  return response.str();
}

std::string wrap_error(const std::string& id_json, const std::string& what) {
  JsonWriter response;
  if (!id_json.empty()) response.raw_field("id", id_json);
  response.bool_field("ok", false);
  response.string_field("error", what);
  return response.str();
}

std::size_t resolved_serve_threads(const ServeOptions& options) {
  if (options.threads != 0) return options.threads;
  const std::size_t detected = std::thread::hardware_concurrency();
  return detected == 0 ? 1 : detected;
}

}  // namespace

HandledRequest handle_request(const std::string& line,
                              const ServeOptions& options) {
  std::string id_json;
  try {
    FlatRequest request = FlatRequest::parse(line);
    id_json = request.take_id();
    const std::string op = request.take_string("op");
    if (op == "ping") {
      return {wrap_ok(id_json, handle_ping(request)), false, false};
    }
    if (op == "shutdown") {
      request.expect_exhausted();
      JsonWriter result;
      result.bool_field("stopping", true);
      return {wrap_ok(id_json, result), true, false};
    }
    if (op == "stats") {
      return {wrap_ok(id_json, handle_stats(request, options)), false, false};
    }
    if (op == "analyze") {
      return {wrap_ok(id_json, handle_analyze(request, options)), false, false};
    }
    if (op == "search") {
      return {wrap_ok(id_json, handle_search(request, options)), false, false};
    }
    if (op == "simulate") {
      return {wrap_ok(id_json, handle_simulate(request)), false, false};
    }
    throw InvalidArgument(
        "unknown op '" + op +
        "' (expected ping, analyze, search, simulate, stats, or shutdown)");
  } catch (const std::exception& e) {
    return {wrap_error(id_json, e.what()), false, true};
  } catch (...) {
    return {wrap_error(id_json, "internal error"), false, true};
  }
}

ServeResult run_serve_loop(std::istream& in, std::ostream& out,
                           const ServeOptions& options) {
  SF_REQUIRE(options.max_batch >= 1, "serve: max_batch must be >= 1");
  ThreadPool pool(resolved_serve_threads(options));
  ServeResult totals;
#ifndef NDEBUG
  // The determinism witness: response bytes memoized per distinct request
  // line, re-checked on every repeat. Point queries only — never iterated.
  std::unordered_map<std::string, std::string> replay;
#endif
  std::string line;
  bool stop = false;
  while (!stop && std::getline(in, line)) {
    std::vector<std::string> batch;
    if (!line.empty()) batch.push_back(std::move(line));
    // Greedily drain input that has already arrived (pipelined clients),
    // without blocking on a read once the batch is non-empty.
    while (batch.size() < options.max_batch && in.rdbuf()->in_avail() > 0 &&
           std::getline(in, line)) {
      if (!line.empty()) batch.push_back(std::move(line));
    }
    if (batch.empty()) continue;

    std::vector<HandledRequest> handled(batch.size());
    if (batch.size() == 1 || pool.size() == 1) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        handled[i] = handle_request(batch[i], options);
      }
    } else {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        // Each task owns slot i exclusively; handle_request never throws.
        pool.submit(
            [&handled, &batch, &options, i] {
              handled[i] = handle_request(batch[i], options);
            });
      }
      pool.wait();
    }

    for (std::size_t i = 0; i < batch.size(); ++i) {
#ifndef NDEBUG
      const auto it = replay.find(batch[i]);
      if (it == replay.end()) {
        replay.emplace(batch[i], handled[i].response);
      } else if (batch[i].find("\"stats\"") == std::string::npos) {
        SF_ASSERT(it->second == handled[i].response,
                  "serve: a repeated request produced different response "
                  "bytes (determinism contract violated)");
      }
#endif
      out << handled[i].response << "\n";
      ++totals.responses;
      if (handled[i].is_error) ++totals.errors;
      if (handled[i].is_shutdown) stop = true;
    }
    out.flush();
    totals.requests += batch.size();
    ++totals.batches;
  }
  totals.shutdown_requested = stop;
  return totals;
}

ServeResult run_serve_socket(const std::string& path,
                             const ServeOptions& options) {
  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw InvalidArgument(std::string("serve: cannot create socket: ") +
                          std::strerror(errno));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd);
    throw InvalidArgument("serve: socket path too long: '" + path + "'");
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  ::unlink(path.c_str());
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd, 1) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd);
    throw InvalidArgument("serve: cannot bind '" + path + "': " + why);
  }

  ServeResult totals;
  while (!totals.shutdown_requested) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) continue;
      break;
    }
    FdStreamBuf in_buf(conn);
    FdStreamBuf out_buf(conn);
    std::istream in(&in_buf);
    std::ostream out(&out_buf);
    const ServeResult r = run_serve_loop(in, out, options);
    out.flush();
    ::close(conn);
    totals.requests += r.requests;
    totals.responses += r.responses;
    totals.errors += r.errors;
    totals.batches += r.batches;
    totals.shutdown_requested = r.shutdown_requested;
  }
  ::close(listen_fd);
  ::unlink(path.c_str());
  return totals;
}

}  // namespace streamflow
