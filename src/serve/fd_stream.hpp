// FdStreamBuf — a minimal std::streambuf over a POSIX file descriptor.
//
// The serve mode speaks line-delimited JSON over whatever byte stream the
// caller hands it: stdin/stdout in pipe mode (CI, the test battery, the
// load generator) or an AF_UNIX connection in socket mode. The iostream
// serve loop (serve/server.hpp) is written once against std::istream /
// std::ostream; this buffer adapts a raw descriptor to that interface so
// the socket path reuses the exact pipe-mode loop — same batching, same
// byte-identical responses.
//
// Semantics: buffered reads and writes (4 KiB each way), EINTR retried,
// partial writes completed. The buffer never owns the descriptor — the
// caller closes it after destroying the streams. A read of 0 bytes (EOF /
// peer hangup) surfaces as end-of-stream; write errors put the stream in a
// failed state via the usual streambuf protocol.
#pragma once

#include <array>
#include <streambuf>

namespace streamflow {

class FdStreamBuf : public std::streambuf {
 public:
  explicit FdStreamBuf(int fd);
  ~FdStreamBuf() override;

  FdStreamBuf(const FdStreamBuf&) = delete;
  FdStreamBuf& operator=(const FdStreamBuf&) = delete;

 protected:
  int_type underflow() override;
  int_type overflow(int_type ch) override;
  int sync() override;

 private:
  /// Writes the pending output buffer in full (retrying partial writes and
  /// EINTR); returns false on a write error.
  bool flush_pending();

  int fd_;
  std::array<char, 4096> in_buf_;
  std::array<char, 4096> out_buf_;
};

}  // namespace streamflow
