// streamflow serve — the long-running evaluation service.
//
// The loop reads line-delimited JSON requests (serve/protocol.hpp) from an
// istream, batches whatever input has already arrived (up to
// ServeOptions::max_batch lines per batch), evaluates the batch on the
// engine ThreadPool — one worker-private AnalysisContext per request, every
// context attached to the shared PatternStore — and writes one response
// line per request, in request order, before reading more input. Socket
// mode (run_serve_socket) adapts an AF_UNIX connection onto the same loop
// through FdStreamBuf; pipe mode (run_serve_loop on stdin/stdout) is what
// CI and the test battery drive.
//
// Determinism contract (tests/test_serve.cpp): a response is a pure
// function of its request line alone. Not of store warmth (a store hit
// returns the bits a local solve would have produced), not of batching, not
// of request interleaving, and not of the worker thread count — so the same
// payload+seed yields byte-identical responses on the 1st and the 10,000th
// request, under any --threads, warm or cold. Debug builds assert this
// directly: the loop memoizes response bytes per distinct request line and
// re-checks every repeat (point queries only; the map is never iterated).
// The one deliberate exception is op "stats", which reports live store
// counters and is excluded from the contract.
//
// Shutdown drains: a {"op":"shutdown"} request is answered, every request
// of its batch (already read) is answered, the output is flushed, and only
// then does the loop stop reading.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace streamflow {

class PatternStore;

struct ServeOptions {
  /// Worker threads for batch evaluation; 0 means
  /// std::thread::hardware_concurrency(). Response bytes never depend on
  /// this value.
  std::size_t threads = 0;
  /// Max requests evaluated per batch (>= 1). Responses never depend on
  /// batch boundaries either; this only bounds latency under pipelining.
  std::size_t max_batch = 16;
  /// Shared pattern store attached to every per-request context (not
  /// owned; may be null for store-less operation, e.g. the bench's
  /// cold-baseline server).
  PatternStore* store = nullptr;
};

/// Accounting for one serve run.
struct ServeResult {
  std::size_t requests = 0;   ///< non-empty request lines read
  std::size_t responses = 0;  ///< response lines written (== requests)
  std::size_t errors = 0;     ///< responses with "ok":false
  std::size_t batches = 0;    ///< batches dispatched
  bool shutdown_requested = false;
};

/// One request evaluated outside the loop (exposed for protocol tests).
struct HandledRequest {
  std::string response;   ///< one response line, newline not included
  bool is_shutdown = false;
  bool is_error = false;
};

/// Parses and evaluates one request line. Never throws: every failure —
/// malformed JSON, unknown op, bad field, evaluation error — becomes an
/// "ok":false response with the diagnostic in "error" (and the request id
/// echoed when one was parseable).
HandledRequest handle_request(const std::string& line,
                              const ServeOptions& options);

/// The pipe-mode loop: reads `in` to EOF or shutdown, writes `out`.
ServeResult run_serve_loop(std::istream& in, std::ostream& out,
                           const ServeOptions& options);

/// Socket mode: binds an AF_UNIX stream socket at `path` (replacing any
/// stale socket file), then serves one connection at a time through the
/// pipe-mode loop until a connection requests shutdown. The socket file is
/// unlinked on exit. Throws InvalidArgument when the socket cannot be
/// created or bound.
ServeResult run_serve_socket(const std::string& path,
                             const ServeOptions& options);

}  // namespace streamflow
