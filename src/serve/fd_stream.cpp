#include "serve/fd_stream.hpp"

#include <unistd.h>

#include <cerrno>

namespace streamflow {

FdStreamBuf::FdStreamBuf(int fd) : fd_(fd) {
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data());
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
}

FdStreamBuf::~FdStreamBuf() { flush_pending(); }

FdStreamBuf::int_type FdStreamBuf::underflow() {
  if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
  ssize_t got = 0;
  do {
    got = ::read(fd_, in_buf_.data(), in_buf_.size());
  } while (got < 0 && errno == EINTR);
  if (got <= 0) return traits_type::eof();
  setg(in_buf_.data(), in_buf_.data(), in_buf_.data() + got);
  return traits_type::to_int_type(*gptr());
}

FdStreamBuf::int_type FdStreamBuf::overflow(int_type ch) {
  if (!flush_pending()) return traits_type::eof();
  if (!traits_type::eq_int_type(ch, traits_type::eof())) {
    *pptr() = traits_type::to_char_type(ch);
    pbump(1);
  }
  return traits_type::not_eof(ch);
}

int FdStreamBuf::sync() { return flush_pending() ? 0 : -1; }

bool FdStreamBuf::flush_pending() {
  const char* begin = pbase();
  const char* end = pptr();
  while (begin < end) {
    const ssize_t wrote = ::write(fd_, begin, static_cast<size_t>(end - begin));
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    begin += wrote;
  }
  setp(out_buf_.data(), out_buf_.data() + out_buf_.size());
  return true;
}

}  // namespace streamflow
