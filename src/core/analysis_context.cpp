#include "core/analysis_context.hpp"

#include <algorithm>
#include <limits>
#include <sstream>
#include <utility>

#include "core/pattern_store.hpp"
#include "maxplus/deterministic.hpp"
#include "tpn/builder.hpp"
#include "young/pattern_analysis.hpp"

namespace streamflow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::string component_label(std::size_t file_index, std::size_t component,
                            std::size_t u, std::size_t v) {
  std::ostringstream os;
  os << "F" << (file_index + 1) << "#" << component << " (" << u << "x" << v
     << ")";
  return os.str();
}

}  // namespace

AnalysisContext::AnalysisContext(ExponentialOptions options)
    : options_(options) {}

const Mapping& AnalysisContext::base_mapping() const {
  SF_REQUIRE(base_mapping_.has_value(), "no base mapping pinned");
  return *base_mapping_;
}

double AnalysisContext::base_score() const {
  SF_REQUIRE(base_mapping_.has_value(), "no base mapping pinned");
  return base_score_;
}

void AnalysisContext::clear() {
  stats_ = AnalysisCacheStats{};
  pattern_cache_.clear();
  base_mapping_.reset();
  base_assignment_.clear();
  base_columns_.clear();
  base_stage_bounds_.clear();
  scratch_valid_ = false;
  scratch_mapping_.reset();
}

double AnalysisContext::pattern_rate(const CommPattern& pattern) {
  if (pattern.homogeneous()) {
    ++stats_.closed_form;
    return pattern_flow_exponential_homogeneous(
        pattern.u, pattern.v, 1.0 / pattern.durations.front());
  }
  PatternSignature signature = pattern_signature(pattern);
  const auto it = pattern_cache_.find(signature);
  if (it != pattern_cache_.end()) {
    ++stats_.pattern_hits;
    return it->second;
  }
  // Local miss: consult the shared store (if attached) before solving. A
  // store hit is bit-identical to a local solve — entries are immutable and
  // published by deterministic solves of the same signature — so it counts
  // as a pattern hit and keeps hits + misses == requests, the cache-state
  // invariant every counter contract relies on.
  if (store_ != nullptr) {
    if (const std::optional<double> shared = store_->lookup(signature)) {
      ++stats_.pattern_hits;
      ++stats_.store_hits;
      debug_check_store_hit(pattern, *shared);
      pattern_cache_.emplace(std::move(signature), *shared);
      return *shared;
    }
  }
  const double rate =
      pattern_flow_exponential(pattern, options_.max_states).inner_flow;
  ++stats_.pattern_misses;
  if (store_ != nullptr) {
    store_->publish(signature, rate);
    ++stats_.store_publishes;
  }
  pattern_cache_.emplace(std::move(signature), rate);
  return rate;
}

void AnalysisContext::debug_check_store_hit(const CommPattern& pattern,
                                            double rate) {
#ifndef NDEBUG
  // Cross-context agreement probe: re-solve a deterministic sample of store
  // hits (the first, then every seventh) and assert the stored rate is the
  // bit-exact solve of the signature. Catches a corrupted or stale store
  // entry at the first context that consumes it.
  if (stats_.store_hits % 7 != 1) return;
  const double reference =
      pattern_flow_exponential(pattern, options_.max_states).inner_flow;
  SF_ASSERT(reference == rate,
            "shared pattern-store hit diverged from a fresh solve of the "
            "same signature (stale or corrupted store entry)");
#else
  (void)pattern;
  (void)rate;
#endif
}

AnalysisContext::SolvedColumn AnalysisContext::solve_column(
    const Mapping& mapping, std::size_t file_index) {
  SolvedColumn column;
  std::vector<CommPattern> patterns = comm_patterns(mapping, file_index);
  column.g = patterns.front().g;
  column.comps.reserve(patterns.size());
  for (CommPattern& pattern : patterns) {
    SolvedComponent comp;
    comp.inner = pattern_rate(pattern);
    comp.u = pattern.u;
    comp.v = pattern.v;
    comp.g = pattern.g;
    comp.file_index = pattern.file_index;
    comp.component = pattern.component;
    comp.senders = std::move(pattern.senders);
    column.comps.push_back(std::move(comp));
  }
  return column;
}

void AnalysisContext::solve_all_columns(const Mapping& mapping,
                                        std::vector<SolvedColumn>& out) {
  const std::size_t n = mapping.num_stages();
  out.clear();
  out.reserve(n == 0 ? 0 : n - 1);
  for (std::size_t i = 0; i + 1 < n; ++i)
    out.push_back(solve_column(mapping, i));
}

void AnalysisContext::evaluate_columns(const Mapping& mapping,
                                       std::vector<SolvedColumn>& columns,
                                       bool want_components,
                                       ExponentialThroughput& out) {
  solve_all_columns(mapping, columns);
  column_ptrs_.clear();
  for (const SolvedColumn& column : columns)
    column_ptrs_.push_back(&column);
  compose(mapping, column_ptrs_, want_components, out);
}

void AnalysisContext::compose(const Mapping& mapping,
                              const std::vector<const SolvedColumn*>& columns,
                              bool want_components,
                              ExponentialThroughput& out) {
  out.method_used = ExponentialMethod::kColumns;
  const std::size_t n = mapping.num_stages();

  // Effective personal completion rate of each processor of the current
  // stage (data sets it finishes per time unit, upstream included).
  eff_.assign(mapping.num_processors(), 0.0);

  // Equalized (in-order) cap: min over ALL components of the throughput the
  // whole system could sustain if that component were the only constraint
  // (processor p of stage i: R_i * lambda_p; communication pattern: g *
  // inner flow). Every component is an ancestor of some output row, so the
  // slowest one paces the ordered stream.
  double in_order = kInf;

  // Stage 0: saturated sources.
  for (std::size_t p : mapping.team(0)) {
    eff_[p] = 1.0 / mapping.comp_time(p);  // exponential rate = 1 / mean
    in_order = std::min(
        in_order, eff_[p] * static_cast<double>(mapping.replication(0)));
    if (want_components) {
      out.components.push_back(ComponentInfo{
          "T1/P" + std::to_string(p), eff_[p], eff_[p], false});
    }
  }

  for (std::size_t i = 0; i + 1 < n; ++i) {
    const SolvedColumn& column = *columns[i];
    flow_.assign(column.comps.size(), 0.0);
    for (std::size_t c = 0; c < column.comps.size(); ++c) {
      const SolvedComponent& comp = column.comps[c];
      const double inner = comp.inner;
      // Conservation + saturation: the round-robin equalizes the per-link
      // frequency, so the slowest of the u senders paces the whole pattern.
      double sender_cap = kInf;
      for (std::size_t p : comp.senders)
        sender_cap = std::min(sender_cap, eff_[p]);
      sender_cap *= static_cast<double>(comp.u);
      flow_[c] = std::min(inner, sender_cap);
      in_order = std::min(in_order, inner * static_cast<double>(comp.g));
      if (want_components) {
        out.components.push_back(ComponentInfo{
            component_label(comp.file_index, comp.component, comp.u, comp.v),
            inner, flow_[c], flow_[c] < inner});
      }
    }
    // Receivers of stage i+1 draw flow / v each.
    const std::size_t g = column.g;
    for (std::size_t b = 0; b < mapping.team(i + 1).size(); ++b) {
      const std::size_t q = mapping.team(i + 1)[b];
      const SolvedComponent& comp = column.comps[b % g];
      const double arrival = flow_[b % g] / static_cast<double>(comp.v);
      const double inner = 1.0 / mapping.comp_time(q);
      eff_[q] = std::min(inner, arrival);
      in_order = std::min(
          in_order, inner * static_cast<double>(mapping.replication(i + 1)));
      if (want_components) {
        out.components.push_back(ComponentInfo{
            "T" + std::to_string(i + 2) + "/P" + std::to_string(q), inner,
            eff_[q], eff_[q] < inner});
      }
    }
  }

  double total = 0.0;
  for (std::size_t q : mapping.team(n - 1)) total += eff_[q];
  out.throughput = total;
  out.in_order_throughput = std::min(in_order, total);
}

ExponentialThroughput AnalysisContext::exponential(const Mapping& mapping,
                                                   ExecutionModel model) {
  ExponentialMethod method = options_.method;
  if (method == ExponentialMethod::kAuto) {
    method = model == ExecutionModel::kOverlap
                 ? ExponentialMethod::kColumns
                 : ExponentialMethod::kGeneralCtmc;
  }
  if (method == ExponentialMethod::kColumns) {
    SF_REQUIRE(model == ExecutionModel::kOverlap,
               "the column decomposition (Theorem 3) applies to the Overlap "
               "model only; use kGeneralCtmc for Strict");
    ExponentialThroughput result;
    evaluate_columns(mapping, full_columns_, /*want_components=*/true, result);
    return result;
  }
  return detail::general_ctmc_throughput(mapping, model, options_);
}

void AnalysisContext::check_objective(const Mapping& mapping,
                                      const MappingSearchOptions& options) {
  (void)mapping;
  if (options.objective == MappingObjective::kExponential) {
    SF_REQUIRE(options.model == ExecutionModel::kOverlap,
               "the exponential objective uses the column method, which "
               "applies to the Overlap model only");
  }
}

double AnalysisContext::objective_uncounted(
    const Mapping& mapping, const MappingSearchOptions& options) {
  check_objective(mapping, options);
  if (options.objective == MappingObjective::kDeterministic) {
    TpnBuildOptions build;
    build.max_rows = options.max_paths;
    return deterministic_throughput(mapping, options.model, build).throughput;
  }
  ExponentialThroughput result;
  evaluate_columns(mapping, full_columns_, /*want_components=*/false, result);
  return result.throughput;
}

double AnalysisContext::objective(const Mapping& mapping,
                                  const MappingSearchOptions& options) {
  const double score = objective_uncounted(mapping, options);
  ++stats_.evaluations;
  return score;
}

double AnalysisContext::set_base(Mapping mapping,
                                 const MappingSearchOptions& options,
                                 bool count_evaluation) {
  check_objective(mapping, options);
  for (std::size_t i = 0; i < mapping.num_stages(); ++i) {
    const auto& team = mapping.team(i);
    SF_REQUIRE(std::is_sorted(team.begin(), team.end()) &&
                   std::adjacent_find(team.begin(), team.end()) == team.end(),
               "set_base requires teams in strictly increasing processor "
               "order (the search normal form)");
  }
  base_assignment_.assign(mapping.num_processors(), Mapping::kUnused);
  for (std::size_t p = 0; p < mapping.num_processors(); ++p)
    base_assignment_[p] = mapping.stage_of(p);

  double score;
  if (options.objective == MappingObjective::kDeterministic) {
    base_columns_.clear();
    TpnBuildOptions build;
    build.max_rows = options.max_paths;
    score = deterministic_throughput(mapping, options.model, build).throughput;
  } else {
    ExponentialThroughput result;
    evaluate_columns(mapping, base_columns_, /*want_components=*/false, result);
    score = result.throughput;
  }

  if (options.bounds != BoundPolicy::kNone) {
    base_stage_bounds_.resize(mapping.num_stages());
    for (std::size_t i = 0; i < mapping.num_stages(); ++i)
      base_stage_bounds_[i] = mapping.stage_rate_bound(i);
  } else {
    base_stage_bounds_.clear();
  }

  base_mapping_ = std::move(mapping);
  base_options_ = options;
  base_score_ = score;
  scratch_valid_ = false;
  if (count_evaluation) ++stats_.evaluations;
  return score;
}

std::optional<double> AnalysisContext::evaluate_move(const MappingMove& move) {
  const MoveProbe probe =
      probe_move(move, -std::numeric_limits<double>::infinity());
  if (probe.outcome != MoveProbe::Outcome::kScored) return std::nullopt;
  return probe.score;
}

AnalysisContext::MoveProbe AnalysisContext::probe_move(const MappingMove& move,
                                                       double threshold) {
  SF_REQUIRE(base_mapping_.has_value(),
             "probe_move requires a base mapping (call set_base first)");
  scratch_valid_ = false;

  const Mapping& base = *base_mapping_;
  const std::size_t n = base.num_stages();
  const std::size_t m = base.num_processors();
  SF_REQUIRE(move.p < m, "move processor index out of range");

  scratch_assignment_ = base_assignment_;
  std::size_t touched[2] = {Mapping::kUnused, Mapping::kUnused};
  if (move.kind == MappingMove::Kind::kMigrate) {
    SF_REQUIRE(move.target < n || move.target == Mapping::kUnused,
               "move target stage out of range");
    touched[0] = scratch_assignment_[move.p];
    touched[1] = move.target;
    scratch_assignment_[move.p] = move.target;
  } else {
    SF_REQUIRE(move.q < m && move.q != move.p,
               "swap requires two distinct processors");
    touched[0] = scratch_assignment_[move.p];
    touched[1] = scratch_assignment_[move.q];
    std::swap(scratch_assignment_[move.p], scratch_assignment_[move.q]);
  }

  // Re-derive the teams in the search normal form (increasing processor id).
  scratch_teams_.resize(n);
  for (auto& team : scratch_teams_) team.clear();
  for (std::size_t p = 0; p < m; ++p) {
    if (scratch_assignment_[p] != Mapping::kUnused)
      scratch_teams_[scratch_assignment_[p]].push_back(p);
  }
  for (const auto& team : scratch_teams_) {
    if (team.empty()) return MoveProbe{};
  }

  std::optional<Mapping> candidate;
  try {
    if (candidate_policy_ == CandidatePolicy::kSharedDerive) {
      // Shares the base's immutable instance; only the links adjacent to a
      // touched team are revalidated (the base covers the rest).
      candidate.emplace(Mapping::with_teams(
          base, scratch_teams_, {touched[0], touched[1]}));
    } else {
      // Reference path: deep-copy the instance and validate everything.
      candidate.emplace(base.application(), base.platform(), scratch_teams_);
    }
  } catch (const InvalidArgument&) {
    // e.g. a used link has no bandwidth on this platform
    return MoveProbe{};
  }
  if (candidate->num_paths() > base_options_.max_paths) return MoveProbe{};

  if (base_options_.bounds != BoundPolicy::kNone) {
    // Refresh the touched entries of the cached per-stage tier-1 bound on
    // the candidate (S_i depends on teams i-1 and i only, so a move
    // touching stage t invalidates S_t and S_{t+1}); this runs even for an
    // unscreened threshold so a commit can adopt the refreshed vector.
    scratch_stage_bounds_ = base_stage_bounds_;
    for (const std::size_t t : {touched[0], touched[1]}) {
      if (t == Mapping::kUnused) continue;
      scratch_stage_bounds_[t] = candidate->stage_rate_bound(t);
      if (t + 1 < n)
        scratch_stage_bounds_[t + 1] = candidate->stage_rate_bound(t + 1);
    }
    const double slack = 1.0 + base_options_.bound_slack;
    double tier1 = kInf;
    for (const double s : scratch_stage_bounds_) tier1 = std::min(tier1, s);
    if (tier1 * slack <= threshold) {
      ++stats_.evaluations;
      ++stats_.move_evaluations;
      ++stats_.moves_pruned_mct;
      debug_check_pruned(*candidate, threshold);
      return MoveProbe{MoveProbe::Outcome::kPruned, 0.0, tier1};
    }
    if (base_options_.bounds == BoundPolicy::kMctMaxplus &&
        base_options_.objective == MappingObjective::kExponential &&
        threshold > 0.0) {
      // Tier 2: the max-plus deterministic analysis (Theorem 7:
      // rho_exp <= rho_det). Skipped for the deterministic objective,
      // where it would BE the solve.
      TpnBuildOptions build;
      build.max_rows = base_options_.max_paths;
      const double tier2 =
          deterministic_throughput(*candidate, base_options_.model, build)
              .throughput;
      if (tier2 * slack <= threshold) {
        ++stats_.evaluations;
        ++stats_.move_evaluations;
        ++stats_.moves_pruned_maxplus;
        debug_check_pruned(*candidate, threshold);
        return MoveProbe{MoveProbe::Outcome::kPruned, 0.0, tier2};
      }
    }
  }

  double score;
  scratch_touched_.assign(n == 0 ? 0 : n - 1, 0);
  if (base_options_.objective == MappingObjective::kDeterministic) {
    TpnBuildOptions build;
    build.max_rows = base_options_.max_paths;
    score = deterministic_throughput(*candidate, base_options_.model, build)
                .throughput;
  } else {
    scratch_columns_.resize(n == 0 ? 0 : n - 1);
    column_ptrs_.clear();
    for (std::size_t c = 0; c + 1 < n; ++c) {
      const bool is_touched = (touched[0] != Mapping::kUnused &&
                               (touched[0] == c || touched[0] == c + 1)) ||
                              (touched[1] != Mapping::kUnused &&
                               (touched[1] == c || touched[1] == c + 1));
      if (is_touched) {
        scratch_columns_[c] = solve_column(*candidate, c);
        scratch_touched_[c] = 1;
        column_ptrs_.push_back(&scratch_columns_[c]);
        ++stats_.columns_recomputed;
      } else {
        column_ptrs_.push_back(&base_columns_[c]);
        ++stats_.columns_reused;
      }
    }
    ExponentialThroughput result;
    compose(*candidate, column_ptrs_, /*want_components=*/false, result);
    score = result.throughput;
  }
  ++stats_.evaluations;
  ++stats_.move_evaluations;
  ++stats_.moves_solved;

#ifndef NDEBUG
  {
    // The incremental path must be bit-identical to a cold full evaluation.
    AnalysisContext fresh(options_);
    const double reference = fresh.objective_uncounted(*candidate, base_options_);
    SF_ASSERT(score == reference,
              "incremental evaluate_move diverged from the non-incremental "
              "evaluation path");
  }
#endif

  scratch_move_ = move;
  scratch_mapping_ = std::move(candidate);
  scratch_score_ = score;
  scratch_valid_ = true;
  return MoveProbe{MoveProbe::Outcome::kScored, score, 0.0};
}

void AnalysisContext::debug_check_pruned(const Mapping& candidate,
                                         double threshold) {
#ifndef NDEBUG
  // Re-solve a deterministic sample of pruned candidates and assert the
  // exact property the bit-identical-trajectory contract needs: a pruned
  // candidate's true score does not exceed the caller's threshold.
  if ((stats_.moves_pruned_mct + stats_.moves_pruned_maxplus) % 7 != 1) return;
  AnalysisContext fresh(options_);
  const double reference = fresh.objective_uncounted(candidate, base_options_);
  SF_ASSERT(reference <= threshold,
            "bound screen pruned a candidate that beats the threshold "
            "(inadmissible bound)");
#else
  (void)candidate;
  (void)threshold;
#endif
}

double AnalysisContext::commit_move(const MappingMove& move) {
  SF_REQUIRE(scratch_valid_ && move == scratch_move_,
             "commit_move must immediately follow a feasible evaluate_move "
             "of the same move");
  base_mapping_ = std::move(scratch_mapping_);
  base_assignment_.swap(scratch_assignment_);
  if (base_options_.bounds != BoundPolicy::kNone)
    base_stage_bounds_.swap(scratch_stage_bounds_);
  if (base_options_.objective == MappingObjective::kExponential) {
    for (std::size_t c = 0; c < scratch_touched_.size(); ++c) {
      if (scratch_touched_[c]) base_columns_[c] = std::move(scratch_columns_[c]);
    }
  }
  base_score_ = scratch_score_;
  scratch_valid_ = false;
  scratch_mapping_.reset();
  return base_score_;
}

}  // namespace streamflow
