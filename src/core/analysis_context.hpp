// AnalysisContext — the memoizing throughput-evaluation layer.
//
// One context per analysis session (a mapping search, a batch of scenarios)
// owns:
//  (a) a pattern-solve cache: the saturated rate of every heterogeneous
//      communication pattern solved so far, keyed by its canonical
//      signature (tpn/columns.hpp's PatternSignature). The signature pins
//      (u, v, exact link durations), so entries are valid — and shared —
//      across every mapping evaluated through the context, even mappings of
//      different (application, platform) instances;
//  (b) reusable arenas for the column decomposition and flow recursion, so
//      repeated evaluations stop reallocating; and
//  (c) an incremental move-evaluation API for local search: set_base() pins
//      a mapping, evaluate_move() scores a migrate/swap neighbour by
//      re-solving only the columns whose teams the move touches and
//      re-running the (cheap) flow recursion over the component DAG, and
//      commit_move() adopts the last evaluated move for free.
//
// The column method splits as decompose -> solve_patterns -> compose:
// decompose produces the per-column communication patterns (tpn/columns),
// solve_patterns obtains each pattern's saturated rate from the cache, from
// a fresh Young-diagram CTMC solve (young/pattern_analysis over
// markov/throughput's saturated_flow), or from Theorem 4's closed form, and
// compose runs the forward flow recursion of Theorem 3 over the component
// DAG. The free function exponential_throughput() is a thin wrapper that
// builds a throwaway context.
//
// Every cached or incremental result is bit-identical to the throwaway
// path: a cache hit returns the double produced by an earlier solve of a
// bit-identical pattern (the solve is deterministic), and compose performs
// the same IEEE-754 operations in the same order whether the inner rates
// came from the cache or not. Debug builds assert this on every
// evaluate_move; tests/test_analysis_context.cpp pins it across move kinds
// and random instances.
//
// Thread safety: an AnalysisContext is SINGLE-THREADED — it owns mutable
// caches, arenas, and the pinned base; concurrent use is a data race.
// Parallel layers (engine/parallel_search.hpp) give every worker its own
// context over the one shared immutable Instance. That costs nothing in
// correctness precisely because of the bit-exactness contract above: a
// restart evaluated through a cold private context returns the same bits
// as one evaluated through a long-lived warm context, so results never
// depend on which worker (or cache) ran what.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/analyzer.hpp"
#include "core/heuristics.hpp"
#include "tpn/columns.hpp"

namespace streamflow {

class PatternStore;

/// Monotone counters of one AnalysisContext (clear() resets them).
struct AnalysisCacheStats {
  std::size_t pattern_hits = 0;    ///< CTMC solves answered from the cache
  std::size_t pattern_misses = 0;  ///< CTMC solves computed and stored
  /// The subset of `pattern_hits` answered by the attached PatternStore
  /// (zero without one). hits + misses == requests stays cache-state
  /// invariant; this split, like the local hit/miss split, is not.
  std::size_t store_hits = 0;
  /// Local solves published into the attached PatternStore.
  std::size_t store_publishes = 0;
  std::size_t closed_form = 0;     ///< homogeneous Theorem 4 evaluations
  /// Feasible candidates considered (full + incremental). A pruned probe
  /// counts: the candidate WAS evaluated, just via its bound instead of the
  /// exact solve, so this counter is bit-equal under any BoundPolicy.
  std::size_t evaluations = 0;
  /// The subset of `evaluations` served by evaluate_move()/probe_move().
  std::size_t move_evaluations = 0;
  std::size_t columns_reused = 0;      ///< base columns reused by moves
  std::size_t columns_recomputed = 0;  ///< columns moves had to re-solve
  /// Bound-screen accounting of probe_move(). Under ANY policy,
  /// move_evaluations == moves_solved + moves_pruned_mct +
  /// moves_pruned_maxplus; under BoundPolicy::kNone the pruned counters are
  /// zero, so moves_solved alone equals move_evaluations (the
  /// bit-identical-trajectory contract, asserted in tests).
  std::size_t moves_pruned_mct = 0;      ///< skipped by the tier-1 screen
  std::size_t moves_pruned_maxplus = 0;  ///< skipped by the tier-2 screen
  std::size_t moves_solved = 0;          ///< feasible probes fully solved
};

/// One local-search move in assignment space, applied to the pinned base.
struct MappingMove {
  enum class Kind { kMigrate, kSwap };
  Kind kind = Kind::kMigrate;
  std::size_t p = 0;  ///< the migrating processor / first swap arm
  std::size_t q = 0;  ///< second swap arm (kSwap only)
  /// Destination stage of p (kMigrate only); Mapping::kUnused benches p.
  std::size_t target = Mapping::kUnused;

  static MappingMove migrate(std::size_t p, std::size_t target) {
    return MappingMove{Kind::kMigrate, p, 0, target};
  }
  static MappingMove swap(std::size_t p, std::size_t q) {
    return MappingMove{Kind::kSwap, p, q, Mapping::kUnused};
  }

  bool operator==(const MappingMove&) const = default;
};

/// How evaluate_move() constructs its candidate Mapping from the base.
/// Scores are bit-identical under both policies — only construction cost
/// differs (tests/test_analysis_context.cpp and tests/test_heuristics.cpp
/// pin whole searches equal under both, including against scores produced
/// by the pre-refactor library).
enum class CandidatePolicy {
  /// Share the base's immutable instance and revalidate only the teams the
  /// move touches (Mapping::with_teams). The default: candidate
  /// construction is O(M + touched R^2) with no allocation of the
  /// bandwidth matrix.
  kSharedDerive,
  /// The pre-sharing path: deep-copy the Application/Platform into a fresh
  /// instance and re-run the full constructor validation. Kept as the
  /// reference implementation for the equivalence tests and the
  /// bench/search_throughput baseline; produces bit-identical scores.
  kCopyValidate,
};

class AnalysisContext {
 public:
  explicit AnalysisContext(ExponentialOptions options = {});

  const ExponentialOptions& exponential_options() const { return options_; }

  /// Candidate-construction strategy of evaluate_move(). Scores are
  /// bit-identical under both policies (tested); only construction cost
  /// differs.
  CandidatePolicy candidate_policy() const { return candidate_policy_; }
  void set_candidate_policy(CandidatePolicy policy) {
    candidate_policy_ = policy;
  }

  /// Drop-in for the free exponential_throughput(): same contract, same
  /// bits, but pattern solves go through the cache and arenas are reused.
  ExponentialThroughput exponential(
      const Mapping& mapping, ExecutionModel model = ExecutionModel::kOverlap);

  /// Saturated rate of one communication pattern through the cache.
  /// Bit-identical to pattern_flow_exponential (heterogeneous pattern) or
  /// pattern_flow_exponential_homogeneous (Theorem 4 closed form).
  double pattern_rate(const CommPattern& pattern);

  /// evaluate_mapping() through the cache: the objective value of `mapping`
  /// under `options`. Counted in stats().evaluations.
  double objective(const Mapping& mapping, const MappingSearchOptions& options);

  // ---- Incremental search API ---------------------------------------------

  /// Pins `mapping` as the base of subsequent evaluate_move() calls and
  /// returns its objective value. Teams must list processors in increasing
  /// order (the normal form the search works in; moves re-derive teams from
  /// the per-processor assignment). Counted as one evaluation unless
  /// `count_evaluation` is false (used when re-basing onto an
  /// already-scored mapping).
  double set_base(Mapping mapping, const MappingSearchOptions& options,
                  bool count_evaluation = true);

  bool has_base() const { return base_mapping_.has_value(); }
  const Mapping& base_mapping() const;
  double base_score() const;

  /// Outcome of one probe_move() call.
  struct MoveProbe {
    enum class Outcome {
      kInfeasible,  ///< empty team, unusable link, or lcm above max_paths
      kPruned,      ///< a bound proved score <= threshold; no solve ran
      kScored,      ///< survived the screens; `score` is the objective
    };
    Outcome outcome = Outcome::kInfeasible;
    /// Objective of base (+) move (kScored only).
    double score = 0.0;
    /// The screening upper bound that decided a kPruned outcome.
    double bound = 0.0;
  };

  /// Objective of base (+) move, screened by the base options' BoundPolicy:
  /// before solving, cheap admissible upper bounds on the candidate's score
  /// are compared against `threshold` — the score a candidate must STRICTLY
  /// exceed to matter to the caller — and the solve is skipped (kPruned)
  /// whenever bound * (1 + bound_slack) <= threshold proves the candidate
  /// cannot exceed it. Tier 1 is the incremental per-stage cycle-time bound
  /// (Mapping::stage_rate_bound; O(touched-teams) against a cached base
  /// vector); tier 2, under BoundPolicy::kMctMaxplus with the exponential
  /// objective, is the max-plus deterministic analysis (Theorem 7:
  /// rho_exp <= rho_det). Pass -infinity to disable screening for this
  /// probe regardless of policy. A pruned probe still counts as one
  /// evaluation/move_evaluation (plus its pruned counter) — it is just
  /// never solved — so the evaluation counters of a screened search are
  /// bit-equal to the unscreened search's by construction. Debug builds
  /// re-solve a deterministic sample of pruned
  /// probes and assert score <= threshold, the exact property the
  /// bit-identical-trajectory contract needs. Does not change the base;
  /// only a kScored probe may be committed.
  MoveProbe probe_move(const MappingMove& move, double threshold);

  /// Objective of base (+) move, or nullopt when the move is infeasible
  /// (empty team, unusable link, or lcm of replications above max_paths).
  /// Only the columns adjacent to a touched stage are re-solved; all other
  /// columns reuse the base solves. Does not change the base. Equivalent
  /// to probe_move(move, -infinity), which never prunes.
  std::optional<double> evaluate_move(const MappingMove& move);

  /// Re-bases onto base (+) move. Must immediately follow a feasible
  /// evaluate_move(move) of the same move: the pending candidate state is
  /// adopted wholesale, so committing performs no new evaluation and
  /// changes no counter.
  double commit_move(const MappingMove& move);

  /// Attaches a shared PatternStore consulted on local-cache misses (and
  /// published into after local solves); nullptr detaches. The store must
  /// outlive every context attached to it. Results stay bit-identical with
  /// any store, warm or cold: a store hit returns the bits a local solve of
  /// the same signature would have produced (entries are immutable once
  /// published and solves are deterministic; Debug builds re-solve a
  /// sample of store hits and assert). The context itself remains
  /// single-threaded — the store is internally synchronized, the context
  /// is not.
  void set_pattern_store(PatternStore* store) { store_ = store; }
  PatternStore* pattern_store() const { return store_; }

  const AnalysisCacheStats& stats() const { return stats_; }

  /// Number of distinct heterogeneous patterns currently cached.
  std::size_t pattern_cache_size() const { return pattern_cache_.size(); }

  /// Drops the cache, the base, and the statistics.
  void clear();

 private:
  /// A solved communication component: its saturated (inner) rate plus the
  /// metadata compose() and the diagnostics need.
  struct SolvedComponent {
    double inner = 0.0;
    std::size_t u = 1;
    std::size_t v = 1;
    std::size_t g = 1;
    std::size_t file_index = 0;
    std::size_t component = 0;
    std::vector<std::size_t> senders;  ///< global sender ids (flow caps)
  };
  struct SolvedColumn {
    std::size_t g = 1;
    std::vector<SolvedComponent> comps;
  };

  struct SignatureHash {
    std::size_t operator()(const PatternSignature& s) const {
      return static_cast<std::size_t>(s.hash());
    }
  };

  SolvedColumn solve_column(const Mapping& mapping, std::size_t file_index);
  void solve_all_columns(const Mapping& mapping,
                         std::vector<SolvedColumn>& out);
  /// Full (non-incremental) column-method evaluation: solve every column
  /// into `columns`, then compose. The one path behind exponential(),
  /// objective(), and set_base(), so cached and uncached evaluations cannot
  /// diverge.
  void evaluate_columns(const Mapping& mapping,
                        std::vector<SolvedColumn>& columns,
                        bool want_components, ExponentialThroughput& out);
  /// The Theorem 3 forward flow recursion over the component DAG. Fills
  /// `out.throughput` / `out.in_order_throughput` (and `out.components`
  /// when `want_components`); bitwise-identical arithmetic either way.
  void compose(const Mapping& mapping,
               const std::vector<const SolvedColumn*>& columns,
               bool want_components, ExponentialThroughput& out);
  double objective_uncounted(const Mapping& mapping,
                             const MappingSearchOptions& options);
  static void check_objective(const Mapping& mapping,
                              const MappingSearchOptions& options);
  /// Debug-only sampled re-solve of a pruned candidate (no-op in Release).
  void debug_check_pruned(const Mapping& candidate, double threshold);
  /// Debug-only sampled re-solve of a store hit, asserting the stored rate
  /// equals a fresh solve bit for bit (no-op in Release).
  void debug_check_store_hit(const CommPattern& pattern, double rate);

  ExponentialOptions options_;
  CandidatePolicy candidate_policy_ = CandidatePolicy::kSharedDerive;
  AnalysisCacheStats stats_;
  /// Optional shared second tier behind pattern_cache_ (not owned).
  PatternStore* store_ = nullptr;
  // Point-queried only (find/emplace/clear/size) and NEVER iterated:
  // iteration order would depend on hash seeding and insertion history,
  // and must not be able to reach results. The unordered-iter lint rule
  // guards this invariant tree-wide.
  std::unordered_map<PatternSignature, double, SignatureHash> pattern_cache_;

  // Arenas reused across evaluations.
  std::vector<double> eff_;
  std::vector<double> flow_;
  std::vector<SolvedColumn> full_columns_;
  std::vector<const SolvedColumn*> column_ptrs_;

  // Base state of the incremental API.
  std::optional<Mapping> base_mapping_;
  MappingSearchOptions base_options_;
  std::vector<std::size_t> base_assignment_;  ///< stage per processor
  std::vector<SolvedColumn> base_columns_;    ///< exponential objective only
  double base_score_ = 0.0;
  /// Per-stage tier-1 bounds S_i of the base (BoundPolicy != kNone only);
  /// probes refresh the touched entries on the candidate and commit swaps
  /// the refreshed vector in.
  std::vector<double> base_stage_bounds_;
  std::vector<double> scratch_stage_bounds_;

  // Pending candidate of the last feasible evaluate_move (commit adopts it).
  bool scratch_valid_ = false;
  MappingMove scratch_move_;
  std::optional<Mapping> scratch_mapping_;
  std::vector<std::size_t> scratch_assignment_;
  std::vector<SolvedColumn> scratch_columns_;
  std::vector<char> scratch_touched_;
  double scratch_score_ = 0.0;
  std::vector<std::vector<std::size_t>> scratch_teams_;
};

}  // namespace streamflow
