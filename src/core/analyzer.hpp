// Public entry point of the library: throughput analysis of a replicated
// mapping under deterministic, exponential, and general N.B.U.E. timing.
//
//   Mapping mapping(app, platform, teams);
//   auto det = deterministic_throughput(mapping, ExecutionModel::kOverlap);
//   auto exp = exponential_throughput(mapping, ExecutionModel::kOverlap);
//   auto bounds = nbue_throughput_bounds(mapping, ExecutionModel::kOverlap);
//
// Exponential methods (§5):
//  * kColumns (Overlap only): the component decomposition of Theorem 3 —
//    per-column communication patterns solved on their Young-diagram CTMCs
//    (or Theorem 4's closed form when the column is homogeneous), composed
//    over the component DAG by the saturation rule. Polynomial whenever the
//    pattern sizes stay moderate; exact.
//  * kGeneralCtmc: Theorem 2's reachability CTMC on the full net. Exact for
//    Strict (whose net is 1-safe); for Overlap it models finite inter-stage
//    buffers of `place_capacity` tokens and converges to the unbounded net
//    from below as the capacity grows.
//  * kAuto: kColumns for Overlap, kGeneralCtmc for Strict.
//
// Note on composition units: the component throughputs are composed as
// data-set flows with conservation across the DAG (a communication pattern
// fed by u senders of effective rate e is capped at u * min e; each of its
// v receivers draws flow / v). This is Theorem 4's min-composition stated
// in flow units, which the cross-validation tests check against the general
// CTMC and simulation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "maxplus/deterministic.hpp"
#include "model/mapping.hpp"
#include "model/timing.hpp"

namespace streamflow {

enum class ExponentialMethod {
  kAuto,
  kColumns,
  kGeneralCtmc,
};

struct ExponentialOptions {
  ExponentialMethod method = ExponentialMethod::kAuto;
  /// Caps for the CTMC solves (pattern chains and the general method).
  std::size_t max_states = 250'000;
  /// Finite-buffer capacity for the Overlap general method (see header).
  int place_capacity = 8;
  /// Cap on the TPN row count m for the general method.
  std::int64_t max_rows = 1 << 20;
};

/// Per-component diagnostic of the column method.
struct ComponentInfo {
  std::string label;          ///< e.g. "T3/P5" or "F2#1 (3x2)"
  double inner = 0.0;         ///< saturated rate in isolation
  double effective = 0.0;     ///< rate after upstream composition
  bool bottleneck = false;    ///< effective < inner came from upstream
};

struct ExponentialThroughput {
  /// Completed data sets per time unit (output rows summed independently).
  double throughput = 0.0;
  /// The paper's in-order delivery rate: the slowest output row paces the
  /// ordered stream (see DeterministicThroughput::in_order_throughput).
  double in_order_throughput = 0.0;
  ExponentialMethod method_used = ExponentialMethod::kColumns;
  /// Column-method diagnostics (empty for the general method).
  std::vector<ComponentInfo> components;
  /// General-method diagnostics.
  std::size_t ctmc_states = 0;
  bool capacity_clipped = false;
};

/// Exponential-case throughput (§5): all computation and communication
/// times exponential with the mapping's deterministic times as means.
/// A thin wrapper constructing a throwaway AnalysisContext (see
/// core/analysis_context.hpp); long-running callers that evaluate many
/// mappings should hold a context of their own to share pattern solves.
ExponentialThroughput exponential_throughput(
    const Mapping& mapping, ExecutionModel model,
    const ExponentialOptions& options = {});

namespace detail {
/// Theorem 2's general reachability-CTMC path, used when the column method
/// does not apply. Exposed for AnalysisContext; not part of the public API.
ExponentialThroughput general_ctmc_throughput(const Mapping& mapping,
                                              ExecutionModel model,
                                              const ExponentialOptions& options);
}  // namespace detail

/// Theorem 7's bounds for arbitrary I.I.D. N.B.U.E. times with the
/// mapping's deterministic times as means:
///   rho_exp <= rho_nbue <= rho_det.
struct NbueBounds {
  double lower = 0.0;  ///< exponential-case throughput
  double upper = 0.0;  ///< deterministic-case throughput
};
NbueBounds nbue_throughput_bounds(const Mapping& mapping, ExecutionModel model,
                                  const ExponentialOptions& options = {});

}  // namespace streamflow
