#include "core/analyzer.hpp"

#include <algorithm>
#include <limits>

#include "core/analysis_context.hpp"
#include "markov/throughput.hpp"
#include "tpn/builder.hpp"

namespace streamflow {

namespace detail {

ExponentialThroughput general_ctmc_throughput(const Mapping& mapping,
                                              ExecutionModel model,
                                              const ExponentialOptions& options) {
  ExponentialThroughput result;
  result.method_used = ExponentialMethod::kGeneralCtmc;

  TpnBuildOptions build_options;
  build_options.max_rows = options.max_rows;
  const TimedEventGraph graph = build_tpn(mapping, model, build_options);
  const std::vector<double> rates = rates_from_durations(graph);

  GeneralMethodOptions method_options;
  method_options.reachability.max_states = options.max_states;
  method_options.reachability.place_capacity = options.place_capacity;

  const TpnMarkovChain chain =
      explore_markings(graph, rates, method_options.reachability);
  const std::vector<double> freq =
      stationary_frequencies(graph, chain, rates, method_options);
  double min_row_rate = std::numeric_limits<double>::infinity();
  for (const std::size_t t : graph.last_column_transitions()) {
    result.throughput += freq[t];
    min_row_rate = std::min(min_row_rate, freq[t]);
  }
  result.in_order_throughput =
      min_row_rate * static_cast<double>(mapping.num_paths());
  result.ctmc_states = chain.num_states;
  result.capacity_clipped = chain.capacity_clipped;
  return result;
}

}  // namespace detail

ExponentialThroughput exponential_throughput(const Mapping& mapping,
                                             ExecutionModel model,
                                             const ExponentialOptions& options) {
  // Throwaway context: one-shot callers pay nothing for the cache; callers
  // that evaluate many mappings should hold an AnalysisContext instead.
  AnalysisContext context(options);
  return context.exponential(mapping, model);
}

NbueBounds nbue_throughput_bounds(const Mapping& mapping, ExecutionModel model,
                                  const ExponentialOptions& options) {
  NbueBounds bounds;
  bounds.upper = deterministic_throughput(mapping, model).throughput;
  bounds.lower = exponential_throughput(mapping, model, options).throughput;
  return bounds;
}

}  // namespace streamflow
