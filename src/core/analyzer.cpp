#include "core/analyzer.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "markov/throughput.hpp"
#include "tpn/builder.hpp"
#include "tpn/columns.hpp"
#include "young/pattern_analysis.hpp"

namespace streamflow {

namespace {

/// Theorem 3/4 column method for the Overlap model: forward flow recursion
/// over the component DAG.
ExponentialThroughput columns_method(const Mapping& mapping,
                                     const ExponentialOptions& options) {
  ExponentialThroughput result;
  result.method_used = ExponentialMethod::kColumns;

  const std::size_t n = mapping.num_stages();
  // Effective personal completion rate of each processor of the current
  // stage (data sets it finishes per time unit, upstream included).
  std::vector<double> eff(mapping.num_processors(), 0.0);

  auto component_label = [](const CommPattern& p) {
    std::ostringstream os;
    os << "F" << (p.file_index + 1) << "#" << p.component << " (" << p.u << "x"
       << p.v << ")";
    return os.str();
  };

  // Equalized (in-order) cap: min over ALL components of the throughput the
  // whole system could sustain if that component were the only constraint
  // (processor p of stage i: R_i * lambda_p; communication pattern: g *
  // inner flow). Every component is an ancestor of some output row, so the
  // slowest one paces the ordered stream.
  double in_order = std::numeric_limits<double>::infinity();

  // Stage 0: saturated sources.
  for (std::size_t p : mapping.team(0)) {
    eff[p] = 1.0 / mapping.comp_time(p);  // exponential rate = 1 / mean
    in_order = std::min(
        in_order, eff[p] * static_cast<double>(mapping.replication(0)));
    result.components.push_back(ComponentInfo{
        "T1/P" + std::to_string(p), eff[p], eff[p], false});
  }

  for (std::size_t i = 0; i + 1 < n; ++i) {
    const std::vector<CommPattern> patterns = comm_patterns(mapping, i);
    std::vector<double> flow(patterns.size(), 0.0);
    for (std::size_t c = 0; c < patterns.size(); ++c) {
      const CommPattern& pattern = patterns[c];
      double inner;
      if (pattern.homogeneous()) {
        inner = pattern_flow_exponential_homogeneous(
            pattern.u, pattern.v, 1.0 / pattern.durations.front());
      } else {
        inner =
            pattern_flow_exponential(pattern, options.max_states).inner_flow;
      }
      // Conservation + saturation: the round-robin equalizes the per-link
      // frequency, so the slowest of the u senders paces the whole pattern.
      double sender_cap = std::numeric_limits<double>::infinity();
      for (std::size_t p : pattern.senders)
        sender_cap = std::min(sender_cap, eff[p]);
      sender_cap *= static_cast<double>(pattern.u);
      flow[c] = std::min(inner, sender_cap);
      in_order = std::min(in_order, inner * static_cast<double>(pattern.g));
      result.components.push_back(ComponentInfo{component_label(pattern),
                                                inner, flow[c],
                                                flow[c] < inner});
    }
    // Receivers of stage i+1 draw flow / v each.
    const std::size_t g = patterns.front().g;
    for (std::size_t b = 0; b < mapping.team(i + 1).size(); ++b) {
      const std::size_t q = mapping.team(i + 1)[b];
      const CommPattern& pattern = patterns[b % g];
      const double arrival = flow[b % g] / static_cast<double>(pattern.v);
      const double inner = 1.0 / mapping.comp_time(q);
      eff[q] = std::min(inner, arrival);
      in_order = std::min(
          in_order, inner * static_cast<double>(mapping.replication(i + 1)));
      result.components.push_back(
          ComponentInfo{"T" + std::to_string(i + 2) + "/P" + std::to_string(q),
                        inner, eff[q], eff[q] < inner});
    }
  }

  double total = 0.0;
  for (std::size_t q : mapping.team(n - 1)) total += eff[q];
  result.throughput = total;
  result.in_order_throughput = std::min(in_order, total);
  return result;
}

ExponentialThroughput general_method(const Mapping& mapping,
                                     ExecutionModel model,
                                     const ExponentialOptions& options) {
  ExponentialThroughput result;
  result.method_used = ExponentialMethod::kGeneralCtmc;

  TpnBuildOptions build_options;
  build_options.max_rows = options.max_rows;
  const TimedEventGraph graph = build_tpn(mapping, model, build_options);
  const std::vector<double> rates = rates_from_durations(graph);

  GeneralMethodOptions method_options;
  method_options.reachability.max_states = options.max_states;
  method_options.reachability.place_capacity = options.place_capacity;

  const TpnMarkovChain chain =
      explore_markings(graph, rates, method_options.reachability);
  const std::vector<double> freq =
      stationary_frequencies(graph, chain, rates, method_options);
  double min_row_rate = std::numeric_limits<double>::infinity();
  for (const std::size_t t : graph.last_column_transitions()) {
    result.throughput += freq[t];
    min_row_rate = std::min(min_row_rate, freq[t]);
  }
  result.in_order_throughput =
      min_row_rate * static_cast<double>(mapping.num_paths());
  result.ctmc_states = chain.num_states;
  result.capacity_clipped = chain.capacity_clipped;
  return result;
}

}  // namespace

ExponentialThroughput exponential_throughput(const Mapping& mapping,
                                             ExecutionModel model,
                                             const ExponentialOptions& options) {
  ExponentialMethod method = options.method;
  if (method == ExponentialMethod::kAuto) {
    method = model == ExecutionModel::kOverlap ? ExponentialMethod::kColumns
                                               : ExponentialMethod::kGeneralCtmc;
  }
  if (method == ExponentialMethod::kColumns) {
    SF_REQUIRE(model == ExecutionModel::kOverlap,
               "the column decomposition (Theorem 3) applies to the Overlap "
               "model only; use kGeneralCtmc for Strict");
    return columns_method(mapping, options);
  }
  return general_method(mapping, model, options);
}

NbueBounds nbue_throughput_bounds(const Mapping& mapping, ExecutionModel model,
                                  const ExponentialOptions& options) {
  NbueBounds bounds;
  bounds.upper = deterministic_throughput(mapping, model).throughput;
  bounds.lower = exponential_throughput(mapping, model, options).throughput;
  return bounds;
}

}  // namespace streamflow
