// PatternStore — the process-wide, sharded pattern-solve cache.
//
// An AnalysisContext's pattern cache is private and single-threaded
// (docs/ARCHITECTURE.md rule 2), so parallel workers re-solve identical
// PatternSignatures and every CLI invocation starts cold. The PatternStore
// is the shared tier behind those private caches: a striped-lock map from
// PatternSignature to the pattern's saturated rate, consulted by a context
// on a local miss and published into after a local solve.
//
// Sharing never changes results. A pattern's saturated rate is a
// deterministic function of its signature alone (the signature pins u, v,
// and the exact IEEE-754 duration bits; the Young-diagram CTMC solve is
// pure), so a store hit returns the same bits a local solve would have
// produced — the house bit-identity invariant survives arbitrary
// interleavings of readers and writers. publish() asserts exactly that on
// every duplicate publication, and Debug builds additionally re-solve a
// deterministic sample of store hits inside AnalysisContext
// (debug-check-store-hit, the cross-context agreement probe).
//
// Concurrency: entries are immutable once published (first writer wins),
// shard = hash(signature) mod shard_count, each shard owns a
// streamflow::Mutex guarding its map and its exact hit/miss/publish
// counters. Lock hold times are one hash-map operation; there is no global
// lock and no cross-shard ordering, so the store never deadlocks and scales
// with the shard count.
//
// Persistence: save()/load() serialize the entries as a versioned
// line-oriented text snapshot ("streamflow-pattern-store v1") with every
// double spelled as its 16-digit hex bit pattern (bit-exact round-trips, no
// decimal parsing) and a trailing FNV-1a digest over the sorted entries.
// Snapshots are sorted by (u, v, duration bits), so a store's snapshot is
// byte-stable regardless of shard count, hash seeding, or insertion order,
// and digest() of a live store equals the digest its snapshot carries.
// load_file() of a nonexistent path is a cold start (returns 0); a
// corrupted, truncated, or version-skewed snapshot throws InvalidArgument
// with a line diagnostic.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tpn/columns.hpp"

namespace streamflow {

/// Aggregated exact counters of a PatternStore (sums of the per-shard
/// counters, each maintained under its shard lock — no sampling, no races:
/// hits + misses == lookup calls and publishes + duplicates == publish
/// calls, exactly, under any interleaving).
struct PatternStoreStats {
  std::size_t hits = 0;        ///< lookups answered from a shard map
  std::size_t misses = 0;      ///< lookups that found no entry
  std::size_t publishes = 0;   ///< first publications (entries inserted)
  std::size_t duplicates = 0;  ///< re-publications of an existing signature
  std::size_t entries = 0;     ///< current entry count across all shards
};

class PatternStore {
 public:
  static constexpr std::size_t kDefaultShards = 16;

  explicit PatternStore(std::size_t shards = kDefaultShards);
  ~PatternStore();

  PatternStore(const PatternStore&) = delete;
  PatternStore& operator=(const PatternStore&) = delete;

  /// The saturated rate published for `signature`, or nullopt. Counts
  /// exactly one shard hit or miss.
  std::optional<double> lookup(const PatternSignature& signature);

  /// Publishes a solve. First writer wins; a duplicate publication asserts
  /// bit-equality with the stored rate (solves are deterministic functions
  /// of the signature, so concurrent publishers must agree) and leaves the
  /// entry untouched.
  void publish(const PatternSignature& signature, double rate);

  std::size_t shard_count() const { return shards_.size(); }
  /// The shard `signature` maps to: hash(signature) mod shard_count.
  std::size_t shard_of(const PatternSignature& signature) const;
  /// Entry count of one shard (for distribution diagnostics and tests).
  std::size_t shard_size(std::size_t shard) const;
  /// Total entry count across shards.
  std::size_t size() const;

  PatternStoreStats stats() const;

  /// Drops every entry and every counter.
  void clear();

  // ---- Snapshots ----------------------------------------------------------

  /// Writes the versioned snapshot: entries sorted by (u, v, duration
  /// bits), doubles as hex bit patterns, trailing digest line. Byte-stable
  /// for a given entry set (shard count and insertion order are invisible).
  void save(std::ostream& os) const;

  /// Merges a snapshot into the store and returns the number of entries it
  /// carried. Throws InvalidArgument (with a line diagnostic) on a missing
  /// or skewed version header, a malformed entry, a truncated file, or a
  /// digest mismatch. An entry that collides with a live one must be
  /// bit-equal (same determinism argument as publish()).
  std::size_t load(std::istream& is);

  /// save() to `path`; throws InvalidArgument when the file cannot be
  /// written.
  void save_file(const std::string& path) const;

  /// load() from `path`. A nonexistent path is a cold start: returns 0 and
  /// changes nothing. An existing-but-invalid file throws.
  std::size_t load_file(const std::string& path);

  /// FNV-1a over the sorted entries — the value save() writes in its
  /// trailing digest line. Equal digests mean bit-identical entry sets.
  std::uint64_t digest() const;

  // ---- Test support -------------------------------------------------------

  /// Applies `fn` to every stored rate in place and returns the entry
  /// count. Fault injection for tests ONLY (the stale-entry shim of the
  /// shared-store fuzz check and the Debug re-solve assertion test): a
  /// transformed entry deliberately violates the solve-determinism
  /// contract that lookup hits rely on.
  std::size_t transform_rates(const std::function<double(double)>& fn);

  /// The process-wide instance long-running callers (the CLI serve mode)
  /// share by default. Constructed with kDefaultShards on first use.
  static PatternStore& process_wide();

  /// Opaque shard (defined in the .cpp): an annotated Mutex striping one
  /// hash-map slice plus its exact counters. Public only so implementation
  /// helpers can name the type; the layout never leaves pattern_store.cpp.
  struct Shard;

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace streamflow
