// Mapping-search heuristics — the paper's stated next step ("we will devote
// future work to designing polynomial time heuristics for the NP-complete
// [mapping] problem... Thanks to the methodology introduced in this paper,
// we will be able to compute the throughput of heuristics and compare
// them"). This module does exactly that: greedy construction plus
// steepest-ascent local search, scored by the throughput evaluators of this
// library.
//
// The search explores one-to-many mappings (each processor serves at most
// one stage; every stage gets a non-empty team) with two move kinds:
// migrating a processor to another team and swapping processors between
// teams. Mappings whose lcm of replication factors exceeds `max_paths` are
// rejected (their analysis cost would explode — and in practice such
// mappings are also operationally fragile).
#pragma once

#include <cstdint>
#include <optional>

#include "model/mapping.hpp"

namespace streamflow {

/// What the search maximizes.
enum class MappingObjective {
  /// Deterministic throughput (Section 4 analysis). Valid for both models.
  kDeterministic,
  /// Exponential-case throughput (Theorem 3/4 column method; Overlap only).
  kExponential,
};

struct MappingSearchOptions {
  ExecutionModel model = ExecutionModel::kOverlap;
  MappingObjective objective = MappingObjective::kExponential;
  /// Random restarts of the local search (the first start is greedy).
  std::size_t restarts = 4;
  /// Local-search sweeps per start before giving up on improvement.
  std::size_t max_sweeps = 50;
  /// Reject mappings with lcm(R_1..R_N) above this.
  std::int64_t max_paths = 256;
  std::uint64_t seed = 1;
  /// Leave processors unused when that helps (a slow straggler can reduce
  /// a replicated stage's paced throughput). If false, every processor is
  /// assigned somewhere.
  bool allow_unused_processors = true;
};

struct MappingSearchResult {
  Mapping mapping;                ///< the best mapping found
  double throughput = 0.0;        ///< its objective value
  double greedy_throughput = 0.0; ///< objective after greedy construction
  std::size_t evaluations = 0;    ///< total throughput evaluations
};

/// Runs the search. Requires num_processors >= num_stages.
/// Throws InvalidArgument for kExponential with the Strict model.
MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options = {});

/// Scores one mapping under the chosen objective (exposed for comparisons).
double evaluate_mapping(const Mapping& mapping,
                        const MappingSearchOptions& options);

}  // namespace streamflow
