// Mapping-search heuristics — the paper's stated next step ("we will devote
// future work to designing polynomial time heuristics for the NP-complete
// [mapping] problem... Thanks to the methodology introduced in this paper,
// we will be able to compute the throughput of heuristics and compare
// them"). This module does exactly that: greedy construction plus
// steepest-ascent local search, scored by the throughput evaluators of this
// library.
//
// The search explores one-to-many mappings (each processor serves at most
// one stage; every stage gets a non-empty team) with two move kinds:
// migrating a processor to another team and swapping processors between
// teams. Mappings whose lcm of replication factors exceeds `max_paths` are
// rejected (their analysis cost would explode — and in practice such
// mappings are also operationally fragile).
//
// Scoring runs through core/analysis_context.hpp: neighbour candidates are
// evaluated incrementally (only the columns a move touches are re-solved)
// and every communication-pattern CTMC solve is memoized across candidates.
// The incremental path is bit-identical to full re-evaluation (asserted in
// Debug builds), so the search trajectory — and therefore the result — does
// not depend on the cache state.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "model/mapping.hpp"

namespace streamflow {

class AnalysisContext;
class Prng;

/// What the search maximizes.
enum class MappingObjective {
  /// Deterministic throughput (Section 4 analysis). Valid for both models.
  kDeterministic,
  /// Exponential-case throughput (Theorem 3/4 column method; Overlap only).
  kExponential,
};

/// Admissible bound screens applied by AnalysisContext::probe_move before a
/// candidate is solved. A screen may only skip candidates it can PROVE
/// cannot beat the caller's adoption threshold, so the search trajectory —
/// and therefore the final mapping and score — is bit-identical to the
/// unscreened search under every policy (Debug builds re-solve a sample of
/// pruned moves and assert; tests/test_heuristics.cpp and the fuzz
/// harness's pruned-search check pin it).
enum class BoundPolicy {
  /// No screening: every feasible candidate is solved (the PR 5 behaviour,
  /// and the default — the pinned evaluation counts depend on it).
  kNone,
  /// Tier 1 only: the O(touched-teams) incremental cycle-time bound built
  /// from Mapping::cycle_time (min over stages of the per-team saturated
  /// rate sum — see Mapping::stage_rate_bound).
  kMct,
  /// Tier 1, escalating to the max-plus deterministic analysis
  /// (maxplus/deterministic, Theorem 7: rho_exp <= rho_det) when the cheap
  /// bound is inconclusive. The escalation applies to the exponential
  /// objective only — for the deterministic objective the max-plus analysis
  /// IS the solve.
  kMctMaxplus,
};

/// Which search runs inside one restart / island leg.
enum class RestartKind {
  /// Greedy construction + steepest first-improvement local search (the
  /// PR 3–5 search; restart k >= 1 starts from a random assignment).
  kGreedyLocal,
  /// Simulated annealing over the migrate/swap neighbourhood, organized as
  /// deterministic islands by engine/parallel_search (island k draws from
  /// StreamFactory substream k; incumbents exchanged only at fixed
  /// synchronization rounds).
  kAnnealing,
  /// Tabu search (best-neighbour steps with a recency tabu on the reversing
  /// attribute, aspiration on the global best), same island organization.
  kTabu,
};

struct MappingSearchOptions {
  ExecutionModel model = ExecutionModel::kOverlap;
  MappingObjective objective = MappingObjective::kExponential;
  /// Random restarts of the local search (the first start is greedy).
  /// Values 0 and 1 are equivalent: both run the greedy construction plus
  /// one local-search pass and no random restart (tested in
  /// tests/test_heuristics.cpp).
  std::size_t restarts = 4;
  /// Local-search sweeps per start before giving up on improvement.
  std::size_t max_sweeps = 50;
  /// Reject mappings with lcm(R_1..R_N) above this.
  std::int64_t max_paths = 256;
  std::uint64_t seed = 1;
  /// Leave processors unused when that helps (a slow straggler can reduce
  /// a replicated stage's paced throughput). If false, every processor is
  /// assigned somewhere.
  bool allow_unused_processors = true;

  // ---- Bound screening (AnalysisContext::probe_move) -----------------------

  /// Admissible screens applied before each candidate solve. Final mappings
  /// and scores are bit-identical under every policy; only the number of
  /// CTMC solves (and the evaluation counters) changes.
  BoundPolicy bounds = BoundPolicy::kNone;
  /// Relative slack applied to a bound before comparing it to the adoption
  /// threshold: prune only when bound * (1 + bound_slack) <= threshold.
  /// Absorbs FP rounding between the bound arithmetic and the solver;
  /// mutation tests tighten it to prove the comparison bites.
  double bound_slack = 1e-9;

  // ---- Metaheuristic knobs (kAnnealing / kTabu islands) --------------------

  /// Which search runs per restart / island leg. The serial
  /// optimize_mapping supports kGreedyLocal only; kAnnealing/kTabu run as
  /// deterministic islands through engine/parallel_search.
  RestartKind kind = RestartKind::kGreedyLocal;
  /// Moves proposed (annealing) or best-neighbour steps taken (tabu) per
  /// island leg, i.e. between two synchronization points.
  std::size_t moves_per_leg = 64;
  /// Relative initial temperature of the annealing acceptance rule
  /// (accept a candidate iff score > current * (1 + T_r * ln u),
  /// u ~ U(0,1)); T_r = sa_initial_temp * sa_cooling^round.
  double sa_initial_temp = 0.20;
  double sa_cooling = 0.85;
  /// Steps a reversing attribute (processor, origin stage) stays tabu.
  std::size_t tabu_tenure = 8;
};

struct MappingSearchResult {
  Mapping mapping;                ///< the best mapping found
  double throughput = 0.0;        ///< its objective value
  double greedy_throughput = 0.0; ///< objective after greedy construction
  /// Every objective evaluation of a feasible candidate, greedy
  /// construction included: full evaluations plus incremental move
  /// evaluations (committing an already-evaluated move is not recounted).
  std::size_t evaluations = 0;
  /// Communication-pattern CTMC solves answered from the context cache
  /// during this search (0 for the deterministic objective).
  std::size_t pattern_cache_hits = 0;
  /// Pattern CTMC solves actually computed (cache misses) during this
  /// search.
  std::size_t pattern_cache_misses = 0;
  /// Move probes skipped by the tier-1 cycle-time screen (0 under
  /// BoundPolicy::kNone). Pruned probes still count in `evaluations`, so
  /// that counter is bit-equal to the unscreened search's;
  /// moves_solved + moves_pruned_mct + moves_pruned_maxplus equals the
  /// unscreened search's moves_solved (asserted in tests).
  std::size_t moves_pruned_mct = 0;
  /// Move probes skipped by the tier-2 max-plus screen.
  std::size_t moves_pruned_maxplus = 0;
  /// Move probes that survived the screens and paid the full solve.
  std::size_t moves_solved = 0;
};

/// Runs the search. Requires num_processors >= num_stages.
/// Throws InvalidArgument for kExponential with the Strict model.
/// The overload without a context uses a private throwaway
/// AnalysisContext; pass a shared context to reuse pattern solves across
/// searches (results are identical either way — see the determinism tests).
///
/// The InstancePtr overloads are the primary entry points: every candidate
/// mapping of the whole search shares that one immutable instance (no copy
/// of the application or the bandwidth matrix, ever — asserted in
/// tests/test_heuristics.cpp). The (application, platform) overloads are
/// compatibility wrappers that bundle their arguments into one shared
/// instance up front and forward.
MappingSearchResult optimize_mapping(const InstancePtr& instance,
                                     const MappingSearchOptions& options = {});
MappingSearchResult optimize_mapping(const InstancePtr& instance,
                                     const MappingSearchOptions& options,
                                     AnalysisContext& context);
MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options = {});
MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options,
                                     AnalysisContext& context);

/// Scores one mapping under the chosen objective (exposed for comparisons).
double evaluate_mapping(const Mapping& mapping,
                        const MappingSearchOptions& options);

// ---- Re-entrant single-restart API ----------------------------------------
//
// optimize_mapping is a serial in-order reduction over independent restarts:
// restart 0 is the greedy construction plus one local-search pass, restart
// k >= 1 is a local-search pass from a drawn random start. The pieces are
// exposed here so a portfolio driver (engine/parallel_search.hpp) can fan
// the restarts out over a thread pool: every function below touches only
// its arguments — the shared immutable instance is read-only and the
// AnalysisContext carries all mutable state — so any number of restarts may
// run concurrently as long as each thread brings its own context.

/// The assignment representation of the search: the stage index served by
/// each processor, with Mapping::kUnused for processors left out.
using StageAssignment = std::vector<std::size_t>;

/// Outcome of one restart. Scores, assignments, and the evaluation counts
/// are independent of the cache state of the context that ran the restart
/// (the AnalysisContext bit-exactness contract), so a restart computes the
/// same RestartResult on a cold private context as it does mid-way through
/// a long-lived shared one — the property the parallel portfolio relies on.
struct RestartResult {
  /// False when the start never reached a feasible mapping (the restart is
  /// skipped by the reduction; `score` stays -infinity).
  bool feasible = false;
  /// Objective value after local search.
  double score = -std::numeric_limits<double>::infinity();
  /// Objective value of the start itself: the greedy construction score for
  /// restart 0 (reported as MappingSearchResult::greedy_throughput), the
  /// first feasible score for a random restart.
  double start_score = -std::numeric_limits<double>::infinity();
  /// Final assignment of the restart (realize it with realize_assignment).
  StageAssignment assignment;
  /// Objective evaluations consumed by this restart (cache-independent).
  std::size_t evaluations = 0;
  /// Pattern solves requested by this restart: cache hits + misses. The
  /// hit/miss split depends on the warmth of the context, the sum does not.
  std::size_t pattern_requests = 0;
  /// Bound-screen accounting for this restart (see MappingSearchResult).
  std::size_t moves_pruned_mct = 0;
  std::size_t moves_pruned_maxplus = 0;
  std::size_t moves_solved = 0;
};

/// Validates (instance, options) exactly as optimize_mapping does; throws
/// InvalidArgument on violation. Portfolio drivers call this once before
/// fanning restarts out so option errors surface on the caller's thread.
void validate_mapping_search(const InstancePtr& instance,
                             const MappingSearchOptions& options);

/// Restart 0: greedy construction (heaviest stages on fastest processors,
/// remaining processors placed where they score best) followed by one
/// local-search pass. Deterministic — consumes no randomness.
RestartResult run_greedy_restart(const InstancePtr& instance,
                                 const MappingSearchOptions& options,
                                 AnalysisContext& context);

/// Draws the random start assignment of one restart — exactly the draw the
/// serial optimize_mapping makes, exposed so a portfolio can materialize
/// every start up front (sequentially, preserving the serial draw order)
/// before fanning the searches out.
StageAssignment draw_restart_assignment(const Application& application,
                                        const Platform& platform, Prng& prng);

/// Restart k >= 1: local search from `start`. Infeasible starts return
/// feasible == false without consuming any evaluation (matching the serial
/// search, which skips them).
RestartResult run_random_restart(const InstancePtr& instance,
                                 StageAssignment start,
                                 const MappingSearchOptions& options,
                                 AnalysisContext& context);

/// Builds the validated Mapping for `assignment` on the shared instance;
/// nullopt when the assignment is infeasible (empty team, unusable link, or
/// lcm of replications above max_paths).
std::optional<Mapping> realize_assignment(const InstancePtr& instance,
                                          const StageAssignment& assignment,
                                          std::int64_t max_paths);

// ---- Metaheuristic island legs (kAnnealing / kTabu) -------------------------
//
// engine/parallel_search organizes the SA/tabu kinds as deterministic
// islands: island k owns one IslandState and one Prng (StreamFactory
// substream k), runs one leg per synchronization round (legs of one round
// may run concurrently on worker-private contexts — a leg reads only its
// island, its prng, and the shared immutable instance), and exchanges
// incumbents only between rounds, on one thread. The island trajectory is
// therefore a pure function of (seed, options), independent of thread
// count.

/// Mutable state of one island between synchronization rounds.
struct IslandState {
  /// False until the island has a feasible incumbent (a random start may be
  /// infeasible; such islands skip their legs — consuming no randomness —
  /// until an exchange hands them one).
  bool feasible = false;
  StageAssignment current;  ///< incumbent the next leg starts from
  double current_score = -std::numeric_limits<double>::infinity();
  StageAssignment best;  ///< best assignment this island has held
  double best_score = -std::numeric_limits<double>::infinity();
};

/// Runs one leg of `options.kind` (kAnnealing or kTabu) on `island`:
/// options.moves_per_leg proposal steps (annealing, drawing from `prng`) or
/// best-neighbour steps (tabu, consuming no randomness; the tabu list is
/// fresh per leg), screened through AnalysisContext::probe_move under
/// options.bounds. `round` scales the annealing temperature
/// (sa_initial_temp * sa_cooling^round). Returns the leg's deltas:
/// feasible/score/start_score reflect the island after/entering the leg,
/// and the counters cover this leg only (cache-independent, like every
/// RestartResult). An infeasible island returns immediately with
/// feasible == false.
RestartResult run_island_leg(const InstancePtr& instance, IslandState& island,
                             std::size_t round,
                             const MappingSearchOptions& options, Prng& prng,
                             AnalysisContext& context);

}  // namespace streamflow
