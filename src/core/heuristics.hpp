// Mapping-search heuristics — the paper's stated next step ("we will devote
// future work to designing polynomial time heuristics for the NP-complete
// [mapping] problem... Thanks to the methodology introduced in this paper,
// we will be able to compute the throughput of heuristics and compare
// them"). This module does exactly that: greedy construction plus
// steepest-ascent local search, scored by the throughput evaluators of this
// library.
//
// The search explores one-to-many mappings (each processor serves at most
// one stage; every stage gets a non-empty team) with two move kinds:
// migrating a processor to another team and swapping processors between
// teams. Mappings whose lcm of replication factors exceeds `max_paths` are
// rejected (their analysis cost would explode — and in practice such
// mappings are also operationally fragile).
//
// Scoring runs through core/analysis_context.hpp: neighbour candidates are
// evaluated incrementally (only the columns a move touches are re-solved)
// and every communication-pattern CTMC solve is memoized across candidates.
// The incremental path is bit-identical to full re-evaluation (asserted in
// Debug builds), so the search trajectory — and therefore the result — does
// not depend on the cache state.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>

#include "model/mapping.hpp"

namespace streamflow {

class AnalysisContext;
class Prng;

/// What the search maximizes.
enum class MappingObjective {
  /// Deterministic throughput (Section 4 analysis). Valid for both models.
  kDeterministic,
  /// Exponential-case throughput (Theorem 3/4 column method; Overlap only).
  kExponential,
};

struct MappingSearchOptions {
  ExecutionModel model = ExecutionModel::kOverlap;
  MappingObjective objective = MappingObjective::kExponential;
  /// Random restarts of the local search (the first start is greedy).
  /// Values 0 and 1 are equivalent: both run the greedy construction plus
  /// one local-search pass and no random restart (tested in
  /// tests/test_heuristics.cpp).
  std::size_t restarts = 4;
  /// Local-search sweeps per start before giving up on improvement.
  std::size_t max_sweeps = 50;
  /// Reject mappings with lcm(R_1..R_N) above this.
  std::int64_t max_paths = 256;
  std::uint64_t seed = 1;
  /// Leave processors unused when that helps (a slow straggler can reduce
  /// a replicated stage's paced throughput). If false, every processor is
  /// assigned somewhere.
  bool allow_unused_processors = true;
};

struct MappingSearchResult {
  Mapping mapping;                ///< the best mapping found
  double throughput = 0.0;        ///< its objective value
  double greedy_throughput = 0.0; ///< objective after greedy construction
  /// Every objective evaluation of a feasible candidate, greedy
  /// construction included: full evaluations plus incremental move
  /// evaluations (committing an already-evaluated move is not recounted).
  std::size_t evaluations = 0;
  /// Communication-pattern CTMC solves answered from the context cache
  /// during this search (0 for the deterministic objective).
  std::size_t pattern_cache_hits = 0;
  /// Pattern CTMC solves actually computed (cache misses) during this
  /// search.
  std::size_t pattern_cache_misses = 0;
};

/// Runs the search. Requires num_processors >= num_stages.
/// Throws InvalidArgument for kExponential with the Strict model.
/// The overload without a context uses a private throwaway
/// AnalysisContext; pass a shared context to reuse pattern solves across
/// searches (results are identical either way — see the determinism tests).
///
/// The InstancePtr overloads are the primary entry points: every candidate
/// mapping of the whole search shares that one immutable instance (no copy
/// of the application or the bandwidth matrix, ever — asserted in
/// tests/test_heuristics.cpp). The (application, platform) overloads are
/// compatibility wrappers that bundle their arguments into one shared
/// instance up front and forward.
MappingSearchResult optimize_mapping(const InstancePtr& instance,
                                     const MappingSearchOptions& options = {});
MappingSearchResult optimize_mapping(const InstancePtr& instance,
                                     const MappingSearchOptions& options,
                                     AnalysisContext& context);
MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options = {});
MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options,
                                     AnalysisContext& context);

/// Scores one mapping under the chosen objective (exposed for comparisons).
double evaluate_mapping(const Mapping& mapping,
                        const MappingSearchOptions& options);

// ---- Re-entrant single-restart API ----------------------------------------
//
// optimize_mapping is a serial in-order reduction over independent restarts:
// restart 0 is the greedy construction plus one local-search pass, restart
// k >= 1 is a local-search pass from a drawn random start. The pieces are
// exposed here so a portfolio driver (engine/parallel_search.hpp) can fan
// the restarts out over a thread pool: every function below touches only
// its arguments — the shared immutable instance is read-only and the
// AnalysisContext carries all mutable state — so any number of restarts may
// run concurrently as long as each thread brings its own context.

/// The assignment representation of the search: the stage index served by
/// each processor, with Mapping::kUnused for processors left out.
using StageAssignment = std::vector<std::size_t>;

/// Outcome of one restart. Scores, assignments, and the evaluation counts
/// are independent of the cache state of the context that ran the restart
/// (the AnalysisContext bit-exactness contract), so a restart computes the
/// same RestartResult on a cold private context as it does mid-way through
/// a long-lived shared one — the property the parallel portfolio relies on.
struct RestartResult {
  /// False when the start never reached a feasible mapping (the restart is
  /// skipped by the reduction; `score` stays -infinity).
  bool feasible = false;
  /// Objective value after local search.
  double score = -std::numeric_limits<double>::infinity();
  /// Objective value of the start itself: the greedy construction score for
  /// restart 0 (reported as MappingSearchResult::greedy_throughput), the
  /// first feasible score for a random restart.
  double start_score = -std::numeric_limits<double>::infinity();
  /// Final assignment of the restart (realize it with realize_assignment).
  StageAssignment assignment;
  /// Objective evaluations consumed by this restart (cache-independent).
  std::size_t evaluations = 0;
  /// Pattern solves requested by this restart: cache hits + misses. The
  /// hit/miss split depends on the warmth of the context, the sum does not.
  std::size_t pattern_requests = 0;
};

/// Validates (instance, options) exactly as optimize_mapping does; throws
/// InvalidArgument on violation. Portfolio drivers call this once before
/// fanning restarts out so option errors surface on the caller's thread.
void validate_mapping_search(const InstancePtr& instance,
                             const MappingSearchOptions& options);

/// Restart 0: greedy construction (heaviest stages on fastest processors,
/// remaining processors placed where they score best) followed by one
/// local-search pass. Deterministic — consumes no randomness.
RestartResult run_greedy_restart(const InstancePtr& instance,
                                 const MappingSearchOptions& options,
                                 AnalysisContext& context);

/// Draws the random start assignment of one restart — exactly the draw the
/// serial optimize_mapping makes, exposed so a portfolio can materialize
/// every start up front (sequentially, preserving the serial draw order)
/// before fanning the searches out.
StageAssignment draw_restart_assignment(const Application& application,
                                        const Platform& platform, Prng& prng);

/// Restart k >= 1: local search from `start`. Infeasible starts return
/// feasible == false without consuming any evaluation (matching the serial
/// search, which skips them).
RestartResult run_random_restart(const InstancePtr& instance,
                                 StageAssignment start,
                                 const MappingSearchOptions& options,
                                 AnalysisContext& context);

/// Builds the validated Mapping for `assignment` on the shared instance;
/// nullopt when the assignment is infeasible (empty team, unusable link, or
/// lcm of replications above max_paths).
std::optional<Mapping> realize_assignment(const InstancePtr& instance,
                                          const StageAssignment& assignment,
                                          std::int64_t max_paths);

}  // namespace streamflow
