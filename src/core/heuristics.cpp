#include "core/heuristics.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "core/analysis_context.hpp"

namespace streamflow {

namespace {

constexpr std::size_t kUnassigned = Mapping::kUnused;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Assignment representation: stage index per processor (or kUnassigned).
using Assignment = std::vector<std::size_t>;

std::optional<Mapping> realize(const InstancePtr& instance,
                               const Assignment& assignment,
                               std::int64_t max_paths) {
  std::vector<std::vector<std::size_t>> teams(
      instance->application.num_stages());
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    if (assignment[p] != kUnassigned) teams[assignment[p]].push_back(p);
  }
  for (const auto& team : teams) {
    if (team.empty()) return std::nullopt;
  }
  try {
    // Shares `instance` — realizing an assignment never copies the
    // application or the bandwidth matrix.
    Mapping mapping(instance, std::move(teams));
    if (mapping.num_paths() > max_paths) return std::nullopt;
    return mapping;
  } catch (const InvalidArgument&) {
    // e.g. a used link has no bandwidth on this platform
    return std::nullopt;
  }
}

void apply_move(Assignment& assignment, const MappingMove& move) {
  if (move.kind == MappingMove::Kind::kMigrate) {
    assignment[move.p] = move.target;
  } else {
    std::swap(assignment[move.p], assignment[move.q]);
  }
}

/// One search trajectory: the current assignment plus the context base that
/// mirrors it. Neighbour candidates are probed through the incremental
/// evaluate_move path once a feasible base is pinned; until then (an
/// infeasible start, which local search may still climb out of) probes fall
/// back to full throwaway evaluations through the same context.
class SearchState {
 public:
  SearchState(const InstancePtr& instance,
              const MappingSearchOptions& options, AnalysisContext& context,
              Assignment assignment)
      : instance_(instance),
        options_(options),
        context_(context),
        assignment_(std::move(assignment)) {
    auto mapping = realize(instance_, assignment_, options_.max_paths);
    if (mapping) {
      current_ = context_.set_base(std::move(*mapping), options_);
      has_base_ = true;
    }
  }

  const Assignment& assignment() const { return assignment_; }
  double current() const { return current_; }
  bool feasible() const { return has_base_; }

  /// Objective of assignment (+) move; nullopt when infeasible. Counted as
  /// one evaluation. Does not change the assignment.
  std::optional<double> probe(const MappingMove& move) {
    if (has_base_) return context_.evaluate_move(move);
    Assignment tentative = assignment_;
    apply_move(tentative, move);
    auto mapping = realize(instance_, tentative, options_.max_paths);
    if (!mapping) return std::nullopt;
    return context_.objective(*mapping, options_);
  }

  /// Adopts the move just probed feasible with value `score`. Free when a
  /// base is pinned (the pending evaluate_move candidate is committed).
  void adopt_last(const MappingMove& move, double score) {
    apply_move(assignment_, move);
    if (has_base_) {
      context_.commit_move(move);
    } else {
      auto mapping = realize(instance_, assignment_, options_.max_paths);
      SF_ASSERT(mapping.has_value(),
                "adopted a move whose probe reported it feasible");
      // The score is already known; re-base without recounting.
      context_.set_base(std::move(*mapping), options_,
                        /*count_evaluation=*/false);
      has_base_ = true;
    }
    current_ = score;
  }

 private:
  const InstancePtr& instance_;
  const MappingSearchOptions& options_;
  AnalysisContext& context_;
  Assignment assignment_;
  double current_ = kNegInf;
  bool has_base_ = false;
};

/// Processor ids in decreasing-speed order. Computed once per search:
/// std::sort is unstable, so the seeding and placement phases must share
/// ONE ordering (a re-sort could break ties differently).
std::vector<std::size_t> processors_by_speed(const Platform& platform) {
  std::vector<std::size_t> procs(platform.num_processors());
  std::iota(procs.begin(), procs.end(), std::size_t{0});
  std::sort(procs.begin(), procs.end(), [&](std::size_t a, std::size_t b) {
    return platform.speed(a) > platform.speed(b);
  });
  return procs;
}

/// Initial seeding of the greedy construction: heaviest stages get the
/// fastest processors (no scoring involved).
Assignment initial_greedy_assignment(
    const Application& application, const Platform& platform,
    const std::vector<std::size_t>& procs_by_speed) {
  const std::size_t n = application.num_stages();

  std::vector<std::size_t> stages_by_work(n);
  std::iota(stages_by_work.begin(), stages_by_work.end(), std::size_t{0});
  std::sort(stages_by_work.begin(), stages_by_work.end(),
            [&](std::size_t a, std::size_t b) {
              return application.work(a) > application.work(b);
            });

  Assignment assignment(platform.num_processors(), kUnassigned);
  for (std::size_t k = 0; k < n; ++k)
    assignment[procs_by_speed[k]] = stages_by_work[k];
  return assignment;
}

/// Greedy construction: each remaining processor joins the team where it
/// raises the objective most; when unused processors are not allowed, it is
/// placed at the least-bad stage even if no placement improves.
void greedy_place_extras(SearchState& state, const Application& application,
                         const std::vector<std::size_t>& procs_by_speed,
                         const MappingSearchOptions& options) {
  const std::size_t n = application.num_stages();
  const std::size_t m = procs_by_speed.size();

  std::vector<std::optional<double>> candidate_scores(n);
  for (std::size_t k = n; k < m; ++k) {
    const std::size_t p = procs_by_speed[k];
    double best = state.current();
    std::size_t best_stage = kUnassigned;
    for (std::size_t i = 0; i < n; ++i) {
      candidate_scores[i] = state.probe(MappingMove::migrate(p, i));
      if (candidate_scores[i] && *candidate_scores[i] > best) {
        best = *candidate_scores[i];
        best_stage = i;
      }
    }
    if (best_stage == kUnassigned && !options.allow_unused_processors) {
      // Fall back to the least-bad placement (reusing the recorded scores:
      // every objective evaluation is counted exactly once).
      double least_bad = kNegInf;
      for (std::size_t i = 0; i < n; ++i) {
        if (candidate_scores[i] && *candidate_scores[i] > least_bad) {
          least_bad = *candidate_scores[i];
          best_stage = i;
        }
      }
    }
    if (best_stage != kUnassigned) {
      // Re-probe so the commit adopts the pending candidate state.
      const MappingMove move = MappingMove::migrate(p, best_stage);
      const auto score = state.probe(move);
      SF_ASSERT(score.has_value(), "chosen greedy placement turned infeasible");
      state.adopt_last(move, *score);
    }
  }
}

Assignment random_assignment(const Application& application,
                             const Platform& platform, Prng& prng) {
  const std::size_t n = application.num_stages();
  const std::size_t m = platform.num_processors();
  Assignment assignment(m, kUnassigned);
  // One random processor per stage first (feasibility), then the rest at
  // random stages (possibly unassigned).
  std::vector<std::size_t> procs(m);
  std::iota(procs.begin(), procs.end(), std::size_t{0});
  for (std::size_t i = m; i > 1; --i) {
    std::swap(procs[i - 1], procs[prng.uniform_index(i)]);
  }
  for (std::size_t i = 0; i < n; ++i) assignment[procs[i]] = i;
  for (std::size_t k = n; k < m; ++k) {
    const std::size_t bucket = prng.uniform_index(n + 1);
    assignment[procs[k]] = bucket == n ? kUnassigned : bucket;
  }
  return assignment;
}

/// First-improvement local search over migrate and swap moves.
double local_search(SearchState& state, const MappingSearchOptions& options,
                    std::size_t n) {
  const std::size_t m = state.assignment().size();
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool improved = false;
    // Migration moves: processor p -> stage i (or unassigned).
    for (std::size_t p = 0; p < m; ++p) {
      const std::size_t original = state.assignment()[p];
      const std::size_t targets = n + (options.allow_unused_processors ? 1 : 0);
      for (std::size_t i = 0; i < targets; ++i) {
        const std::size_t target = i == n ? kUnassigned : i;
        if (target == original) continue;
        const MappingMove move = MappingMove::migrate(p, target);
        const auto candidate = state.probe(move);
        if (candidate && *candidate > state.current() * (1.0 + 1e-12)) {
          state.adopt_last(move, *candidate);
          improved = true;
          break;  // keep the move
        }
      }
    }
    // Swap moves: exchange the stages of p and q.
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t q = p + 1; q < m; ++q) {
        if (state.assignment()[p] == state.assignment()[q]) continue;
        const MappingMove move = MappingMove::swap(p, q);
        const auto candidate = state.probe(move);
        if (candidate && *candidate > state.current() * (1.0 + 1e-12)) {
          state.adopt_last(move, *candidate);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return state.current();
}

}  // namespace

double evaluate_mapping(const Mapping& mapping,
                        const MappingSearchOptions& options) {
  AnalysisContext context;
  return context.objective(mapping, options);
}

void validate_mapping_search(const InstancePtr& instance,
                             const MappingSearchOptions& options) {
  SF_REQUIRE(instance != nullptr, "optimize_mapping requires an instance");
  SF_REQUIRE(instance->platform.num_processors() >=
                 instance->application.num_stages(),
             "need at least one processor per stage");
  if (options.objective == MappingObjective::kExponential) {
    SF_REQUIRE(options.model == ExecutionModel::kOverlap,
               "the exponential objective uses the column method, which "
               "applies to the Overlap model only");
  }
}

RestartResult run_greedy_restart(const InstancePtr& instance,
                                 const MappingSearchOptions& options,
                                 AnalysisContext& context) {
  validate_mapping_search(instance, options);
  const Application& application = instance->application;
  const AnalysisCacheStats before = context.stats();

  const std::vector<std::size_t> procs_by_speed =
      processors_by_speed(instance->platform);
  SearchState state(
      instance, options, context,
      initial_greedy_assignment(application, instance->platform,
                                procs_by_speed));
  greedy_place_extras(state, application, procs_by_speed, options);

  RestartResult result;
  result.start_score = state.current();
  result.score = local_search(state, options, application.num_stages());
  result.feasible = state.feasible();
  result.assignment = state.assignment();
  const AnalysisCacheStats& after = context.stats();
  result.evaluations = after.evaluations - before.evaluations;
  result.pattern_requests = (after.pattern_hits - before.pattern_hits) +
                            (after.pattern_misses - before.pattern_misses);
  return result;
}

StageAssignment draw_restart_assignment(const Application& application,
                                        const Platform& platform, Prng& prng) {
  return random_assignment(application, platform, prng);
}

RestartResult run_random_restart(const InstancePtr& instance,
                                 StageAssignment start,
                                 const MappingSearchOptions& options,
                                 AnalysisContext& context) {
  validate_mapping_search(instance, options);
  const AnalysisCacheStats before = context.stats();

  SearchState state(instance, options, context, std::move(start));
  RestartResult result;
  result.assignment = state.assignment();
  if (!state.feasible()) return result;  // skipped, no evaluation consumed
  result.start_score = state.current();
  result.score =
      local_search(state, options, instance->application.num_stages());
  result.feasible = true;
  result.assignment = state.assignment();
  const AnalysisCacheStats& after = context.stats();
  result.evaluations = after.evaluations - before.evaluations;
  result.pattern_requests = (after.pattern_hits - before.pattern_hits) +
                            (after.pattern_misses - before.pattern_misses);
  return result;
}

std::optional<Mapping> realize_assignment(const InstancePtr& instance,
                                          const StageAssignment& assignment,
                                          std::int64_t max_paths) {
  SF_REQUIRE(instance != nullptr, "realize_assignment requires an instance");
  return realize(instance, assignment, max_paths);
}

MappingSearchResult optimize_mapping(const InstancePtr& instance,
                                     const MappingSearchOptions& options) {
  AnalysisContext context;
  return optimize_mapping(instance, options, context);
}

MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options) {
  AnalysisContext context;
  return optimize_mapping(application, platform, options, context);
}

MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options,
                                     AnalysisContext& context) {
  // The one instance copy of the whole search: every candidate below
  // shares this allocation.
  return optimize_mapping(make_instance(application, platform), options,
                          context);
}

// The serial reference reduction: restart 0 (greedy) plus restarts drawn
// sequentially from one Prng, folded in restart order with strict-improvement
// comparison (ties keep the earliest restart). engine/parallel_search runs
// the same restarts on a thread pool and applies the same in-order reduction,
// so its result is bit-identical to this loop for any thread count.
MappingSearchResult optimize_mapping(const InstancePtr& instance,
                                     const MappingSearchOptions& options,
                                     AnalysisContext& context) {
  validate_mapping_search(instance, options);
  const AnalysisCacheStats before = context.stats();
  Prng prng(options.seed);

  RestartResult best = run_greedy_restart(instance, options, context);
  const double greedy_score = best.start_score;

  for (std::size_t restart = 1; restart < options.restarts; ++restart) {
    RestartResult r = run_random_restart(
        instance,
        draw_restart_assignment(instance->application, instance->platform,
                                prng),
        options, context);
    if (r.feasible && r.score > best.score) best = std::move(r);
  }

  auto mapping = realize(instance, best.assignment, options.max_paths);
  SF_ASSERT(mapping.has_value(), "search ended on an infeasible assignment");
  const AnalysisCacheStats& after = context.stats();
  return MappingSearchResult{std::move(*mapping),
                             best.score,
                             greedy_score,
                             after.evaluations - before.evaluations,
                             after.pattern_hits - before.pattern_hits,
                             after.pattern_misses - before.pattern_misses};
}

}  // namespace streamflow
