#include "core/heuristics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <utility>
#include <vector>

#include "common/prng.hpp"
#include "core/analysis_context.hpp"

namespace streamflow {

namespace {

constexpr std::size_t kUnassigned = Mapping::kUnused;
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

/// Assignment representation: stage index per processor (or kUnassigned).
using Assignment = std::vector<std::size_t>;

std::optional<Mapping> realize(const InstancePtr& instance,
                               const Assignment& assignment,
                               std::int64_t max_paths) {
  std::vector<std::vector<std::size_t>> teams(
      instance->application.num_stages());
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    if (assignment[p] != kUnassigned) teams[assignment[p]].push_back(p);
  }
  for (const auto& team : teams) {
    if (team.empty()) return std::nullopt;
  }
  try {
    // Shares `instance` — realizing an assignment never copies the
    // application or the bandwidth matrix.
    Mapping mapping(instance, std::move(teams));
    if (mapping.num_paths() > max_paths) return std::nullopt;
    return mapping;
  } catch (const InvalidArgument&) {
    // e.g. a used link has no bandwidth on this platform
    return std::nullopt;
  }
}

void apply_move(Assignment& assignment, const MappingMove& move) {
  if (move.kind == MappingMove::Kind::kMigrate) {
    assignment[move.p] = move.target;
  } else {
    std::swap(assignment[move.p], assignment[move.q]);
  }
}

/// One search trajectory: the current assignment plus the context base that
/// mirrors it. Neighbour candidates are probed through the incremental
/// evaluate_move path once a feasible base is pinned; until then (an
/// infeasible start, which local search may still climb out of) probes fall
/// back to full throwaway evaluations through the same context.
class SearchState {
 public:
  SearchState(const InstancePtr& instance,
              const MappingSearchOptions& options, AnalysisContext& context,
              Assignment assignment)
      : instance_(instance),
        options_(options),
        context_(context),
        assignment_(std::move(assignment)) {
    auto mapping = realize(instance_, assignment_, options_.max_paths);
    if (mapping) {
      current_ = context_.set_base(std::move(*mapping), options_);
      has_base_ = true;
    }
  }

  const Assignment& assignment() const { return assignment_; }
  double current() const { return current_; }
  bool feasible() const { return has_base_; }

  /// Objective of assignment (+) move; nullopt when infeasible OR when the
  /// context's bound screen proved the score cannot exceed `threshold`
  /// (callers pass the score a candidate must strictly beat to be adopted,
  /// so a pruned probe and a sub-threshold score lead to the same step —
  /// the bit-identical-trajectory contract). A scored probe counts as one
  /// evaluation; a pruned one does not. Does not change the assignment.
  std::optional<double> probe(const MappingMove& move,
                              double threshold = kNegInf) {
    if (has_base_) {
      const auto result = context_.probe_move(move, threshold);
      if (result.outcome != AnalysisContext::MoveProbe::Outcome::kScored)
        return std::nullopt;
      return result.score;
    }
    Assignment tentative = assignment_;
    apply_move(tentative, move);
    auto mapping = realize(instance_, tentative, options_.max_paths);
    if (!mapping) return std::nullopt;
    return context_.objective(*mapping, options_);
  }

  /// Adopts the move just probed feasible with value `score`. Free when a
  /// base is pinned (the pending evaluate_move candidate is committed).
  void adopt_last(const MappingMove& move, double score) {
    apply_move(assignment_, move);
    if (has_base_) {
      context_.commit_move(move);
    } else {
      auto mapping = realize(instance_, assignment_, options_.max_paths);
      SF_ASSERT(mapping.has_value(),
                "adopted a move whose probe reported it feasible");
      // The score is already known; re-base without recounting.
      context_.set_base(std::move(*mapping), options_,
                        /*count_evaluation=*/false);
      has_base_ = true;
    }
    current_ = score;
  }

 private:
  const InstancePtr& instance_;
  const MappingSearchOptions& options_;
  AnalysisContext& context_;
  Assignment assignment_;
  double current_ = kNegInf;
  bool has_base_ = false;
};

/// Processor ids in decreasing-speed order. Computed once per search:
/// std::sort is unstable, so the seeding and placement phases must share
/// ONE ordering (a re-sort could break ties differently).
std::vector<std::size_t> processors_by_speed(const Platform& platform) {
  std::vector<std::size_t> procs(platform.num_processors());
  std::iota(procs.begin(), procs.end(), std::size_t{0});
  std::sort(procs.begin(), procs.end(), [&](std::size_t a, std::size_t b) {
    return platform.speed(a) > platform.speed(b);
  });
  return procs;
}

/// Initial seeding of the greedy construction: heaviest stages get the
/// fastest processors (no scoring involved).
Assignment initial_greedy_assignment(
    const Application& application, const Platform& platform,
    const std::vector<std::size_t>& procs_by_speed) {
  const std::size_t n = application.num_stages();

  std::vector<std::size_t> stages_by_work(n);
  std::iota(stages_by_work.begin(), stages_by_work.end(), std::size_t{0});
  std::sort(stages_by_work.begin(), stages_by_work.end(),
            [&](std::size_t a, std::size_t b) {
              return application.work(a) > application.work(b);
            });

  Assignment assignment(platform.num_processors(), kUnassigned);
  for (std::size_t k = 0; k < n; ++k)
    assignment[procs_by_speed[k]] = stages_by_work[k];
  return assignment;
}

/// Greedy construction: each remaining processor joins the team where it
/// raises the objective most; when unused processors are not allowed, it is
/// placed at the least-bad stage even if no placement improves.
void greedy_place_extras(SearchState& state, const Application& application,
                         const std::vector<std::size_t>& procs_by_speed,
                         const MappingSearchOptions& options) {
  const std::size_t n = application.num_stages();
  const std::size_t m = procs_by_speed.size();

  std::vector<std::optional<double>> candidate_scores(n);
  for (std::size_t k = n; k < m; ++k) {
    const std::size_t p = procs_by_speed[k];
    double best = state.current();
    std::size_t best_stage = kUnassigned;
    for (std::size_t i = 0; i < n; ++i) {
      // Screen against the running best — except when unused processors are
      // forbidden: the least-bad fallback below needs every score, so that
      // configuration probes unscreened.
      const double threshold =
          options.allow_unused_processors ? best : kNegInf;
      candidate_scores[i] = state.probe(MappingMove::migrate(p, i), threshold);
      if (candidate_scores[i] && *candidate_scores[i] > best) {
        best = *candidate_scores[i];
        best_stage = i;
      }
    }
    if (best_stage == kUnassigned && !options.allow_unused_processors) {
      // Fall back to the least-bad placement (reusing the recorded scores:
      // every objective evaluation is counted exactly once).
      double least_bad = kNegInf;
      for (std::size_t i = 0; i < n; ++i) {
        if (candidate_scores[i] && *candidate_scores[i] > least_bad) {
          least_bad = *candidate_scores[i];
          best_stage = i;
        }
      }
    }
    if (best_stage != kUnassigned) {
      // Re-probe so the commit adopts the pending candidate state.
      const MappingMove move = MappingMove::migrate(p, best_stage);
      const auto score = state.probe(move);
      SF_ASSERT(score.has_value(), "chosen greedy placement turned infeasible");
      state.adopt_last(move, *score);
    }
  }
}

Assignment random_assignment(const Application& application,
                             const Platform& platform, Prng& prng) {
  const std::size_t n = application.num_stages();
  const std::size_t m = platform.num_processors();
  Assignment assignment(m, kUnassigned);
  // One random processor per stage first (feasibility), then the rest at
  // random stages (possibly unassigned).
  std::vector<std::size_t> procs(m);
  std::iota(procs.begin(), procs.end(), std::size_t{0});
  for (std::size_t i = m; i > 1; --i) {
    std::swap(procs[i - 1], procs[prng.uniform_index(i)]);
  }
  for (std::size_t i = 0; i < n; ++i) assignment[procs[i]] = i;
  for (std::size_t k = n; k < m; ++k) {
    const std::size_t bucket = prng.uniform_index(n + 1);
    assignment[procs[k]] = bucket == n ? kUnassigned : bucket;
  }
  return assignment;
}

/// First-improvement local search over migrate and swap moves.
double local_search(SearchState& state, const MappingSearchOptions& options,
                    std::size_t n) {
  const std::size_t m = state.assignment().size();
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool improved = false;
    // Migration moves: processor p -> stage i (or unassigned).
    for (std::size_t p = 0; p < m; ++p) {
      const std::size_t original = state.assignment()[p];
      const std::size_t targets = n + (options.allow_unused_processors ? 1 : 0);
      for (std::size_t i = 0; i < targets; ++i) {
        const std::size_t target = i == n ? kUnassigned : i;
        if (target == original) continue;
        const MappingMove move = MappingMove::migrate(p, target);
        // The adoption epsilon IS the screen threshold: a pruned probe and
        // a score failing the comparison take the same branch.
        const double threshold = state.current() * (1.0 + 1e-12);
        const auto candidate = state.probe(move, threshold);
        if (candidate && *candidate > threshold) {
          state.adopt_last(move, *candidate);
          improved = true;
          break;  // keep the move
        }
      }
    }
    // Swap moves: exchange the stages of p and q.
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t q = p + 1; q < m; ++q) {
        if (state.assignment()[p] == state.assignment()[q]) continue;
        const MappingMove move = MappingMove::swap(p, q);
        const double threshold = state.current() * (1.0 + 1e-12);
        const auto candidate = state.probe(move, threshold);
        if (candidate && *candidate > threshold) {
          state.adopt_last(move, *candidate);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  return state.current();
}

/// The cache-independent counter deltas of one restart / leg.
void fill_counter_deltas(RestartResult& result, const AnalysisCacheStats& before,
                         const AnalysisCacheStats& after) {
  result.evaluations = after.evaluations - before.evaluations;
  result.pattern_requests = (after.pattern_hits - before.pattern_hits) +
                            (after.pattern_misses - before.pattern_misses);
  result.moves_pruned_mct = after.moves_pruned_mct - before.moves_pruned_mct;
  result.moves_pruned_maxplus =
      after.moves_pruned_maxplus - before.moves_pruned_maxplus;
  result.moves_solved = after.moves_solved - before.moves_solved;
}

}  // namespace

double evaluate_mapping(const Mapping& mapping,
                        const MappingSearchOptions& options) {
  AnalysisContext context;
  return context.objective(mapping, options);
}

void validate_mapping_search(const InstancePtr& instance,
                             const MappingSearchOptions& options) {
  SF_REQUIRE(instance != nullptr, "optimize_mapping requires an instance");
  SF_REQUIRE(instance->platform.num_processors() >=
                 instance->application.num_stages(),
             "need at least one processor per stage");
  if (options.objective == MappingObjective::kExponential) {
    SF_REQUIRE(options.model == ExecutionModel::kOverlap,
               "the exponential objective uses the column method, which "
               "applies to the Overlap model only");
  }
}

RestartResult run_greedy_restart(const InstancePtr& instance,
                                 const MappingSearchOptions& options,
                                 AnalysisContext& context) {
  validate_mapping_search(instance, options);
  const Application& application = instance->application;
  const AnalysisCacheStats before = context.stats();

  const std::vector<std::size_t> procs_by_speed =
      processors_by_speed(instance->platform);
  SearchState state(
      instance, options, context,
      initial_greedy_assignment(application, instance->platform,
                                procs_by_speed));
  greedy_place_extras(state, application, procs_by_speed, options);

  RestartResult result;
  result.start_score = state.current();
  result.score = local_search(state, options, application.num_stages());
  result.feasible = state.feasible();
  result.assignment = state.assignment();
  fill_counter_deltas(result, before, context.stats());
  return result;
}

StageAssignment draw_restart_assignment(const Application& application,
                                        const Platform& platform, Prng& prng) {
  return random_assignment(application, platform, prng);
}

RestartResult run_random_restart(const InstancePtr& instance,
                                 StageAssignment start,
                                 const MappingSearchOptions& options,
                                 AnalysisContext& context) {
  validate_mapping_search(instance, options);
  const AnalysisCacheStats before = context.stats();

  SearchState state(instance, options, context, std::move(start));
  RestartResult result;
  result.assignment = state.assignment();
  if (!state.feasible()) return result;  // skipped, no evaluation consumed
  result.start_score = state.current();
  result.score =
      local_search(state, options, instance->application.num_stages());
  result.feasible = true;
  result.assignment = state.assignment();
  fill_counter_deltas(result, before, context.stats());
  return result;
}

RestartResult run_island_leg(const InstancePtr& instance, IslandState& island,
                             std::size_t round,
                             const MappingSearchOptions& options, Prng& prng,
                             AnalysisContext& context) {
  SF_REQUIRE(options.kind != RestartKind::kGreedyLocal,
             "run_island_leg serves the metaheuristic kinds; kGreedyLocal "
             "restarts run through run_greedy_restart/run_random_restart");
  validate_mapping_search(instance, options);
  RestartResult result;
  if (!island.feasible) return result;  // skipped; consumes no randomness
  const AnalysisCacheStats before = context.stats();

  const std::size_t n = instance->application.num_stages();
  const std::size_t m = instance->platform.num_processors();
  SearchState state(instance, options, context, island.current);
  SF_ASSERT(state.feasible(), "island incumbent turned infeasible");
  result.start_score = state.current();

  // The (re-)scored incumbent itself may beat the island's best: the round
  // exchange hands a neighbour's best over as `current` without touching
  // `best`, and a random island's first leg starts with best still at
  // -infinity.
  auto note_best = [&]() {
    if (state.current() > island.best_score) {
      island.best_score = state.current();
      island.best = state.assignment();
    }
  };
  note_best();

  if (options.kind == RestartKind::kAnnealing) {
    const double temp = options.sa_initial_temp *
                        std::pow(options.sa_cooling, static_cast<double>(round));
    for (std::size_t step = 0; step < options.moves_per_leg; ++step) {
      // Draw discipline: every step consumes exactly four variates BEFORE
      // any feasibility or acceptance test, so the stream position is a
      // pure function of the step count — never of probe outcomes.
      const bool migrating = prng.uniform_index(2) == 0;
      const std::size_t p = prng.uniform_index(m);
      const std::size_t aux = prng.uniform_index(migrating ? n + 1 : m);
      const double u = prng.uniform01();

      MappingMove move;
      if (migrating) {
        const std::size_t target = aux == n ? kUnassigned : aux;
        if (target == state.assignment()[p]) continue;  // no-op proposal
        if (target == kUnassigned && !options.allow_unused_processors)
          continue;
        move = MappingMove::migrate(p, target);
      } else {
        if (aux == p || state.assignment()[p] == state.assignment()[aux])
          continue;
        move = MappingMove::swap(p, aux);
      }
      // Relative Metropolis rule: accept iff score > theta with
      // theta = current * (1 + T * ln u). ln u <= 0, so improving moves
      // always pass; worsening moves pass with probability
      // exp(relative-loss / T). theta is also the admissible screen
      // threshold — a pruned probe and a rejected score take the same
      // branch.
      const double theta = state.current() * (1.0 + temp * std::log(u));
      const auto candidate = state.probe(move, theta);
      if (candidate && *candidate > theta) {
        state.adopt_last(move, *candidate);
        note_best();
      }
    }
  } else {
    // Tabu search: take the best admissible neighbour each step (even when
    // it is worse — that is the escape mechanism), forbidding moves that
    // return a just-moved processor to the stage it left for `tabu_tenure`
    // steps, unless the move would beat the island's best (aspiration).
    // Consumes no randomness; the table is fresh each leg.
    std::vector<std::size_t> tabu_until(m * (n + 1), 0);
    const auto slot = [n](std::size_t p, std::size_t stage) {
      return p * (n + 1) + (stage == kUnassigned ? n : stage);
    };
    for (std::size_t step = 1; step <= options.moves_per_leg; ++step) {
      double best_score = kNegInf;
      MappingMove best_move;
      bool found = false;
      const auto consider = [&](const MappingMove& move, bool tabu) {
        // A non-tabu candidate must beat the running best neighbour; a tabu
        // one must additionally beat the island best (aspiration) — so the
        // larger of the two is its admissible screen threshold.
        const double threshold =
            tabu ? std::max(best_score, island.best_score) : best_score;
        const auto candidate = state.probe(move, threshold);
        if (!candidate) return;
        if (tabu && !(*candidate > island.best_score)) return;
        if (*candidate > best_score) {
          best_score = *candidate;
          best_move = move;
          found = true;
        }
      };
      for (std::size_t p = 0; p < m; ++p) {
        const std::size_t from = state.assignment()[p];
        const std::size_t targets =
            n + (options.allow_unused_processors ? 1 : 0);
        for (std::size_t i = 0; i < targets; ++i) {
          const std::size_t target = i == n ? kUnassigned : i;
          if (target == from) continue;
          consider(MappingMove::migrate(p, target),
                   tabu_until[slot(p, target)] >= step);
        }
      }
      for (std::size_t p = 0; p < m; ++p) {
        for (std::size_t q = p + 1; q < m; ++q) {
          if (state.assignment()[p] == state.assignment()[q]) continue;
          const bool tabu =
              tabu_until[slot(p, state.assignment()[q])] >= step ||
              tabu_until[slot(q, state.assignment()[p])] >= step;
          consider(MappingMove::swap(p, q), tabu);
        }
      }
      if (!found) break;  // every neighbour tabu and none aspiring
      // Mark the reversing attributes before moving: each arm may not
      // return to the stage it leaves until the tenure expires.
      tabu_until[slot(best_move.p, state.assignment()[best_move.p])] =
          step + options.tabu_tenure;
      if (best_move.kind == MappingMove::Kind::kSwap) {
        tabu_until[slot(best_move.q, state.assignment()[best_move.q])] =
            step + options.tabu_tenure;
      }
      // Unscreened re-probe so the commit adopts the pending candidate.
      const auto score = state.probe(best_move);
      SF_ASSERT(score.has_value(), "chosen tabu step turned infeasible");
      state.adopt_last(best_move, *score);
      note_best();
    }
  }

  island.current = state.assignment();
  island.current_score = state.current();
  result.feasible = true;
  result.score = island.best_score;
  result.assignment = island.best;
  fill_counter_deltas(result, before, context.stats());
  return result;
}

std::optional<Mapping> realize_assignment(const InstancePtr& instance,
                                          const StageAssignment& assignment,
                                          std::int64_t max_paths) {
  SF_REQUIRE(instance != nullptr, "realize_assignment requires an instance");
  return realize(instance, assignment, max_paths);
}

MappingSearchResult optimize_mapping(const InstancePtr& instance,
                                     const MappingSearchOptions& options) {
  AnalysisContext context;
  return optimize_mapping(instance, options, context);
}

MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options) {
  AnalysisContext context;
  return optimize_mapping(application, platform, options, context);
}

MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options,
                                     AnalysisContext& context) {
  // The one instance copy of the whole search: every candidate below
  // shares this allocation.
  return optimize_mapping(make_instance(application, platform), options,
                          context);
}

// The serial reference reduction: restart 0 (greedy) plus restarts drawn
// sequentially from one Prng, folded in restart order with strict-improvement
// comparison (ties keep the earliest restart). engine/parallel_search runs
// the same restarts on a thread pool and applies the same in-order reduction,
// so its result is bit-identical to this loop for any thread count.
MappingSearchResult optimize_mapping(const InstancePtr& instance,
                                     const MappingSearchOptions& options,
                                     AnalysisContext& context) {
  SF_REQUIRE(options.kind == RestartKind::kGreedyLocal,
             "the serial optimize_mapping runs the greedy+local-search "
             "portfolio only; kAnnealing/kTabu islands run through "
             "parallel_optimize_mapping (engine/parallel_search.hpp)");
  validate_mapping_search(instance, options);
  const AnalysisCacheStats before = context.stats();
  Prng prng(options.seed);

  RestartResult best = run_greedy_restart(instance, options, context);
  const double greedy_score = best.start_score;

  for (std::size_t restart = 1; restart < options.restarts; ++restart) {
    RestartResult r = run_random_restart(
        instance,
        draw_restart_assignment(instance->application, instance->platform,
                                prng),
        options, context);
    if (r.feasible && r.score > best.score) best = std::move(r);
  }

  auto mapping = realize(instance, best.assignment, options.max_paths);
  SF_ASSERT(mapping.has_value(), "search ended on an infeasible assignment");
  const AnalysisCacheStats& after = context.stats();
  return MappingSearchResult{std::move(*mapping),
                             best.score,
                             greedy_score,
                             after.evaluations - before.evaluations,
                             after.pattern_hits - before.pattern_hits,
                             after.pattern_misses - before.pattern_misses,
                             after.moves_pruned_mct - before.moves_pruned_mct,
                             after.moves_pruned_maxplus -
                                 before.moves_pruned_maxplus,
                             after.moves_solved - before.moves_solved};
}

}  // namespace streamflow
