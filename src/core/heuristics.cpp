#include "core/heuristics.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "common/prng.hpp"
#include "core/analyzer.hpp"
#include "maxplus/deterministic.hpp"

namespace streamflow {

namespace {

constexpr std::size_t kUnassigned = static_cast<std::size_t>(-1);

/// Assignment representation: stage index per processor (or kUnassigned).
using Assignment = std::vector<std::size_t>;

std::optional<Mapping> realize(const Application& application,
                               const Platform& platform,
                               const Assignment& assignment,
                               std::int64_t max_paths) {
  std::vector<std::vector<std::size_t>> teams(application.num_stages());
  for (std::size_t p = 0; p < assignment.size(); ++p) {
    if (assignment[p] != kUnassigned) teams[assignment[p]].push_back(p);
  }
  for (const auto& team : teams) {
    if (team.empty()) return std::nullopt;
  }
  try {
    Mapping mapping(application, platform, teams);
    if (mapping.num_paths() > max_paths) return std::nullopt;
    return mapping;
  } catch (const InvalidArgument&) {
    // e.g. a used link has no bandwidth on this platform
    return std::nullopt;
  }
}

class Evaluator {
 public:
  Evaluator(const Application& application, const Platform& platform,
            const MappingSearchOptions& options)
      : application_(application), platform_(platform), options_(options) {}

  /// Objective value of an assignment, or -inf if infeasible.
  double score(const Assignment& assignment) {
    const auto mapping =
        realize(application_, platform_, assignment, options_.max_paths);
    if (!mapping) return -std::numeric_limits<double>::infinity();
    ++evaluations_;
    return evaluate_mapping(*mapping, options_);
  }

  std::size_t evaluations() const { return evaluations_; }

 private:
  const Application& application_;
  const Platform& platform_;
  const MappingSearchOptions& options_;
  std::size_t evaluations_ = 0;
};

/// Greedy construction: heaviest stages get the fastest processors, then
/// each remaining processor joins the team where it helps most.
Assignment greedy_assignment(const Application& application,
                             const Platform& platform, Evaluator& evaluator,
                             const MappingSearchOptions& options) {
  const std::size_t n = application.num_stages();
  const std::size_t m = platform.num_processors();

  std::vector<std::size_t> stages_by_work(n);
  std::iota(stages_by_work.begin(), stages_by_work.end(), std::size_t{0});
  std::sort(stages_by_work.begin(), stages_by_work.end(),
            [&](std::size_t a, std::size_t b) {
              return application.work(a) > application.work(b);
            });
  std::vector<std::size_t> procs_by_speed(m);
  std::iota(procs_by_speed.begin(), procs_by_speed.end(), std::size_t{0});
  std::sort(procs_by_speed.begin(), procs_by_speed.end(),
            [&](std::size_t a, std::size_t b) {
              return platform.speed(a) > platform.speed(b);
            });

  Assignment assignment(m, kUnassigned);
  for (std::size_t k = 0; k < n; ++k)
    assignment[procs_by_speed[k]] = stages_by_work[k];

  // Greedily add the remaining processors where they raise the objective
  // most; when unused processors are not allowed, place them even if no
  // placement improves.
  for (std::size_t k = n; k < m; ++k) {
    const std::size_t p = procs_by_speed[k];
    const double base = evaluator.score(assignment);
    double best = base;
    std::size_t best_stage = kUnassigned;
    for (std::size_t i = 0; i < n; ++i) {
      assignment[p] = i;
      const double candidate = evaluator.score(assignment);
      if (candidate > best) {
        best = candidate;
        best_stage = i;
      }
      assignment[p] = kUnassigned;
    }
    if (best_stage == kUnassigned && !options.allow_unused_processors) {
      // Fall back to the least-bad placement.
      double least_bad = -std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        assignment[p] = i;
        const double candidate = evaluator.score(assignment);
        if (candidate > least_bad) {
          least_bad = candidate;
          best_stage = i;
        }
        assignment[p] = kUnassigned;
      }
    }
    assignment[p] = best_stage;
  }
  return assignment;
}

Assignment random_assignment(const Application& application,
                             const Platform& platform, Prng& prng) {
  const std::size_t n = application.num_stages();
  const std::size_t m = platform.num_processors();
  Assignment assignment(m, kUnassigned);
  // One random processor per stage first (feasibility), then the rest at
  // random stages (possibly unassigned).
  std::vector<std::size_t> procs(m);
  std::iota(procs.begin(), procs.end(), std::size_t{0});
  for (std::size_t i = m; i > 1; --i) {
    std::swap(procs[i - 1], procs[prng.uniform_index(i)]);
  }
  for (std::size_t i = 0; i < n; ++i) assignment[procs[i]] = i;
  for (std::size_t k = n; k < m; ++k) {
    const std::size_t bucket = prng.uniform_index(n + 1);
    assignment[procs[k]] = bucket == n ? kUnassigned : bucket;
  }
  return assignment;
}

/// First-improvement local search over migrate and swap moves.
double local_search(Assignment& assignment, Evaluator& evaluator,
                    const MappingSearchOptions& options, std::size_t n) {
  double current = evaluator.score(assignment);
  for (std::size_t sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool improved = false;
    // Migration moves: processor p -> stage i (or unassigned).
    for (std::size_t p = 0; p < assignment.size(); ++p) {
      const std::size_t original = assignment[p];
      const std::size_t targets = n + (options.allow_unused_processors ? 1 : 0);
      for (std::size_t i = 0; i < targets; ++i) {
        const std::size_t target = i == n ? kUnassigned : i;
        if (target == original) continue;
        assignment[p] = target;
        const double candidate = evaluator.score(assignment);
        if (candidate > current * (1.0 + 1e-12)) {
          current = candidate;
          improved = true;
          break;  // keep the move
        }
        assignment[p] = original;
      }
    }
    // Swap moves: exchange the stages of p and q.
    for (std::size_t p = 0; p < assignment.size(); ++p) {
      for (std::size_t q = p + 1; q < assignment.size(); ++q) {
        if (assignment[p] == assignment[q]) continue;
        std::swap(assignment[p], assignment[q]);
        const double candidate = evaluator.score(assignment);
        if (candidate > current * (1.0 + 1e-12)) {
          current = candidate;
          improved = true;
        } else {
          std::swap(assignment[p], assignment[q]);
        }
      }
    }
    if (!improved) break;
  }
  return current;
}

}  // namespace

double evaluate_mapping(const Mapping& mapping,
                        const MappingSearchOptions& options) {
  if (options.objective == MappingObjective::kDeterministic) {
    TpnBuildOptions build;
    build.max_rows = options.max_paths;
    return deterministic_throughput(mapping, options.model, build).throughput;
  }
  SF_REQUIRE(options.model == ExecutionModel::kOverlap,
             "the exponential objective uses the column method, which "
             "applies to the Overlap model only");
  return exponential_throughput(mapping, options.model).throughput;
}

MappingSearchResult optimize_mapping(const Application& application,
                                     const Platform& platform,
                                     const MappingSearchOptions& options) {
  SF_REQUIRE(platform.num_processors() >= application.num_stages(),
             "need at least one processor per stage");
  if (options.objective == MappingObjective::kExponential) {
    SF_REQUIRE(options.model == ExecutionModel::kOverlap,
               "the exponential objective uses the column method, which "
               "applies to the Overlap model only");
  }
  Evaluator evaluator(application, platform, options);
  Prng prng(options.seed);

  Assignment best_assignment =
      greedy_assignment(application, platform, evaluator, options);
  const double greedy_score = evaluator.score(best_assignment);
  double best_score = local_search(best_assignment, evaluator, options,
                                   application.num_stages());

  for (std::size_t restart = 1; restart < options.restarts; ++restart) {
    Assignment assignment = random_assignment(application, platform, prng);
    if (evaluator.score(assignment) ==
        -std::numeric_limits<double>::infinity())
      continue;  // random draw infeasible on this platform
    const double score =
        local_search(assignment, evaluator, options, application.num_stages());
    if (score > best_score) {
      best_score = score;
      best_assignment = std::move(assignment);
    }
  }

  auto mapping =
      realize(application, platform, best_assignment, options.max_paths);
  SF_ASSERT(mapping.has_value(), "search ended on an infeasible assignment");
  return MappingSearchResult{std::move(*mapping), best_score, greedy_score,
                             evaluator.evaluations()};
}

}  // namespace streamflow
