#include "core/pattern_store.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <utility>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace streamflow {

namespace {

/// One snapshot row (and the unit the digest is computed over).
struct StoredEntry {
  PatternSignature signature;
  double rate = 0.0;
};

/// The canonical snapshot order: (u, v, duration bits) lexicographically.
/// Total over distinct signatures, so sorting makes snapshots byte-stable
/// regardless of shard count, hash seeding, or insertion history.
bool entry_less(const StoredEntry& a, const StoredEntry& b) {
  if (a.signature.u != b.signature.u) return a.signature.u < b.signature.u;
  if (a.signature.v != b.signature.v) return a.signature.v < b.signature.v;
  return a.signature.duration_bits < b.signature.duration_bits;
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_mix(std::uint64_t& hash, std::uint64_t value) {
  for (int byte = 0; byte < 8; ++byte) {
    hash ^= (value >> (8 * byte)) & 0xFFull;
    hash *= kFnvPrime;
  }
}

/// FNV-1a over the entries in canonical order — the snapshot digest.
std::uint64_t entries_digest(const std::vector<StoredEntry>& entries) {
  std::uint64_t hash = kFnvOffset;
  for (const StoredEntry& entry : entries) {
    fnv_mix(hash, entry.signature.u);
    fnv_mix(hash, entry.signature.v);
    fnv_mix(hash, entry.signature.duration_bits.size());
    for (const std::uint64_t bits : entry.signature.duration_bits) {
      fnv_mix(hash, bits);
    }
    fnv_mix(hash, std::bit_cast<std::uint64_t>(entry.rate));
  }
  return hash;
}

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

bool parse_hex64(const std::string& token, std::uint64_t& out) {
  if (token.empty() || token.size() > 16) return false;
  try {
    std::size_t pos = 0;
    out = std::stoull(token, &pos, 16);
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

bool parse_size(const std::string& token, std::size_t& out) {
  if (token.empty() || token[0] == '-') return false;
  try {
    std::size_t pos = 0;
    const unsigned long long value = std::stoull(token, &pos);
    out = static_cast<std::size_t>(value);
    return pos == token.size();
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

struct PatternStore::Shard {
  struct Hash {
    std::size_t operator()(const PatternSignature& signature) const {
      return static_cast<std::size_t>(signature.hash());
    }
  };

  mutable Mutex mutex;
  // Point-queried by lookup()/publish(); iterated ONLY by the snapshot and
  // fault-injection paths below, which sort (or treat order-independently)
  // before anything escapes.
  std::unordered_map<PatternSignature, double, Hash> map SF_GUARDED_BY(mutex);
  std::size_t hits SF_GUARDED_BY(mutex) = 0;
  std::size_t misses SF_GUARDED_BY(mutex) = 0;
  std::size_t publishes SF_GUARDED_BY(mutex) = 0;
  std::size_t duplicates SF_GUARDED_BY(mutex) = 0;
};

PatternStore::PatternStore(std::size_t shards) {
  SF_REQUIRE(shards >= 1, "pattern store requires at least one shard");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

PatternStore::~PatternStore() = default;

std::size_t PatternStore::shard_of(const PatternSignature& signature) const {
  return static_cast<std::size_t>(signature.hash() % shards_.size());
}

std::optional<double> PatternStore::lookup(const PatternSignature& signature) {
  Shard& shard = *shards_[shard_of(signature)];
  MutexLock lock(shard.mutex);
  const auto it = shard.map.find(signature);
  if (it == shard.map.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  return it->second;
}

void PatternStore::publish(const PatternSignature& signature, double rate) {
  Shard& shard = *shards_[shard_of(signature)];
  MutexLock lock(shard.mutex);
  const auto [it, inserted] = shard.map.emplace(signature, rate);
  if (inserted) {
    ++shard.publishes;
    return;
  }
  ++shard.duplicates;
  // Solves are deterministic functions of the signature, so every publisher
  // of the same signature must produce the same bits — the invariant that
  // makes first-writer-wins indistinguishable from any other tie-break.
  SF_ASSERT(std::bit_cast<std::uint64_t>(it->second) ==
                std::bit_cast<std::uint64_t>(rate),
            "pattern store publish disagreement: two solves of one signature "
            "produced different bits");
}

std::size_t PatternStore::shard_size(std::size_t shard) const {
  SF_REQUIRE(shard < shards_.size(), "shard index out of range");
  MutexLock lock(shards_[shard]->mutex);
  return shards_[shard]->map.size();
}

std::size_t PatternStore::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    total += shard->map.size();
  }
  return total;
}

PatternStoreStats PatternStore::stats() const {
  PatternStoreStats stats;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.publishes += shard->publishes;
    stats.duplicates += shard->duplicates;
    stats.entries += shard->map.size();
  }
  return stats;
}

void PatternStore::clear() {
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    shard->map.clear();
    shard->hits = 0;
    shard->misses = 0;
    shard->publishes = 0;
    shard->duplicates = 0;
  }
}

namespace {

/// Collects every entry of `shards` into canonical order (the only way
/// entries ever leave the store wholesale, so iteration order can never
/// reach a result or a byte of output).
std::vector<StoredEntry> collect_sorted(
    const std::vector<std::unique_ptr<PatternStore::Shard>>& shards) {
  std::vector<StoredEntry> entries;
  for (const auto& shard : shards) {
    MutexLock lock(shard->mutex);
    entries.reserve(entries.size() + shard->map.size());
    // lint:allow(unordered-iter): entries are sorted into canonical (u, v,
    // bits) order below before any byte is emitted or hashed
    for (const auto& [signature, rate] : shard->map) {
      entries.push_back(StoredEntry{signature, rate});
    }
  }
  std::sort(entries.begin(), entries.end(), entry_less);
  return entries;
}

}  // namespace

void PatternStore::save(std::ostream& os) const {
  const std::vector<StoredEntry> entries = collect_sorted(shards_);
  os << "streamflow-pattern-store v1\n";
  os << "entries " << entries.size() << "\n";
  for (const StoredEntry& entry : entries) {
    os << "entry " << entry.signature.u << " " << entry.signature.v << " "
       << entry.signature.duration_bits.size();
    for (const std::uint64_t bits : entry.signature.duration_bits) {
      os << " " << hex16(bits);
    }
    os << " rate " << hex16(std::bit_cast<std::uint64_t>(entry.rate)) << "\n";
  }
  os << "digest " << hex16(entries_digest(entries)) << "\n";
}

std::size_t PatternStore::load(std::istream& is) {
  std::size_t line_number = 0;
  const auto fail = [&](const std::string& message) {
    throw InvalidArgument("pattern-store snapshot line " +
                          std::to_string(line_number) + ": " + message);
  };
  // Reads the next content line ('#' comments and blank lines skipped).
  const auto next_line = [&](std::string& out) {
    std::string raw;
    while (std::getline(is, raw)) {
      ++line_number;
      const std::size_t begin = raw.find_first_not_of(" \t\r");
      if (begin == std::string::npos || raw[begin] == '#') continue;
      const std::size_t end = raw.find_last_not_of(" \t\r");
      out = raw.substr(begin, end - begin + 1);
      return true;
    }
    return false;
  };

  std::string text;
  if (!next_line(text)) {
    fail("missing header (expected 'streamflow-pattern-store v1')");
  }
  if (text != "streamflow-pattern-store v1") {
    if (text.rfind("streamflow-pattern-store ", 0) == 0) {
      fail("unsupported snapshot version '" + text.substr(25) +
           "' (this build reads v1)");
    }
    fail("not a pattern-store snapshot (got '" + text + "')");
  }

  if (!next_line(text)) fail("truncated: missing 'entries <count>' line");
  std::istringstream header(text);
  std::string keyword, token;
  std::size_t count = 0;
  header >> keyword >> token;
  if (keyword != "entries" || !parse_size(token, count) ||
      (header >> keyword)) {
    fail("expected 'entries <count>', got '" + text + "'");
  }

  std::vector<StoredEntry> entries;
  entries.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    if (!next_line(text)) {
      fail("truncated: expected " + std::to_string(count) +
           " entries, found " + std::to_string(k));
    }
    std::istringstream row(text);
    StoredEntry entry;
    std::size_t bits_count = 0;
    row >> keyword;
    std::string u_token, v_token, k_token;
    row >> u_token >> v_token >> k_token;
    if (keyword != "entry" || !parse_size(u_token, entry.signature.u) ||
        !parse_size(v_token, entry.signature.v) ||
        !parse_size(k_token, bits_count) || entry.signature.u == 0 ||
        entry.signature.v == 0 || bits_count == 0) {
      fail("malformed entry '" + text + "'");
    }
    entry.signature.duration_bits.reserve(bits_count);
    for (std::size_t b = 0; b < bits_count; ++b) {
      std::uint64_t bits = 0;
      if (!(row >> token) || !parse_hex64(token, bits)) {
        fail("malformed duration bits in entry '" + text + "'");
      }
      entry.signature.duration_bits.push_back(bits);
    }
    std::uint64_t rate_bits = 0;
    if (!(row >> keyword >> token) || keyword != "rate" ||
        !parse_hex64(token, rate_bits) || (row >> keyword)) {
      fail("malformed rate in entry '" + text + "'");
    }
    entry.rate = std::bit_cast<double>(rate_bits);
    entries.push_back(std::move(entry));
  }

  if (!next_line(text)) fail("truncated: missing 'digest <hex>' trailer");
  std::istringstream trailer(text);
  std::uint64_t claimed = 0;
  trailer >> keyword >> token;
  if (keyword != "digest" || !parse_hex64(token, claimed) ||
      (trailer >> keyword)) {
    fail("expected 'digest <hex>', got '" + text + "'");
  }
  std::vector<StoredEntry> sorted = entries;
  std::sort(sorted.begin(), sorted.end(), entry_less);
  const std::uint64_t computed = entries_digest(sorted);
  if (computed != claimed) {
    fail("digest mismatch: snapshot claims " + hex16(claimed) +
         ", entries hash to " + hex16(computed) + " (corrupted snapshot)");
  }
  if (next_line(text)) fail("trailing content after digest: '" + text + "'");

  for (const StoredEntry& entry : entries) {
    Shard& shard = *shards_[shard_of(entry.signature)];
    MutexLock lock(shard.mutex);
    const auto [it, inserted] = shard.map.emplace(entry.signature, entry.rate);
    if (inserted) {
      ++shard.publishes;
    } else {
      ++shard.duplicates;
      if (std::bit_cast<std::uint64_t>(it->second) !=
          std::bit_cast<std::uint64_t>(entry.rate)) {
        throw InvalidArgument(
            "pattern-store snapshot disagrees with a live entry for pattern "
            "u=" +
            std::to_string(entry.signature.u) +
            " v=" + std::to_string(entry.signature.v) +
            " (stale snapshot or corrupted data)");
      }
    }
  }
  return entries.size();
}

void PatternStore::save_file(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    throw InvalidArgument("cannot write pattern-store snapshot '" + path +
                          "'");
  }
  save(out);
  out.flush();
  if (!out) {
    throw InvalidArgument("failed writing pattern-store snapshot '" + path +
                          "'");
  }
}

std::size_t PatternStore::load_file(const std::string& path) {
  if (!std::filesystem::exists(path)) return 0;  // cold start
  std::ifstream in(path);
  if (!in) {
    throw InvalidArgument("cannot read pattern-store snapshot '" + path +
                          "'");
  }
  return load(in);
}

std::uint64_t PatternStore::digest() const {
  return entries_digest(collect_sorted(shards_));
}

std::size_t PatternStore::transform_rates(
    const std::function<double(double)>& fn) {
  std::size_t transformed = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mutex);
    // lint:allow(unordered-iter): test-only fault injection; the transform
    // is applied to every entry, so visitation order is immaterial
    for (auto& [signature, rate] : shard->map) {
      rate = fn(rate);
      ++transformed;
    }
  }
  return transformed;
}

PatternStore& PatternStore::process_wide() {
  static PatternStore store;
  return store;
}

}  // namespace streamflow
