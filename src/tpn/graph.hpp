// Timed event graphs (timed Petri nets where every place has exactly one
// input and one output transition), the modeling vehicle of Section 3.
//
// Transitions model the use of a physical resource for a duration (stage
// computation, file transfer); places model dependences (data flow along a
// row, round-robin serialization of a resource across rows).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace streamflow {

enum class TransitionKind : std::uint8_t {
  kCompute,  ///< stage T_i executed on a processor
  kComm,     ///< file F_i transferred over a link
};

enum class PlaceKind : std::uint8_t {
  kFlow,      ///< data-flow dependence along a row (left-to-right)
  kResource,  ///< round-robin serialization of a resource across rows
};

/// One transition of the event graph: row = round-robin path index,
/// column = position in the unfolded pipeline (2i for stage i's computation,
/// 2i+1 for file F_i's transfer, 0-based).
struct Transition {
  TransitionKind kind = TransitionKind::kCompute;
  std::int64_t row = 0;
  std::size_t column = 0;
  std::size_t stage = 0;  ///< stage index (compute) or file index (comm)
  std::size_t proc = 0;   ///< computing processor, or sender
  std::size_t proc2 = 0;  ///< receiver (comm only)
  double duration = 0.0;  ///< deterministic firing time (mean in the
                          ///< probabilistic setting)
};

/// One place, always with a single producer and single consumer transition.
struct Place {
  std::size_t from = 0;  ///< producing transition id
  std::size_t to = 0;    ///< consuming transition id
  PlaceKind kind = PlaceKind::kFlow;
  int initial_tokens = 0;
};

/// An immutable-after-build timed event graph.
class TimedEventGraph {
 public:
  TimedEventGraph(std::int64_t num_rows, std::size_t num_columns)
      : num_rows_(num_rows), num_columns_(num_columns) {}

  std::size_t add_transition(Transition t);
  std::size_t add_place(Place p);

  /// Finalizes adjacency; must be called once after construction.
  void finalize();

  std::size_t num_transitions() const { return transitions_.size(); }
  std::size_t num_places() const { return places_.size(); }
  std::int64_t num_rows() const { return num_rows_; }
  std::size_t num_columns() const { return num_columns_; }

  const Transition& transition(std::size_t id) const {
    SF_REQUIRE(id < transitions_.size(), "transition id out of range");
    return transitions_[id];
  }
  const Place& place(std::size_t id) const {
    SF_REQUIRE(id < places_.size(), "place id out of range");
    return places_[id];
  }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<Place>& places() const { return places_; }

  /// Place ids consumed by / produced by a transition.
  const std::vector<std::size_t>& input_places(std::size_t t) const;
  const std::vector<std::size_t>& output_places(std::size_t t) const;

  /// Transition ids of the last column (their firings complete data sets).
  std::vector<std::size_t> last_column_transitions() const;

  /// Every cycle of a live event graph must hold at least one token:
  /// checks that the subgraph of token-free places is acyclic.
  /// Throws InvalidArgument otherwise.
  void check_liveness() const;

  /// Human-readable transition label, e.g. "T2/P5@r3" or "F1:P0->P2@r1".
  std::string transition_label(std::size_t id) const;

  /// Graphviz rendering (transitions as boxes, places as circles).
  void write_dot(std::ostream& os) const;

 private:
  std::int64_t num_rows_;
  std::size_t num_columns_;
  std::vector<Transition> transitions_;
  std::vector<Place> places_;
  std::vector<std::vector<std::size_t>> inputs_;   // by transition
  std::vector<std::vector<std::size_t>> outputs_;  // by transition
  bool finalized_ = false;
};

}  // namespace streamflow
