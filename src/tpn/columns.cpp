#include "tpn/columns.hpp"

#include <bit>
#include <cmath>
#include <numeric>

#include "common/math_utils.hpp"

namespace streamflow {

std::uint64_t PatternSignature::hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;  // FNV-1a offset basis
  auto mix = [&h](std::uint64_t word) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (word >> (8 * byte)) & 0xFFU;
      h *= 0x100000001B3ULL;  // FNV prime
    }
  };
  mix(static_cast<std::uint64_t>(u));
  mix(static_cast<std::uint64_t>(v));
  for (const std::uint64_t bits : duration_bits) mix(bits);
  return h;
}

PatternSignature pattern_signature(const CommPattern& pattern) {
  PatternSignature signature;
  signature.u = pattern.u;
  signature.v = pattern.v;
  signature.duration_bits.reserve(pattern.durations.size());
  for (const double d : pattern.durations)
    signature.duration_bits.push_back(std::bit_cast<std::uint64_t>(d));
  return signature;
}

bool CommPattern::homogeneous(double rel_tol) const {
  if (durations.empty()) return true;
  const double first = durations.front();
  for (double d : durations) {
    const double scale = std::max(std::fabs(first), std::fabs(d));
    if (std::fabs(d - first) > rel_tol * std::max(scale, 1e-300)) return false;
  }
  return true;
}

std::vector<CommPattern> comm_patterns(const Mapping& mapping,
                                       std::size_t file_index) {
  SF_REQUIRE(file_index + 1 < mapping.num_stages(),
             "file index out of range");
  const auto& senders_team = mapping.team(file_index);
  const auto& receivers_team = mapping.team(file_index + 1);
  const std::size_t r_i = senders_team.size();
  const std::size_t r_next = receivers_team.size();
  const std::size_t g = std::gcd(r_i, r_next);
  const std::size_t u = r_i / g;
  const std::size_t v = r_next / g;
  const std::int64_t lcm_rows =
      checked_lcm(static_cast<std::int64_t>(r_i),
                  static_cast<std::int64_t>(r_next));
  const std::int64_t copies = mapping.num_paths() / lcm_rows;

  std::vector<CommPattern> result;
  result.reserve(g);
  for (std::size_t comp = 0; comp < g; ++comp) {
    CommPattern pattern;
    pattern.file_index = file_index;
    pattern.component = comp;
    pattern.g = g;
    pattern.u = u;
    pattern.v = v;
    pattern.copies = copies;
    pattern.senders.reserve(u);
    for (std::size_t a = 0; a < u; ++a)
      pattern.senders.push_back(senders_team[comp + a * g]);
    pattern.receivers.reserve(v);
    for (std::size_t b = 0; b < v; ++b)
      pattern.receivers.push_back(receivers_team[comp + b * g]);
    pattern.durations.reserve(u * v);
    // Pattern occurrence t corresponds to TPN row comp + t*g; the row uses
    // sender Team_i[row % R_i] and receiver Team_{i+1}[row % R_{i+1}], whose
    // local indices reduce to t % u and t % v.
    for (std::size_t t = 0; t < u * v; ++t) {
      pattern.durations.push_back(mapping.comm_time(
          pattern.senders[t % u], pattern.receivers[t % v]));
    }
    result.push_back(std::move(pattern));
  }
  return result;
}

TimedEventGraph build_pattern_teg(const CommPattern& pattern) {
  const std::size_t uv = pattern.size();
  TimedEventGraph graph(static_cast<std::int64_t>(uv), 1);
  for (std::size_t t = 0; t < uv; ++t) {
    graph.add_transition(Transition{
        .kind = TransitionKind::kComm,
        .row = static_cast<std::int64_t>(t),
        .column = 0,
        .stage = pattern.file_index,
        .proc = pattern.senders[t % pattern.u],
        .proc2 = pattern.receivers[t % pattern.v],
        .duration = pattern.durations[t],
    });
  }
  auto add_chain = [&graph](const std::vector<std::size_t>& members) {
    const std::size_t k = members.size();
    for (std::size_t l = 0; l < k; ++l) {
      const std::size_t next = (l + 1) % k;
      graph.add_place(Place{
          .from = members[l],
          .to = members[next],
          .kind = PlaceKind::kResource,
          .initial_tokens = next == 0 ? 1 : 0,
      });
    }
  };
  for (std::size_t a = 0; a < pattern.u; ++a) {
    std::vector<std::size_t> chain;
    for (std::size_t t = a; t < uv; t += pattern.u) chain.push_back(t);
    add_chain(chain);
  }
  for (std::size_t b = 0; b < pattern.v; ++b) {
    std::vector<std::size_t> chain;
    for (std::size_t t = b; t < uv; t += pattern.v) chain.push_back(t);
    add_chain(chain);
  }
  graph.finalize();
  graph.check_liveness();
  return graph;
}

}  // namespace streamflow
