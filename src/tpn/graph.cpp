#include "tpn/graph.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace streamflow {

std::size_t TimedEventGraph::add_transition(Transition t) {
  SF_REQUIRE(!finalized_, "graph is finalized");
  SF_REQUIRE(t.duration >= 0.0, "firing duration must be non-negative");
  transitions_.push_back(t);
  return transitions_.size() - 1;
}

std::size_t TimedEventGraph::add_place(Place p) {
  SF_REQUIRE(!finalized_, "graph is finalized");
  SF_REQUIRE(p.from < transitions_.size() && p.to < transitions_.size(),
             "place endpoints must reference existing transitions");
  SF_REQUIRE(p.initial_tokens >= 0, "initial marking must be non-negative");
  places_.push_back(p);
  return places_.size() - 1;
}

void TimedEventGraph::finalize() {
  SF_REQUIRE(!finalized_, "graph is already finalized");
  inputs_.assign(transitions_.size(), {});
  outputs_.assign(transitions_.size(), {});
  for (std::size_t id = 0; id < places_.size(); ++id) {
    outputs_[places_[id].from].push_back(id);
    inputs_[places_[id].to].push_back(id);
  }
  finalized_ = true;
}

const std::vector<std::size_t>& TimedEventGraph::input_places(
    std::size_t t) const {
  SF_REQUIRE(finalized_, "graph must be finalized");
  SF_REQUIRE(t < inputs_.size(), "transition id out of range");
  return inputs_[t];
}

const std::vector<std::size_t>& TimedEventGraph::output_places(
    std::size_t t) const {
  SF_REQUIRE(finalized_, "graph must be finalized");
  SF_REQUIRE(t < outputs_.size(), "transition id out of range");
  return outputs_[t];
}

std::vector<std::size_t> TimedEventGraph::last_column_transitions() const {
  std::vector<std::size_t> result;
  for (std::size_t id = 0; id < transitions_.size(); ++id) {
    if (transitions_[id].column == num_columns_ - 1) result.push_back(id);
  }
  return result;
}

void TimedEventGraph::check_liveness() const {
  SF_REQUIRE(finalized_, "graph must be finalized");
  // Kahn's algorithm on the token-free-place subgraph: if it has a cycle,
  // that cycle can never fire (deadlock), the net is not live.
  std::vector<std::size_t> indegree(transitions_.size(), 0);
  for (const Place& p : places_) {
    if (p.initial_tokens == 0) ++indegree[p.to];
  }
  std::vector<std::size_t> queue;
  for (std::size_t t = 0; t < transitions_.size(); ++t)
    if (indegree[t] == 0) queue.push_back(t);
  std::size_t processed = 0;
  while (!queue.empty()) {
    const std::size_t t = queue.back();
    queue.pop_back();
    ++processed;
    for (std::size_t pid : outputs_[t]) {
      const Place& p = places_[pid];
      if (p.initial_tokens > 0) continue;
      if (--indegree[p.to] == 0) queue.push_back(p.to);
    }
  }
  if (processed != transitions_.size()) {
    throw InvalidArgument(
        "event graph is not live: a token-free cycle exists (" +
        std::to_string(transitions_.size() - processed) +
        " transitions can never fire)");
  }
}

std::string TimedEventGraph::transition_label(std::size_t id) const {
  const Transition& t = transition(id);
  std::ostringstream os;
  if (t.kind == TransitionKind::kCompute) {
    os << "T" << (t.stage + 1) << "/P" << t.proc << "@r" << t.row;
  } else {
    os << "F" << (t.stage + 1) << ":P" << t.proc << "->P" << t.proc2 << "@r"
       << t.row;
  }
  return os.str();
}

void TimedEventGraph::write_dot(std::ostream& os) const {
  os << "digraph tpn {\n  rankdir=LR;\n  node [shape=box];\n";
  for (std::size_t id = 0; id < transitions_.size(); ++id) {
    os << "  t" << id << " [label=\"" << transition_label(id) << "\\nd="
       << transitions_[id].duration << "\"];\n";
  }
  for (std::size_t id = 0; id < places_.size(); ++id) {
    const Place& p = places_[id];
    os << "  p" << id << " [shape=circle,label=\""
       << (p.initial_tokens > 0 ? "*" : "") << "\",width=0.2];\n";
    os << "  t" << p.from << " -> p" << id << ";\n";
    os << "  p" << id << " -> t" << p.to
       << (p.kind == PlaceKind::kResource ? " [style=dashed]" : "") << ";\n";
  }
  os << "}\n";
}

}  // namespace streamflow
