// Construction of the timed event graph of a replicated mapping (Section 3):
// m = lcm(R_1..R_N) rows of 2N-1 transitions, with data-flow places along
// rows and round-robin resource-serialization places across rows. The
// Overlap net (§3.2) serializes each compute unit, each output port, and
// each input port independently; the Strict net (§3.3) serializes the whole
// receive -> compute -> send sequence of each processor.
#pragma once

#include "model/mapping.hpp"
#include "tpn/graph.hpp"

namespace streamflow {

struct TpnBuildOptions {
  /// Safety cap on the number of rows m = lcm(R_1..R_N); exceeding it throws
  /// CapacityExceeded rather than silently materializing a huge net.
  std::int64_t max_rows = 1 << 20;
};

/// Builds the TPN for the given mapping and execution model. The returned
/// graph is finalized and liveness-checked. Time O(m * N) (§3.3).
TimedEventGraph build_tpn(const Mapping& mapping, ExecutionModel model,
                          const TpnBuildOptions& options = {});

/// Transition id of row j, column c in a graph built by build_tpn.
inline std::size_t tpn_transition_id(const TimedEventGraph& graph,
                                     std::int64_t row, std::size_t column) {
  SF_REQUIRE(row >= 0 && row < graph.num_rows(), "row out of range");
  SF_REQUIRE(column < graph.num_columns(), "column out of range");
  return static_cast<std::size_t>(row) * graph.num_columns() + column;
}

}  // namespace streamflow
