#include "tpn/builder.hpp"

#include <vector>

namespace streamflow {

namespace {

/// Adds the cyclic round-robin chain over `rows` (ascending TPN row indices
/// where one resource is used in one column): a place between consecutive
/// occurrences and a closing place carrying the initial token, so the
/// resource serves its occurrences in round-robin order, one at a time
/// (§3.2 items 2-4). `column_of` maps a row to the transition id involved.
template <typename FromId, typename ToId>
void add_cyclic_chain(TimedEventGraph& graph,
                      const std::vector<std::int64_t>& rows, FromId&& from_id,
                      ToId&& to_id) {
  const std::size_t k = rows.size();
  SF_ASSERT(k >= 1, "resource chain with no occurrences");
  for (std::size_t l = 0; l < k; ++l) {
    const std::size_t next = (l + 1) % k;
    graph.add_place(Place{
        .from = from_id(rows[l]),
        .to = to_id(rows[next]),
        .kind = PlaceKind::kResource,
        // "a token is put in every place going from T^{j_k} to T^{j_1}":
        // only the wrap-around place starts marked.
        .initial_tokens = next == 0 ? 1 : 0,
    });
  }
}

/// Rows (ascending) in which team member `member_index` of a team of size
/// `team_size` appears, out of `m` rows total.
std::vector<std::int64_t> occurrence_rows(std::int64_t m,
                                          std::size_t team_size,
                                          std::size_t member_index) {
  std::vector<std::int64_t> rows;
  rows.reserve(static_cast<std::size_t>(m) / team_size);
  for (std::int64_t j = static_cast<std::int64_t>(member_index); j < m;
       j += static_cast<std::int64_t>(team_size)) {
    rows.push_back(j);
  }
  return rows;
}

}  // namespace

TimedEventGraph build_tpn(const Mapping& mapping, ExecutionModel model,
                          const TpnBuildOptions& options) {
  const std::int64_t m = mapping.num_paths();
  if (m > options.max_rows) {
    throw CapacityExceeded(
        "TPN would have m=" + std::to_string(m) +
        " rows (lcm of replication factors), above the configured cap of " +
        std::to_string(options.max_rows));
  }
  const std::size_t n = mapping.num_stages();
  const std::size_t num_columns = 2 * n - 1;
  TimedEventGraph graph(m, num_columns);

  // --- Transitions: row-major grid, id = row * num_columns + column. ------
  for (std::int64_t j = 0; j < m; ++j) {
    const std::vector<std::size_t> path = mapping.path(j);
    for (std::size_t i = 0; i < n; ++i) {
      graph.add_transition(Transition{
          .kind = TransitionKind::kCompute,
          .row = j,
          .column = 2 * i,
          .stage = i,
          .proc = path[i],
          .proc2 = path[i],
          .duration = mapping.comp_time(path[i]),
      });
      if (i + 1 < n) {
        graph.add_transition(Transition{
            .kind = TransitionKind::kComm,
            .row = j,
            .column = 2 * i + 1,
            .stage = i,
            .proc = path[i],
            .proc2 = path[i + 1],
            .duration = mapping.comm_time(path[i], path[i + 1]),
        });
      }
    }
  }
  auto id_of = [num_columns](std::int64_t row, std::size_t column) {
    return static_cast<std::size_t>(row) * num_columns + column;
  };

  // --- Data-flow places along each row (§3.2 item 1, same for Strict). ----
  for (std::int64_t j = 0; j < m; ++j) {
    for (std::size_t c = 0; c + 1 < num_columns; ++c) {
      graph.add_place(Place{
          .from = id_of(j, c),
          .to = id_of(j, c + 1),
          .kind = PlaceKind::kFlow,
          .initial_tokens = 0,
      });
    }
  }

  // --- Resource round-robin places. ----------------------------------------
  if (model == ExecutionModel::kOverlap) {
    for (std::size_t i = 0; i < n; ++i) {
      const auto& team = mapping.team(i);
      for (std::size_t a = 0; a < team.size(); ++a) {
        const std::vector<std::int64_t> rows =
            occurrence_rows(m, team.size(), a);
        // Item 2: the compute unit of the processor.
        add_cyclic_chain(
            graph, rows, [&](std::int64_t r) { return id_of(r, 2 * i); },
            [&](std::int64_t r) { return id_of(r, 2 * i); });
        // Item 3: its output port (unless it computes the last stage).
        if (i + 1 < n) {
          add_cyclic_chain(
              graph, rows, [&](std::int64_t r) { return id_of(r, 2 * i + 1); },
              [&](std::int64_t r) { return id_of(r, 2 * i + 1); });
        }
        // Item 4: its input port (unless it computes the first stage).
        if (i > 0) {
          add_cyclic_chain(
              graph, rows, [&](std::int64_t r) { return id_of(r, 2 * i - 1); },
              [&](std::int64_t r) { return id_of(r, 2 * i - 1); });
        }
      }
    }
  } else {
    // Strict (§3.3): one chain per processor, from the END of its current
    // receive -> compute -> send sequence to the START of the next one.
    for (std::size_t i = 0; i < n; ++i) {
      const auto& team = mapping.team(i);
      // Last transition of an occurrence: the send (column 2i+1), or the
      // compute itself for the last stage. First transition: the receive
      // (column 2i-1), or the compute for the first stage.
      const std::size_t last_col = (i + 1 < n) ? 2 * i + 1 : 2 * i;
      const std::size_t first_col = (i > 0) ? 2 * i - 1 : 2 * i;
      for (std::size_t a = 0; a < team.size(); ++a) {
        const std::vector<std::int64_t> rows =
            occurrence_rows(m, team.size(), a);
        add_cyclic_chain(
            graph, rows, [&](std::int64_t r) { return id_of(r, last_col); },
            [&](std::int64_t r) { return id_of(r, first_col); });
      }
    }
  }

  graph.finalize();
  graph.check_liveness();
  return graph;
}

}  // namespace streamflow
