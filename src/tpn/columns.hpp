// Column decomposition of the Overlap TPN (§4.1, §5.2).
//
// In the Overlap net, every cycle lives inside a single column, so the
// analysis splits into independent column sub-nets. A communication column
// between stages i and i+1 (replications R_i senders, R_{i+1} receivers)
// consists of g = gcd(R_i, R_{i+1}) connected components; each component is
// c = m / lcm(R_i, R_{i+1}) copies of a pattern of size u x v with
// u = R_i / g, v = R_{i+1} / g (and gcd(u, v) = 1).
//
// The folded pattern (one copy with wrap-around round-robin chains) is a
// small event graph of u*v transitions whose reachable markings are the
// Young-diagram borderlines of Theorem 3; the pattern's throughput is the
// communication component's inner throughput.
#pragma once

#include <cstdint>
#include <vector>

#include "model/mapping.hpp"
#include "tpn/graph.hpp"

namespace streamflow {

/// One connected component of the communication column for file
/// F_{file_index} (between stages file_index and file_index + 1).
struct CommPattern {
  std::size_t file_index = 0;  ///< 0-based file / column identity
  std::size_t component = 0;   ///< component id in [0, g)
  std::size_t g = 1;           ///< gcd(R_i, R_{i+1})
  std::size_t u = 1;           ///< senders in the pattern (R_i / g)
  std::size_t v = 1;           ///< receivers in the pattern (R_{i+1} / g)
  std::int64_t copies = 1;     ///< c = m / lcm(R_i, R_{i+1})

  /// Global processor ids: senders[a] is local sender a, receivers[b] local
  /// receiver b. senders[a] = Team_i[component + a*g], and similarly for
  /// receivers.
  std::vector<std::size_t> senders;
  std::vector<std::size_t> receivers;

  /// durations[t] for pattern transition t in [0, u*v): the communication
  /// (senders[t % u] -> receivers[t % v]); by CRT (gcd(u,v)=1) each
  /// (sender, receiver) pair appears exactly once.
  std::vector<double> durations;

  std::size_t size() const { return u * v; }
  std::size_t sender_of(std::size_t t) const { return t % u; }
  std::size_t receiver_of(std::size_t t) const { return t % v; }

  /// True if all link times in the pattern are equal (enables Theorem 4's
  /// closed form).
  bool homogeneous(double rel_tol = 1e-12) const;
};

/// Decomposes the communication column for file F_{file_index} into its
/// g connected components.
std::vector<CommPattern> comm_patterns(const Mapping& mapping,
                                       std::size_t file_index);

/// Canonical signature of a pattern's exponential solve. The saturated rate
/// of a pattern is a pure function of (u, v, link durations in occurrence
/// order), so two patterns with equal signatures have bit-identical solves;
/// the signature is the key of AnalysisContext's pattern cache and is valid
/// across different (application, platform) instances. Durations are
/// compared bit-exactly (as IEEE-754 payloads): a sorted-multiset key would
/// share entries across sender/receiver relabelings too, but re-solving a
/// permuted pattern is not guaranteed to reproduce the same low-order bits,
/// and the cache promises results bit-identical to the uncached path.
struct PatternSignature {
  std::size_t u = 1;
  std::size_t v = 1;
  /// Bit patterns of durations[0..uv), verbatim order.
  std::vector<std::uint64_t> duration_bits;

  bool operator==(const PatternSignature&) const = default;

  /// FNV-1a over (u, v, duration bits), for hash-map use.
  std::uint64_t hash() const;
};

PatternSignature pattern_signature(const CommPattern& pattern);

/// Builds the folded pattern event graph: u*v transitions t = 0..uv-1
/// (occurrence order), a cyclic sender chain over {t : t % u == a} for each
/// a, and a cyclic receiver chain over {t : t % v == b} for each b.
TimedEventGraph build_pattern_teg(const CommPattern& pattern);

}  // namespace streamflow
