#include "linalg/dense.hpp"

#include <cmath>
#include <numeric>

namespace streamflow {

Vector DenseMatrix::multiply(const Vector& x) const {
  SF_REQUIRE(x.size() == cols_, "dimension mismatch in multiply");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

Vector DenseMatrix::multiply_transpose(const Vector& x) const {
  SF_REQUIRE(x.size() == rows_, "dimension mismatch in multiply_transpose");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    const double* row = data_.data() + r * cols_;
    for (std::size_t c = 0; c < cols_; ++c) y[c] += row[c] * xr;
  }
  return y;
}

DenseMatrix DenseMatrix::transpose() const {
  DenseMatrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

double DenseMatrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

LuFactorization::LuFactorization(DenseMatrix a) : lu_(std::move(a)) {
  SF_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  perm_.resize(n);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k at/below row k.
    std::size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      const double mag = std::fabs(lu_(r, k));
      if (mag > best) {
        best = mag;
        pivot = r;
      }
    }
    if (best < 1e-300) {
      throw NumericalError("LU factorization: matrix is singular at column " +
                           std::to_string(k));
    }
    if (pivot != k) {
      for (std::size_t c = 0; c < n; ++c)
        std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (std::size_t c = k + 1; c < n; ++c)
        lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

Vector LuFactorization::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  SF_REQUIRE(b.size() == n, "dimension mismatch in LU solve");
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution with implicit unit diagonal.
  for (std::size_t i = 1; i < n; ++i) {
    double acc = x[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * x[j];
    x[ii] = acc / lu_(ii, ii);
  }
  return x;
}

double LuFactorization::determinant() const {
  double det = static_cast<double>(perm_sign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

Vector solve_dense(DenseMatrix a, const Vector& b) {
  return LuFactorization(std::move(a)).solve(b);
}

}  // namespace streamflow
