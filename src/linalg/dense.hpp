// Minimal dense linear algebra: row-major matrices and LU factorization with
// partial pivoting. This is the direct solver behind the stationary
// distribution of small CTMCs (Theorem 2's Markov chains and the u x v
// pattern chains of Theorem 3).
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace streamflow {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static DenseMatrix identity(std::size_t n) {
    DenseMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// y = A * x.
  Vector multiply(const Vector& x) const;

  /// y = A^T * x.
  Vector multiply_transpose(const Vector& x) const;

  DenseMatrix transpose() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  const std::vector<double>& data() const { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization (Doolittle with partial pivoting) of a square matrix.
/// Throws NumericalError if the matrix is singular to working precision.
class LuFactorization {
 public:
  explicit LuFactorization(DenseMatrix a);

  /// Solves A x = b for the factored A.
  Vector solve(const Vector& b) const;

  /// Sign-adjusted product of U's diagonal.
  double determinant() const;

  std::size_t size() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
  int perm_sign_ = 1;
};

/// Convenience one-shot dense solve.
Vector solve_dense(DenseMatrix a, const Vector& b);

}  // namespace streamflow
