#include "linalg/sparse.hpp"

#include <algorithm>

namespace streamflow {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols,
                     std::vector<Triplet> triplets)
    : rows_(rows), cols_(cols) {
  for (const auto& t : triplets) {
    SF_REQUIRE(t.row < rows && t.col < cols, "triplet index out of range");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  row_ptr_.assign(rows_ + 1, 0);
  col_index_.reserve(triplets.size());
  values_.reserve(triplets.size());
  for (std::size_t i = 0; i < triplets.size(); ++i) {
    const Triplet& t = triplets[i];
    if (!values_.empty() && !col_index_.empty() &&
        row_ptr_[t.row + 1] > row_ptr_[t.row] && col_index_.back() == t.col &&
        // same row as the previous entry?
        i > 0 && triplets[i - 1].row == t.row && triplets[i - 1].col == t.col) {
      values_.back() += t.value;  // merge duplicate
      continue;
    }
    // row_ptr_ holds per-row counts during assembly.
    ++row_ptr_[t.row + 1];
    col_index_.push_back(t.col);
    values_.push_back(t.value);
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

std::vector<double> CsrMatrix::multiply(const std::vector<double>& x) const {
  SF_REQUIRE(x.size() == cols_, "dimension mismatch in CSR multiply");
  std::vector<double> y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      acc += values_[k] * x[col_index_[k]];
    y[r] = acc;
  }
  return y;
}

std::vector<double> CsrMatrix::multiply_transpose(
    const std::vector<double>& x) const {
  SF_REQUIRE(x.size() == rows_, "dimension mismatch in CSR multiply_transpose");
  std::vector<double> y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      y[col_index_[k]] += values_[k] * xr;
  }
  return y;
}

}  // namespace streamflow
