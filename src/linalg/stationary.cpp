#include "linalg/stationary.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace streamflow {

Vector stationary_dense(const DenseMatrix& q) {
  SF_REQUIRE(q.rows() == q.cols(), "generator must be square");
  const std::size_t n = q.rows();
  SF_REQUIRE(n > 0, "generator must be non-empty");
  // Solve A pi = b with A = Q^T whose last row is replaced by the
  // normalization constraint sum(pi) = 1.
  DenseMatrix a = q.transpose();
  for (std::size_t c = 0; c < n; ++c) a(n - 1, c) = 1.0;
  Vector b(n, 0.0);
  b[n - 1] = 1.0;
  Vector pi = solve_dense(std::move(a), b);
  // Clamp tiny negative round-off and renormalize.
  double sum = 0.0;
  for (double& p : pi) {
    if (p < 0.0 && p > -1e-9) p = 0.0;
    if (p < 0.0) {
      throw NumericalError(
          "stationary_dense produced a significantly negative probability; "
          "the chain may have multiple recurrent classes");
    }
    sum += p;
  }
  SF_ASSERT(sum > 0.0, "stationary distribution sums to zero");
  for (double& p : pi) p /= sum;
  return pi;
}

Vector stationary_uniformized(const CsrMatrix& q_offdiag,
                              const StationaryOptions& options,
                              StationarySolveStats* stats) {
  SF_REQUIRE(q_offdiag.rows() == q_offdiag.cols(), "generator must be square");
  const std::size_t n = q_offdiag.rows();
  SF_REQUIRE(n > 0, "generator must be non-empty");

  // Exit rates = row sums of off-diagonals.
  std::vector<double> exit(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::size_t k = q_offdiag.row_begin(r); k < q_offdiag.row_end(r); ++k)
      acc += q_offdiag.values()[k];
    exit[r] = acc;
  }
  const double lambda =
      1.001 * (*std::max_element(exit.begin(), exit.end())) + 1e-12;

  // pi <- pi P, P = I + Q / lambda; i.e.
  // pi'[j] = pi[j] (1 - exit[j]/lambda) + sum_i pi[i] q[i][j] / lambda.
  std::vector<double> pi(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);
  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    for (std::size_t j = 0; j < n; ++j)
      next[j] = pi[j] * (1.0 - exit[j] / lambda);
    for (std::size_t r = 0; r < n; ++r) {
      const double w = pi[r] / lambda;
      if (w == 0.0) continue;
      for (std::size_t k = q_offdiag.row_begin(r); k < q_offdiag.row_end(r);
           ++k)
        next[q_offdiag.col_index()[k]] += w * q_offdiag.values()[k];
    }
    double diff = 0.0;
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      diff += std::fabs(next[j] - pi[j]);
      sum += next[j];
    }
    // Renormalize to counter drift.
    for (std::size_t j = 0; j < n; ++j) next[j] /= sum;
    pi.swap(next);
    if (diff < options.tolerance) {
      if (stats != nullptr) {
        stats->iterations = iter + 1;
        stats->residual = diff;
      }
      return pi;
    }
  }
  throw NumericalError("stationary_uniformized did not converge within " +
                       std::to_string(options.max_iterations) + " iterations");
}

double stationary_residual(const DenseMatrix& q, const Vector& pi) {
  const Vector r = q.multiply_transpose(pi);
  double acc = 0.0;
  for (double v : r) acc += std::fabs(v);
  return acc;
}

}  // namespace streamflow
