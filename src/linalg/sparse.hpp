// Compressed-sparse-row matrices. CTMC generators of large reachability
// graphs are extremely sparse (out-degree = number of enabled transitions),
// so the general method of Theorem 2 switches to CSR + iterative solves
// beyond a dense-size threshold.
#pragma once

#include <cstddef>
#include <vector>

#include "common/error.hpp"

namespace streamflow {

/// Coordinate-form entry used while assembling a sparse matrix.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix built from triplets (duplicates are summed).
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> triplets);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t nonzeros() const { return values_.size(); }

  /// y = A x.
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// y = A^T x (used for pi <- pi P without materializing the transpose).
  std::vector<double> multiply_transpose(const std::vector<double>& x) const;

  /// Row access for iteration: [row_begin(r), row_end(r)) index into
  /// col_index()/values().
  std::size_t row_begin(std::size_t r) const { return row_ptr_[r]; }
  std::size_t row_end(std::size_t r) const { return row_ptr_[r + 1]; }
  const std::vector<std::size_t>& col_index() const { return col_index_; }
  const std::vector<double>& values() const { return values_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_index_;
  std::vector<double> values_;
};

}  // namespace streamflow
