// Stationary distributions of finite-state CTMCs: pi Q = 0, sum(pi) = 1.
//
// Two back-ends:
//  * dense direct solve (LU) — exact up to FP, used below a size threshold;
//  * uniformization + power iteration on the embedded DTMC — used for the
//    large reachability graphs produced by Theorem 2's general method.
// The caller (markov/ctmc) picks the back-end; both are exposed for testing.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/dense.hpp"
#include "linalg/sparse.hpp"

namespace streamflow {

struct StationaryOptions {
  /// Convergence threshold on the L1 change of pi between sweeps.
  double tolerance = 1e-12;
  /// Iteration cap for the power method.
  std::size_t max_iterations = 2'000'000;
};

/// Convergence telemetry of one power-iteration solve, reported through the
/// optional out-param of stationary_uniformized so callers (markov/
/// throughput) can surface which back-end ran and how hard it worked.
struct StationarySolveStats {
  /// Power sweeps performed before the L1 change dropped under tolerance.
  std::size_t iterations = 0;
  /// The converged sweep's L1 change ||pi_k - pi_{k-1}||_1 (< tolerance).
  double residual = 0.0;
};

/// Direct solve for the stationary distribution of generator Q (dense).
/// Q must be a proper generator: non-negative off-diagonals, zero row sums.
/// Assumes a single recurrent class (true for our reachability CTMCs, which
/// are strongly connected by liveness of the event graph).
Vector stationary_dense(const DenseMatrix& q);

/// Power-iteration solve on the uniformized chain P = I + Q / Lambda with
/// Lambda slightly above the largest exit rate. `q` holds the OFF-diagonal
/// rates as a CSR matrix (rows = source states); diagonals are derived.
/// Throws NumericalError if the iteration does not converge. A non-null
/// `stats` receives the iteration count and final L1 change on success.
Vector stationary_uniformized(const CsrMatrix& q_offdiag,
                              const StationaryOptions& options = {},
                              StationarySolveStats* stats = nullptr);

/// Residual || pi Q ||_1 for verification (dense Q).
double stationary_residual(const DenseMatrix& q, const Vector& pi);

}  // namespace streamflow
