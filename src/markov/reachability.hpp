// Reachability analysis of a timed event graph under exponential firing
// (race semantics): markings are states, every enabled transition fires at
// its exponential rate, yielding a continuous-time Markov chain (the
// transformation step of Theorem 2).
//
// Boundedness: the Strict TPN is 1-safe (each processor's round-robin chain
// gates its whole receive/compute/send sequence), so exploration is exact.
// The Overlap TPN has unbounded data-flow places (a fast upstream may run
// ahead); `place_capacity` imposes finite buffers: a transition is disabled
// while one of its output flow places is full. The capped chain
// under-estimates the true throughput and converges to it as the capacity
// grows (the exact Overlap analysis is the column method of Theorem 3).
#pragma once

#include <cstdint>
#include <vector>

#include "tpn/graph.hpp"

namespace streamflow {

struct ReachabilityOptions {
  /// Hard cap on the number of explored markings.
  std::size_t max_states = 250'000;
  /// Token capacity of data-flow places (resource places are 1-bounded by
  /// construction).
  int place_capacity = 8;
};

/// One CTMC edge: in marking `from`, transition `transition` fires (rate =
/// rates[transition]) and leads to marking `to`.
struct CtmcEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t transition = 0;
};

/// The reachability CTMC of a TEG.
struct TpnMarkovChain {
  std::size_t num_states = 0;
  std::vector<CtmcEdge> edges;
  /// True if some marking hit the flow-place capacity (Overlap nets only):
  /// the chain then models finite buffers rather than the unbounded net.
  bool capacity_clipped = false;
};

/// Explores all markings reachable from the initial marking.
/// `rates[t]` is the exponential firing rate of transition t (all > 0).
/// Throws CapacityExceeded if max_states is hit.
TpnMarkovChain explore_markings(const TimedEventGraph& graph,
                                const std::vector<double>& rates,
                                const ReachabilityOptions& options = {});

}  // namespace streamflow
