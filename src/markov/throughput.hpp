// The general exponential-case method of Theorem 2, end to end:
// TEG + rates -> reachability CTMC -> stationary distribution -> throughput
// as the stationary firing frequency of a chosen set of transitions.
#pragma once

#include <vector>

#include "linalg/stationary.hpp"
#include "markov/reachability.hpp"
#include "tpn/graph.hpp"

namespace streamflow {

struct GeneralMethodOptions {
  ReachabilityOptions reachability;
  /// Below this state count the stationary solve is a dense LU; above, the
  /// sparse uniformization power iteration.
  std::size_t dense_threshold = 1200;
  StationaryOptions stationary;
};

/// Which stationary solver actually ran for a chain (the dense_threshold
/// decision, surfaced for observability and the crossover tests).
enum class StationaryBackend {
  kDense,        ///< direct dense LU on the full generator
  kUniformized,  ///< sparse uniformization + power iteration
};

struct GeneralMethodResult {
  /// Sum of the stationary firing frequencies of the counted transitions.
  double throughput = 0.0;
  std::size_t num_states = 0;
  /// See TpnMarkovChain::capacity_clipped.
  bool capacity_clipped = false;
  /// The back-end the stationary solve dispatched to (num_states vs
  /// dense_threshold).
  StationaryBackend backend = StationaryBackend::kDense;
  /// Power sweeps of the uniformized solve; 0 for the direct dense solve.
  std::size_t solver_iterations = 0;
  /// Solve-quality telemetry. Dense: the verification residual
  /// || pi Q ||_1. Uniformized: the converged sweep's L1 change (strictly
  /// under StationaryOptions::tolerance).
  double solver_residual = 0.0;
};

/// Exponential firing rates 1/duration for every transition of the graph.
/// Throws InvalidArgument if any duration is zero (an exponential law with
/// infinite rate is not representable; model the file as a tiny one).
std::vector<double> rates_from_durations(const TimedEventGraph& graph);

/// Stationary firing frequency of each transition: freq[t] = rate[t] *
/// P(t enabled). The long-run output rate of the system is the sum of the
/// frequencies over the last-column transitions (one completed data set per
/// firing).
std::vector<double> stationary_frequencies(const TimedEventGraph& graph,
                                           const std::vector<double>& rates,
                                           const GeneralMethodOptions& options = {});

/// Overload reusing an already-explored chain (avoids a second reachability
/// pass when the caller needs the chain's metadata too).
std::vector<double> stationary_frequencies(const TimedEventGraph& graph,
                                           const TpnMarkovChain& chain,
                                           const std::vector<double>& rates,
                                           const GeneralMethodOptions& options = {});

/// Theorem 2's throughput: the summed frequency of `counted` transitions.
GeneralMethodResult exponential_throughput_general(
    const TimedEventGraph& graph, const std::vector<double>& rates,
    const std::vector<std::size_t>& counted,
    const GeneralMethodOptions& options = {});

/// Saturated flow of a pattern chain: the aggregate stationary firing
/// frequency of EVERY transition of the graph. This is the CTMC entry point
/// of the Theorem 3 column method (and of AnalysisContext's pattern cache):
/// a communication pattern's inner throughput is the saturated flow of its
/// folded event graph. Equivalent to exponential_throughput_general with all
/// transitions counted, without materializing the index vector.
GeneralMethodResult saturated_flow(const TimedEventGraph& graph,
                                   const std::vector<double>& rates,
                                   const GeneralMethodOptions& options = {});

}  // namespace streamflow
