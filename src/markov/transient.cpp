#include "markov/transient.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/sparse.hpp"

namespace streamflow {

TransientResult transient_analysis(const TimedEventGraph& graph,
                                   const TpnMarkovChain& chain,
                                   const std::vector<double>& rates,
                                   const std::vector<std::size_t>& counted,
                                   double horizon,
                                   const TransientOptions& options) {
  SF_REQUIRE(horizon > 0.0, "horizon must be positive");
  SF_REQUIRE(rates.size() == graph.num_transitions(),
             "need one rate per transition");
  const std::size_t n = chain.num_states;
  SF_REQUIRE(n > 0, "empty chain");

  // Instantaneous reward g[s]: total rate of counted transitions enabled in
  // state s (each enabled pair contributes exactly one edge).
  std::vector<char> is_counted(graph.num_transitions(), 0);
  for (std::size_t t : counted) {
    SF_REQUIRE(t < graph.num_transitions(), "counted transition out of range");
    is_counted[t] = 1;
  }
  std::vector<double> reward(n, 0.0);
  std::vector<double> exit(n, 0.0);
  std::vector<Triplet> triplets;
  triplets.reserve(chain.edges.size());
  for (const CtmcEdge& e : chain.edges) {
    if (is_counted[e.transition]) reward[e.from] += rates[e.transition];
    if (e.from != e.to) {
      exit[e.from] += rates[e.transition];
      triplets.push_back(Triplet{e.from, e.to, rates[e.transition]});
    }
  }
  const double lambda =
      1.001 * (*std::max_element(exit.begin(), exit.end())) + 1e-12;
  const CsrMatrix q(n, n, std::move(triplets));

  // Poisson(lambda * horizon) weights via a mode-centered recurrence
  // (Fox-Glynn style): find the window [left, right] capturing 1 - epsilon
  // of the mass.
  const double lt = lambda * horizon;
  const auto mode = static_cast<std::size_t>(lt);
  std::vector<double> up;  // weights for k >= mode
  up.push_back(1.0);
  for (std::size_t k = mode;; ++k) {
    const double next = up.back() * lt / static_cast<double>(k + 1);
    if (next < options.epsilon * 1e-3 && static_cast<double>(k) > lt) break;
    up.push_back(next);
    if (up.size() + mode > options.max_steps) {
      throw NumericalError(
          "transient_analysis: horizon needs more uniformization steps than "
          "max_steps; shorten the horizon or raise the cap");
    }
  }
  std::vector<double> down;  // weights for k < mode (descending from mode-1)
  if (mode > 0) {
    double w = static_cast<double>(mode) / lt;  // weight(mode-1)/weight(mode)
    for (std::size_t k = mode; k-- > 0;) {
      down.push_back(w);
      if (w < options.epsilon * 1e-3) break;
      w *= static_cast<double>(k) / lt;
      if (k == 0) break;
    }
  }
  const std::size_t left = mode - down.size();
  const std::size_t right = mode + up.size() - 1;
  // Normalize the weights to sum to one.
  double total = 0.0;
  for (double w : up) total += w;
  for (double w : down) total += w;
  std::vector<double> weight(right - left + 1, 0.0);
  for (std::size_t i = 0; i < down.size(); ++i)
    weight[down.size() - 1 - i] = down[i] / total;
  for (std::size_t i = 0; i < up.size(); ++i)
    weight[down.size() + i] = up[i] / total;

  // Suffix tails: tail[k] = P(N > left + k).
  std::vector<double> tail(weight.size(), 0.0);
  double acc = 0.0;
  for (std::size_t i = weight.size(); i-- > 0;) {
    tail[i] = acc;  // strictly greater than left + i
    acc += weight[i];
  }

  TransientResult result;
  result.distribution.assign(n, 0.0);
  std::vector<double> v(n, 0.0);
  v[0] = 1.0;  // the initial marking is state 0 by construction
  std::vector<double> next(n, 0.0);
  double firings = 0.0;
  for (std::size_t k = 0; k <= right; ++k) {
    const double reward_now =
        std::inner_product(v.begin(), v.end(), reward.begin(), 0.0);
    // Integral of the k-th Poisson phase over [0, horizon] = P(N > k) / L.
    const double phase_weight =
        (k < left ? 1.0 : tail[k - left]) / lambda;
    firings += phase_weight * reward_now;
    if (k >= left) {
      const double w = weight[k - left];
      for (std::size_t s = 0; s < n; ++s)
        result.distribution[s] += w * v[s];
    }
    if (k == right) break;
    // v <- v P with P = I + Q / lambda.
    for (std::size_t s = 0; s < n; ++s)
      next[s] = v[s] * (1.0 - exit[s] / lambda);
    for (std::size_t r = 0; r < n; ++r) {
      const double share = v[r] / lambda;
      if (share == 0.0) continue;
      for (std::size_t idx = q.row_begin(r); idx < q.row_end(r); ++idx)
        next[q.col_index()[idx]] += share * q.values()[idx];
    }
    v.swap(next);
  }

  result.expected_firings = firings;
  result.average_throughput = firings / horizon;
  result.steps = right + 1;
  return result;
}

}  // namespace streamflow
