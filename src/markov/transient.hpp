// Transient analysis of the reachability CTMC by uniformization:
// state probabilities at time t, and the expected number of firings of a
// transition set over [0, t]. This is the exact, finite-horizon counterpart
// of the steady-state throughput — the theoretical version of the Fig 10
// convergence study (finite-horizon throughput climbs toward the stationary
// value as the horizon grows).
#pragma once

#include <vector>

#include "markov/reachability.hpp"
#include "tpn/graph.hpp"

namespace streamflow {

struct TransientOptions {
  /// Truncation error bound for the uniformization (Poisson tail mass).
  double epsilon = 1e-10;
  /// Hard cap on uniformization steps (guards pathological horizons).
  std::size_t max_steps = 2'000'000;
};

struct TransientResult {
  /// State distribution at the horizon.
  std::vector<double> distribution;
  /// Expected firings of the counted transitions over [0, horizon].
  double expected_firings = 0.0;
  /// expected_firings / horizon: the finite-horizon throughput.
  double average_throughput = 0.0;
  /// Uniformization steps actually taken.
  std::size_t steps = 0;
};

/// Computes the transient distribution and expected firing count at time
/// `horizon`, starting from the TPN's initial marking (state 0 of `chain`).
/// `counted` selects the transitions whose firings are accumulated
/// (e.g. the last column for completed data sets).
TransientResult transient_analysis(const TimedEventGraph& graph,
                                   const TpnMarkovChain& chain,
                                   const std::vector<double>& rates,
                                   const std::vector<std::size_t>& counted,
                                   double horizon,
                                   const TransientOptions& options = {});

}  // namespace streamflow
