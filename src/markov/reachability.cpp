#include "markov/reachability.hpp"

#include <cstring>
#include <deque>
#include <unordered_map>

namespace streamflow {

namespace {

/// Compact marking: one token count per place.
using Marking = std::vector<std::uint8_t>;

struct MarkingHash {
  std::size_t operator()(const Marking& m) const {
    // FNV-1a over the raw bytes.
    std::size_t h = 1469598103934665603ULL;
    for (std::uint8_t b : m) {
      h ^= b;
      h *= 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace

TpnMarkovChain explore_markings(const TimedEventGraph& graph,
                                const std::vector<double>& rates,
                                const ReachabilityOptions& options) {
  SF_REQUIRE(rates.size() == graph.num_transitions(),
             "need one rate per transition");
  for (double r : rates)
    SF_REQUIRE(r > 0.0, "all firing rates must be positive");
  SF_REQUIRE(options.place_capacity >= 1, "place capacity must be >= 1");
  SF_REQUIRE(options.place_capacity <= 255,
             "place capacity must fit in a byte");

  const std::size_t num_places = graph.num_places();
  Marking initial(num_places);
  for (std::size_t pid = 0; pid < num_places; ++pid) {
    initial[pid] = static_cast<std::uint8_t>(graph.place(pid).initial_tokens);
  }

  TpnMarkovChain chain;
  // `index` is dedup-only: markings are point-queried (emplace/find) and the
  // map is NEVER iterated — state numbering comes from the BFS `frontier`
  // deque, so state ids are a pure function of the net, independent of hash
  // order. The unordered-iter lint rule guards this invariant tree-wide.
  std::unordered_map<Marking, std::size_t, MarkingHash> index;
  std::deque<Marking> frontier;
  index.emplace(initial, 0);
  frontier.push_back(std::move(initial));
  chain.num_states = 1;

  const auto capacity = static_cast<std::uint8_t>(options.place_capacity);

  std::size_t state_cursor = 0;
  while (!frontier.empty()) {
    const Marking current = std::move(frontier.front());
    frontier.pop_front();
    const std::size_t current_id = state_cursor++;

    for (std::size_t t = 0; t < graph.num_transitions(); ++t) {
      // Enabled: every input place holds a token...
      bool enabled = true;
      for (std::size_t pid : graph.input_places(t)) {
        if (current[pid] == 0) {
          enabled = false;
          break;
        }
      }
      if (!enabled) continue;
      // ...and no output flow place would exceed its capacity. Self-loop
      // places (input and output of the same transition) net out to zero
      // and never block.
      for (std::size_t pid : graph.output_places(t)) {
        const Place& p = graph.place(pid);
        if (p.from == p.to) continue;
        if (current[pid] >= capacity) {
          if (p.kind == PlaceKind::kFlow) {
            enabled = false;
            chain.capacity_clipped = true;
            break;
          }
          throw CapacityExceeded(
              "resource place exceeded capacity: the event graph violates "
              "the expected 1-safety of serialization chains");
        }
      }
      if (!enabled) continue;

      Marking next = current;
      for (std::size_t pid : graph.input_places(t)) --next[pid];
      for (std::size_t pid : graph.output_places(t)) ++next[pid];

      auto [it, inserted] = index.emplace(std::move(next), chain.num_states);
      if (inserted) {
        if (chain.num_states >= options.max_states) {
          throw CapacityExceeded(
              "marking exploration exceeded max_states=" +
              std::to_string(options.max_states) +
              "; use the column decomposition or raise the cap");
        }
        ++chain.num_states;
        frontier.push_back(it->first);
      }
      chain.edges.push_back(CtmcEdge{current_id, it->second, t});
    }
  }
  return chain;
}

}  // namespace streamflow
