#include "markov/throughput.hpp"

#include "linalg/sparse.hpp"

namespace streamflow {

std::vector<double> rates_from_durations(const TimedEventGraph& graph) {
  std::vector<double> rates;
  rates.reserve(graph.num_transitions());
  for (const Transition& t : graph.transitions()) {
    SF_REQUIRE(t.duration > 0.0,
               "exponential analysis requires positive mean durations");
    rates.push_back(1.0 / t.duration);
  }
  return rates;
}

namespace {

/// Fills the GeneralMethodResult observability fields describing how the
/// stationary solve went; the result's throughput stays the caller's job.
struct SolveTelemetry {
  StationaryBackend backend = StationaryBackend::kDense;
  std::size_t iterations = 0;
  double residual = 0.0;
};

Vector solve_stationary(const TpnMarkovChain& chain,
                        const std::vector<double>& rates,
                        const GeneralMethodOptions& options,
                        SolveTelemetry* telemetry = nullptr) {
  const std::size_t n = chain.num_states;
  if (n <= options.dense_threshold) {
    DenseMatrix q(n, n, 0.0);
    for (const CtmcEdge& e : chain.edges) {
      if (e.from == e.to) continue;  // self-loops cancel in the generator
      q(e.from, e.to) += rates[e.transition];
      q(e.from, e.from) -= rates[e.transition];
    }
    Vector pi = stationary_dense(q);
    if (telemetry != nullptr) {
      telemetry->backend = StationaryBackend::kDense;
      telemetry->iterations = 0;
      telemetry->residual = stationary_residual(q, pi);
    }
    return pi;
  }
  std::vector<Triplet> triplets;
  triplets.reserve(chain.edges.size());
  for (const CtmcEdge& e : chain.edges) {
    if (e.from == e.to) continue;
    triplets.push_back(Triplet{e.from, e.to, rates[e.transition]});
  }
  StationarySolveStats stats;
  Vector pi = stationary_uniformized(CsrMatrix(n, n, std::move(triplets)),
                                     options.stationary, &stats);
  if (telemetry != nullptr) {
    telemetry->backend = StationaryBackend::kUniformized;
    telemetry->iterations = stats.iterations;
    telemetry->residual = stats.residual;
  }
  return pi;
}

void apply_telemetry(GeneralMethodResult& result,
                     const SolveTelemetry& telemetry) {
  result.backend = telemetry.backend;
  result.solver_iterations = telemetry.iterations;
  result.solver_residual = telemetry.residual;
}

}  // namespace

std::vector<double> stationary_frequencies(const TimedEventGraph& graph,
                                           const std::vector<double>& rates,
                                           const GeneralMethodOptions& options) {
  const TpnMarkovChain chain =
      explore_markings(graph, rates, options.reachability);
  return stationary_frequencies(graph, chain, rates, options);
}

std::vector<double> stationary_frequencies(const TimedEventGraph& graph,
                                           const TpnMarkovChain& chain,
                                           const std::vector<double>& rates,
                                           const GeneralMethodOptions& options) {
  const Vector pi = solve_stationary(chain, rates, options);
  std::vector<double> freq(graph.num_transitions(), 0.0);
  // Each state where t is enabled contributes exactly one outgoing edge for
  // t, so summing pi[from] * rate over edges gives rate * P(enabled).
  for (const CtmcEdge& e : chain.edges) {
    freq[e.transition] += pi[e.from] * rates[e.transition];
  }
  return freq;
}

GeneralMethodResult exponential_throughput_general(
    const TimedEventGraph& graph, const std::vector<double>& rates,
    const std::vector<std::size_t>& counted,
    const GeneralMethodOptions& options) {
  SF_REQUIRE(!counted.empty(), "no transitions selected for counting");
  const TpnMarkovChain chain =
      explore_markings(graph, rates, options.reachability);
  SolveTelemetry telemetry;
  const Vector pi = solve_stationary(chain, rates, options, &telemetry);

  std::vector<char> is_counted(graph.num_transitions(), 0);
  for (std::size_t t : counted) {
    SF_REQUIRE(t < graph.num_transitions(), "counted transition out of range");
    is_counted[t] = 1;
  }
  GeneralMethodResult result;
  result.num_states = chain.num_states;
  result.capacity_clipped = chain.capacity_clipped;
  apply_telemetry(result, telemetry);
  for (const CtmcEdge& e : chain.edges) {
    if (is_counted[e.transition])
      result.throughput += pi[e.from] * rates[e.transition];
  }
  return result;
}

GeneralMethodResult saturated_flow(const TimedEventGraph& graph,
                                   const std::vector<double>& rates,
                                   const GeneralMethodOptions& options) {
  SF_REQUIRE(graph.num_transitions() > 0, "empty event graph");
  const TpnMarkovChain chain =
      explore_markings(graph, rates, options.reachability);
  SolveTelemetry telemetry;
  const Vector pi = solve_stationary(chain, rates, options, &telemetry);
  GeneralMethodResult result;
  result.num_states = chain.num_states;
  result.capacity_clipped = chain.capacity_clipped;
  apply_telemetry(result, telemetry);
  for (const CtmcEdge& e : chain.edges) {
    result.throughput += pi[e.from] * rates[e.transition];
  }
  return result;
}

}  // namespace streamflow
