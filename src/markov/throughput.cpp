#include "markov/throughput.hpp"

#include "linalg/sparse.hpp"

namespace streamflow {

std::vector<double> rates_from_durations(const TimedEventGraph& graph) {
  std::vector<double> rates;
  rates.reserve(graph.num_transitions());
  for (const Transition& t : graph.transitions()) {
    SF_REQUIRE(t.duration > 0.0,
               "exponential analysis requires positive mean durations");
    rates.push_back(1.0 / t.duration);
  }
  return rates;
}

namespace {

Vector solve_stationary(const TpnMarkovChain& chain,
                        const std::vector<double>& rates,
                        const GeneralMethodOptions& options) {
  const std::size_t n = chain.num_states;
  if (n <= options.dense_threshold) {
    DenseMatrix q(n, n, 0.0);
    for (const CtmcEdge& e : chain.edges) {
      if (e.from == e.to) continue;  // self-loops cancel in the generator
      q(e.from, e.to) += rates[e.transition];
      q(e.from, e.from) -= rates[e.transition];
    }
    return stationary_dense(q);
  }
  std::vector<Triplet> triplets;
  triplets.reserve(chain.edges.size());
  for (const CtmcEdge& e : chain.edges) {
    if (e.from == e.to) continue;
    triplets.push_back(Triplet{e.from, e.to, rates[e.transition]});
  }
  return stationary_uniformized(CsrMatrix(n, n, std::move(triplets)),
                                options.stationary);
}

}  // namespace

std::vector<double> stationary_frequencies(const TimedEventGraph& graph,
                                           const std::vector<double>& rates,
                                           const GeneralMethodOptions& options) {
  const TpnMarkovChain chain =
      explore_markings(graph, rates, options.reachability);
  return stationary_frequencies(graph, chain, rates, options);
}

std::vector<double> stationary_frequencies(const TimedEventGraph& graph,
                                           const TpnMarkovChain& chain,
                                           const std::vector<double>& rates,
                                           const GeneralMethodOptions& options) {
  const Vector pi = solve_stationary(chain, rates, options);
  std::vector<double> freq(graph.num_transitions(), 0.0);
  // Each state where t is enabled contributes exactly one outgoing edge for
  // t, so summing pi[from] * rate over edges gives rate * P(enabled).
  for (const CtmcEdge& e : chain.edges) {
    freq[e.transition] += pi[e.from] * rates[e.transition];
  }
  return freq;
}

GeneralMethodResult exponential_throughput_general(
    const TimedEventGraph& graph, const std::vector<double>& rates,
    const std::vector<std::size_t>& counted,
    const GeneralMethodOptions& options) {
  SF_REQUIRE(!counted.empty(), "no transitions selected for counting");
  const TpnMarkovChain chain =
      explore_markings(graph, rates, options.reachability);
  const Vector pi = solve_stationary(chain, rates, options);

  std::vector<char> is_counted(graph.num_transitions(), 0);
  for (std::size_t t : counted) {
    SF_REQUIRE(t < graph.num_transitions(), "counted transition out of range");
    is_counted[t] = 1;
  }
  GeneralMethodResult result;
  result.num_states = chain.num_states;
  result.capacity_clipped = chain.capacity_clipped;
  for (const CtmcEdge& e : chain.edges) {
    if (is_counted[e.transition])
      result.throughput += pi[e.from] * rates[e.transition];
  }
  return result;
}

GeneralMethodResult saturated_flow(const TimedEventGraph& graph,
                                   const std::vector<double>& rates,
                                   const GeneralMethodOptions& options) {
  SF_REQUIRE(graph.num_transitions() > 0, "empty event graph");
  const TpnMarkovChain chain =
      explore_markings(graph, rates, options.reachability);
  const Vector pi = solve_stationary(chain, rates, options);
  GeneralMethodResult result;
  result.num_states = chain.num_states;
  result.capacity_clipped = chain.capacity_clipped;
  for (const CtmcEdge& e : chain.edges) {
    result.throughput += pi[e.from] * rates[e.transition];
  }
  return result;
}

}  // namespace streamflow
