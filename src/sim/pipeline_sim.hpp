// Direct discrete-event simulation of the replicated pipeline — the analog
// of the paper's SimGrid experiments, implemented independently of the TPN
// model (it unrolls the system semantics per data set). Agreement between
// this simulator and the event-graph analyses/simulation is the "fidelity"
// experiment of §7.4.
//
// Overlap semantics: per processor, the receive port, compute unit, and send
// port are three independent serial resources; buffers between them are
// unbounded.
// Strict semantics: each processor runs receive -> compute -> send as one
// serial loop; it starts receiving data set n + R only after finishing the
// send for data set n.
//
// Also implements the "associated case" of §6.2: per data set, the stage
// work w_i(n) and file size delta_i(n) are drawn once and shared by all
// resources touching that data set, creating the positive correlation the
// paper studies (Theorem 8).
#pragma once

#include <cstdint>

#include "dist/batch_sampler.hpp"
#include "dist/distribution.hpp"
#include "model/timing.hpp"

namespace streamflow {

struct PipelineSimOptions {
  /// Number of data sets pushed through the pipeline.
  std::int64_t data_sets = 10'000;
  /// Fraction of data sets discarded as transient before measuring. Zero
  /// reproduces the paper's SimGrid protocol (completed / total time).
  double warmup_fraction = 0.2;
  /// Seed for the seed-taking simulate overloads; ignored when a Prng is
  /// injected (the experiment engine derives substreams itself).
  std::uint64_t seed = 42;
  /// Fraction of the nominal bandwidth actually achievable; the paper's
  /// SimGrid runs use 0.92 (communication times are divided by this).
  double bandwidth_efficiency = 1.0;
  /// kBatched (default): each resource (team member's compute unit, link,
  /// association multiplier slot) draws from its own pure split() substream
  /// of the injected stream's entry state, served through SIMD-refilled
  /// BatchSamplers. kScalarCompat keeps the legacy discipline (every draw
  /// from the single injected stream in program order). Different (equally
  /// valid) draw assignments: numerically different, statistically the same,
  /// both deterministic for a given (inputs, seed).
  SamplingMode sampling = SamplingMode::kBatched;
  /// Refill kernel for the batched mode; kAuto picks the best the CPU
  /// supports. Tests force scalar/SSE4/AVX2 to pin byte-equality per path.
  simd::Isa refill_isa = simd::Isa::kAuto;

  /// Rejects out-of-range settings (data_sets < 10, warmup_fraction outside
  /// [0, 1) — including NaN — or bandwidth_efficiency outside (0, 1]).
  /// Called by every simulate entry point.
  void validate() const;
};

struct PipelineSimResult {
  double throughput = 0.0;     ///< completion rate (data sets per time)
  double in_order_throughput = 0.0;  ///< paced by the slowest last-stage
                                     ///< member (ordered delivery)
  std::int64_t completed = 0;  ///< data sets counted in the window
  double elapsed = 0.0;        ///< window length
  double makespan = 0.0;       ///< completion time of the last data set
  /// Traversal latency (completion minus the start of the data set's first
  /// computation), over the measured window. In the saturated regime
  /// waiting before stage 1 is unbounded, so the traversal latency is the
  /// meaningful per-item delay.
  double mean_latency = 0.0;
  double max_latency = 0.0;
};

/// Independent-case simulation: per-resource I.I.D. laws from `timing`,
/// drawing every time from the injected generator — the replication-friendly
/// core used by the experiment engine. options.seed is ignored here.
PipelineSimResult simulate_pipeline(const Mapping& mapping,
                                    ExecutionModel model,
                                    const StochasticTiming& timing, Prng& prng,
                                    const PipelineSimOptions& options = {});

/// Convenience overload seeding a fresh generator from options.seed.
PipelineSimResult simulate_pipeline(const Mapping& mapping,
                                    ExecutionModel model,
                                    const StochasticTiming& timing,
                                    const PipelineSimOptions& options = {});

/// How far the per-data-set size correlation of §6.2 reaches.
enum class AssociationScope {
  /// One size multiplier per data set, shared by EVERY computation and
  /// transfer of that data set along its whole path ("if one instance
  /// happens to be large, it is large at every stage"). NOTE: this is a
  /// correlation STRONGER than §6.2's model, which keeps stage works and
  /// file sizes mutually independent across columns; path-wide correlation
  /// makes each row's total service block more variable (icx-larger) and
  /// can push the Strict throughput BELOW the independent case. Kept as an
  /// extension study.
  kPerDataSet,
  /// One independent multiplier per (stage, data set) and per (file, data
  /// set) — §6.2's model exactly. Each data set materializes one processor
  /// per stage and one link per file, so the associated coupling between
  /// same-team processors never interacts dynamically: this is
  /// distributionally identical to the independent case, and Theorem 8's
  /// ordering det >= associated >= independent holds with equality on the
  /// right.
  kPerStage,
};

/// Associated-case simulation: multipliers drawn from `size_law` rescaled
/// to mean 1 and applied to the deterministic times (§6.2, Theorem 8).
/// options.seed is ignored; the injected generator drives every draw.
PipelineSimResult simulate_pipeline_associated(
    const Mapping& mapping, ExecutionModel model, const Distribution& size_law,
    Prng& prng, const PipelineSimOptions& options = {},
    AssociationScope scope = AssociationScope::kPerDataSet);

/// Convenience overload seeding a fresh generator from options.seed.
PipelineSimResult simulate_pipeline_associated(
    const Mapping& mapping, ExecutionModel model, const Distribution& size_law,
    const PipelineSimOptions& options = {},
    AssociationScope scope = AssociationScope::kPerDataSet);

}  // namespace streamflow
