#include "sim/pipeline_sim.hpp"

#include <algorithm>
#include <limits>
#include <functional>
#include <vector>

#include "common/prng.hpp"

namespace streamflow {

namespace {

/// Rolling history of the last `window` values of a per-stage event series.
class History {
 public:
  explicit History(std::size_t window) : values_(std::max<std::size_t>(window, 1), 0.0) {}

  /// Value for data set n - back, where back <= window; data sets before the
  /// first one are "ready at time 0".
  double get(std::int64_t n, std::int64_t back) const {
    const std::int64_t idx = n - back;
    if (idx < 0) return 0.0;
    return values_[static_cast<std::size_t>(idx) % values_.size()];
  }

  void set(std::int64_t n, double value) {
    values_[static_cast<std::size_t>(n) % values_.size()] = value;
  }

 private:
  std::vector<double> values_;
};

/// Type-erased sampler for the paths where per-draw overhead is acceptable
/// (scalar-compat mode, association multipliers).
struct Sampler {
  /// comp(i, n): computation time of stage i for data set n;
  /// comm(i, n): transfer time of file F_i for data set n.
  std::function<double(std::size_t, std::int64_t)> comp;
  std::function<double(std::size_t, std::int64_t)> comm;
};

/// Independent-case fast path: one BatchSampler per (stage, team member)
/// compute unit — the member's law is fixed, so inversion families get the
/// vectorized transform — and one BufferedPrng per link, sampled per draw
/// because the (sender, receiver) law varies with the round-robin phase.
/// Stream indices are assigned in a fixed enumeration order (all compute
/// units stage-major, then links), so results depend only on (inputs, seed).
struct BatchedTimingSampler {
  BatchedTimingSampler(const Mapping& mapping, const StochasticTiming& timing,
                       const Prng& root, const PipelineSimOptions& options)
      : mapping_(mapping), timing_(timing) {
    const std::size_t n_stages = mapping.num_stages();
    std::size_t total_members = 0;
    comp_offset_.reserve(n_stages);
    for (std::size_t i = 0; i < n_stages; ++i) {
      comp_offset_.push_back(total_members);
      total_members += mapping.team(i).size();
    }
    const std::size_t n_links = n_stages > 1 ? n_stages - 1 : 0;
    const std::size_t block = pick_block_draws(
        total_members + n_links, static_cast<std::size_t>(options.data_sets));
    comp_samplers_.reserve(total_members);
    std::size_t stream = 0;
    for (std::size_t i = 0; i < n_stages; ++i) {
      for (const std::size_t p : mapping.team(i)) {
        comp_samplers_.emplace_back(timing.comp(p), root.split(stream++),
                                    options.refill_isa, block);
      }
    }
    comm_streams_.reserve(n_links);
    for (std::size_t i = 0; i < n_links; ++i) {
      comm_streams_.emplace_back(root.split(stream++), options.refill_isa,
                                 block);
    }
  }

  double comp(std::size_t i, std::int64_t n) {
    const auto& team = mapping_.team(i);
    const auto member = static_cast<std::size_t>(
        n % static_cast<std::int64_t>(team.size()));
    return comp_samplers_[comp_offset_[i] + member].next();
  }

  double comm(std::size_t i, std::int64_t n) {
    const auto& senders = mapping_.team(i);
    const auto& receivers = mapping_.team(i + 1);
    const std::size_t p = senders[static_cast<std::size_t>(
        n % static_cast<std::int64_t>(senders.size()))];
    const std::size_t q = receivers[static_cast<std::size_t>(
        n % static_cast<std::int64_t>(receivers.size()))];
    return timing_.comm(p, q)->sample(comm_streams_[i]);
  }

 private:
  const Mapping& mapping_;
  const StochasticTiming& timing_;
  std::vector<std::size_t> comp_offset_;
  std::vector<BatchSampler> comp_samplers_;
  std::vector<BufferedPrng> comm_streams_;
};

template <typename SamplerT>
PipelineSimResult run(const Mapping& mapping, ExecutionModel model,
                      SamplerT& sampler,
                      const PipelineSimOptions& options) {
  options.validate();

  const std::size_t n_stages = mapping.num_stages();
  std::vector<std::int64_t> r(n_stages);
  for (std::size_t i = 0; i < n_stages; ++i)
    r[i] = static_cast<std::int64_t>(mapping.replication(i));

  // comp_done[i]: completion of stage i's computation for data set n.
  // xfer_done[i]: completion of file F_i's transfer for data set n.
  std::vector<History> comp_done;
  std::vector<History> xfer_done;
  comp_done.reserve(n_stages);
  for (std::size_t i = 0; i < n_stages; ++i) {
    comp_done.emplace_back(static_cast<std::size_t>(r[i]) + 1);
  }
  xfer_done.reserve(n_stages);
  for (std::size_t i = 0; i + 1 < n_stages; ++i) {
    xfer_done.emplace_back(
        static_cast<std::size_t>(std::max(r[i], r[i + 1])) + 1);
  }

  const std::int64_t warmup = static_cast<std::int64_t>(
      options.warmup_fraction * static_cast<double>(options.data_sets));
  // Replicas of the last stage can complete at different asymptotic rates
  // (no downstream round-robin constrains them), so throughput is measured
  // per last-stage member and summed.
  const std::int64_t r_last = r[n_stages - 1];
  SF_REQUIRE(options.data_sets - warmup >= 2 * r_last,
             "need at least two measured completions per last-stage member");
  std::vector<double> member_start(static_cast<std::size_t>(r_last), 0.0);
  std::vector<double> member_end(static_cast<std::size_t>(r_last), 0.0);
  std::vector<std::int64_t> member_count(static_cast<std::size_t>(r_last), 0);
  double last_completion = 0.0;
  double latency_sum = 0.0;
  double latency_max = 0.0;
  std::int64_t latency_count = 0;

  for (std::int64_t n = 0; n < options.data_sets; ++n) {
    double first_start = 0.0;
    for (std::size_t i = 0; i < n_stages; ++i) {
      // --- computation of stage i for data set n ------------------------
      double ready = 0.0;
      if (i > 0) ready = xfer_done[i - 1].get(n, 0);  // its input arrived
      if (model == ExecutionModel::kOverlap) {
        // The compute unit is serial across the processor's occurrences.
        ready = std::max(ready, comp_done[i].get(n, r[i]));
      } else if (i == 0) {
        // Strict, first stage: compute(n) waits for the processor's
        // previous full cycle, which ends with its send (or its compute if
        // there is no send).
        const double prev_cycle = (n_stages > 1)
                                      ? xfer_done[0].get(n, r[0])
                                      : comp_done[0].get(n, r[0]);
        ready = std::max(ready, prev_cycle);
      }
      // Strict, i > 0: the receive (transfer) already serialized the cycle.
      if (i == 0) first_start = ready;
      comp_done[i].set(n, ready + sampler.comp(i, n));

      // --- transfer of file F_i for data set n --------------------------
      if (i + 1 < n_stages) {
        double xfer_ready = comp_done[i].get(n, 0);
        if (model == ExecutionModel::kOverlap) {
          // Sender's output port and receiver's input port are serial.
          xfer_ready = std::max(xfer_ready, xfer_done[i].get(n, r[i]));
          xfer_ready = std::max(xfer_ready, xfer_done[i].get(n, r[i + 1]));
        } else {
          // Strict: the receiver must have finished its previous full
          // cycle (which ends with its own send, or compute at the last
          // stage) before accepting this file.
          const double receiver_prev =
              (i + 2 < n_stages) ? xfer_done[i + 1].get(n, r[i + 1])
                                 : comp_done[i + 1].get(n, r[i + 1]);
          xfer_ready = std::max(xfer_ready, receiver_prev);
        }
        const double duration =
            sampler.comm(i, n) / options.bandwidth_efficiency;
        xfer_done[i].set(n, xfer_ready + duration);
      }
    }
    const double done = comp_done[n_stages - 1].get(n, 0);
    const auto member = static_cast<std::size_t>(n % r_last);
    if (n < warmup) {
      member_start[member] = done;  // keeps the last pre-warmup completion
    } else {
      member_end[member] = done;
      ++member_count[member];
      const double latency = done - first_start;
      latency_sum += latency;
      latency_max = std::max(latency_max, latency);
      ++latency_count;
    }
    last_completion = std::max(last_completion, done);
  }

  PipelineSimResult result;
  result.makespan = last_completion;
  double min_member_rate = std::numeric_limits<double>::infinity();
  for (std::size_t k = 0; k < static_cast<std::size_t>(r_last); ++k) {
    const double span = member_end[k] - member_start[k];
    SF_ASSERT(span > 0.0, "empty measurement window");
    const double rate = static_cast<double>(member_count[k]) / span;
    result.completed += member_count[k];
    result.throughput += rate;
    min_member_rate = std::min(min_member_rate, rate);
    result.elapsed = std::max(result.elapsed, span);
  }
  result.in_order_throughput =
      min_member_rate * static_cast<double>(r_last);
  if (latency_count > 0) {
    result.mean_latency = latency_sum / static_cast<double>(latency_count);
    result.max_latency = latency_max;
  }
  return result;
}

}  // namespace

void PipelineSimOptions::validate() const {
  SF_REQUIRE(data_sets >= 10, "need at least 10 data sets");
  SF_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
             "warmup fraction must be in [0, 1)");
  SF_REQUIRE(bandwidth_efficiency > 0.0 && bandwidth_efficiency <= 1.0,
             "bandwidth efficiency must be in (0, 1]");
}

PipelineSimResult simulate_pipeline(const Mapping& mapping,
                                    ExecutionModel model,
                                    const StochasticTiming& timing, Prng& prng,
                                    const PipelineSimOptions& options) {
  options.validate();
  if (options.sampling == SamplingMode::kBatched) {
    // Per-resource substreams split from the stream's entry state; the
    // parent advances exactly one draw so back-to-back simulations on the
    // same injected stream see fresh substream families.
    const Prng root = prng;
    (void)prng();
    BatchedTimingSampler sampler(mapping, timing, root, options);
    return run(mapping, model, sampler, options);
  }
  Sampler sampler;
  sampler.comp = [&mapping, &timing, &prng](std::size_t i, std::int64_t n) {
    const auto& team = mapping.team(i);
    const std::size_t p = team[static_cast<std::size_t>(
        n % static_cast<std::int64_t>(team.size()))];
    return timing.comp(p)->sample(prng);
  };
  sampler.comm = [&mapping, &timing, &prng](std::size_t i, std::int64_t n) {
    const auto& senders = mapping.team(i);
    const auto& receivers = mapping.team(i + 1);
    const std::size_t p = senders[static_cast<std::size_t>(
        n % static_cast<std::int64_t>(senders.size()))];
    const std::size_t q = receivers[static_cast<std::size_t>(
        n % static_cast<std::int64_t>(receivers.size()))];
    return timing.comm(p, q)->sample(prng);
  };
  return run(mapping, model, sampler, options);
}

PipelineSimResult simulate_pipeline(const Mapping& mapping,
                                    ExecutionModel model,
                                    const StochasticTiming& timing,
                                    const PipelineSimOptions& options) {
  Prng prng(options.seed);
  return simulate_pipeline(mapping, model, timing, prng, options);
}

PipelineSimResult simulate_pipeline_associated(
    const Mapping& mapping, ExecutionModel model, const Distribution& size_law,
    Prng& prng, const PipelineSimOptions& options, AssociationScope scope) {
  options.validate();
  const DistributionPtr unit_law = size_law.with_mean(1.0);
  const std::size_t n_stages = mapping.num_stages();

  // kPerDataSet: ONE multiplier per data set drives every time along its
  // path (§6.2: the data set's size). kPerStage: independent multipliers
  // per stage/file, the degenerate control.
  std::vector<double> work_mult(n_stages, 1.0);
  std::vector<double> size_mult(n_stages > 1 ? n_stages - 1 : 0, 1.0);
  std::int64_t drawn_for = -1;

  // Batched mode: one BatchSampler per multiplier slot (a single shared
  // slot for kPerDataSet; one per stage and per link for kPerStage), each
  // on its own pure substream of the entry state, consumed in data-set
  // order. Scalar-compat mode leaves slot_samplers empty and draws from the
  // injected stream inline.
  std::vector<BatchSampler> slot_samplers;
  if (options.sampling == SamplingMode::kBatched) {
    const Prng root = prng;
    (void)prng();
    const std::size_t n_slots = scope == AssociationScope::kPerDataSet
                                    ? 1
                                    : work_mult.size() + size_mult.size();
    const std::size_t block = pick_block_draws(
        n_slots, static_cast<std::size_t>(options.data_sets));
    slot_samplers.reserve(n_slots);
    for (std::size_t k = 0; k < n_slots; ++k) {
      slot_samplers.emplace_back(unit_law, root.split(k), options.refill_isa,
                                 block);
    }
  }

  auto refresh = [&](std::int64_t n) {
    if (drawn_for == n) return;
    drawn_for = n;
    const bool batched = !slot_samplers.empty();
    if (scope == AssociationScope::kPerDataSet) {
      const double shared =
          batched ? slot_samplers[0].next() : unit_law->sample(prng);
      for (double& w : work_mult) w = shared;
      for (double& s : size_mult) s = shared;
      return;
    }
    std::size_t slot = 0;
    for (double& w : work_mult)
      w = batched ? slot_samplers[slot++].next() : unit_law->sample(prng);
    for (double& s : size_mult)
      s = batched ? slot_samplers[slot++].next() : unit_law->sample(prng);
  };

  Sampler sampler;
  sampler.comp = [&, unit_law](std::size_t i, std::int64_t n) {
    refresh(n);
    const auto& team = mapping.team(i);
    const std::size_t p = team[static_cast<std::size_t>(
        n % static_cast<std::int64_t>(team.size()))];
    return work_mult[i] * mapping.comp_time(p);
  };
  sampler.comm = [&, unit_law](std::size_t i, std::int64_t n) {
    refresh(n);
    const auto& senders = mapping.team(i);
    const auto& receivers = mapping.team(i + 1);
    const std::size_t p = senders[static_cast<std::size_t>(
        n % static_cast<std::int64_t>(senders.size()))];
    const std::size_t q = receivers[static_cast<std::size_t>(
        n % static_cast<std::int64_t>(receivers.size()))];
    return size_mult[i] * mapping.comm_time(p, q);
  };
  return run(mapping, model, sampler, options);
}

PipelineSimResult simulate_pipeline_associated(
    const Mapping& mapping, ExecutionModel model, const Distribution& size_law,
    const PipelineSimOptions& options, AssociationScope scope) {
  Prng prng(options.seed);
  return simulate_pipeline_associated(mapping, model, size_law, prng, options,
                                      scope);
}

}  // namespace streamflow
