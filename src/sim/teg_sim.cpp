#include "sim/teg_sim.hpp"

#include <algorithm>
#include <limits>

#include "common/prng.hpp"

namespace streamflow {

std::vector<DistributionPtr> transition_laws(const TimedEventGraph& graph,
                                             const StochasticTiming& timing) {
  std::vector<DistributionPtr> laws;
  laws.reserve(graph.num_transitions());
  for (const Transition& t : graph.transitions()) {
    laws.push_back(t.kind == TransitionKind::kCompute
                       ? timing.comp(t.proc)
                       : timing.comm(t.proc, t.proc2));
  }
  return laws;
}

namespace {

/// Topological order of the token-free-place subgraph (exists by liveness).
std::vector<std::size_t> token_free_topo_order(const TimedEventGraph& graph) {
  std::vector<std::size_t> indegree(graph.num_transitions(), 0);
  for (const Place& p : graph.places()) {
    if (p.initial_tokens == 0) ++indegree[p.to];
  }
  std::vector<std::size_t> order;
  order.reserve(graph.num_transitions());
  std::vector<std::size_t> queue;
  for (std::size_t t = 0; t < graph.num_transitions(); ++t)
    if (indegree[t] == 0) queue.push_back(t);
  while (!queue.empty()) {
    const std::size_t t = queue.back();
    queue.pop_back();
    order.push_back(t);
    for (std::size_t pid : graph.output_places(t)) {
      const Place& p = graph.place(pid);
      if (p.initial_tokens > 0) continue;
      if (--indegree[p.to] == 0) queue.push_back(p.to);
    }
  }
  SF_ASSERT(order.size() == graph.num_transitions(),
            "token-free subgraph has a cycle: the net is not live");
  return order;
}

/// The (max,plus) round loop, generic over how transition t draws its
/// firing time (scalar-compat: one shared stream in program order; batched:
/// one BatchSampler per transition). Static dispatch — a per-draw
/// std::function here would cost exactly the call overhead the batched
/// sampling layer exists to remove.
template <typename DrawFn>
TegSimResult run_rounds(const TimedEventGraph& graph,
                        const TegSimOptions& options, DrawFn&& draw) {
  const std::vector<std::size_t> order = token_free_topo_order(graph);

  // prev[t] = completion of firing k-1, curr[t] = completion of firing k.
  std::vector<double> prev(graph.num_transitions(), 0.0);
  std::vector<double> curr(graph.num_transitions(), 0.0);
  const std::vector<std::size_t> last_col = graph.last_column_transitions();
  SF_ASSERT(!last_col.empty(), "graph has no last-column transitions");

  const std::int64_t warmup_rounds = static_cast<std::int64_t>(
      options.warmup_fraction * static_cast<double>(options.rounds));

  // Rows of a feed-forward net can fire at different asymptotic rates (a
  // slow output row lags unboundedly behind a fast one), so the throughput
  // must be measured PER last-column transition and summed — measuring one
  // global window would conflate the rows.
  std::vector<double> window_start(last_col.size(), 0.0);
  std::vector<double> window_end(last_col.size(), 0.0);

  for (std::int64_t k = 1; k <= options.rounds; ++k) {
    for (const std::size_t t : order) {
      double ready = 0.0;
      for (const std::size_t pid : graph.input_places(t)) {
        const Place& p = graph.place(pid);
        // A place with w tokens hands firing k the token produced by the
        // k-w-th firing of its producer (or an initial token, ready at 0).
        const double avail =
            p.initial_tokens > 0 ? prev[p.from] : curr[p.from];
        ready = std::max(ready, avail);
      }
      curr[t] = ready + draw(t);
    }
    if (k == warmup_rounds) {
      for (std::size_t i = 0; i < last_col.size(); ++i)
        window_start[i] = curr[last_col[i]];
    }
    prev.swap(curr);
  }
  // prev now holds the final round's completions.
  for (std::size_t i = 0; i < last_col.size(); ++i)
    window_end[i] = prev[last_col[i]];

  TegSimResult result;
  const std::int64_t measured_rounds =
      options.rounds - std::max<std::int64_t>(warmup_rounds, 0);
  result.completed =
      measured_rounds * static_cast<std::int64_t>(last_col.size());
  double min_row_rate = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < last_col.size(); ++i) {
    const double span = window_end[i] - window_start[i];
    SF_ASSERT(span > 0.0, "empty measurement window");
    const double rate = static_cast<double>(measured_rounds) / span;
    result.throughput += rate;
    min_row_rate = std::min(min_row_rate, rate);
    result.horizon = std::max(result.horizon, window_end[i]);
    result.elapsed = std::max(result.elapsed, span);
  }
  result.in_order_throughput =
      min_row_rate * static_cast<double>(last_col.size());
  return result;
}

}  // namespace

void TegSimOptions::validate() const {
  SF_REQUIRE(rounds >= 10, "need at least 10 rounds");
  SF_REQUIRE(warmup_fraction >= 0.0 && warmup_fraction < 1.0,
             "warmup fraction must be in [0, 1)");
}

TegSimResult simulate_teg(const TimedEventGraph& graph,
                          const std::vector<DistributionPtr>& laws,
                          Prng& prng, const TegSimOptions& options) {
  SF_REQUIRE(laws.size() == graph.num_transitions(),
             "need one law per transition");
  options.validate();

  if (options.sampling == SamplingMode::kScalarCompat) {
    return run_rounds(graph, options,
                      [&](std::size_t t) { return laws[t]->sample(prng); });
  }

  // Batched: transition t draws from the pure child substream split(t) of
  // the stream's entry state. The parent is advanced exactly one draw so
  // that back-to-back simulations on the same injected stream see fresh
  // (decorrelated) substream families, as they did when draws were consumed
  // inline.
  const Prng root = prng;
  (void)prng();
  const std::size_t raw_block = pick_block_draws(
      laws.size(), static_cast<std::size_t>(options.rounds));
  std::vector<BatchSampler> samplers;
  samplers.reserve(laws.size());
  for (std::size_t t = 0; t < laws.size(); ++t)
    samplers.emplace_back(laws[t], root.split(t), options.refill_isa,
                          raw_block);
  return run_rounds(graph, options,
                    [&](std::size_t t) { return samplers[t].next(); });
}

TegSimResult simulate_teg(const TimedEventGraph& graph,
                          const std::vector<DistributionPtr>& laws,
                          const TegSimOptions& options) {
  Prng prng(options.seed);
  return simulate_teg(graph, laws, prng, options);
}

TegSimResult simulate_teg_deterministic(const TimedEventGraph& graph,
                                        const TegSimOptions& options) {
  std::vector<DistributionPtr> laws;
  laws.reserve(graph.num_transitions());
  for (const Transition& t : graph.transitions())
    laws.push_back(make_constant(t.duration));
  return simulate_teg(graph, laws, options);
}

}  // namespace streamflow
