// Stochastic simulation of a timed event graph — the analog of the paper's
// `eg_sim` (ERS toolbox). Event graphs are conflict-free (every place has
// one producer and one consumer), so the execution obeys the (max,plus)
// recurrence
//   C_t(k) = d_t(k) + max over input places p=(s -> t) of C_s(k - w_p),
// where C_t(k) is the completion of t's k-th firing, d_t(k) the sampled
// firing duration, and w_p the initial marking of p (0 or 1 in our nets).
// Processing transitions in topological order of the token-free subgraph
// (acyclic by liveness) makes each round O(V + E).
#pragma once

#include <cstdint>
#include <vector>

#include "dist/batch_sampler.hpp"
#include "dist/distribution.hpp"
#include "model/timing.hpp"
#include "tpn/graph.hpp"

namespace streamflow {

struct TegSimOptions {
  /// Rounds to simulate: each round fires every transition once, i.e.
  /// completes m data sets (m = TPN rows).
  std::int64_t rounds = 2'000;
  /// Fraction of rounds discarded as transient before measuring.
  double warmup_fraction = 0.2;
  /// Seed for the seed-taking simulate_teg overload; ignored when a Prng is
  /// injected (the experiment engine derives substreams itself).
  std::uint64_t seed = 42;
  /// kBatched (default): each transition draws from its own pure
  /// split() substream of the injected stream's entry state, served through
  /// a SIMD-refilled BatchSampler — deterministic for a given (graph, laws,
  /// stream state) and independent of everything else. kScalarCompat keeps
  /// the legacy discipline (all transitions draw from the injected stream
  /// in program order). The two modes realize different (equally valid)
  /// draw assignments, so their results differ numerically but agree
  /// statistically.
  SamplingMode sampling = SamplingMode::kBatched;
  /// Refill kernel for the batched mode; kAuto picks the best the CPU
  /// supports. Tests force scalar/SSE4/AVX2 to pin byte-equality per path.
  simd::Isa refill_isa = simd::Isa::kAuto;

  /// Rejects out-of-range settings (rounds < 10, warmup_fraction outside
  /// [0, 1) — including NaN). Called by every simulate entry point.
  void validate() const;
};

struct TegSimResult {
  /// Measured steady-state completion throughput (data sets per time unit).
  double throughput = 0.0;
  /// In-order delivery rate: paced by the slowest output row (m times the
  /// smallest per-row rate).
  double in_order_throughput = 0.0;
  /// Data sets completed in the measured window.
  std::int64_t completed = 0;
  /// Time span of the measured window.
  double elapsed = 0.0;
  /// Completion time of the very last firing (total simulated horizon).
  double horizon = 0.0;
};

/// Per-transition firing-time laws for a TPN built from `mapping`:
/// compute transitions get timing.comp(proc), communication transitions get
/// timing.comm(sender, receiver).
std::vector<DistributionPtr> transition_laws(const TimedEventGraph& graph,
                                             const StochasticTiming& timing);

/// Simulates the graph with one law per transition, drawing every firing
/// time from the injected generator — the replication-friendly core: the
/// experiment engine hands each replication its own substream. options.seed
/// is ignored here.
TegSimResult simulate_teg(const TimedEventGraph& graph,
                          const std::vector<DistributionPtr>& laws,
                          Prng& prng, const TegSimOptions& options = {});

/// Convenience overload seeding a fresh generator from options.seed.
TegSimResult simulate_teg(const TimedEventGraph& graph,
                          const std::vector<DistributionPtr>& laws,
                          const TegSimOptions& options = {});

/// Convenience overload: constant firing times taken from the transitions'
/// deterministic durations.
TegSimResult simulate_teg_deterministic(const TimedEventGraph& graph,
                                        const TegSimOptions& options = {});

}  // namespace streamflow
