// Assignment of random laws to hardware resources — the "independent case"
// of §2.4: one I.I.D. law per processor and per used link, mutually
// independent. Deterministic times are the degenerate constant laws.
#pragma once

#include <vector>

#include "dist/distribution.hpp"
#include "model/mapping.hpp"

namespace streamflow {

/// Per-resource law table for a given mapping. The mean of each law defaults
/// to the deterministic time of the resource (w_i/s_p, delta_i/b_{p,q}), as
/// in all of the paper's experiments, but can be overridden per resource.
class StochasticTiming {
 public:
  /// All laws constant, equal to the deterministic times.
  static StochasticTiming deterministic(const Mapping& mapping);

  /// All laws exponential with the deterministic times as means (§5).
  static StochasticTiming exponential(const Mapping& mapping);

  /// Every resource gets `prototype` rescaled to its deterministic mean
  /// (the Fig 16/17 protocol: same law family, equal means).
  static StochasticTiming scaled(const Mapping& mapping,
                                 const Distribution& prototype);

  /// Law of the computation time of processor p.
  const DistributionPtr& comp(std::size_t p) const;

  /// Law of the communication time on link (sender -> receiver).
  const DistributionPtr& comm(std::size_t sender, std::size_t receiver) const;

  /// Override one processor's law.
  void set_comp(std::size_t p, DistributionPtr law);

  /// Override one link's law.
  void set_comm(std::size_t sender, std::size_t receiver, DistributionPtr law);

  /// True if every assigned law is N.B.U.E. (Theorem 7's bounds then hold).
  bool all_nbue() const;

  /// True if every assigned law looks exponential-or-constant. Exact family
  /// membership is not checkable through the abstract interface, so this
  /// reports whether each law's squared coefficient of variation is 1
  /// (exponential) or 0 (constant).
  bool all_exponential() const;

  std::size_t num_processors() const { return comp_.size(); }

 private:
  explicit StochasticTiming(const Mapping& mapping);

  const Mapping* mapping_;
  std::vector<DistributionPtr> comp_;            // by processor, null if unused
  std::vector<DistributionPtr> comm_;            // row-major M x M, null unused
};

}  // namespace streamflow
