#include "model/instance.hpp"

namespace streamflow {

InstancePtr make_instance(Application application, Platform platform) {
  return std::make_shared<const Instance>(std::move(application),
                                          std::move(platform));
}

}  // namespace streamflow
