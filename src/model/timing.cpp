#include "model/timing.hpp"

#include <cmath>

namespace streamflow {

StochasticTiming::StochasticTiming(const Mapping& mapping)
    : mapping_(&mapping) {
  const std::size_t m = mapping.num_processors();
  comp_.assign(m, nullptr);
  comm_.assign(m * m, nullptr);
}

namespace {
template <typename MakeComp, typename MakeComm>
StochasticTiming build(const Mapping& mapping, MakeComp&& make_comp,
                       MakeComm&& make_comm, StochasticTiming timing) {
  const std::size_t n = mapping.num_stages();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t p : mapping.team(i)) {
      timing.set_comp(p, make_comp(mapping.comp_time(p)));
      if (i + 1 < n) {
        for (std::size_t q : mapping.team(i + 1)) {
          timing.set_comm(p, q, make_comm(mapping.comm_time(p, q)));
        }
      }
    }
  }
  return timing;
}
}  // namespace

StochasticTiming StochasticTiming::deterministic(const Mapping& mapping) {
  auto make = [](double mean) { return make_constant(mean); };
  return build(mapping, make, make, StochasticTiming(mapping));
}

StochasticTiming StochasticTiming::exponential(const Mapping& mapping) {
  auto make = [](double mean) {
    // A zero-time resource (empty file) stays deterministic zero.
    return mean > 0.0 ? make_exponential_mean(mean) : make_constant(0.0);
  };
  return build(mapping, make, make, StochasticTiming(mapping));
}

StochasticTiming StochasticTiming::scaled(const Mapping& mapping,
                                          const Distribution& prototype) {
  auto make = [&prototype](double mean) {
    return mean > 0.0 ? prototype.with_mean(mean) : make_constant(0.0);
  };
  return build(mapping, make, make, StochasticTiming(mapping));
}

const DistributionPtr& StochasticTiming::comp(std::size_t p) const {
  SF_REQUIRE(p < comp_.size(), "processor index out of range");
  SF_REQUIRE(comp_[p] != nullptr, "processor has no assigned law (unused?)");
  return comp_[p];
}

const DistributionPtr& StochasticTiming::comm(std::size_t sender,
                                              std::size_t receiver) const {
  const std::size_t m = comp_.size();
  SF_REQUIRE(sender < m && receiver < m, "processor index out of range");
  const DistributionPtr& law = comm_[sender * m + receiver];
  SF_REQUIRE(law != nullptr, "link has no assigned law (unused?)");
  return law;
}

void StochasticTiming::set_comp(std::size_t p, DistributionPtr law) {
  SF_REQUIRE(p < comp_.size(), "processor index out of range");
  SF_REQUIRE(law != nullptr, "law must not be null");
  comp_[p] = std::move(law);
}

void StochasticTiming::set_comm(std::size_t sender, std::size_t receiver,
                                DistributionPtr law) {
  const std::size_t m = comp_.size();
  SF_REQUIRE(sender < m && receiver < m, "processor index out of range");
  SF_REQUIRE(law != nullptr, "law must not be null");
  comm_[sender * m + receiver] = std::move(law);
}

bool StochasticTiming::all_nbue() const {
  for (const auto& law : comp_)
    if (law && !law->is_nbue()) return false;
  for (const auto& law : comm_)
    if (law && !law->is_nbue()) return false;
  return true;
}

bool StochasticTiming::all_exponential() const {
  auto exp_or_const = [](const DistributionPtr& law) {
    if (!law) return true;
    const double c = law->cv2();
    return c == 0.0 || std::fabs(c - 1.0) < 1e-12;
  };
  for (const auto& law : comp_)
    if (!exp_or_const(law)) return false;
  for (const auto& law : comm_)
    if (!exp_or_const(law)) return false;
  return true;
}

}  // namespace streamflow
