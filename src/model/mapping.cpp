#include "model/mapping.hpp"

#include <algorithm>
#include <sstream>

#include "common/math_utils.hpp"

namespace streamflow {

std::string to_string(ExecutionModel model) {
  return model == ExecutionModel::kOverlap ? "Overlap" : "Strict";
}

double CycleTime::exec(ExecutionModel model) const {
  if (model == ExecutionModel::kOverlap)
    return std::max({input, compute, output});
  return input + compute + output;
}

Mapping::Mapping(InstancePtr instance,
                 std::vector<std::vector<std::size_t>> teams,
                 const std::vector<char>* validate_column)
    : instance_(std::move(instance)), teams_(std::move(teams)) {
  SF_REQUIRE(instance_ != nullptr, "mapping requires a non-null instance");
  const std::size_t n = application().num_stages();
  const std::size_t m = platform().num_processors();
  SF_REQUIRE(teams_.size() == n, "need exactly one team per stage");

  stage_of_.assign(m, kUnused);
  team_index_of_.assign(m, 0);
  for (std::size_t i = 0; i < n; ++i) {
    SF_REQUIRE(!teams_[i].empty(),
               "stage " + std::to_string(i + 1) + " has an empty team");
    for (std::size_t k = 0; k < teams_[i].size(); ++k) {
      const std::size_t p = teams_[i][k];
      SF_REQUIRE(p < m, "team of stage " + std::to_string(i + 1) +
                            " references unknown processor " +
                            std::to_string(p));
      SF_REQUIRE(stage_of_[p] == kUnused,
                 "processor " + std::to_string(p) +
                     " is assigned to more than one stage");
      stage_of_[p] = i;
      team_index_of_[p] = k;
    }
  }

  // Every inter-team link must exist (positive bandwidth) unless the file is
  // empty; sender == receiver would mean the same processor serves two
  // stages, which the one-stage-per-processor rule already excludes. The
  // with_teams derive path narrows this O(N * R^2) pass to the columns a
  // move touched (untouched columns are covered by the base's invariants);
  // Debug builds keep checking every column so a trust violation trips the
  // assert below instead of corrupting an analysis.
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const bool trusted = validate_column != nullptr && !(*validate_column)[i];
#ifdef NDEBUG
    if (trusted) continue;
#endif
    if (application().file_size(i) == 0.0) continue;
    for (std::size_t p : teams_[i]) {
      for (std::size_t q : teams_[i + 1]) {
        if (trusted) {
          SF_ASSERT(platform().bandwidth(p, q) > 0.0,
                    "with_teams skipped validating a column whose teams "
                    "changed (incomplete touched_stages list)");
          continue;
        }
        SF_REQUIRE(platform().bandwidth(p, q) > 0.0,
                   "no bandwidth defined between processors " +
                       std::to_string(p) + " and " + std::to_string(q) +
                       " used by stages " + std::to_string(i + 1) + " -> " +
                       std::to_string(i + 2));
      }
    }
  }

  std::vector<std::int64_t> factors;
  factors.reserve(n);
  for (const auto& team : teams_)
    factors.push_back(static_cast<std::int64_t>(team.size()));
  num_paths_ = checked_lcm(std::span<const std::int64_t>(factors));
}

Mapping::Mapping(InstancePtr instance,
                 std::vector<std::vector<std::size_t>> teams)
    : Mapping(std::move(instance), std::move(teams),
              /*validate_column=*/nullptr) {}

Mapping::Mapping(Application application, Platform platform,
                 std::vector<std::vector<std::size_t>> teams)
    : Mapping(make_instance(std::move(application), std::move(platform)),
              std::move(teams), /*validate_column=*/nullptr) {}

Mapping Mapping::with_teams(const Mapping& base,
                            std::vector<std::vector<std::size_t>> teams,
                            const std::vector<std::size_t>& touched_stages) {
  const std::size_t n = base.num_stages();
  SF_REQUIRE(teams.size() == n, "need exactly one team per stage");
  // Column i sits between stages i and i+1: revalidate it iff one of its
  // endpoint teams changed.
  std::vector<char> validate(n == 0 ? 0 : n - 1, 0);
  for (const std::size_t stage : touched_stages) {
    if (stage == kUnused) continue;
    SF_REQUIRE(stage < n, "touched stage index out of range");
    if (stage > 0) validate[stage - 1] = 1;
    if (stage + 1 < n) validate[stage] = 1;
  }
  return Mapping(base.instance_, std::move(teams), &validate);
}

std::vector<std::size_t> Mapping::replications() const {
  std::vector<std::size_t> r;
  r.reserve(teams_.size());
  for (const auto& team : teams_) r.push_back(team.size());
  return r;
}

std::vector<std::size_t> Mapping::path(std::int64_t j) const {
  SF_REQUIRE(j >= 0, "path index must be non-negative");
  SF_REQUIRE(j < num_paths_,
             "path index " + std::to_string(j) + " out of range (m = " +
                 std::to_string(num_paths_) + " paths)");
  std::vector<std::size_t> p;
  p.reserve(teams_.size());
  for (const auto& team : teams_)
    p.push_back(team[static_cast<std::size_t>(
        j % static_cast<std::int64_t>(team.size()))]);
  return p;
}

double Mapping::comp_time(std::size_t p) const {
  const std::size_t stage = stage_of(p);
  SF_REQUIRE(stage != kUnused, "processor is not mapped to any stage");
  return application().work(stage) / platform().speed(p);
}

double Mapping::comm_time(std::size_t sender, std::size_t receiver) const {
  const std::size_t i = stage_of(sender);
  SF_REQUIRE(i != kUnused, "sender is not mapped");
  SF_REQUIRE(stage_of(receiver) == i + 1,
             "receiver must serve the stage following the sender's");
  const double delta = application().file_size(i);
  if (delta == 0.0) return 0.0;
  return delta / platform().bandwidth(sender, receiver);
}

CycleTime Mapping::cycle_time(std::size_t p) const {
  const std::size_t i = stage_of(p);
  SF_REQUIRE(i != kUnused, "processor is not mapped to any stage");
  const std::size_t a = team_index_of(p);
  const auto r_i = static_cast<std::int64_t>(teams_[i].size());

  CycleTime ct;

  // C_comp: p's own compute-unit busy time per global data set (p serves
  // one data set in R_i). Note: §2.2 uses the SLOWEST team member here; that
  // pacing is real for stages with a downstream collector but is not a
  // valid bound for a replicated last stage, so the slowest-member term is
  // accounted for separately in max_cycle_time().
  ct.compute = application().work(i) /
               (static_cast<double>(r_i) * platform().speed(p));

  // C_in: average busy time of p's input port per global data set. p's
  // occurrences are the rows j = a (mod R_i); the sender pattern repeats
  // with period lcm(R_{i-1}, R_i).
  if (i > 0) {
    const auto& prev = teams_[i - 1];
    const std::int64_t l =
        checked_lcm(r_i, static_cast<std::int64_t>(prev.size()));
    double sum = 0.0;
    for (std::int64_t j = static_cast<std::int64_t>(a); j < l; j += r_i) {
      const std::size_t sender =
          prev[static_cast<std::size_t>(j % static_cast<std::int64_t>(prev.size()))];
      sum += comm_time(sender, p);
    }
    ct.input = sum / static_cast<double>(l);
  }

  // C_out symmetrically, toward stage i+1.
  if (i + 1 < teams_.size()) {
    const auto& next = teams_[i + 1];
    const std::int64_t l =
        checked_lcm(r_i, static_cast<std::int64_t>(next.size()));
    double sum = 0.0;
    for (std::int64_t j = static_cast<std::int64_t>(a); j < l; j += r_i) {
      const std::size_t receiver =
          next[static_cast<std::size_t>(j % static_cast<std::int64_t>(next.size()))];
      sum += comm_time(p, receiver);
    }
    ct.output = sum / static_cast<double>(l);
  }

  return ct;
}

double Mapping::max_cycle_time(ExecutionModel model,
                               MctConvention convention) const {
  auto slowest_compute = [this](std::size_t i) {
    double slow_speed = platform().speed(teams_[i][0]);
    for (std::size_t q : teams_[i])
      slow_speed = std::min(slow_speed, platform().speed(q));
    return application().work(i) /
           (static_cast<double>(teams_[i].size()) * slow_speed);
  };

  double mct = 0.0;
  for (std::size_t p = 0; p < platform().num_processors(); ++p) {
    if (stage_of_[p] == kUnused) continue;
    CycleTime ct = cycle_time(p);
    if (convention == MctConvention::kPaperSlowestMember) {
      // §2.3 verbatim: C_comp(p) = w_i / (R_i * s_slow) for every stage.
      ct.compute = slowest_compute(stage_of_[p]);
    }
    mct = std::max(mct, ct.exec(model));
  }
  if (convention == MctConvention::kValidBound) {
    // Round-robin pacing (§2.2): a replicated stage delivers results to its
    // successor in row order, so the slowest team member paces the whole
    // stage: period >= w_i / (R_i * s_slow). This holds only when a
    // downstream stage collects in round-robin order — a replicated LAST
    // stage completes rows independently.
    for (std::size_t i = 0; i + 1 < teams_.size(); ++i) {
      mct = std::max(mct, slowest_compute(i));
    }
  }
  return mct;
}

double Mapping::stage_rate_bound(std::size_t stage) const {
  SF_REQUIRE(stage < teams_.size(), "stage index out of range");
  const double r = static_cast<double>(teams_[stage].size());
  double sum = 0.0;
  for (std::size_t q : teams_[stage]) {
    const CycleTime ct = cycle_time(q);
    // C_comp already carries the 1/R_i factor; C_in is per global data set
    // and q touches one in R_i, so its per-item port busy time is R_i*C_in.
    const double busy = std::max(ct.compute * r, r * ct.input);
    sum += 1.0 / busy;  // busy == 0 => +inf contribution (no constraint)
  }
  return sum;
}

double Mapping::critical_resource_throughput(ExecutionModel model) const {
  const double mct = max_cycle_time(model);
  SF_ASSERT(mct > 0.0, "degenerate mapping with zero cycle time");
  return 1.0 / mct;
}

std::string Mapping::to_string() const {
  std::ostringstream os;
  os << "Mapping[m=" << num_paths_ << " paths;";
  for (std::size_t i = 0; i < teams_.size(); ++i) {
    os << " T" << (i + 1) << "->{";
    for (std::size_t k = 0; k < teams_[i].size(); ++k)
      os << (k ? "," : "") << "P" << teams_[i][k];
    os << "}";
  }
  os << "]";
  return os.str();
}

}  // namespace streamflow
