#include "model/platform.hpp"

#include <algorithm>
#include <sstream>

namespace streamflow {

Platform::Platform(std::vector<double> speeds) : speeds_(std::move(speeds)) {
  SF_REQUIRE(!speeds_.empty(), "platform needs at least one processor");
  for (double s : speeds_)
    SF_REQUIRE(s > 0.0, "processor speed must be positive");
  bandwidths_.assign(speeds_.size() * speeds_.size(), 0.0);
}

Platform Platform::fully_connected(std::vector<double> speeds,
                                   double bandwidth) {
  SF_REQUIRE(bandwidth > 0.0, "bandwidth must be positive");
  Platform p(std::move(speeds));
  const std::size_t m = p.num_processors();
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = 0; b < m; ++b)
      if (a != b) p.bandwidths_[a * m + b] = bandwidth;
  return p;
}

Platform Platform::star(std::vector<double> speeds,
                        const std::vector<double>& nic_bandwidths) {
  Platform p(std::move(speeds));
  const std::size_t m = p.num_processors();
  SF_REQUIRE(nic_bandwidths.size() == m,
             "need one NIC bandwidth per processor");
  for (double b : nic_bandwidths)
    SF_REQUIRE(b > 0.0, "NIC bandwidth must be positive");
  for (std::size_t a = 0; a < m; ++a)
    for (std::size_t b = 0; b < m; ++b)
      if (a != b)
        p.bandwidths_[a * m + b] = std::min(nic_bandwidths[a], nic_bandwidths[b]);
  return p;
}

void Platform::set_bandwidth(std::size_t p, std::size_t q, double bandwidth) {
  SF_REQUIRE(p < speeds_.size() && q < speeds_.size(),
             "processor index out of range");
  SF_REQUIRE(p != q, "no self-link");
  SF_REQUIRE(bandwidth > 0.0, "bandwidth must be positive");
  const std::size_t m = speeds_.size();
  bandwidths_[p * m + q] = bandwidth;
  bandwidths_[q * m + p] = bandwidth;
}

bool Platform::homogeneous_network() const {
  double seen = 0.0;
  for (double b : bandwidths_) {
    if (b == 0.0) continue;
    if (seen == 0.0) seen = b;
    if (b != seen) return false;
  }
  return true;
}

std::string Platform::to_string() const {
  std::ostringstream os;
  os << "Platform[" << num_processors() << " processors; speeds:";
  for (double s : speeds_) os << " " << s;
  os << "]";
  return os.str();
}

}  // namespace streamflow
