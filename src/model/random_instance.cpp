#include "model/random_instance.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/math_utils.hpp"

namespace streamflow {

namespace {

/// Fisher–Yates shuffle driven by our deterministic PRNG.
template <typename T>
void shuffle(std::vector<T>& v, Prng& prng) {
  for (std::size_t i = v.size(); i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(prng.uniform_index(static_cast<std::uint64_t>(i)));
    std::swap(v[i - 1], v[j]);
  }
}

/// Uniform random composition of `total` into `parts` positive integers.
std::vector<std::size_t> random_composition(std::size_t total,
                                            std::size_t parts, Prng& prng) {
  SF_REQUIRE(parts >= 1 && total >= parts,
             "cannot split " + std::to_string(total) + " processors into " +
                 std::to_string(parts) + " non-empty teams");
  // Choose parts-1 distinct cut points in {1, .., total-1}.
  std::vector<std::size_t> cuts;
  cuts.reserve(parts - 1);
  std::vector<std::size_t> candidates(total - 1);
  for (std::size_t i = 0; i < total - 1; ++i) candidates[i] = i + 1;
  shuffle(candidates, prng);
  cuts.assign(candidates.begin(),
              candidates.begin() + static_cast<std::ptrdiff_t>(parts - 1));
  std::sort(cuts.begin(), cuts.end());
  std::vector<std::size_t> sizes;
  sizes.reserve(parts);
  std::size_t prev = 0;
  for (std::size_t c : cuts) {
    sizes.push_back(c - prev);
    prev = c;
  }
  sizes.push_back(total - prev);
  return sizes;
}

/// Preferential-attachment composition: every part starts at 1, each of the
/// remaining `total - parts` units joins part i with probability
/// proportional to size_i^skew. Large skews concentrate the mass into one
/// deep part (the deep-replication regime).
std::vector<std::size_t> skewed_composition(std::size_t total,
                                            std::size_t parts, double skew,
                                            Prng& prng) {
  std::vector<std::size_t> sizes(parts, 1);
  std::vector<double> weights(parts, 1.0);
  for (std::size_t unit = parts; unit < total; ++unit) {
    double sum = 0.0;
    for (double w : weights) sum += w;
    const double pick = prng.uniform(0.0, sum);
    double cursor = 0.0;
    std::size_t chosen = parts - 1;
    for (std::size_t i = 0; i < parts; ++i) {
      cursor += weights[i];
      if (pick < cursor) {
        chosen = i;
        break;
      }
    }
    ++sizes[chosen];
    weights[chosen] = std::pow(static_cast<double>(sizes[chosen]), skew);
  }
  return sizes;
}

}  // namespace

void RandomInstanceOptions::validate() const {
  SF_REQUIRE(zero_cost_fraction >= 0.0 && zero_cost_fraction <= 1.0,
             "zero_cost_fraction must lie in [0, 1]");
  SF_REQUIRE(degenerate_scale > 0.0, "degenerate_scale must be positive");
  SF_REQUIRE(bandwidth_heterogeneity >= 1.0,
             "bandwidth_heterogeneity must be >= 1");
  SF_REQUIRE(team_skew >= 0.0 && std::isfinite(team_skew),
             "team_skew must be finite and non-negative");
}

Mapping random_instance(const RandomInstanceOptions& options, Prng& prng) {
  SF_REQUIRE(options.num_stages >= 1, "need at least one stage");
  SF_REQUIRE(options.num_processors >= options.num_stages,
             "need at least one processor per stage");
  SF_REQUIRE(options.comp_min > 0.0 && options.comp_max >= options.comp_min,
             "invalid computation time range");
  SF_REQUIRE(options.comm_min > 0.0 && options.comm_max >= options.comm_min,
             "invalid communication time range");
  options.validate();

  // Draw team sizes until the lcm cap is satisfied.
  std::vector<std::size_t> sizes;
  constexpr int kMaxAttempts = 10'000;
  int attempt = 0;
  for (;;) {
    sizes = options.team_skew > 0.0
                ? skewed_composition(options.num_processors,
                                     options.num_stages, options.team_skew,
                                     prng)
                : random_composition(options.num_processors,
                                     options.num_stages, prng);
    std::vector<std::int64_t> factors(sizes.begin(), sizes.end());
    try {
      if (checked_lcm(std::span<const std::int64_t>(factors)) <=
          options.max_paths)
        break;
    } catch (const CapacityExceeded&) {
      // lcm overflow: treat as exceeding the cap and redraw.
    }
    if (++attempt >= kMaxAttempts) {
      throw CapacityExceeded(
          "could not draw replication factors whose lcm fits under max_paths=" +
          std::to_string(options.max_paths));
    }
  }

  // Assign shuffled processors to consecutive teams.
  std::vector<std::size_t> procs(options.num_processors);
  for (std::size_t p = 0; p < procs.size(); ++p) procs[p] = p;
  shuffle(procs, prng);
  std::vector<std::vector<std::size_t>> teams(options.num_stages);
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < options.num_stages; ++i) {
    teams[i].assign(procs.begin() + static_cast<std::ptrdiff_t>(cursor),
                    procs.begin() + static_cast<std::ptrdiff_t>(cursor + sizes[i]));
    cursor += sizes[i];
  }

  // Unit works and unit files; speeds/bandwidths chosen so times land in the
  // requested ranges (time = 1/speed, time = 1/bandwidth).
  Application app = Application::uniform(options.num_stages);

  // Degenerate-stage coin flips: one uniform per stage, drawn up front in
  // stage order so the flag sequence is independent of team sizes.
  std::vector<char> degenerate(options.num_stages, 0);
  if (options.zero_cost_fraction > 0.0) {
    for (std::size_t i = 0; i < options.num_stages; ++i) {
      degenerate[i] =
          prng.uniform(0.0, 1.0) < options.zero_cost_fraction ? 1 : 0;
    }
  }

  std::vector<double> speeds(options.num_processors, 1.0);
  for (std::size_t i = 0; i < options.num_stages; ++i) {
    for (std::size_t p : teams[i]) {
      double comp_time = prng.uniform(options.comp_min, options.comp_max);
      if (degenerate[i]) comp_time *= options.degenerate_scale;
      speeds[p] = app.work(i) / comp_time;
    }
  }
  // Heterogeneity multiplier: log-uniform on [1/h, h], drawn right after the
  // communication time it scales (no-op draw skipped entirely when h == 1,
  // keeping the default draw sequence byte-identical to the pre-knob one).
  const double log_h = std::log(options.bandwidth_heterogeneity);
  auto heterogeneity = [&]() {
    return log_h > 0.0 ? std::exp(prng.uniform(-log_h, log_h)) : 1.0;
  };
  Platform platform{speeds};
  for (std::size_t i = 0; i + 1 < options.num_stages; ++i) {
    const double column_time = prng.uniform(options.comm_min, options.comm_max);
    for (std::size_t p : teams[i]) {
      for (std::size_t q : teams[i + 1]) {
        double comm_time =
            options.homogeneous_network
                ? column_time
                : prng.uniform(options.comm_min, options.comm_max);
        if (!options.homogeneous_network) comm_time *= heterogeneity();
        platform.set_bandwidth(p, q, app.file_size(i) / comm_time);
      }
    }
  }

  // One shared allocation per generated instance (derived mappings and
  // search candidates share it instead of copying the bandwidth matrix).
  return Mapping(make_instance(std::move(app), std::move(platform)),
                 std::move(teams));
}

}  // namespace streamflow
