#include "model/serialization.hpp"

#include <map>
#include <optional>
#include <sstream>
#include <vector>

namespace streamflow {

void save_instance(std::ostream& os, const Mapping& mapping) {
  const Application& app = mapping.application();
  const Platform& platform = mapping.platform();
  os.precision(17);
  os << "streamflow-instance v1\n";
  os << "stages " << app.num_stages() << "\n";
  os << "works";
  for (double w : app.stage_works()) os << " " << w;
  os << "\nfiles";
  for (double d : app.file_sizes()) os << " " << d;
  os << "\nprocessors " << platform.num_processors() << "\n";
  os << "speeds";
  for (std::size_t p = 0; p < platform.num_processors(); ++p)
    os << " " << platform.speed(p);
  os << "\n";
  for (std::size_t p = 0; p < platform.num_processors(); ++p) {
    for (std::size_t q = p + 1; q < platform.num_processors(); ++q) {
      if (platform.bandwidth(p, q) > 0.0)
        os << "link " << p << " " << q << " " << platform.bandwidth(p, q)
           << "\n";
    }
  }
  for (std::size_t i = 0; i < app.num_stages(); ++i) {
    os << "team " << i;
    for (std::size_t p : mapping.team(i)) os << " " << p;
    os << "\n";
  }
}

namespace {

[[noreturn]] void fail(int line, const std::string& what) {
  throw InvalidArgument("instance parse error at line " +
                        std::to_string(line) + ": " + what);
}

}  // namespace

Mapping load_instance(std::istream& is) {
  std::string line;
  int line_number = 0;
  auto next_line = [&]() -> std::optional<std::string> {
    while (std::getline(is, line)) {
      ++line_number;
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      // Skip blank lines.
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      return line;
    }
    return std::nullopt;
  };

  auto header = next_line();
  if (!header || header->rfind("streamflow-instance", 0) != 0)
    fail(line_number, "missing 'streamflow-instance v1' header");

  std::optional<std::size_t> num_stages, num_processors;
  std::vector<double> works, files, speeds;
  std::vector<std::tuple<std::size_t, std::size_t, double>> links;
  std::map<std::size_t, std::vector<std::size_t>> teams;

  // Every line must be consumed completely: a token the value parser cannot
  // read ("works 1 2 x") is a corrupt file, not ignorable trailing noise —
  // silently dropping it would truncate the list and shift the blame to the
  // count checks below (or worse, pass them with wrong data).
  auto expect_line_end = [&](std::istringstream& ss, const char* what) {
    ss.clear();
    std::string rest;
    if (ss >> rest) {
      fail(line_number, std::string("trailing token '") + rest + "' on " +
                            what + " line");
    }
  };

  while (auto maybe = next_line()) {
    std::istringstream ss(*maybe);
    std::string keyword;
    ss >> keyword;
    if (keyword == "stages") {
      std::size_t n = 0;
      if (!(ss >> n) || n == 0) fail(line_number, "bad stage count");
      num_stages = n;
      expect_line_end(ss, "stages");
    } else if (keyword == "works") {
      double w;
      while (ss >> w) works.push_back(w);
      expect_line_end(ss, "works");
    } else if (keyword == "files") {
      double d;
      while (ss >> d) files.push_back(d);
      expect_line_end(ss, "files");
    } else if (keyword == "processors") {
      std::size_t m = 0;
      if (!(ss >> m) || m == 0) fail(line_number, "bad processor count");
      num_processors = m;
      expect_line_end(ss, "processors");
    } else if (keyword == "speeds") {
      double s;
      while (ss >> s) speeds.push_back(s);
      expect_line_end(ss, "speeds");
    } else if (keyword == "link") {
      std::size_t p, q;
      double b;
      if (!(ss >> p >> q >> b)) fail(line_number, "bad link line");
      links.emplace_back(p, q, b);
      expect_line_end(ss, "link");
    } else if (keyword == "team") {
      std::size_t stage;
      if (!(ss >> stage)) fail(line_number, "bad team line");
      std::vector<std::size_t> members;
      std::size_t p;
      while (ss >> p) members.push_back(p);
      if (members.empty()) fail(line_number, "empty team");
      expect_line_end(ss, "team");
      if (!teams.emplace(stage, std::move(members)).second)
        fail(line_number, "duplicate team for stage " + std::to_string(stage));
    } else {
      fail(line_number, "unknown keyword '" + keyword + "'");
    }
  }

  if (!num_stages) fail(line_number, "missing 'stages'");
  if (!num_processors) fail(line_number, "missing 'processors'");
  if (works.size() != *num_stages)
    fail(line_number, "expected " + std::to_string(*num_stages) + " works");
  if (files.size() + 1 != *num_stages)
    fail(line_number, "expected " + std::to_string(*num_stages - 1) + " files");
  if (speeds.size() != *num_processors)
    fail(line_number,
         "expected " + std::to_string(*num_processors) + " speeds");
  if (teams.size() != *num_stages)
    fail(line_number, "expected one team per stage");

  try {
    Application app(works, files);
    Platform platform(speeds);
    for (const auto& [p, q, b] : links) platform.set_bandwidth(p, q, b);
    std::vector<std::vector<std::size_t>> team_list(*num_stages);
    for (auto& [stage, members] : teams) {
      if (stage >= *num_stages)
        fail(line_number, "team stage index out of range");
      team_list[stage] = std::move(members);
    }
    // One shared allocation: everything derived from the loaded mapping
    // (search candidates, re-teamed variants) shares this instance.
    return Mapping(make_instance(std::move(app), std::move(platform)),
                   std::move(team_list));
  } catch (const InvalidArgument& error) {
    throw InvalidArgument(std::string("instance semantic error: ") +
                          error.what());
  }
}

std::string instance_to_string(const Mapping& mapping) {
  std::ostringstream os;
  save_instance(os, mapping);
  return os.str();
}

Mapping instance_from_string(const std::string& text) {
  std::istringstream is(text);
  return load_instance(is);
}

}  // namespace streamflow
