// The shared immutable problem instance: one Application mapped onto one
// Platform. Mappings reference their instance through a
// std::shared_ptr<const Instance>, so constructing search candidates,
// copying mappings, and returning them by value never duplicates the M x M
// bandwidth matrix.
//
// Thread safety: the payload is immutable after make_instance, which makes
// the sharing safe by construction — any number of threads (replicated
// simulations, portfolio search workers, their private AnalysisContexts)
// may read one instance concurrently without synchronization, and copying
// the handle itself is the usual atomic shared_ptr refcount. The TSan CI
// job exercises exactly this pattern (test_engine, test_parallel_search).
// Nothing in this library ever casts the const away; treat a need to
// mutate as a need for a new instance.
#pragma once

#include <memory>

#include "model/application.hpp"
#include "model/platform.hpp"

namespace streamflow {

/// One immutable (application, platform) pair. Always held behind an
/// InstancePtr; see make_instance.
struct Instance {
  Application application;
  Platform platform;

  Instance(Application application_, Platform platform_)
      : application(std::move(application_)), platform(std::move(platform_)) {}
};

/// Shared handle to an immutable instance. Copying the handle is O(1); the
/// Application/Platform payload is allocated exactly once.
using InstancePtr = std::shared_ptr<const Instance>;

/// Bundles an application and a platform into one shared immutable
/// instance. This is the single allocation point: everything derived from
/// the returned handle (mappings, search candidates, serialization round
/// trips) shares it.
InstancePtr make_instance(Application application, Platform platform);

}  // namespace streamflow
