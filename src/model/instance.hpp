// The shared immutable problem instance: one Application mapped onto one
// Platform. Mappings reference their instance through a
// std::shared_ptr<const Instance>, so constructing search candidates,
// copying mappings, and returning them by value never duplicates the M x M
// bandwidth matrix. Immutability makes the sharing thread-safe: concurrent
// searches and replicated simulations may read one instance from many
// threads without synchronization (covered by the TSan job).
#pragma once

#include <memory>

#include "model/application.hpp"
#include "model/platform.hpp"

namespace streamflow {

struct Instance {
  Application application;
  Platform platform;

  Instance(Application application_, Platform platform_)
      : application(std::move(application_)), platform(std::move(platform_)) {}
};

/// Shared handle to an immutable instance. Copying the handle is O(1); the
/// Application/Platform payload is allocated exactly once.
using InstancePtr = std::shared_ptr<const Instance>;

/// Bundles an application and a platform into one shared immutable
/// instance. This is the single allocation point: everything derived from
/// the returned handle (mappings, search candidates, serialization round
/// trips) shares it.
InstancePtr make_instance(Application application, Platform platform);

}  // namespace streamflow
