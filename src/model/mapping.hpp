// One-to-many mappings with replication (§2.2) and their derived structure:
// teams, replication factors R_i, round-robin data paths (Proposition 1),
// per-resource deterministic times, and the cycle-time lower bounds Mct of
// §2.3 for both execution models.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "model/application.hpp"
#include "model/instance.hpp"
#include "model/platform.hpp"

namespace streamflow {

/// The two execution models of §2.1.
enum class ExecutionModel {
  /// A processor can receive, compute, and send simultaneously
  /// (multithreaded, full-duplex one-port per direction).
  kOverlap,
  /// Receive, compute, and send are mutually exclusive (single-threaded,
  /// one-port).
  kStrict,
};

std::string to_string(ExecutionModel model);

/// Per-processor cycle-time decomposition of §2.3, normalized per global
/// data set (a processor in a team of size R touches one data set in R).
struct CycleTime {
  double input = 0.0;    ///< C_in(p): receive-port busy time per data set.
  double compute = 0.0;  ///< C_comp(p) = w_i / (R_i * s_p): p's compute-unit
                         ///< busy time per global data set. (§2.2's
                         ///< slowest-member pacing enters max_cycle_time()
                         ///< separately — see mapping.cpp.)
  double output = 0.0;   ///< C_out(p): send-port busy time per data set.

  double exec(ExecutionModel model) const;
};

/// A validated one-to-many mapping of an Application onto a Platform.
///
/// Invariants established at construction:
///  * every stage has a non-empty team;
///  * no processor serves more than one stage;
///  * every link used by consecutive teams has a positive bandwidth;
///  * the number of round-robin paths m = lcm(R_1..R_N) fits in int64.
///
/// The problem instance is held as a shared immutable InstancePtr:
/// constructing, copying, and deriving mappings never duplicates the
/// Application or the M x M bandwidth matrix. Mappings built from the same
/// handle (or derived via with_teams) share one instance allocation.
///
/// Thread safety: a Mapping is immutable after construction and the shared
/// instance is immutable by type, so distinct threads may read the same
/// Mapping — and construct new Mappings from the same InstancePtr —
/// concurrently without synchronization. This is the contract the parallel
/// search layers build on (engine/parallel_search.hpp; verified under TSan).
class Mapping {
 public:
  /// Primary constructor: maps a shared instance with the given teams,
  /// running the full validation above.
  Mapping(InstancePtr instance, std::vector<std::vector<std::size_t>> teams);

  /// Compatibility constructor: wraps the application and platform into a
  /// freshly allocated shared instance (one allocation here — derived
  /// mappings share it). Prefer the InstancePtr overload when constructing
  /// many mappings of one instance.
  Mapping(Application application, Platform platform,
          std::vector<std::vector<std::size_t>> teams);

  /// Trusted derive-from-base construction for local search: shares the
  /// base's instance and revalidates ONLY the inter-team links adjacent to
  /// a stage listed in `touched_stages` (entries equal to kUnused are
  /// ignored). Safe because the base's invariants already cover every
  /// untouched column: a column between two untouched teams is exactly the
  /// base's column, and the base validated it at construction. The caller
  /// must list every stage whose team membership differs from the base;
  /// Debug builds verify the skip with a full validation pass.
  /// Structural checks (teams partition the processors, no empty team, lcm
  /// cap) always run — they are O(M + N) and independent of the platform.
  static Mapping with_teams(const Mapping& base,
                            std::vector<std::vector<std::size_t>> teams,
                            const std::vector<std::size_t>& touched_stages);

  /// The shared immutable problem instance this mapping refers to.
  const InstancePtr& instance() const { return instance_; }

  const Application& application() const { return instance_->application; }
  const Platform& platform() const { return instance_->platform; }

  std::size_t num_stages() const { return application().num_stages(); }
  std::size_t num_processors() const { return platform().num_processors(); }

  /// Team_i: the processors executing stage i (0-based), in round-robin
  /// order.
  const std::vector<std::size_t>& team(std::size_t stage) const {
    SF_REQUIRE(stage < teams_.size(), "stage index out of range");
    return teams_[stage];
  }

  /// Replication factor R_i of stage i.
  std::size_t replication(std::size_t stage) const {
    return team(stage).size();
  }

  /// All replication factors R_1..R_N.
  std::vector<std::size_t> replications() const;

  /// Stage served by processor p, or npos if p is unused.
  static constexpr std::size_t kUnused = static_cast<std::size_t>(-1);
  std::size_t stage_of(std::size_t p) const {
    SF_REQUIRE(p < stage_of_.size(), "processor index out of range");
    return stage_of_[p];
  }

  /// Position of processor p inside its team (its round-robin offset).
  std::size_t team_index_of(std::size_t p) const {
    SF_REQUIRE(p < team_index_of_.size(), "processor index out of range");
    SF_REQUIRE(stage_of_[p] != kUnused, "processor is not mapped");
    return team_index_of_[p];
  }

  /// Number of distinct round-robin paths m = lcm(R_1..R_N) (Proposition 1).
  std::int64_t num_paths() const { return num_paths_; }

  /// The j-th path: processor executing each stage for data sets
  /// {j, j+m, j+2m, ...}; path(j)[i] = Team_i[j mod R_i].
  /// Requires 0 <= j < num_paths(): the paths are periodic with period m,
  /// so an index past the end is a caller bug, not a request for path
  /// j mod m.
  std::vector<std::size_t> path(std::int64_t j) const;

  // ---- Deterministic timing (means in the probabilistic setting) ----------

  /// c_p = w_i / s_p: computation time of p's stage on p.
  double comp_time(std::size_t p) const;

  /// d_{p,q} = delta_i / b_{p,q} for p in Team_i, q in Team_{i+1}.
  double comm_time(std::size_t sender, std::size_t receiver) const;

  // ---- Cycle-time lower bounds (§2.3) --------------------------------------

  /// The C_in/C_comp/C_out decomposition for processor p.
  CycleTime cycle_time(std::size_t p) const;

  /// Which Mct convention to use (§2.3).
  enum class MctConvention {
    /// Provably valid lower bound on the in-order period: per-processor
    /// utilization terms plus the slowest-member pacing term for every
    /// stage that has a downstream collector.
    kValidBound,
    /// The paper's literal definition: C_comp(p) = w_i / (R_i * s_slow)
    /// for EVERY stage, including the last. Slightly larger than
    /// kValidBound (and not a valid bound for a replicated heterogeneous
    /// last stage); used to reproduce Table 1 verbatim.
    kPaperSlowestMember,
  };

  /// Maximum cycle time Mct = max_p C_exec(p): a lower bound on the period.
  double max_cycle_time(ExecutionModel model,
                        MctConvention convention =
                            MctConvention::kValidBound) const;

  /// 1 / Mct: an upper bound on the throughput ("critical resource" rate).
  double critical_resource_throughput(ExecutionModel model) const;

  /// S_i = sum over q in Team_i of 1 / max(C_comp(q), R_i * C_in(q)): an
  /// admissible upper bound on the SUMMED stage-i completion rate, and
  /// therefore (by flow conservation along the pipeline: each column's
  /// receivers cannot jointly complete faster than its senders) on the
  /// system throughput for BOTH objectives. Per processor q: its compute
  /// unit is busy C_comp(q) per item, so its completion rate is at most
  /// 1/C_comp(q); its input port is busy R_i * C_in(q) per item it
  /// processes (C_in is the per-global-data-set average, and q serves one
  /// global data set in R_i), so utilization caps the rate at
  /// 1/(R_i * C_in(q)). C_out is deliberately excluded: the column method
  /// does not cap a sender's computed rate by its own output port, and the
  /// screen must upper-bound the computed score, not just the true system.
  /// min_i stage_rate_bound(i) is the tier-1 screen of
  /// AnalysisContext::probe_move; S_i depends only on teams i-1 and i, so a
  /// move refreshes O(touched-teams) entries of a cached per-stage vector.
  double stage_rate_bound(std::size_t stage) const;

  std::string to_string() const;

 private:
  /// Shared implementation of the validating constructors and with_teams:
  /// when `validate_column` is non-null, only columns it flags get the
  /// O(R^2) link-bandwidth check (the structural checks always run).
  Mapping(InstancePtr instance, std::vector<std::vector<std::size_t>> teams,
          const std::vector<char>* validate_column);

  InstancePtr instance_;
  std::vector<std::vector<std::size_t>> teams_;
  std::vector<std::size_t> stage_of_;
  std::vector<std::size_t> team_index_of_;
  std::int64_t num_paths_ = 1;
};

}  // namespace streamflow
