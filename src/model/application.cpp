#include "model/application.hpp"

#include <sstream>

namespace streamflow {

Application::Application(std::vector<double> stage_work,
                         std::vector<double> file_sizes)
    : stage_work_(std::move(stage_work)), file_sizes_(std::move(file_sizes)) {
  SF_REQUIRE(!stage_work_.empty(), "application needs at least one stage");
  SF_REQUIRE(file_sizes_.size() + 1 == stage_work_.size(),
             "need exactly one file between each pair of consecutive stages");
  for (double w : stage_work_)
    SF_REQUIRE(w > 0.0, "stage work must be positive");
  for (double d : file_sizes_)
    SF_REQUIRE(d >= 0.0, "file size must be non-negative");
}

Application Application::uniform(std::size_t num_stages, double work,
                                 double file_size) {
  SF_REQUIRE(num_stages >= 1, "application needs at least one stage");
  return Application(std::vector<double>(num_stages, work),
                     std::vector<double>(num_stages - 1, file_size));
}

std::string Application::to_string() const {
  std::ostringstream os;
  os << "Application[" << num_stages() << " stages:";
  for (std::size_t i = 0; i < num_stages(); ++i) {
    os << " T" << (i + 1) << "(w=" << stage_work_[i] << ")";
    if (i + 1 < num_stages()) os << " -F(" << file_sizes_[i] << ")->";
  }
  os << "]";
  return os.str();
}

}  // namespace streamflow
