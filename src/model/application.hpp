// The streaming-application model of §2.1: a linear chain of N stages
// T_1..T_N. Stage T_i performs w_i flops, consumes file F_{i-1} and produces
// file F_i of delta_i bytes; F_1..F_{N-1} are the inter-stage transfers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace streamflow {

class Application {
 public:
  /// `stage_work[i]` is w_{i+1} in flops; `file_sizes[i]` is delta_{i+1} in
  /// bytes, the file produced by stage i+1 and consumed by stage i+2.
  /// Requires file_sizes.size() == stage_work.size() - 1.
  Application(std::vector<double> stage_work, std::vector<double> file_sizes);

  /// A chain of n stages with unit work and unit files (handy in tests).
  static Application uniform(std::size_t num_stages, double work = 1.0,
                             double file_size = 1.0);

  std::size_t num_stages() const { return stage_work_.size(); }

  /// w_i for the 0-based stage index.
  double work(std::size_t stage) const {
    SF_REQUIRE(stage < stage_work_.size(), "stage index out of range");
    return stage_work_[stage];
  }

  /// delta for the file between `stage` and `stage + 1` (0-based).
  double file_size(std::size_t stage) const {
    SF_REQUIRE(stage + 1 < stage_work_.size(), "file index out of range");
    return file_sizes_[stage];
  }

  const std::vector<double>& stage_works() const { return stage_work_; }
  const std::vector<double>& file_sizes() const { return file_sizes_; }

  std::string to_string() const;

 private:
  std::vector<double> stage_work_;
  std::vector<double> file_sizes_;
};

}  // namespace streamflow
