// The fully heterogeneous platform of §2.1: M processors with speeds s_p
// (flops/s) and bidirectional logical links with bandwidths b_{p,q}
// (bytes/s). Links may be logical (e.g. a star through a switch).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace streamflow {

class Platform {
 public:
  /// Creates a platform with the given speeds and all bandwidths unset (0).
  explicit Platform(std::vector<double> speeds);

  /// Fully connected platform with one bandwidth everywhere.
  static Platform fully_connected(std::vector<double> speeds,
                                  double bandwidth);

  /// Star topology through a central switch: the effective logical bandwidth
  /// between p and q is min of their NIC bandwidths.
  static Platform star(std::vector<double> speeds,
                       const std::vector<double>& nic_bandwidths);

  std::size_t num_processors() const { return speeds_.size(); }

  double speed(std::size_t p) const {
    SF_REQUIRE(p < speeds_.size(), "processor index out of range");
    return speeds_[p];
  }

  double bandwidth(std::size_t p, std::size_t q) const {
    SF_REQUIRE(p < speeds_.size() && q < speeds_.size(),
               "processor index out of range");
    return bandwidths_[p * speeds_.size() + q];
  }

  /// Sets the bandwidth of the (bidirectional) link p <-> q.
  void set_bandwidth(std::size_t p, std::size_t q, double bandwidth);

  /// True if every defined link has the same bandwidth (§5.3's homogeneous
  /// communication network; enables the closed-form Theorem 4).
  bool homogeneous_network() const;

  std::string to_string() const;

 private:
  std::vector<double> speeds_;
  std::vector<double> bandwidths_;  // row-major M x M, 0 = unset
};

}  // namespace streamflow
