// Random instance generation following the Section 7 experimental protocol
// (Table 1): applications with n stages, platforms with M processors, all
// processor speeds / link bandwidths drawn so that computation and
// communication times fall uniformly in configured ranges, and random
// replication (every stage gets at least one processor).
#pragma once

#include <cstdint>

#include "common/prng.hpp"
#include "model/mapping.hpp"

namespace streamflow {

struct RandomInstanceOptions {
  std::size_t num_stages = 10;
  std::size_t num_processors = 20;
  /// Computation times drawn uniformly from [comp_min, comp_max] (seconds).
  double comp_min = 5.0;
  double comp_max = 15.0;
  /// Communication times drawn uniformly from [comm_min, comm_max] (seconds).
  double comm_min = 5.0;
  double comm_max = 15.0;
  /// If true the network is homogeneous: one communication time per
  /// inter-stage file (shared by all links of that column) instead of one
  /// per link.
  bool homogeneous_network = false;
  /// Cap on the lcm of the replication factors (TPN row count); the
  /// generator re-draws team sizes until the cap holds.
  std::int64_t max_paths = 4096;

  // ---- Regime knobs (scenario-corpus generation, fuzz/corpus.hpp) ---------
  //
  // The three knobs below extend the Table 1 protocol into the regimes the
  // differential harness needs to cover. All default to "off", in which case
  // the draw sequence is exactly the pre-knob generator's (pinned by the
  // cross-seed determinism test). Draw order with knobs on: team sizes,
  // processor shuffle, degenerate-stage coin flips (one uniform per stage,
  // in stage order), computation times, then per-column / per-link
  // communication times with their heterogeneity multipliers (multiplier
  // drawn immediately after the time it scales).

  /// Probability that a stage is "degenerate": its computation times are
  /// scaled by `degenerate_scale` (near-zero-cost stages — pure forwarding
  /// stages whose compute never binds). One coin flip per stage.
  double zero_cost_fraction = 0.0;
  /// Scale applied to a degenerate stage's computation times.
  double degenerate_scale = 1e-4;
  /// Heterogeneous-bandwidth platforms: every communication time is
  /// multiplied by an independent log-uniform factor in [1/h, h], pushing
  /// link speeds far outside the uniform [comm_min, comm_max] band. 1 (the
  /// default) disables the multiplier. Ignored when homogeneous_network is
  /// set (a heterogeneous homogeneous network is a contradiction).
  double bandwidth_heterogeneity = 1.0;
  /// Deep-replication team sizes: when > 0, team sizes come from a
  /// preferential-attachment composition (every stage gets one processor,
  /// each remaining processor joins a team with probability proportional to
  /// size^team_skew) instead of the uniform composition — large skews
  /// concentrate the processors into one big team (large R_i). 0 keeps the
  /// uniform composition.
  double team_skew = 0.0;

  /// Rejects out-of-range knob settings (fractions outside [0, 1], scales
  /// and ratios that are not positive / not >= 1, NaN anywhere).
  void validate() const;
};

/// Generates a random replicated mapping. All processors are used: the M
/// processors are partitioned into n non-empty teams uniformly at random.
Mapping random_instance(const RandomInstanceOptions& options, Prng& prng);

}  // namespace streamflow
