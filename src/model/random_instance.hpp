// Random instance generation following the Section 7 experimental protocol
// (Table 1): applications with n stages, platforms with M processors, all
// processor speeds / link bandwidths drawn so that computation and
// communication times fall uniformly in configured ranges, and random
// replication (every stage gets at least one processor).
#pragma once

#include <cstdint>

#include "common/prng.hpp"
#include "model/mapping.hpp"

namespace streamflow {

struct RandomInstanceOptions {
  std::size_t num_stages = 10;
  std::size_t num_processors = 20;
  /// Computation times drawn uniformly from [comp_min, comp_max] (seconds).
  double comp_min = 5.0;
  double comp_max = 15.0;
  /// Communication times drawn uniformly from [comm_min, comm_max] (seconds).
  double comm_min = 5.0;
  double comm_max = 15.0;
  /// If true the network is homogeneous: one communication time per
  /// inter-stage file (shared by all links of that column) instead of one
  /// per link.
  bool homogeneous_network = false;
  /// Cap on the lcm of the replication factors (TPN row count); the
  /// generator re-draws team sizes until the cap holds.
  std::int64_t max_paths = 4096;
};

/// Generates a random replicated mapping. All processors are used: the M
/// processors are partitioned into n non-empty teams uniformly at random.
Mapping random_instance(const RandomInstanceOptions& options, Prng& prng);

}  // namespace streamflow
