// Plain-text serialization of instances (application + platform + mapping),
// so experiments are reproducible and instances can be exchanged / archived.
//
// Format (line oriented, '#' comments allowed):
//   streamflow-instance v1
//   stages <N>
//   works  w_1 .. w_N
//   files  d_1 .. d_{N-1}
//   processors <M>
//   speeds s_1 .. s_M
//   link <p> <q> <bandwidth>          (one per defined link)
//   team <stage> <p_1> .. <p_k>       (one per stage, round-robin order)
#pragma once

#include <iosfwd>
#include <string>

#include "model/mapping.hpp"

namespace streamflow {

/// Writes a complete instance.
void save_instance(std::ostream& os, const Mapping& mapping);

/// Parses an instance; throws InvalidArgument with a line diagnostic on any
/// malformed input.
Mapping load_instance(std::istream& is);

/// Convenience round-trip through strings.
std::string instance_to_string(const Mapping& mapping);
Mapping instance_from_string(const std::string& text);

}  // namespace streamflow
