// Clang Thread Safety Analysis macros (no-ops on every other compiler).
//
// These wrap the `capability`-family attributes so locking contracts live in
// the type system instead of in prose: a member annotated
// `SF_GUARDED_BY(mutex_)` cannot be touched without holding `mutex_`, and a
// helper annotated `SF_REQUIRES(mutex_)` cannot be called without it — both
// enforced at compile time by `clang -Wthread-safety` (the CI clang job adds
// `-Werror=thread-safety`, so a violated contract is a build break, not a
// warning). GCC and MSVC see empty macros and compile identical code.
//
// Use them through `streamflow::Mutex` / `streamflow::MutexLock`
// (common/mutex.hpp) — the `raw-mutex` lint rule rejects bare `std::mutex`
// declarations precisely because the raw type cannot carry these contracts.
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define SF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef SF_THREAD_ANNOTATION
#define SF_THREAD_ANNOTATION(x)  // not clang: annotations compile away
#endif

/// Marks a type as a lockable capability (e.g. a mutex wrapper).
#define SF_CAPABILITY(x) SF_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define SF_SCOPED_CAPABILITY SF_THREAD_ANNOTATION(scoped_lockable)

/// Data member readable/writable only while holding `x`.
#define SF_GUARDED_BY(x) SF_THREAD_ANNOTATION(guarded_by(x))

/// Pointer member whose *pointee* is protected by `x` (the pointer itself is
/// not).
#define SF_PT_GUARDED_BY(x) SF_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability and holds it on return.
#define SF_ACQUIRE(...) SF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability; the caller must hold it.
#define SF_RELEASE(...) SF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function attempts the acquisition; the first argument is the return value
/// that signals success.
#define SF_TRY_ACQUIRE(...) \
  SF_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability for the duration of the call (the
/// function neither acquires nor releases it).
#define SF_REQUIRES(...) SF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (deadlock prevention for functions
/// that acquire it themselves).
#define SF_EXCLUDES(...) SF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (informs the analysis
/// without acquiring).
#define SF_ASSERT_CAPABILITY(x) SF_THREAD_ANNOTATION(assert_capability(x))

/// Function returns a reference to the named capability.
#define SF_RETURN_CAPABILITY(x) SF_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the contract cannot be expressed.
#define SF_NO_THREAD_SAFETY_ANALYSIS \
  SF_THREAD_ANNOTATION(no_thread_safety_analysis)
