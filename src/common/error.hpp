// Error handling primitives shared across all streamflow modules.
//
// Library code throws typed exceptions derived from streamflow::Error.
// SF_CHECK / SF_REQUIRE are used for precondition validation on public API
// boundaries; they always stay enabled (they guard user input, not internal
// invariants). SF_ASSERT guards internal invariants and may be compiled out.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace streamflow {

/// Base class of all exceptions thrown by streamflow.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user input: malformed application, platform, or mapping.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A computation exceeded a configured resource cap (e.g. the reachable
/// marking count of a CTMC, or the lcm-row count of an unfolded TPN).
class CapacityExceeded : public Error {
 public:
  explicit CapacityExceeded(const std::string& what) : Error(what) {}
};

/// A numerical routine failed to converge or met a singular system.
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* kind, const char* expr,
                                             const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvalidArgument(os.str());
}
}  // namespace detail

}  // namespace streamflow

/// Validate a user-facing precondition; throws InvalidArgument on failure.
#define SF_REQUIRE(cond, msg)                                               \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::streamflow::detail::throw_check_failure("precondition", #cond,     \
                                                __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (0)

/// Validate an internal invariant; throws (never compiled out — the cost is
/// negligible next to the analyses these guard).
#define SF_ASSERT(cond, msg)                                                \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::streamflow::detail::throw_check_failure("invariant", #cond,        \
                                                __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (0)
