// AVX2 xoshiro256++ block-fill kernel: 4 lanes per 256-bit vector, two
// vector groups over the 8 lanes. This TU is compiled with -mavx2 when the
// compiler supports it (see CMakeLists.txt); otherwise the getters return
// nullptr and dispatch falls back to SSE4/scalar.
#include "common/simd_fill.hpp"

#if defined(__AVX2__)

#include <immintrin.h>

namespace streamflow::simd {

namespace {

inline __m256i rotl64(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k), _mm256_srli_epi64(x, 64 - k));
}

struct QuadState {
  __m256i s0, s1, s2, s3;
};

/// One xoshiro256++ step on 4 lanes — the scalar recurrence, element-wise.
inline __m256i next4(QuadState& q) {
  const __m256i result =
      _mm256_add_epi64(rotl64(_mm256_add_epi64(q.s0, q.s3), 23), q.s0);
  const __m256i t = _mm256_slli_epi64(q.s1, 17);
  q.s2 = _mm256_xor_si256(q.s2, q.s0);
  q.s3 = _mm256_xor_si256(q.s3, q.s1);
  q.s1 = _mm256_xor_si256(q.s1, q.s2);
  q.s0 = _mm256_xor_si256(q.s0, q.s3);
  q.s2 = _mm256_xor_si256(q.s2, t);
  q.s3 = rotl64(q.s3, 45);
  return result;
}

/// 4x4 transpose of 64-bit elements: rows r[u] = draws of iteration u across
/// lanes 0..3 become columns c[j] = 4 consecutive draws of lane j.
inline void transpose4x4(const __m256i r[4], __m256i c[4]) {
  const __m256i t0 = _mm256_unpacklo_epi64(r[0], r[1]);
  const __m256i t1 = _mm256_unpackhi_epi64(r[0], r[1]);
  const __m256i t2 = _mm256_unpacklo_epi64(r[2], r[3]);
  const __m256i t3 = _mm256_unpackhi_epi64(r[2], r[3]);
  c[0] = _mm256_permute2x128_si256(t0, t2, 0x20);
  c[1] = _mm256_permute2x128_si256(t1, t3, 0x20);
  c[2] = _mm256_permute2x128_si256(t0, t2, 0x31);
  c[3] = _mm256_permute2x128_si256(t1, t3, 0x31);
}

/// Exact uint64 -> double for values < 2^53 (all our operands are raw draws
/// shifted right by 11). Classic split conversion: build hi*2^32 and
/// 2^52 + lo as exact doubles and recombine — every step is exact below
/// 2^53, so the result is bit-identical to static_cast<double>(v).
inline __m256d u64lt53_to_double(__m256i v) {
  const __m256d k84 = _mm256_set1_pd(19342813113834066795298816.);  // 2^84
  const __m256d k84_52 =
      _mm256_set1_pd(19342813118337666422669312.);  // 2^84 + 2^52
  const __m256i k52_bits = _mm256_castpd_si256(
      _mm256_set1_pd(4503599627370496.));  // bit pattern of 2^52
  __m256i hi = _mm256_srli_epi64(v, 32);
  hi = _mm256_or_si256(hi, _mm256_castpd_si256(k84));
  const __m256i lo = _mm256_blend_epi16(v, k52_bits, 0xcc);
  const __m256d f = _mm256_sub_pd(_mm256_castsi256_pd(hi), k84_52);
  return _mm256_add_pd(f, _mm256_castsi256_pd(lo));
}

// NOLINTBEGIN(cppcoreguidelines-pro-type-reinterpret-cast)
// The intrinsic load/store API takes __m256i*. Each cast below points at
// uint64_t quads inside LaneBlock's alignas(64) rows with g in {0, 4}, so
// every 32-byte access is aligned and in-bounds.
inline QuadState load_group(const LaneBlock& lanes, std::size_t g) {
  return QuadState{
      _mm256_load_si256(reinterpret_cast<const __m256i*>(&lanes.s[0][g])),
      _mm256_load_si256(reinterpret_cast<const __m256i*>(&lanes.s[1][g])),
      _mm256_load_si256(reinterpret_cast<const __m256i*>(&lanes.s[2][g])),
      _mm256_load_si256(reinterpret_cast<const __m256i*>(&lanes.s[3][g]))};
}

inline void store_group(LaneBlock& lanes, std::size_t g, const QuadState& q) {
  _mm256_store_si256(reinterpret_cast<__m256i*>(&lanes.s[0][g]), q.s0);
  _mm256_store_si256(reinterpret_cast<__m256i*>(&lanes.s[1][g]), q.s1);
  _mm256_store_si256(reinterpret_cast<__m256i*>(&lanes.s[2][g]), q.s2);
  _mm256_store_si256(reinterpret_cast<__m256i*>(&lanes.s[3][g]), q.s3);
}
// NOLINTEND(cppcoreguidelines-pro-type-reinterpret-cast)

// Both fill loops advance the two 4-lane groups in lockstep: each group's
// recurrence is a serial dependency chain (~4-cycle critical path per step),
// so running them interleaved in one loop keeps the vector units fed where
// two sequential passes would stall on the chain.
static_assert(kLanes == 8, "fill kernels interleave exactly two quad groups");

void fill_avx2_impl(LaneBlock& lanes, std::uint64_t* out,
                    std::size_t per_lane) {
  QuadState qa = load_group(lanes, 0);
  QuadState qb = load_group(lanes, 4);
  std::uint64_t* const base_b = out + 4 * per_lane;
  for (std::size_t i = 0; i < per_lane; i += 4) {
    __m256i ra[4], rb[4], ca[4], cb[4];
    for (int u = 0; u < 4; ++u) {
      ra[u] = next4(qa);
      rb[u] = next4(qb);
    }
    transpose4x4(ra, ca);
    transpose4x4(rb, cb);
    for (std::size_t j = 0; j < 4; ++j) {
      // Casts: unaligned-store intrinsics take __m256i*; the caller-owned
      // uint64_t buffer has no alignment contract, hence storeu.
      // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + j * per_lane + i),
                          ca[j]);
      // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(base_b + j * per_lane + i), cb[j]);
    }
  }
  store_group(lanes, 0, qa);
  store_group(lanes, 4, qb);
}

void convert_u01_avx2_impl(const std::uint64_t* in, double* out,
                           std::size_t n) {
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // Cast: unaligned-load intrinsic over the caller's uint64_t buffer.
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
    const __m256i v = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(in + i));
    const __m256d d = u64lt53_to_double(_mm256_srli_epi64(v, 11));
    _mm256_storeu_pd(out + i, _mm256_mul_pd(d, scale));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(in[i] >> 11) * 0x1.0p-53;
}

void fill_u01_avx2_impl(LaneBlock& lanes, double* out, std::size_t per_lane) {
  const __m256d scale = _mm256_set1_pd(0x1.0p-53);
  QuadState qa = load_group(lanes, 0);
  QuadState qb = load_group(lanes, 4);
  double* const base_b = out + 4 * per_lane;
  for (std::size_t i = 0; i < per_lane; i += 4) {
    __m256i ra[4], rb[4], ca[4], cb[4];
    for (int u = 0; u < 4; ++u) {
      ra[u] = next4(qa);
      rb[u] = next4(qb);
    }
    transpose4x4(ra, ca);
    transpose4x4(rb, cb);
    for (std::size_t j = 0; j < 4; ++j) {
      const __m256d da = u64lt53_to_double(_mm256_srli_epi64(ca[j], 11));
      _mm256_storeu_pd(out + j * per_lane + i, _mm256_mul_pd(da, scale));
      const __m256d db = u64lt53_to_double(_mm256_srli_epi64(cb[j], 11));
      _mm256_storeu_pd(base_b + j * per_lane + i, _mm256_mul_pd(db, scale));
    }
  }
  store_group(lanes, 0, qa);
  store_group(lanes, 4, qb);
}

}  // namespace

FillFn fill_avx2() { return &fill_avx2_impl; }
FillU01Fn fill_u01_avx2() { return &fill_u01_avx2_impl; }
ConvertU01Fn convert_u01_avx2() { return &convert_u01_avx2_impl; }

}  // namespace streamflow::simd

#else  // !defined(__AVX2__)

namespace streamflow::simd {
FillFn fill_avx2() { return nullptr; }
FillU01Fn fill_u01_avx2() { return nullptr; }
ConvertU01Fn convert_u01_avx2() { return nullptr; }
}  // namespace streamflow::simd

#endif
