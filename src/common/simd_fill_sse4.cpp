// SSE4.1 xoshiro256++ block-fill kernel: 2 lanes per 128-bit vector, four
// vector groups over the 8 lanes. SSE4.1 (not plain SSE2) because the exact
// uint64 -> double conversion uses pblendw. Compiled with -msse4.1 when the
// compiler supports it; otherwise the getters return nullptr.
#include "common/simd_fill.hpp"

#if defined(__SSE4_1__)

#include <smmintrin.h>

namespace streamflow::simd {

namespace {

inline __m128i rotl64(__m128i x, int k) {
  return _mm_or_si128(_mm_slli_epi64(x, k), _mm_srli_epi64(x, 64 - k));
}

struct PairState {
  __m128i s0, s1, s2, s3;
};

inline __m128i next2(PairState& q) {
  const __m128i result =
      _mm_add_epi64(rotl64(_mm_add_epi64(q.s0, q.s3), 23), q.s0);
  const __m128i t = _mm_slli_epi64(q.s1, 17);
  q.s2 = _mm_xor_si128(q.s2, q.s0);
  q.s3 = _mm_xor_si128(q.s3, q.s1);
  q.s1 = _mm_xor_si128(q.s1, q.s2);
  q.s0 = _mm_xor_si128(q.s0, q.s3);
  q.s2 = _mm_xor_si128(q.s2, t);
  q.s3 = rotl64(q.s3, 45);
  return result;
}

/// Exact uint64 -> double for values < 2^53; same split conversion as the
/// AVX2 kernel (see simd_fill_avx2.cpp for the exactness argument).
inline __m128d u64lt53_to_double(__m128i v) {
  const __m128d k84 = _mm_set1_pd(19342813113834066795298816.);  // 2^84
  const __m128d k84_52 =
      _mm_set1_pd(19342813118337666422669312.);  // 2^84 + 2^52
  const __m128i k52_bits =
      _mm_castpd_si128(_mm_set1_pd(4503599627370496.));  // bits of 2^52
  __m128i hi = _mm_srli_epi64(v, 32);
  hi = _mm_or_si128(hi, _mm_castpd_si128(k84));
  const __m128i lo = _mm_blend_epi16(v, k52_bits, 0xcc);
  const __m128d f = _mm_sub_pd(_mm_castsi128_pd(hi), k84_52);
  return _mm_add_pd(f, _mm_castsi128_pd(lo));
}

// NOLINTBEGIN(cppcoreguidelines-pro-type-reinterpret-cast)
// The intrinsic load/store API takes __m128i*. Each cast below points at
// uint64_t pairs inside LaneBlock's alignas(64) rows with an even group
// index g, so every 16-byte access is aligned and in-bounds.
inline PairState load_group(const LaneBlock& lanes, std::size_t g) {
  return PairState{
      _mm_load_si128(reinterpret_cast<const __m128i*>(&lanes.s[0][g])),
      _mm_load_si128(reinterpret_cast<const __m128i*>(&lanes.s[1][g])),
      _mm_load_si128(reinterpret_cast<const __m128i*>(&lanes.s[2][g])),
      _mm_load_si128(reinterpret_cast<const __m128i*>(&lanes.s[3][g]))};
}

inline void store_group(LaneBlock& lanes, std::size_t g, const PairState& q) {
  _mm_store_si128(reinterpret_cast<__m128i*>(&lanes.s[0][g]), q.s0);
  _mm_store_si128(reinterpret_cast<__m128i*>(&lanes.s[1][g]), q.s1);
  _mm_store_si128(reinterpret_cast<__m128i*>(&lanes.s[2][g]), q.s2);
  _mm_store_si128(reinterpret_cast<__m128i*>(&lanes.s[3][g]), q.s3);
}
// NOLINTEND(cppcoreguidelines-pro-type-reinterpret-cast)

// Both fill loops advance the four 2-lane groups in lockstep: each group's
// recurrence is a serial dependency chain, so interleaving the four chains
// in one loop hides the per-step latency the sequential per-group passes
// would stall on.
static_assert(kLanes == 8, "fill kernels interleave exactly four pair groups");

void fill_sse4_impl(LaneBlock& lanes, std::uint64_t* out,
                    std::size_t per_lane) {
  PairState q[4] = {load_group(lanes, 0), load_group(lanes, 2),
                    load_group(lanes, 4), load_group(lanes, 6)};
  for (std::size_t i = 0; i < per_lane; i += 2) {
    for (std::size_t g = 0; g < 4; ++g) {
      // r0 = draws (i) of lanes 2g,2g+1; r1 = draws (i+1). Unpack regroups
      // them into two consecutive draws per lane.
      const __m128i r0 = next2(q[g]);
      const __m128i r1 = next2(q[g]);
      std::uint64_t* base = out + 2 * g * per_lane;
      // Casts: unaligned-store intrinsics take __m128i*; the caller-owned
      // uint64_t buffer has no alignment contract, hence storeu.
      // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
      _mm_storeu_si128(reinterpret_cast<__m128i*>(base + i),
                       _mm_unpacklo_epi64(r0, r1));
      // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
      _mm_storeu_si128(reinterpret_cast<__m128i*>(base + per_lane + i),
                       _mm_unpackhi_epi64(r0, r1));
    }
  }
  for (std::size_t g = 0; g < 4; ++g) store_group(lanes, 2 * g, q[g]);
}

void convert_u01_sse4_impl(const std::uint64_t* in, double* out,
                           std::size_t n) {
  const __m128d scale = _mm_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    // Cast: unaligned-load intrinsic over the caller's uint64_t buffer.
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i));
    const __m128d d = u64lt53_to_double(_mm_srli_epi64(v, 11));
    _mm_storeu_pd(out + i, _mm_mul_pd(d, scale));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(in[i] >> 11) * 0x1.0p-53;
}

void fill_u01_sse4_impl(LaneBlock& lanes, double* out, std::size_t per_lane) {
  const __m128d scale = _mm_set1_pd(0x1.0p-53);
  PairState q[4] = {load_group(lanes, 0), load_group(lanes, 2),
                    load_group(lanes, 4), load_group(lanes, 6)};
  for (std::size_t i = 0; i < per_lane; i += 2) {
    for (std::size_t g = 0; g < 4; ++g) {
      const __m128i r0 = next2(q[g]);
      const __m128i r1 = next2(q[g]);
      const __m128i c0 = _mm_unpacklo_epi64(r0, r1);
      const __m128i c1 = _mm_unpackhi_epi64(r0, r1);
      const __m128d d0 = u64lt53_to_double(_mm_srli_epi64(c0, 11));
      const __m128d d1 = u64lt53_to_double(_mm_srli_epi64(c1, 11));
      double* base = out + 2 * g * per_lane;
      _mm_storeu_pd(base + i, _mm_mul_pd(d0, scale));
      _mm_storeu_pd(base + per_lane + i, _mm_mul_pd(d1, scale));
    }
  }
  for (std::size_t g = 0; g < 4; ++g) store_group(lanes, 2 * g, q[g]);
}

}  // namespace

FillFn fill_sse4() { return &fill_sse4_impl; }
FillU01Fn fill_u01_sse4() { return &fill_u01_sse4_impl; }
ConvertU01Fn convert_u01_sse4() { return &convert_u01_sse4_impl; }

}  // namespace streamflow::simd

#else  // !defined(__SSE4_1__)

namespace streamflow::simd {
FillFn fill_sse4() { return nullptr; }
FillU01Fn fill_u01_sse4() { return nullptr; }
ConvertU01Fn convert_u01_sse4() { return nullptr; }
}  // namespace streamflow::simd

#endif
