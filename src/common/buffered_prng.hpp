// BufferedPrng: a RandomSource that serves the EXACT raw draw sequence of a
// scalar Prng, materialized block-wise by the SIMD kernels of simd_fill.hpp.
//
// Sequential order from parallel lanes: a block of B draws is produced by
// kLanes lanes where lane j's state is the scalar state advanced j*(B/kLanes)
// steps (computed with a precomputed GF(2) jump table — the xoshiro step is
// linear over GF(2), the same fact the published jump polynomials and
// tests/test_prng_jump.cpp rely on). Lane j then writes the contiguous run
// [j*B/kLanes, (j+1)*B/kLanes) of the block, so concatenating the lane runs
// reproduces the scalar stream byte-for-byte. Batching is therefore purely a
// throughput optimization: every consumer sees the stream it would have seen
// from the scalar engine.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/prng.hpp"
#include "common/simd_fill.hpp"

namespace streamflow {

namespace detail {
struct LaneJump;  // byte-table form of a GF(2) xoshiro step power (internal)
}

/// Choose a refill block size (in raw draws) for a workload with
/// `concurrent_streams` live buffered streams each expected to consume about
/// `expected_draws_per_stream` draws: large enough to amortize refill
/// overhead, small enough that (a) the buffers of all streams stay within a
/// ~1 MiB budget and (b) a stream that only ever consumes a few hundred
/// draws does not generate thousands it will discard. Always a multiple of
/// simd::kLanes * 8, as BufferedPrng requires.
std::size_t pick_block_draws(std::size_t concurrent_streams,
                             std::size_t expected_draws_per_stream);

/// Serves the raw stream of a scalar Prng from a SIMD-refilled cache.
/// Byte-identical contract: the sequence of next_u64()/uniform01() values —
/// and therefore of every RandomSource transform built on them — equals what
/// the underlying Prng would have produced drawn one call at a time.
class BufferedPrng final : public RandomSource {
 public:
  /// 128 KiB of raws: big enough that the per-refill lane reseeding (eight
  /// GF(2) jump-table applications, ~0.7 us) stays below ~1% of the refill,
  /// small enough to sit in L2. Multi-stream workloads shrink it through
  /// pick_block_draws().
  static constexpr std::size_t kDefaultBlockDraws = 16384;

  /// Continue the stream from `start`'s current state (the parent Prng is
  /// not referenced afterwards and is left untouched). A pending cached
  /// normal deviate in `start` is carried over. `block_draws` must be a
  /// positive multiple of simd::kLanes * 8; `isa` selects the refill kernel
  /// (kAuto = best available — tests force specific ISAs to pin each path).
  explicit BufferedPrng(const Prng& start, simd::Isa isa = simd::Isa::kAuto,
                        std::size_t block_draws = kDefaultBlockDraws);

  std::uint64_t next_u64() override {
    if (pos_ == end_) refill();
    return buffer_[pos_++];
  }

  /// Convenience alias matching Prng's call operator.
  std::uint64_t operator()() { return next_u64(); }

  /// Borrow a contiguous run of up to `max_draws` buffered raw draws,
  /// refilling first if the cache is empty. Returns the run length (>= 1)
  /// and points *run at the draws, which are consumed. The pointer is valid
  /// until the next refill. Batch transform kernels iterate this.
  std::size_t take(const std::uint64_t** run, std::size_t max_draws);

  /// Write the next `n` uniform01() values into out[0..n) — byte-identical
  /// to n sequential uniform01() calls. Buffered raws are drained first;
  /// then whole blocks are converted in-kernel (exact conversion, see
  /// simd_fill.hpp) straight into `out` without staging.
  void fill_uniform01(double* out, std::size_t n);

  simd::Isa isa() const { return isa_; }
  std::size_t block_draws() const { return buffer_.size(); }

 private:
  void refill();
  /// Seat the kLanes lane states at the current frontier (lane j advanced
  /// j*per_lane steps) and advance the frontier by one whole block.
  void seed_lanes(simd::LaneBlock& lanes);

  std::array<std::uint64_t, 4> frontier_;  // scalar state at the buffer end
  std::vector<std::uint64_t> buffer_;
  std::size_t pos_ = 0;
  std::size_t end_ = 0;
  simd::Isa isa_;
  simd::FillFn fill_;
  simd::FillU01Fn fill_u01_;
  simd::ConvertU01Fn convert_u01_;
  const detail::LaneJump* lane_jump_;  // T^per_lane tables, interned per size
  std::size_t per_lane_;
};

}  // namespace streamflow
