#include "common/table.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/error.hpp"

namespace streamflow {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SF_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<Cell> cells) {
  SF_REQUIRE(cells.size() == headers_.size(),
             "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::format_cell(const Cell& cell) const {
  if (const auto* s = std::get_if<std::string>(&cell)) return *s;
  if (const auto* i = std::get_if<std::int64_t>(&cell))
    return std::to_string(*i);
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision_) << std::get<double>(cell);
  return os.str();
}

void Table::print(std::ostream& os, const std::string& title) const {
  if (!title.empty()) os << "== " << title << " ==\n";
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  std::vector<std::vector<std::string>> rendered;
  rendered.reserve(rows_.size());
  for (const auto& row : rows_) {
    std::vector<std::string> out;
    out.reserve(row.size());
    for (std::size_t c = 0; c < row.size(); ++c) {
      out.push_back(format_cell(row[c]));
      widths[c] = std::max(widths[c], out.back().size());
    }
    rendered.push_back(std::move(out));
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << std::setw(static_cast<int>(widths[c])) << cells[c];
      os << (c + 1 == cells.size() ? "\n" : "  ");
    }
  };
  emit(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << std::string(widths[c], '-') << (c + 1 == headers_.size() ? "\n" : "  ");
  }
  for (const auto& row : rendered) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << headers_[c] << (c + 1 == headers_.size() ? "\n" : ",");
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c)
      os << format_cell(row[c]) << (c + 1 == row.size() ? "\n" : ",");
  }
}

}  // namespace streamflow
