// Annotated mutex wrappers: the ONLY locking primitives this repo uses.
//
// `Mutex` is `std::mutex` carrying the Clang Thread Safety Analysis
// `capability` attribute, so members can be declared `SF_GUARDED_BY(mutex_)`
// and helpers `SF_REQUIRES(mutex_)`; `MutexLock` is the scoped acquisition;
// `CondVar` is a condition variable that waits on a `Mutex` directly (via
// `std::condition_variable_any`) and is annotated as requiring the mutex —
// the analysis treats the capability as held across the wait, which matches
// the caller's view (the predicate re-check always runs under the lock).
//
// Raw `std::mutex` declarations are rejected by the `raw-mutex` lint rule:
// they silently opt out of the static locking contract. Condition-variable
// loops should be written as explicit `while (!pred) cv.wait(mutex_);` —
// the predicate then stays inside the annotated caller instead of inside a
// lambda the analysis cannot attribute the lock to.
#pragma once

#include <condition_variable>
#include <mutex>  // lint:allow(raw-mutex): the one annotated wrapper over the raw primitive

#include "common/thread_annotations.hpp"

namespace streamflow {

class CondVar;

/// A `std::mutex` that is a Thread Safety Analysis capability. Same cost,
/// same semantics; the annotations exist only at compile time.
class SF_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SF_ACQUIRE() { raw_.lock(); }
  void unlock() SF_RELEASE() { raw_.unlock(); }
  bool try_lock() SF_TRY_ACQUIRE(true) { return raw_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex raw_;  // lint:allow(raw-mutex): wrapped payload of the annotated capability
};

/// RAII scoped acquisition of a Mutex (the annotated `std::lock_guard`).
class SF_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) SF_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() SF_RELEASE() { mutex_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// Condition variable over `Mutex`. `wait` requires the mutex: callers keep
/// the annotated lock scope around the whole wait loop, and the temporary
/// release inside the system wait is invisible to the analysis (standard
/// treatment — the caller can never observe the capability dropped).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mutex`, blocks until notified, reacquires. Spurious
  /// wakeups are possible: always call from a `while (!pred)` loop.
  void wait(Mutex& mutex) SF_REQUIRES(mutex) { raw_.wait(mutex); }

  void notify_one() { raw_.notify_one(); }
  void notify_all() { raw_.notify_all(); }

 private:
  // condition_variable_any accepts any BasicLockable, so it waits on the
  // annotated Mutex itself — no unannotated unique_lock escape hatch.
  std::condition_variable_any raw_;
};

}  // namespace streamflow
