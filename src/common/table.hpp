// Aligned-table and CSV emission for the benchmark harnesses. Every bench
// binary reproduces one table/figure of the paper as rows on stdout; this
// keeps formatting consistent and greppable across all of them.
#pragma once

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace streamflow {

/// A column-aligned text table with an optional CSV rendering.
class Table {
 public:
  using Cell = std::variant<std::string, double, std::int64_t>;

  explicit Table(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void add_row(std::vector<Cell> cells);

  /// Number of data rows added so far.
  std::size_t row_count() const { return rows_.size(); }

  /// Renders with padded columns, a header underline, and `title` above.
  void print(std::ostream& os, const std::string& title = "") const;

  /// Renders as RFC-4180-ish CSV (no quoting of commas expected in our data).
  void print_csv(std::ostream& os) const;

  /// Floating-point cells are formatted with this precision (default 4).
  void set_precision(int digits) { precision_ = digits; }

 private:
  std::string format_cell(const Cell& cell) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<Cell>> rows_;
  int precision_ = 4;
};

}  // namespace streamflow
