// Streaming statistics (Welford) and summary helpers used by the simulators
// and the benchmark harnesses (Fig 11 reports min/max/avg/stddev across runs).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "common/error.hpp"

namespace streamflow {

/// Numerically stable single-pass accumulator for mean/variance/extrema.
class RunningStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  void merge(const RunningStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Half-width of the ~95% confidence interval on the mean, using the
  /// Student-t 97.5% quantile at count-1 degrees of freedom. The previous
  /// normal-quantile constant (1.96) understated the interval badly at the
  /// replication counts the experiment engine actually runs (at R = 4 the
  /// correct factor is 3.182 — 62% wider). Above kStudentTCutoff degrees of
  /// freedom the t quantile is within 0.7% of 1.96 and the normal
  /// approximation takes over.
  double ci95_halfwidth() const {
    if (count_ < 2) return std::numeric_limits<double>::infinity();
    return t975_quantile(count_ - 1) * stddev() /
           std::sqrt(static_cast<double>(count_));
  }

  /// Student-t distribution 97.5% quantile for `df` degrees of freedom
  /// (exact table through kStudentTCutoff, 1.96 beyond).
  static double t975_quantile(std::size_t df) {
    static constexpr double kTable[] = {
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306,
        2.262,  2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120,
        2.110,  2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064,
        2.060,  2.056, 2.052, 2.048, 2.045, 2.042};
    if (df == 0) return std::numeric_limits<double>::infinity();
    if (df > kStudentTCutoff) return 1.96;
    return kTable[df - 1];
  }

  /// Largest df served from the t table; beyond it 1.96 is used.
  static constexpr std::size_t kStudentTCutoff = 30;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Relative difference |a-b| / max(|a|,|b|, eps); used by cross-validation
/// tests comparing analytical and simulated throughputs.
inline double relative_difference(double a, double b) {
  const double scale =
      std::max({std::fabs(a), std::fabs(b), std::numeric_limits<double>::min()});
  return std::fabs(a - b) / scale;
}

/// Sample quantile (linear interpolation) of an unsorted data copy.
inline double quantile(std::vector<double> data, double q) {
  SF_REQUIRE(!data.empty(), "quantile of empty data");
  SF_REQUIRE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(data.begin(), data.end());
  const double pos = q * static_cast<double>(data.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, data.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return data[lo] * (1.0 - frac) + data[hi] * frac;
}

}  // namespace streamflow
