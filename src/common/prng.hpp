// Deterministic, platform-independent pseudo-random number generation.
//
// Simulation experiments must be reproducible bit-for-bit across machines, so
// we do not rely on std::default_random_engine (implementation defined) nor on
// std::*_distribution (unspecified algorithms). This header provides
// xoshiro256++ seeded through splitmix64, plus the uniform/normal/gamma/beta
// transforms the dist/ module builds on. All transforms are written out
// explicitly so results never vary with the standard library.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace streamflow {

/// splitmix64: used to expand a single 64-bit seed into a full xoshiro state.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Prng {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in (0, 1] — safe as log() argument.
  double uniform01_open_low() { return 1.0 - uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    SF_REQUIRE(lo <= hi, "uniform bounds out of order");
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    SF_REQUIRE(n > 0, "uniform_index over empty range");
    // Lemire's unbiased bounded generation.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential with rate lambda (mean 1/lambda) by inversion.
  double exponential(double lambda) {
    SF_REQUIRE(lambda > 0.0, "exponential rate must be positive");
    return -std::log(uniform01_open_low()) / lambda;
  }

  /// Standard normal via Marsaglia polar method (explicit, portable).
  double normal01() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
  }

  /// Gamma(shape, scale=1) via Marsaglia–Tsang for shape >= 1; boosting for
  /// shape < 1 (Gamma(a) = Gamma(a+1) * U^{1/a}).
  double gamma(double shape) {
    SF_REQUIRE(shape > 0.0, "gamma shape must be positive");
    if (shape < 1.0) {
      const double u = uniform01_open_low();
      return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x, w;
      do {
        x = normal01();
        w = 1.0 + c * x;
      } while (w <= 0.0);
      w = w * w * w;
      const double u = uniform01_open_low();
      if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * w;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - w + std::log(w))) return d * w;
    }
  }

  /// Beta(alpha, beta) via two gammas.
  double beta(double alpha, double beta_param) {
    const double x = gamma(alpha);
    const double y = gamma(beta_param);
    return x / (x + y);
  }

  /// Derive an independent child stream (for per-resource streams in the
  /// simulators; streams seeded from distinct indices never overlap in
  /// practice thanks to splitmix64 scrambling).
  Prng split(std::uint64_t stream_index) {
    std::uint64_t s = (*this)() ^ (0x9E3779B97F4A7C15ULL * (stream_index + 1));
    return Prng(s);
  }

  /// Advance the state by exactly 2^128 steps of operator() — the published
  /// xoshiro256 jump polynomial. Partitions the 2^256-1 period into 2^128
  /// non-overlapping substreams of 2^128 draws each: `k` jumps from a common
  /// seed yield substream k. Discards any cached normal deviate (it belongs
  /// to the pre-jump stream).
  void jump() {
    static constexpr std::array<std::uint64_t, 4> kPolynomial{
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
        0x39ABDC4529B1661CULL};
    apply_jump_polynomial(kPolynomial);
  }

  /// Advance by 2^192 steps (the long-jump polynomial): 2^64 substreams of
  /// 2^192 draws, for hierarchical stream splitting (e.g. one long_jump per
  /// worker, jumps within a worker).
  void long_jump() {
    static constexpr std::array<std::uint64_t, 4> kPolynomial{
        0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
        0x39109BB02ACBE635ULL};
    apply_jump_polynomial(kPolynomial);
  }

  /// Raw 256-bit state (little-endian word order), for tests that verify the
  /// jump against an independent GF(2) matrix-power computation.
  const std::array<std::uint64_t, 4>& state() const { return state_; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  /// Multiply the state (a GF(2) vector) by the given polynomial in the step
  /// transition: accumulate T^i * state for every set bit i while stepping.
  void apply_jump_polynomial(const std::array<std::uint64_t, 4>& polynomial) {
    std::array<std::uint64_t, 4> acc{};
    for (const std::uint64_t word : polynomial) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ULL << bit)) {
          for (std::size_t i = 0; i < state_.size(); ++i) acc[i] ^= state_[i];
        }
        (*this)();
      }
    }
    state_ = acc;
    has_cached_normal_ = false;
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace streamflow
