// Deterministic, platform-independent pseudo-random number generation.
//
// Simulation experiments must be reproducible bit-for-bit across machines, so
// we do not rely on std::default_random_engine (implementation defined) nor on
// std::*_distribution (unspecified algorithms). This header provides
// xoshiro256++ seeded through splitmix64, plus the uniform/normal/gamma/beta
// transforms the dist/ module builds on. All transforms are written out
// explicitly so results never vary with the standard library.
//
// The transforms live on the abstract RandomSource so that every entropy
// source serving the same raw 64-bit stream produces byte-identical variates:
// Prng (the scalar xoshiro256++ engine) and BufferedPrng
// (common/buffered_prng.hpp, the SIMD-refilled facade) share them verbatim.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/error.hpp"

namespace streamflow {

/// splitmix64: used to expand a single 64-bit seed into a full xoshiro state.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// The one uint64 -> [0, 1) conversion used everywhere (53 random bits).
/// Exact: the shifted value is < 2^53, so both the int->double conversion and
/// the power-of-two scaling are exact — any kernel reproducing this expression
/// on the same raw draw yields the identical double.
inline double u64_to_unit_double(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

/// A deterministic stream of raw 64-bit draws plus the explicit variate
/// transforms built on it. Concrete sources only define next_u64(); every
/// transform below consumes raw draws exclusively through it, so two sources
/// serving the same raw stream produce byte-identical variate sequences.
class RandomSource {
 public:
  virtual ~RandomSource() = default;

  /// The next raw 64-bit draw of the stream.
  virtual std::uint64_t next_u64() = 0;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double uniform01() { return u64_to_unit_double(next_u64()); }

  /// Uniform double in (0, 1] — safe as log() argument.
  double uniform01_open_low() { return 1.0 - uniform01(); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    SF_REQUIRE(lo <= hi, "uniform bounds out of order");
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_index(std::uint64_t n) {
    SF_REQUIRE(n > 0, "uniform_index over empty range");
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Exponential with rate lambda (mean 1/lambda) by inversion.
  double exponential(double lambda) {
    SF_REQUIRE(lambda > 0.0, "exponential rate must be positive");
    return -std::log(uniform01_open_low()) / lambda;
  }

  /// Standard normal via Marsaglia polar method (explicit, portable).
  double normal01() {
    if (has_cached_normal_) {
      has_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    has_cached_normal_ = true;
    return u * factor;
  }

  /// Gamma(shape, scale=1) via Marsaglia–Tsang for shape >= 1; boosting for
  /// shape < 1 (Gamma(a) = Gamma(a+1) * U^{1/a}).
  double gamma(double shape) {
    SF_REQUIRE(shape > 0.0, "gamma shape must be positive");
    if (shape < 1.0) {
      const double u = uniform01_open_low();
      return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
    }
    const double d = shape - 1.0 / 3.0;
    const double c = 1.0 / std::sqrt(9.0 * d);
    for (;;) {
      double x, w;
      do {
        x = normal01();
        w = 1.0 + c * x;
      } while (w <= 0.0);
      w = w * w * w;
      const double u = uniform01_open_low();
      if (u < 1.0 - 0.0331 * (x * x) * (x * x)) return d * w;
      if (std::log(u) < 0.5 * x * x + d * (1.0 - w + std::log(w))) return d * w;
    }
  }

  /// Beta(alpha, beta) via two gammas.
  double beta(double alpha, double beta_param) {
    const double x = gamma(alpha);
    const double y = gamma(beta_param);
    return x / (x + y);
  }

 protected:
  RandomSource() = default;
  RandomSource(const RandomSource&) = default;
  RandomSource& operator=(const RandomSource&) = default;

  /// Drops any pending polar deviate (a jump or reseed invalidates it: it
  /// belongs to the pre-jump stream).
  void discard_cached_normal() { has_cached_normal_ = false; }

 private:
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 2^256-1 period.
class Prng final : public RandomSource {
 public:
  using result_type = std::uint64_t;

  explicit Prng(std::uint64_t seed = 0x853C49E6748FEA9BULL) { reseed(seed); }

  /// Start from an explicit 256-bit state (little-endian word order) — used
  /// by split(), the golden-vector tests, and the SIMD refill layer. The
  /// all-zero state is the one fixed point of the recurrence and is rejected.
  explicit Prng(const std::array<std::uint64_t, 4>& state) : state_(state) {
    SF_REQUIRE(state[0] != 0 || state[1] != 0 || state[2] != 0 || state[3] != 0,
               "xoshiro256++ cannot start from the all-zero state");
  }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64_next(sm);
    discard_cached_normal();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  result_type operator()() { return step(); }

  std::uint64_t next_u64() override { return step(); }

  /// Derive an independent child stream as a PURE function of (current
  /// state, stream_index): the parent is not advanced and no draw is
  /// consumed, so splitting never perturbs the parent's subsequent
  /// byte-exact draw order. All 256 parent state bits and the index feed a
  /// splitmix64 absorb/squeeze chain (the pre-PR6 derivation consumed a
  /// parent draw and folded everything through a single 64-bit seed, which
  /// both mutated the parent and made child collisions a birthday problem on
  /// 64 bits).
  Prng split(std::uint64_t stream_index) const {
    std::array<std::uint64_t, 4> child{};
    std::uint64_t chain = 0x9E3779B97F4A7C15ULL * (stream_index + 1);
    bool all_zero = true;
    for (std::size_t w = 0; w < 4; ++w) {
      chain ^= state_[w];
      child[w] = splitmix64_next(chain);
      all_zero = all_zero && child[w] == 0;
    }
    if (all_zero) child[0] = 1;  // probability 2^-256, but zero is fatal
    return Prng(child);
  }

  /// Advance the state by exactly 2^128 steps of operator() — the published
  /// xoshiro256 jump polynomial. Partitions the 2^256-1 period into 2^128
  /// non-overlapping substreams of 2^128 draws each: `k` jumps from a common
  /// seed yield substream k. Discards any cached normal deviate (it belongs
  /// to the pre-jump stream).
  void jump() {
    static constexpr std::array<std::uint64_t, 4> kPolynomial{
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
        0x39ABDC4529B1661CULL};
    apply_jump_polynomial(kPolynomial);
  }

  /// Advance by 2^192 steps (the long-jump polynomial): 2^64 substreams of
  /// 2^192 draws, for hierarchical stream splitting (e.g. one long_jump per
  /// worker, jumps within a worker).
  void long_jump() {
    static constexpr std::array<std::uint64_t, 4> kPolynomial{
        0x76E15D3EFEFDCBBFULL, 0xC5004E441C522FB3ULL, 0x77710069854EE241ULL,
        0x39109BB02ACBE635ULL};
    apply_jump_polynomial(kPolynomial);
  }

  /// Raw 256-bit state (little-endian word order), for tests that verify the
  /// jump against an independent GF(2) matrix-power computation and for the
  /// SIMD refill layer, which continues the stream from this state.
  const std::array<std::uint64_t, 4>& state() const { return state_; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t step() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Multiply the state (a GF(2) vector) by the given polynomial in the step
  /// transition: accumulate T^i * state for every set bit i while stepping.
  void apply_jump_polynomial(const std::array<std::uint64_t, 4>& polynomial) {
    std::array<std::uint64_t, 4> acc{};
    for (const std::uint64_t word : polynomial) {
      for (int bit = 0; bit < 64; ++bit) {
        if (word & (1ULL << bit)) {
          for (std::size_t i = 0; i < state_.size(); ++i) acc[i] ^= state_[i];
        }
        step();
      }
    }
    state_ = acc;
    discard_cached_normal();
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace streamflow
