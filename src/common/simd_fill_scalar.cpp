// Portable fallback kernels and the runtime ISA dispatch logic.
#include "common/simd_fill.hpp"

#include "common/error.hpp"
#include "common/prng.hpp"

namespace streamflow::simd {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// One xoshiro256++ step on lane j of the block — the scalar recurrence of
/// Prng::step(), verbatim.
inline std::uint64_t step_lane(LaneBlock& lanes, std::size_t j) {
  const std::uint64_t result =
      rotl(lanes.s[0][j] + lanes.s[3][j], 23) + lanes.s[0][j];
  const std::uint64_t t = lanes.s[1][j] << 17;
  lanes.s[2][j] ^= lanes.s[0][j];
  lanes.s[3][j] ^= lanes.s[1][j];
  lanes.s[1][j] ^= lanes.s[2][j];
  lanes.s[0][j] ^= lanes.s[3][j];
  lanes.s[2][j] ^= t;
  lanes.s[3][j] = rotl(lanes.s[3][j], 45);
  return result;
}

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kSse4:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("sse4.1");
#else
      return false;
#endif
    case Isa::kAvx2:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
      return __builtin_cpu_supports("avx512f") &&
             __builtin_cpu_supports("avx512dq");
#else
      return false;
#endif
    case Isa::kAuto:
      return true;
  }
  return false;
}

bool compiled_in(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
    case Isa::kAuto:
      return true;
    case Isa::kSse4:
      return fill_sse4() != nullptr;
    case Isa::kAvx2:
      return fill_avx2() != nullptr;
    case Isa::kAvx512:
      return fill_avx512() != nullptr;
  }
  return false;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kSse4:
      return "sse4";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kAuto:
      return "auto";
  }
  return "?";
}

void fill_scalar(LaneBlock& lanes, std::uint64_t* out, std::size_t per_lane) {
  for (std::size_t j = 0; j < kLanes; ++j) {
    std::uint64_t* run = out + j * per_lane;
    for (std::size_t i = 0; i < per_lane; ++i) run[i] = step_lane(lanes, j);
  }
}

void fill_u01_scalar(LaneBlock& lanes, double* out, std::size_t per_lane) {
  for (std::size_t j = 0; j < kLanes; ++j) {
    double* run = out + j * per_lane;
    for (std::size_t i = 0; i < per_lane; ++i)
      run[i] = u64_to_unit_double(step_lane(lanes, j));
  }
}

void convert_u01_scalar(const std::uint64_t* in, double* out, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) out[i] = u64_to_unit_double(in[i]);
}

bool isa_available(Isa isa) { return compiled_in(isa) && cpu_supports(isa); }

Isa best_isa() {
  static const Isa best = [] {
    for (const Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kSse4}) {
      if (isa_available(isa)) return isa;
    }
    return Isa::kScalar;
  }();
  return best;
}

std::vector<Isa> available_isas() {
  std::vector<Isa> isas{Isa::kScalar};
  for (const Isa isa : {Isa::kSse4, Isa::kAvx2, Isa::kAvx512}) {
    if (isa_available(isa)) isas.push_back(isa);
  }
  return isas;
}

FillFn fill_fn(Isa isa) {
  if (isa == Isa::kAuto) isa = best_isa();
  SF_REQUIRE(isa_available(isa), "requested SIMD ISA is not available");
  switch (isa) {
    case Isa::kSse4:
      return fill_sse4();
    case Isa::kAvx2:
      return fill_avx2();
    case Isa::kAvx512:
      return fill_avx512();
    default:
      return &fill_scalar;
  }
}

FillU01Fn fill_u01_fn(Isa isa) {
  if (isa == Isa::kAuto) isa = best_isa();
  SF_REQUIRE(isa_available(isa), "requested SIMD ISA is not available");
  switch (isa) {
    case Isa::kSse4:
      return fill_u01_sse4();
    case Isa::kAvx2:
      return fill_u01_avx2();
    case Isa::kAvx512:
      return fill_u01_avx512();
    default:
      return &fill_u01_scalar;
  }
}

ConvertU01Fn convert_u01_fn(Isa isa) {
  if (isa == Isa::kAuto) isa = best_isa();
  SF_REQUIRE(isa_available(isa), "requested SIMD ISA is not available");
  switch (isa) {
    case Isa::kSse4:
      return convert_u01_sse4();
    case Isa::kAvx2:
      return convert_u01_avx2();
    case Isa::kAvx512:
      return convert_u01_avx512();
    default:
      return &convert_u01_scalar;
  }
}

}  // namespace streamflow::simd
