// Small checked integer-math helpers used throughout the TPN and Young-diagram
// analyses: gcd/lcm over ranges (with overflow detection — lcm of replication
// factors is the TPN row count and can genuinely explode), and exact binomial
// coefficients for the S(u,v) state-count formulas of Theorem 3.
#pragma once

#include <cstdint>
#include <numeric>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace streamflow {

/// Least common multiple with overflow detection.
/// Throws CapacityExceeded if the result does not fit in int64_t.
inline std::int64_t checked_lcm(std::int64_t a, std::int64_t b) {
  SF_REQUIRE(a > 0 && b > 0, "lcm arguments must be positive");
  const std::int64_t g = std::gcd(a, b);
  const std::int64_t a_red = a / g;
  if (a_red > INT64_MAX / b) {
    throw CapacityExceeded("lcm overflow: lcm(" + std::to_string(a) + ", " +
                           std::to_string(b) + ") exceeds int64 range");
  }
  return a_red * b;
}

/// lcm of a whole range (e.g. replication factors R_1..R_N -> TPN row count).
inline std::int64_t checked_lcm(std::span<const std::int64_t> values) {
  SF_REQUIRE(!values.empty(), "lcm of empty range");
  std::int64_t acc = 1;
  for (std::int64_t v : values) acc = checked_lcm(acc, v);
  return acc;
}

inline std::int64_t checked_lcm(const std::vector<int>& values) {
  SF_REQUIRE(!values.empty(), "lcm of empty range");
  std::int64_t acc = 1;
  for (int v : values) acc = checked_lcm(acc, static_cast<std::int64_t>(v));
  return acc;
}

/// gcd of a whole range.
inline std::int64_t gcd_range(std::span<const std::int64_t> values) {
  std::int64_t acc = 0;
  for (std::int64_t v : values) acc = std::gcd(acc, v);
  return acc;
}

/// Exact binomial coefficient C(n, k); throws CapacityExceeded on overflow.
/// Used for S(u,v) = C(u+v-1, u-1) * v (number of reachable markings of a
/// u x v communication pattern, Theorem 3).
inline std::int64_t binomial(std::int64_t n, std::int64_t k) {
  SF_REQUIRE(n >= 0 && k >= 0, "binomial arguments must be non-negative");
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::int64_t result = 1;
  for (std::int64_t i = 1; i <= k; ++i) {
    // result * (n - k + i) / i is exact at every step, but the intermediate
    // product can overflow; split via gcd first.
    std::int64_t num = n - k + i;
    std::int64_t den = i;
    const std::int64_t g1 = std::gcd(result, den);
    std::int64_t r = result / g1;
    den /= g1;
    const std::int64_t g2 = std::gcd(num, den);
    num /= g2;
    den /= g2;
    SF_ASSERT(den == 1, "binomial internal reduction failed");
    if (num != 0 && r > INT64_MAX / num) {
      throw CapacityExceeded("binomial overflow: C(" + std::to_string(n) +
                             ", " + std::to_string(k) + ")");
    }
    result = r * num;
  }
  return result;
}

/// Number of reachable markings of a u x v pattern (Theorem 3):
///   S(u,v) = C(u+v-1, u-1) * v.
inline std::int64_t young_state_count(std::int64_t u, std::int64_t v) {
  SF_REQUIRE(u >= 1 && v >= 1, "pattern dimensions must be >= 1");
  const std::int64_t c = binomial(u + v - 1, u - 1);
  if (c > INT64_MAX / v) {
    throw CapacityExceeded("S(u,v) overflow");
  }
  return c * v;
}

/// Number of markings enabling a fixed transition (Theorem 4):
///   S'(u,v) = C(u+v-2, u-1) = S(u,v) / (u+v-1).
inline std::int64_t young_enabled_count(std::int64_t u, std::int64_t v) {
  SF_REQUIRE(u >= 1 && v >= 1, "pattern dimensions must be >= 1");
  return binomial(u + v - 2, u - 1);
}

}  // namespace streamflow
