// AVX-512 xoshiro256++ block-fill kernel: all 8 lanes in one 512-bit vector.
// Three ISA advantages over the AVX2 kernel: vprolq rotates in one
// instruction (vs shift/shift/or), vcvtuqq2pd (AVX-512DQ) converts uint64 ->
// double in one instruction — exact for operands below 2^53, which every
// right-shifted draw is, so it is bit-identical to the scalar
// static_cast<double> — and one state update advances all lanes at once.
// Compiled with -mavx512f -mavx512dq when the compiler supports them (see
// CMakeLists.txt); otherwise the getters return nullptr and dispatch falls
// back to AVX2/SSE4/scalar.
#include "common/simd_fill.hpp"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

namespace streamflow::simd {

namespace {

struct OctoState {
  __m512i s0, s1, s2, s3;
};

/// One xoshiro256++ step on all 8 lanes — the scalar recurrence,
/// element-wise.
inline __m512i next8(OctoState& q) {
  const __m512i result = _mm512_add_epi64(
      _mm512_rol_epi64(_mm512_add_epi64(q.s0, q.s3), 23), q.s0);
  const __m512i t = _mm512_slli_epi64(q.s1, 17);
  q.s2 = _mm512_xor_si512(q.s2, q.s0);
  q.s3 = _mm512_xor_si512(q.s3, q.s1);
  q.s1 = _mm512_xor_si512(q.s1, q.s2);
  q.s0 = _mm512_xor_si512(q.s0, q.s3);
  q.s2 = _mm512_xor_si512(q.s2, t);
  q.s3 = _mm512_rol_epi64(q.s3, 45);
  return result;
}

/// 8x8 transpose of 64-bit elements: rows r[u] = draws of iteration u across
/// all lanes become columns c[j] = 8 consecutive draws of lane j. Classic
/// three-stage butterfly: 64-bit unpacks, then two rounds of 128-bit block
/// shuffles.
inline void transpose8x8(const __m512i r[8], __m512i c[8]) {
  const __m512i t0 = _mm512_unpacklo_epi64(r[0], r[1]);
  const __m512i t1 = _mm512_unpackhi_epi64(r[0], r[1]);
  const __m512i t2 = _mm512_unpacklo_epi64(r[2], r[3]);
  const __m512i t3 = _mm512_unpackhi_epi64(r[2], r[3]);
  const __m512i t4 = _mm512_unpacklo_epi64(r[4], r[5]);
  const __m512i t5 = _mm512_unpackhi_epi64(r[4], r[5]);
  const __m512i t6 = _mm512_unpacklo_epi64(r[6], r[7]);
  const __m512i t7 = _mm512_unpackhi_epi64(r[6], r[7]);

  const __m512i u0 = _mm512_shuffle_i64x2(t0, t2, 0x88);
  const __m512i u1 = _mm512_shuffle_i64x2(t1, t3, 0x88);
  const __m512i u2 = _mm512_shuffle_i64x2(t0, t2, 0xdd);
  const __m512i u3 = _mm512_shuffle_i64x2(t1, t3, 0xdd);
  const __m512i u4 = _mm512_shuffle_i64x2(t4, t6, 0x88);
  const __m512i u5 = _mm512_shuffle_i64x2(t5, t7, 0x88);
  const __m512i u6 = _mm512_shuffle_i64x2(t4, t6, 0xdd);
  const __m512i u7 = _mm512_shuffle_i64x2(t5, t7, 0xdd);

  c[0] = _mm512_shuffle_i64x2(u0, u4, 0x88);
  c[1] = _mm512_shuffle_i64x2(u1, u5, 0x88);
  c[2] = _mm512_shuffle_i64x2(u2, u6, 0x88);
  c[3] = _mm512_shuffle_i64x2(u3, u7, 0x88);
  c[4] = _mm512_shuffle_i64x2(u0, u4, 0xdd);
  c[5] = _mm512_shuffle_i64x2(u1, u5, 0xdd);
  c[6] = _mm512_shuffle_i64x2(u2, u6, 0xdd);
  c[7] = _mm512_shuffle_i64x2(u3, u7, 0xdd);
}

// NOLINTBEGIN(cppcoreguidelines-pro-type-reinterpret-cast)
// The 512-bit load/store intrinsics take void*. Each cast below covers one
// whole alignas(64) LaneBlock row (8 lanes x 8 bytes), so every 64-byte
// access is aligned and exactly in-bounds.
inline OctoState load_state(const LaneBlock& lanes) {
  return OctoState{
      _mm512_load_si512(reinterpret_cast<const void*>(&lanes.s[0][0])),
      _mm512_load_si512(reinterpret_cast<const void*>(&lanes.s[1][0])),
      _mm512_load_si512(reinterpret_cast<const void*>(&lanes.s[2][0])),
      _mm512_load_si512(reinterpret_cast<const void*>(&lanes.s[3][0]))};
}

inline void store_state(LaneBlock& lanes, const OctoState& q) {
  _mm512_store_si512(reinterpret_cast<void*>(&lanes.s[0][0]), q.s0);
  _mm512_store_si512(reinterpret_cast<void*>(&lanes.s[1][0]), q.s1);
  _mm512_store_si512(reinterpret_cast<void*>(&lanes.s[2][0]), q.s2);
  _mm512_store_si512(reinterpret_cast<void*>(&lanes.s[3][0]), q.s3);
}
// NOLINTEND(cppcoreguidelines-pro-type-reinterpret-cast)

static_assert(kLanes == 8, "one ZMM register holds exactly the 8 lanes");

void fill_avx512_impl(LaneBlock& lanes, std::uint64_t* out,
                      std::size_t per_lane) {
  OctoState q = load_state(lanes);
  for (std::size_t i = 0; i < per_lane; i += 8) {
    __m512i r[8], c[8];
    for (int u = 0; u < 8; ++u) r[u] = next8(q);
    transpose8x8(r, c);
    for (std::size_t j = 0; j < 8; ++j) {
      // Cast: unaligned-store intrinsic takes void*; the caller-owned
      // uint64_t buffer has no alignment contract, hence storeu.
      // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
      _mm512_storeu_si512(reinterpret_cast<void*>(out + j * per_lane + i),
                          c[j]);
    }
  }
  store_state(lanes, q);
}

void convert_u01_avx512_impl(const std::uint64_t* in, double* out,
                             std::size_t n) {
  const __m512d scale = _mm512_set1_pd(0x1.0p-53);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Cast: unaligned-load intrinsic over the caller's uint64_t buffer.
    // NOLINTNEXTLINE(cppcoreguidelines-pro-type-reinterpret-cast)
    const __m512i v = _mm512_loadu_si512(
        reinterpret_cast<const void*>(in + i));
    const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(v, 11));
    _mm512_storeu_pd(out + i, _mm512_mul_pd(d, scale));
  }
  for (; i < n; ++i) out[i] = static_cast<double>(in[i] >> 11) * 0x1.0p-53;
}

void fill_u01_avx512_impl(LaneBlock& lanes, double* out, std::size_t per_lane) {
  const __m512d scale = _mm512_set1_pd(0x1.0p-53);
  OctoState q = load_state(lanes);
  for (std::size_t i = 0; i < per_lane; i += 8) {
    __m512i r[8], c[8];
    for (int u = 0; u < 8; ++u) r[u] = next8(q);
    transpose8x8(r, c);
    for (std::size_t j = 0; j < 8; ++j) {
      const __m512d d = _mm512_cvtepu64_pd(_mm512_srli_epi64(c[j], 11));
      _mm512_storeu_pd(out + j * per_lane + i, _mm512_mul_pd(d, scale));
    }
  }
  store_state(lanes, q);
}

}  // namespace

FillFn fill_avx512() { return &fill_avx512_impl; }
FillU01Fn fill_u01_avx512() { return &fill_u01_avx512_impl; }
ConvertU01Fn convert_u01_avx512() { return &convert_u01_avx512_impl; }

}  // namespace streamflow::simd

#else  // !(defined(__AVX512F__) && defined(__AVX512DQ__))

namespace streamflow::simd {
FillFn fill_avx512() { return nullptr; }
FillU01Fn fill_u01_avx512() { return nullptr; }
ConvertU01Fn convert_u01_avx512() { return nullptr; }
}  // namespace streamflow::simd

#endif
