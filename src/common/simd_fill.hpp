// SIMD xoshiro256++ block-fill kernels (the engine room of BufferedPrng).
//
// A kernel advances kLanes independent xoshiro256++ lane states in lock-step
// and writes each lane's draws CONTIGUOUSLY into the output block: lane j
// produces out[j*per_lane .. (j+1)*per_lane). BufferedPrng seeds lane j with
// the scalar stream state advanced j*per_lane steps (via a precomputed GF(2)
// jump matrix, see buffered_prng.cpp), so the filled block is byte-identical
// to per_lane*kLanes sequential scalar draws — batching never changes the
// stream, only how fast it is materialized.
//
// Kernels live in dedicated translation units compiled with their own ISA
// flags (-mavx512f/-mavx512dq / -mavx2 / -msse4.1, set per-source in
// CMakeLists.txt) so the rest of the library stays baseline-ISA. Each TU
// exposes a getter that returns nullptr when the kernel was not compiled in;
// runtime dispatch picks the best kernel the CPU actually supports (CPUID
// via __builtin_cpu_supports).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace streamflow::simd {

/// Number of interleaved xoshiro lanes every kernel advances. Eight lanes =
/// one AVX-512 vector, two AVX2 vectors, or four SSE vectors in flight,
/// enough to hide the 3-4 cycle xor/rotate dependency chain of a single
/// state on the sub-512-bit paths.
inline constexpr std::size_t kLanes = 8;

/// Lane states in structure-of-arrays layout: word w of lane j at s[w][j].
struct LaneBlock {
  alignas(64) std::uint64_t s[4][kLanes];
};

/// Fill `out` with per_lane draws from each lane (lane j's run starting at
/// out + j*per_lane), advancing the lane states in place. per_lane must be a
/// positive multiple of 8 (the widest in-register transpose tile).
using FillFn = void (*)(LaneBlock& lanes, std::uint64_t* out,
                        std::size_t per_lane);

/// Same contract, but emits uniform01() doubles instead of raw draws: each
/// value is exactly u64_to_unit_double(raw draw) — the conversion is exact
/// (53-bit operand, power-of-two scale), so vectorizing it cannot change a
/// single bit relative to the scalar expression.
using FillU01Fn = void (*)(LaneBlock& lanes, double* out, std::size_t per_lane);

/// Elementwise out[i] = u64_to_unit_double(in[i]) for already-materialized
/// raw draws (BufferedPrng's partial-block drains), any n, in/out disjoint.
/// Same exactness guarantee as FillU01Fn.
using ConvertU01Fn = void (*)(const std::uint64_t* in, double* out,
                              std::size_t n);

/// Instruction sets a kernel can be compiled for, in preference order.
enum class Isa {
  kScalar,  ///< portable C++ fallback, always available
  kSse4,    ///< SSE4.1 (pblendw for the exact u64->double conversion)
  kAvx2,    ///< AVX2, 4 lanes per vector
  kAvx512,  ///< AVX-512 F+DQ: all 8 lanes in one vector, vprolq, vcvtuqq2pd
  kAuto,    ///< dispatch: best kernel compiled in AND supported by the CPU
};

const char* isa_name(Isa isa);

/// Portable kernels (always compiled).
void fill_scalar(LaneBlock& lanes, std::uint64_t* out, std::size_t per_lane);
void fill_u01_scalar(LaneBlock& lanes, double* out, std::size_t per_lane);
void convert_u01_scalar(const std::uint64_t* in, double* out, std::size_t n);

/// Per-ISA kernel getters: nullptr when that TU was compiled without the ISA
/// (non-x86 target or compiler without the flag).
FillFn fill_sse4();
FillU01Fn fill_u01_sse4();
ConvertU01Fn convert_u01_sse4();
FillFn fill_avx2();
FillU01Fn fill_u01_avx2();
ConvertU01Fn convert_u01_avx2();
FillFn fill_avx512();
FillU01Fn fill_u01_avx512();
ConvertU01Fn convert_u01_avx512();

/// True when `isa`'s kernel is both compiled in and supported by this CPU.
bool isa_available(Isa isa);

/// The best available concrete ISA (what kAuto resolves to).
Isa best_isa();

/// Every concrete ISA available on this machine, scalar first — the
/// byte-equality tests iterate this to pin each compiled path.
std::vector<Isa> available_isas();

/// Resolve an ISA (including kAuto) to its kernel pair. SF_REQUIREs that the
/// ISA is available.
FillFn fill_fn(Isa isa);
FillU01Fn fill_u01_fn(Isa isa);
ConvertU01Fn convert_u01_fn(Isa isa);

}  // namespace streamflow::simd
