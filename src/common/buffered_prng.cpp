#include "common/buffered_prng.hpp"

#include <bit>
#include <map>
#include <memory>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace streamflow {

namespace detail {

// The xoshiro256++ state transition is linear over GF(2): advancing N steps
// is multiplication by T^N, a 256x256 bit matrix. We store a matrix by its
// 256 columns (column c = matrix applied to unit vector e_c), each column a
// 256-bit state. T^N is computed once per distinct N by square-and-multiply.
struct StepMatrix {
  std::array<std::array<std::uint64_t, 4>, 256> col;
};

// Applying a StepMatrix bit-by-bit costs ~256 conditional XORs — measurably
// too slow on the refill path (it would eat most of the SIMD win at the
// default block size). So each interned T^N is re-expressed as 32 byte
// tables: table[b][v] = T^N applied to the state whose byte b equals v and
// is zero elsewhere. Linearity makes the full product a XOR of 32 table
// rows — ~20x cheaper per application, for 256 KiB per distinct N.
struct LaneJump {
  std::array<std::array<std::array<std::uint64_t, 4>, 256>, 32> table;
};

namespace {

using State = std::array<std::uint64_t, 4>;

inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

/// One xoshiro256++ state step (output discarded) — keep in sync with
/// Prng::step().
void step(State& s) {
  const std::uint64_t t = s[1] << 17;
  s[2] ^= s[0];
  s[3] ^= s[1];
  s[1] ^= s[2];
  s[0] ^= s[3];
  s[2] ^= t;
  s[3] = rotl(s[3], 45);
}

State apply(const StepMatrix& m, const State& s) {
  State out{};
  for (std::size_t c = 0; c < 256; ++c) {
    if ((s[c / 64] >> (c % 64)) & 1ULL) {
      for (std::size_t w = 0; w < 4; ++w) out[w] ^= m.col[c][w];
    }
  }
  return out;
}

StepMatrix single_step_matrix() {
  StepMatrix m;
  for (std::size_t c = 0; c < 256; ++c) {
    State e{};
    e[c / 64] = 1ULL << (c % 64);
    step(e);
    m.col[c] = e;
  }
  return m;
}

StepMatrix multiply(const StepMatrix& a, const StepMatrix& b) {
  StepMatrix out;
  for (std::size_t c = 0; c < 256; ++c) out.col[c] = apply(a, b.col[c]);
  return out;
}

StepMatrix power(std::size_t n) {
  // Square-and-multiply over the bits of n.
  StepMatrix result;  // identity
  for (std::size_t c = 0; c < 256; ++c) {
    State e{};
    e[c / 64] = 1ULL << (c % 64);
    result.col[c] = e;
  }
  StepMatrix base = single_step_matrix();
  while (n != 0) {
    if (n & 1) result = multiply(base, result);
    n >>= 1;
    if (n != 0) base = multiply(base, base);
  }
  return result;
}

/// Expand a step matrix into its byte-table form. Each table is filled in
/// subset order: the row for byte value v is the row for v minus its lowest
/// set bit, XOR the matrix column of that bit.
LaneJump tables_from(const StepMatrix& m) {
  LaneJump jump;
  for (std::size_t b = 0; b < 32; ++b) {
    jump.table[b][0] = State{};
    for (std::size_t v = 1; v < 256; ++v) {
      const std::size_t low = v & (~v + 1);
      const State& prev = jump.table[b][v ^ low];
      const State& col = m.col[b * 8 + std::countr_zero(low)];
      State& row = jump.table[b][v];
      for (std::size_t w = 0; w < 4; ++w) row[w] = prev[w] ^ col[w];
    }
  }
  return jump;
}

State apply(const LaneJump& jump, const State& s) {
  State out{};
  for (std::size_t b = 0; b < 32; ++b) {
    const State& row = jump.table[b][(s[b >> 3] >> ((b & 7) * 8)) & 0xff];
    for (std::size_t w = 0; w < 4; ++w) out[w] ^= row[w];
  }
  return out;
}

/// The process-wide intern cache of byte-table jump matrices — the one piece
/// of shared mutable state in the SIMD refill layer. The map is guarded; the
/// LaneJump payloads are immutable once published (entries are never erased,
/// so handing out `const LaneJump&` past the lock is safe).
struct LaneJumpCache {
  Mutex mutex;
  std::map<std::size_t, std::unique_ptr<LaneJump>> entries
      SF_GUARDED_BY(mutex);
};

/// Intern the byte-table form of T^steps: computed once per distinct step
/// count per process, then shared read-only by every BufferedPrng
/// (thread-safe; the returned tables are immutable).
const LaneJump& lane_jump_tables(std::size_t steps) {
  // Leaked intentionally: BufferedPrng instances may outlive static
  // destruction order, and the tables are meaningful for the whole process.
  static LaneJumpCache* cache = new LaneJumpCache();
  MutexLock lock(cache->mutex);
  auto& slot = cache->entries[steps];
  if (!slot) slot = std::make_unique<LaneJump>(tables_from(power(steps)));
  return *slot;
}

}  // namespace

}  // namespace detail

std::size_t pick_block_draws(std::size_t concurrent_streams,
                             std::size_t expected_draws_per_stream) {
  constexpr std::size_t kGranule = simd::kLanes * 8;
  constexpr std::size_t kBudgetBytes = 1u << 20;
  if (concurrent_streams == 0) concurrent_streams = 1;
  std::size_t block = BufferedPrng::kDefaultBlockDraws;
  while (block > 16 * kGranule &&
         (block * concurrent_streams * sizeof(std::uint64_t) > kBudgetBytes ||
          block / 2 >= expected_draws_per_stream)) {
    block /= 2;
  }
  return block;
}

BufferedPrng::BufferedPrng(const Prng& start, simd::Isa isa,
                           std::size_t block_draws)
    : RandomSource(start),  // carry over any pending cached normal deviate
      frontier_(start.state()),
      buffer_(block_draws),
      isa_(isa == simd::Isa::kAuto ? simd::best_isa() : isa),
      fill_(simd::fill_fn(isa_)),
      fill_u01_(simd::fill_u01_fn(isa_)),
      convert_u01_(simd::convert_u01_fn(isa_)),
      lane_jump_(nullptr),
      per_lane_(block_draws / simd::kLanes) {
  SF_REQUIRE(block_draws > 0 && block_draws % (simd::kLanes * 8) == 0,
             "block_draws must be a positive multiple of kLanes * 8");
  lane_jump_ = &detail::lane_jump_tables(per_lane_);
}

std::size_t BufferedPrng::take(const std::uint64_t** run,
                               std::size_t max_draws) {
  SF_REQUIRE(max_draws > 0, "take of zero draws");
  if (pos_ == end_) refill();
  const std::size_t n = std::min(max_draws, end_ - pos_);
  *run = buffer_.data() + pos_;
  pos_ += n;
  return n;
}

void BufferedPrng::fill_uniform01(double* out, std::size_t n) {
  std::size_t i = 0;
  // Drain already-materialized raws first so the logical stream position
  // stays exactly sequential (vectorized elementwise conversion — exact,
  // see simd_fill.hpp).
  if (pos_ < end_) {
    const std::size_t m = std::min(n, end_ - pos_);
    convert_u01_(buffer_.data() + pos_, out, m);
    pos_ += m;
    i += m;
  }
  // Whole blocks convert in-kernel straight into the caller's buffer.
  while (n - i >= buffer_.size()) {
    simd::LaneBlock lanes;
    seed_lanes(lanes);
    fill_u01_(lanes, out + i, per_lane_);
    i += buffer_.size();
  }
  // Remainder comes out of a fresh raw block.
  while (i < n) {
    refill();
    const std::size_t m = std::min(n - i, end_ - pos_);
    convert_u01_(buffer_.data() + pos_, out + i, m);
    pos_ += m;
    i += m;
  }
}

void BufferedPrng::seed_lanes(simd::LaneBlock& lanes) {
  std::array<std::uint64_t, 4> s = frontier_;
  for (std::size_t j = 0; j < simd::kLanes; ++j) {
    for (std::size_t w = 0; w < 4; ++w) lanes.s[w][j] = s[w];
    s = detail::apply(*lane_jump_, s);
  }
  frontier_ = s;
}

void BufferedPrng::refill() {
  simd::LaneBlock lanes;
  seed_lanes(lanes);
  fill_(lanes, buffer_.data(), per_lane_);
  pos_ = 0;
  end_ = buffer_.size();
}

}  // namespace streamflow
