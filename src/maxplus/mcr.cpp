#include "maxplus/mcr.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

namespace streamflow {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// Scale of the instance, used to derive relaxation epsilons: improvements
/// below eps are treated as FP noise. At lambda equal to an exact cycle
/// ratio the critical cycle has reduced weight 0; without this guard its
/// rounding noise shows up as a phantom "positive" cycle and stalls the
/// Dinkelbach iteration below the true optimum.
double duration_scale(const TimedEventGraph& graph) {
  double scale = 1.0;
  for (const Transition& t : graph.transitions())
    scale = std::max(scale, std::fabs(t.duration));
  return scale;
}

/// One Bellman–Ford longest-path sweep family: finds a cycle of total
/// weight > eps * length, with w(e) = duration(head(e)) - lambda*tokens(e).
/// Returns the place ids of one such cycle.
std::optional<std::vector<std::size_t>> find_positive_cycle(
    const TimedEventGraph& graph, double lambda, double eps) {
  const std::size_t v = graph.num_transitions();
  std::vector<double> dist(v, 0.0);
  std::vector<std::size_t> pred_place(v, kNone);

  auto weight = [&](const Place& p) {
    return graph.transition(p.to).duration -
           lambda * static_cast<double>(p.initial_tokens);
  };

  std::size_t last_updated = kNone;
  for (std::size_t pass = 0; pass <= v; ++pass) {
    last_updated = kNone;
    for (std::size_t pid = 0; pid < graph.num_places(); ++pid) {
      const Place& p = graph.place(pid);
      const double cand = dist[p.from] + weight(p);
      if (cand > dist[p.to] + eps) {
        dist[p.to] = cand;
        pred_place[p.to] = pid;
        last_updated = p.to;
      }
    }
    if (last_updated == kNone) return std::nullopt;  // converged: no cycle
  }

  // Still relaxing after |V| passes: a positive cycle exists. Walk the
  // predecessor chain |V| steps to be sure we are inside a cycle.
  std::size_t node = last_updated;
  for (std::size_t i = 0; i < v; ++i) {
    SF_ASSERT(pred_place[node] != kNone, "broken predecessor chain");
    node = graph.place(pred_place[node]).from;
  }
  // Collect the cycle.
  std::vector<std::size_t> cycle_places;
  std::size_t cursor = node;
  do {
    const std::size_t pid = pred_place[cursor];
    SF_ASSERT(pid != kNone, "broken predecessor cycle");
    cycle_places.push_back(pid);
    cursor = graph.place(pid).from;
  } while (cursor != node && cycle_places.size() <= v);
  SF_ASSERT(cursor == node, "failed to close predecessor cycle");
  std::reverse(cycle_places.begin(), cycle_places.end());
  return cycle_places;
}

/// Exact ratio of a cycle given as place ids.
CriticalCycle evaluate_cycle(const TimedEventGraph& graph,
                             std::vector<std::size_t> cycle_places) {
  CriticalCycle result;
  double durations = 0.0;
  int tokens = 0;
  for (std::size_t pid : cycle_places) {
    const Place& p = graph.place(pid);
    durations += graph.transition(p.to).duration;
    tokens += p.initial_tokens;
    result.transitions.push_back(p.to);
  }
  SF_ASSERT(tokens > 0,
            "token-free cycle encountered; the event graph is not live");
  result.places = std::move(cycle_places);
  result.tokens = tokens;
  result.ratio = durations / static_cast<double>(tokens);
  return result;
}

}  // namespace

CriticalCycle max_cycle_ratio(const TimedEventGraph& graph) {
  SF_REQUIRE(graph.num_places() > 0, "event graph has no places");
  const double scale = duration_scale(graph);
  const double base_eps = 1e-12 * scale;

  // Any lambda below every possible ratio makes every cycle positive;
  // ratios are >= 0, so -scale guarantees the first detection finds a cycle
  // whenever one exists at all.
  auto first = find_positive_cycle(graph, -scale, base_eps);
  if (!first) {
    throw InvalidArgument(
        "event graph is acyclic: the system has no steady-state period");
  }
  CriticalCycle best = evaluate_cycle(graph, std::move(*first));

  constexpr int kMaxRounds = 10'000;
  double eps = std::max(base_eps, 1e-10 * scale);
  for (int round = 0; round < kMaxRounds; ++round) {
    auto cycle = find_positive_cycle(graph, best.ratio, eps);
    if (!cycle) return best;  // no cycle beats the current ratio: optimal
    CriticalCycle candidate = evaluate_cycle(graph, std::move(*cycle));
    if (candidate.ratio <= best.ratio * (1.0 + 1e-12)) {
      // Phantom cycle (FP noise around the zero-reduced-weight critical
      // cycle): raise the relaxation threshold and retry instead of
      // concluding optimality or looping forever.
      eps *= 10.0;
      if (eps > 1e-6 * scale) return best;
      continue;
    }
    best = std::move(candidate);
  }
  throw NumericalError("max_cycle_ratio: Dinkelbach iteration did not settle");
}

double max_cycle_ratio_lawler(const TimedEventGraph& graph, double tolerance) {
  SF_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  const double scale = duration_scale(graph);
  const double eps = 1e-10 * scale;
  double hi = 0.0;
  for (const Transition& t : graph.transitions()) hi += t.duration;
  hi = std::max(hi, 1.0);
  double lo = -scale;
  if (!find_positive_cycle(graph, lo, eps)) {
    throw InvalidArgument(
        "event graph is acyclic: the system has no steady-state period");
  }
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (find_positive_cycle(graph, mid, eps)) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace streamflow
