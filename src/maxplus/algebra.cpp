#include "maxplus/algebra.hpp"

namespace streamflow::maxplus {

Matrix Matrix::multiply(const Matrix& other) const {
  SF_REQUIRE(n_ == other.n_, "dimension mismatch");
  Matrix result(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = 0; k < n_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == eps) continue;
      for (std::size_t j = 0; j < n_; ++j) {
        const double v = otimes(aik, other(k, j));
        if (v > result(i, j)) result(i, j) = v;
      }
    }
  }
  return result;
}

std::vector<double> Matrix::apply(const std::vector<double>& x) const {
  SF_REQUIRE(x.size() == n_, "dimension mismatch");
  std::vector<double> y(n_, eps);
  for (std::size_t i = 0; i < n_; ++i) {
    double acc = eps;
    for (std::size_t j = 0; j < n_; ++j) {
      acc = oplus(acc, otimes((*this)(i, j), x[j]));
    }
    y[i] = acc;
  }
  return y;
}

Matrix Matrix::star() const {
  // All-pairs longest path (Floyd–Warshall over the (max,+) semiring),
  // starting from I (+) A.
  Matrix r(n_);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = 0; j < n_; ++j) r(i, j) = (*this)(i, j);
    r(i, i) = oplus(r(i, i), e);
  }
  for (std::size_t k = 0; k < n_; ++k) {
    for (std::size_t i = 0; i < n_; ++i) {
      const double rik = r(i, k);
      if (rik == eps) continue;
      for (std::size_t j = 0; j < n_; ++j) {
        const double v = otimes(rik, r(k, j));
        if (v > r(i, j)) r(i, j) = v;
      }
    }
  }
  for (std::size_t i = 0; i < n_; ++i) {
    if (r(i, i) > e + 1e-12) {
      throw InvalidArgument(
          "Kleene star diverges: the token-free subgraph has a positive "
          "cycle (the event graph is not live)");
    }
  }
  return r;
}

Matrix state_matrix(const TimedEventGraph& graph) {
  const std::size_t n = graph.num_transitions();
  // x_t(k) = d_t + max( max over 0-token places (s -> t) x_s(k),
  //                     max over 1-token places (s -> t) x_s(k-1) ).
  Matrix b0(n), b1(n);
  for (const Place& p : graph.places()) {
    SF_REQUIRE(p.initial_tokens <= 1,
               "state_matrix requires a 1-bounded initial marking");
    const double w = graph.transition(p.to).duration;
    if (p.initial_tokens == 0) {
      b0(p.to, p.from) = oplus(b0(p.to, p.from), w);
    } else {
      b1(p.to, p.from) = oplus(b1(p.to, p.from), w);
    }
  }
  return b0.star().multiply(b1);
}

std::vector<double> cycle_time_vector(const Matrix& a,
                                      std::size_t iterations) {
  SF_REQUIRE(iterations >= 4, "need at least 4 iterations");
  const std::size_t n = a.size();
  std::vector<double> x(n, 0.0);
  const std::size_t half = iterations / 2;
  std::vector<double> mid(n, 0.0);
  for (std::size_t k = 0; k < iterations; ++k) {
    if (k == half) mid = x;
    x = a.apply(x);
  }
  std::vector<double> rates(n);
  for (std::size_t i = 0; i < n; ++i) {
    SF_REQUIRE(x[i] != eps && mid[i] != eps,
               "transition never fires (disconnected from any token)");
    rates[i] = (x[i] - mid[i]) / static_cast<double>(iterations - half);
  }
  return rates;
}

}  // namespace streamflow::maxplus
