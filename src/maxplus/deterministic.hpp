// Deterministic (static-case) throughput of a replicated mapping, Section 4.
//
// The TPN of a replicated mapping is NOT strongly connected: it is a DAG of
// strongly connected components (resource cycles) joined by forward data-flow
// places. By max-plus spectral theory (cycle-time vector, Baccelli et al.),
// the asymptotic firing period of a transition equals the largest cycle
// ratio among the cycles that can reach it, i.e. the max of its ancestor
// components' periods in the condensation DAG. The system throughput is the
// sum over the last-column transitions of their firing rates.
//
// Note: this refines the naive rho = m / Lambda (Lambda = global max cycle
// ratio), which is only correct when the critical cycle reaches every
// last-column transition — the common case, but not the general one (e.g. a
// replicated LAST stage with heterogeneous speeds completes different rows
// at different rates).
#pragma once

#include <optional>
#include <vector>

#include "maxplus/mcr.hpp"
#include "model/mapping.hpp"
#include "tpn/builder.hpp"

namespace streamflow {

struct DeterministicThroughput {
  /// rho: completed data sets per time unit (rows summed independently).
  double throughput = 0.0;
  /// The paper's rho = m / P: the rate at which data sets can be DELIVERED
  /// IN ORDER, paced by the slowest output row (global critical cycle).
  /// Equal to `throughput` whenever all output rows share one bottleneck —
  /// the common case; strictly smaller e.g. for a replicated last stage
  /// with heterogeneous speeds.
  double in_order_throughput = 0.0;
  /// P = 1 / throughput: average interval between completions (§2.3).
  double period = 0.0;
  /// Largest per-firing period among last-column transitions (the pace of
  /// the slowest output row).
  double bottleneck_transition_period = 0.0;
  /// Mct of §2.3, a per-data-set lower bound on the period 1/rho.
  double max_cycle_time = 0.0;
  /// 1 / Mct: the "critical resource" upper bound on the throughput.
  double critical_resource_throughput = 0.0;
  /// True when the bound is attained (the usual case; Table 1 counts the
  /// rare mappings where it is not).
  bool critical_resource_attained = false;
  /// A critical cycle: the binding cycle of the slowest output row.
  CriticalCycle critical_cycle;
};

/// Full analysis, valid for both execution models.
DeterministicThroughput deterministic_throughput(
    const Mapping& mapping, ExecutionModel model,
    const TpnBuildOptions& options = {});

/// Per-transition asymptotic firing periods of an arbitrary live TEG:
/// periods[t] = max cycle ratio among cycles with a path to t (0 for a
/// transition with no ancestor cycle). Exposed for tests and diagnostics.
std::vector<double> transition_periods(const TimedEventGraph& graph);

/// Per-column periods of the Overlap TPN (§4.1): index c holds the maximum
/// cycle ratio among cycles of column c (all Overlap cycles are confined to
/// a single column).
std::vector<double> column_periods_overlap(const Mapping& mapping,
                                           const TpnBuildOptions& options = {});

/// Extracts the sub-event-graph induced by one column (transitions of that
/// column and the places joining them). Exposed for tests and diagnostics.
TimedEventGraph column_subgraph(const TimedEventGraph& graph,
                                std::size_t column);

}  // namespace streamflow
