// The (max,+) algebra of Baccelli, Cohen, Olsder & Quadrat — the formal
// machinery behind Section 4 and the proof of Theorem 5 (the daters of an
// event graph satisfy D(n) = D(n-1) (x) A(n)).
//
// Scalars live in R ∪ {-inf} with  a (+) b = max(a, b)  and
// a (x) b = a + b; eps = -inf is the additive zero, e = 0 the
// multiplicative one. A 1-bounded timed event graph yields matrices A0
// (token-free places) and A1 (one-token places) with
//   x(k) = A0 (x) x(k) (+) A1 (x) x(k-1) + durations,
// whose solution is x(k) = A (x) x(k-1) with A = A0* (x) A1 (Kleene star).
// The per-transition growth rates of x(k) are the cycle-time vector — an
// independent route to the deterministic throughput, cross-checked against
// the critical-cycle analysis in the tests.
#pragma once

#include <limits>
#include <vector>

#include "common/error.hpp"
#include "tpn/graph.hpp"

namespace streamflow {

namespace maxplus {

/// The additive identity (-infinity).
inline constexpr double eps = -std::numeric_limits<double>::infinity();
/// The multiplicative identity (0).
inline constexpr double e = 0.0;

/// a (+) b = max.
inline double oplus(double a, double b) { return a > b ? a : b; }
/// a (x) b = plus, absorbing eps.
inline double otimes(double a, double b) {
  if (a == eps || b == eps) return eps;
  return a + b;
}

/// Dense square matrix over the (max,+) semiring.
class Matrix {
 public:
  explicit Matrix(std::size_t n) : n_(n), data_(n * n, eps) {}

  static Matrix identity(std::size_t n) {
    Matrix m(n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = e;
    return m;
  }

  std::size_t size() const { return n_; }
  double& operator()(std::size_t r, std::size_t c) { return data_[r * n_ + c]; }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * n_ + c];
  }

  /// C = this (x) other (max-plus product).
  Matrix multiply(const Matrix& other) const;

  /// y = this (x) x for a column vector.
  std::vector<double> apply(const std::vector<double>& x) const;

  /// Kleene star A* = I (+) A (+) A^2 (+) ... — requires the weighted graph
  /// of A to have no cycle of positive weight (here: A0's support is
  /// acyclic, guaranteed by liveness). Throws InvalidArgument otherwise.
  Matrix star() const;

 private:
  std::size_t n_;
  std::vector<double> data_;
};

/// The state matrix A = A0* (x) A1 of a 1-bounded TEG: entry (i, j) is the
/// longest weighted path from transition j to transition i that crosses
/// exactly one marked place, counting firing durations of every transition
/// entered. x(k) = A (x) x(k-1) gives the k-th firing completion times.
Matrix state_matrix(const TimedEventGraph& graph);

/// Asymptotic growth rates of x(k) = A^k (x) x(0) per coordinate — the
/// cycle-time vector. Computed by iterating the recurrence `iterations`
/// times from x(0) = 0 and differencing over the second half (exact for
/// sufficiently many iterations since the system is ultimately periodic).
std::vector<double> cycle_time_vector(const Matrix& a,
                                      std::size_t iterations = 400);

}  // namespace maxplus

}  // namespace streamflow
