// Maximum cycle ratio of a timed event graph — the (max,+) spectral value
// that gives the deterministic period (Section 4): for any cycle C of the
// net, ratio(C) = (sum of firing durations of C's transitions) /
// (number of initial tokens on C's places), and the period is
// Lambda = max_C ratio(C); a maximizing cycle is a critical cycle.
//
// Two independent algorithms are provided:
//  * Dinkelbach iteration (find a positive-weight cycle for the current
//    guess, jump to its exact ratio; converges in a handful of rounds) —
//    the production path, exact up to FP on the final cycle;
//  * Lawler binary search over lambda with Bellman–Ford feasibility — used
//    as a cross-check in tests.
#pragma once

#include <cstddef>
#include <vector>

#include "tpn/graph.hpp"

namespace streamflow {

struct CriticalCycle {
  /// The period Lambda = max cycle ratio (time per firing of each
  /// transition on the cycle).
  double ratio = 0.0;
  /// Transition ids of one critical cycle, in traversal order.
  std::vector<std::size_t> transitions;
  /// Place ids traversed (same length; places_[k] goes from transitions[k]
  /// to transitions[(k+1) % size]).
  std::vector<std::size_t> places;
  /// Total tokens on the critical cycle.
  int tokens = 0;
};

/// Dinkelbach maximum-cycle-ratio. The graph must be live (every cycle
/// carries a token) — guaranteed by build_tpn. Graphs whose place graph is
/// acyclic have no cycle at all; this cannot happen for our TPNs (every
/// transition sits on a resource chain) and raises InvalidArgument.
CriticalCycle max_cycle_ratio(const TimedEventGraph& graph);

/// Lawler binary-search cross-check; returns only the ratio, bisected to
/// `tolerance` (absolute).
double max_cycle_ratio_lawler(const TimedEventGraph& graph,
                              double tolerance = 1e-10);

}  // namespace streamflow
