#include "maxplus/deterministic.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace streamflow {

namespace {

/// Iterative Tarjan SCC over the transition graph (arcs = places).
/// Returns the component id of each transition; ids are in reverse
/// topological order of the condensation (standard Tarjan property).
struct SccResult {
  std::vector<std::size_t> component_of;
  std::size_t num_components = 0;
};

SccResult tarjan_scc(const TimedEventGraph& graph) {
  const std::size_t n = graph.num_transitions();
  constexpr std::size_t kUnset = static_cast<std::size_t>(-1);
  SccResult result;
  result.component_of.assign(n, kUnset);

  std::vector<std::size_t> index(n, kUnset), lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  // Explicit DFS frame: vertex + progress through its out-places.
  struct Frame {
    std::size_t vertex;
    std::size_t edge_cursor;
  };
  std::vector<Frame> frames;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnset) continue;
    frames.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const std::size_t v = frame.vertex;
      const auto& out = graph.output_places(v);
      if (frame.edge_cursor < out.size()) {
        const std::size_t w = graph.place(out[frame.edge_cursor++]).to;
        if (index[w] == kUnset) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = 1;
          frames.push_back({w, 0});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        frames.pop_back();
        if (!frames.empty()) {
          const std::size_t parent = frames.back().vertex;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is the root of a component.
          for (;;) {
            const std::size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = 0;
            result.component_of[w] = result.num_components;
            if (w == v) break;
          }
          ++result.num_components;
        }
      }
    }
  }
  return result;
}

/// Max cycle ratio of each non-trivial SCC (0 for cycle-free components).
std::vector<double> component_periods(const TimedEventGraph& graph,
                                      const SccResult& scc,
                                      std::vector<CriticalCycle>* cycles) {
  std::vector<double> periods(scc.num_components, 0.0);
  if (cycles) cycles->assign(scc.num_components, {});

  // Group transitions by component.
  std::vector<std::vector<std::size_t>> members(scc.num_components);
  for (std::size_t t = 0; t < graph.num_transitions(); ++t)
    members[scc.component_of[t]].push_back(t);

  for (std::size_t c = 0; c < scc.num_components; ++c) {
    // Build the component's subgraph.
    TimedEventGraph sub(static_cast<std::int64_t>(members[c].size()), 1);
    std::vector<std::size_t> remap(graph.num_transitions(),
                                   static_cast<std::size_t>(-1));
    for (std::size_t local = 0; local < members[c].size(); ++local) {
      Transition copy = graph.transition(members[c][local]);
      copy.column = 0;
      remap[members[c][local]] = sub.add_transition(copy);
    }
    bool has_internal_place = false;
    for (const Place& p : graph.places()) {
      if (scc.component_of[p.from] != c || scc.component_of[p.to] != c)
        continue;
      sub.add_place(Place{remap[p.from], remap[p.to], p.kind,
                          p.initial_tokens});
      has_internal_place = true;
    }
    sub.finalize();
    if (!has_internal_place) continue;  // trivial component: no cycle
    CriticalCycle crit = max_cycle_ratio(sub);
    periods[c] = crit.ratio;
    if (cycles) {
      // Remap the cycle back to global transition ids.
      for (std::size_t& t : crit.transitions) t = members[c][t];
      crit.places.clear();  // place ids are local; drop them
      (*cycles)[c] = std::move(crit);
    }
  }
  return periods;
}

}  // namespace

std::vector<double> transition_periods(const TimedEventGraph& graph) {
  const SccResult scc = tarjan_scc(graph);
  std::vector<double> comp_period =
      component_periods(graph, scc, /*cycles=*/nullptr);

  // Tarjan ids are in reverse topological order: a condensation edge always
  // goes from a higher id to a lower id, so relaxing edges in descending
  // source-id order propagates ancestor maxima in one sweep.
  std::vector<double> reach(comp_period);
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  edges.reserve(graph.num_places());
  for (const Place& p : graph.places()) {
    const std::size_t a = scc.component_of[p.from];
    const std::size_t b = scc.component_of[p.to];
    if (a != b) edges.push_back({a, b});
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  for (const auto& [a, b] : edges) {
    SF_ASSERT(a > b, "condensation edge violates reverse-topological ids");
    reach[b] = std::max(reach[b], reach[a]);
  }

  std::vector<double> periods(graph.num_transitions());
  for (std::size_t t = 0; t < graph.num_transitions(); ++t)
    periods[t] = reach[scc.component_of[t]];
  return periods;
}

DeterministicThroughput deterministic_throughput(const Mapping& mapping,
                                                 ExecutionModel model,
                                                 const TpnBuildOptions& options) {
  const TimedEventGraph graph = build_tpn(mapping, model, options);

  const SccResult scc = tarjan_scc(graph);
  std::vector<CriticalCycle> cycles;
  std::vector<double> comp_period = component_periods(graph, scc, &cycles);

  // Ancestor-max propagation (see transition_periods); also remember which
  // ancestor component is binding so we can report its critical cycle.
  std::vector<double> reach(comp_period);
  std::vector<std::size_t> binding(scc.num_components);
  for (std::size_t c = 0; c < scc.num_components; ++c) binding[c] = c;
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  for (const Place& p : graph.places()) {
    const std::size_t a = scc.component_of[p.from];
    const std::size_t b = scc.component_of[p.to];
    if (a != b) edges.push_back({a, b});
  }
  std::sort(edges.begin(), edges.end(),
            [](const auto& x, const auto& y) { return x.first > y.first; });
  for (const auto& [a, b] : edges) {
    if (reach[a] > reach[b]) {
      reach[b] = reach[a];
      binding[b] = binding[a];
    }
  }

  DeterministicThroughput result;
  double slowest = 0.0;
  std::size_t slowest_component = 0;
  for (const std::size_t t : graph.last_column_transitions()) {
    const std::size_t c = scc.component_of[t];
    SF_ASSERT(reach[c] > 0.0,
              "last-column transition without an ancestor cycle");
    // Each last-column transition completes one data set per firing; its
    // firing period is reach[c].
    result.throughput += 1.0 / reach[c];
    if (reach[c] > slowest) {
      slowest = reach[c];
      slowest_component = binding[c];
    }
  }
  result.period = 1.0 / result.throughput;
  result.bottleneck_transition_period = slowest;
  result.in_order_throughput =
      static_cast<double>(mapping.num_paths()) / slowest;
  result.critical_cycle = cycles[slowest_component];
  result.max_cycle_time = mapping.max_cycle_time(model);
  result.critical_resource_throughput = 1.0 / result.max_cycle_time;
  // Table 1's notion: does the in-order rate attain the critical-resource
  // bound 1/Mct? (The bound provably caps in_order_throughput; the summed
  // completion rate can exceed it when output rows decouple.)
  result.critical_resource_attained =
      relative_difference(result.in_order_throughput,
                          result.critical_resource_throughput) < 1e-9;
  return result;
}

TimedEventGraph column_subgraph(const TimedEventGraph& graph,
                                std::size_t column) {
  SF_REQUIRE(column < graph.num_columns(), "column out of range");
  TimedEventGraph sub(graph.num_rows(), 1);
  std::vector<std::size_t> remap(graph.num_transitions(),
                                 static_cast<std::size_t>(-1));
  for (std::size_t t = 0; t < graph.num_transitions(); ++t) {
    if (graph.transition(t).column != column) continue;
    Transition copy = graph.transition(t);
    copy.column = 0;
    remap[t] = sub.add_transition(copy);
  }
  for (const Place& p : graph.places()) {
    const std::size_t from = remap[p.from];
    const std::size_t to = remap[p.to];
    if (from == static_cast<std::size_t>(-1) ||
        to == static_cast<std::size_t>(-1))
      continue;
    sub.add_place(Place{from, to, p.kind, p.initial_tokens});
  }
  sub.finalize();
  return sub;
}

std::vector<double> column_periods_overlap(const Mapping& mapping,
                                           const TpnBuildOptions& options) {
  const TimedEventGraph graph =
      build_tpn(mapping, ExecutionModel::kOverlap, options);
  std::vector<double> periods;
  periods.reserve(graph.num_columns());
  for (std::size_t c = 0; c < graph.num_columns(); ++c) {
    const TimedEventGraph sub = column_subgraph(graph, c);
    periods.push_back(max_cycle_ratio(sub).ratio);
  }
  return periods;
}

}  // namespace streamflow
