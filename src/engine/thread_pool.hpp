// Fixed-size thread pool used by the experiment engine and the parallel
// portfolio search. Deliberately minimal: tasks are submitted up front and
// `wait()` blocks until the queue drains and every worker is idle.
//
// Determinism contract: the pool makes NO ordering promises beyond running
// every task exactly once — engine determinism never depends on task
// scheduling. Every deterministic layer built on top follows the same
// recipe: partition the work so each task writes only its own output slot,
// derive any randomness from jump-ahead substreams keyed by the slot index
// (never by worker identity), and reduce serially in slot order after
// wait() returns.
//
// Thread safety: submit() and wait() may be called from the owning thread
// while workers run; tasks themselves must not touch the pool. Tasks run
// concurrently, so anything they share must be immutable (e.g. one
// Instance) or sliced per task (e.g. one AnalysisContext per worker).
//
// The locking contract is MACHINE-CHECKED: every mutable member is
// SF_GUARDED_BY(mutex_) and every helper that assumes the lock is
// SF_REQUIRES(mutex_), enforced by `clang -Wthread-safety
// -Werror=thread-safety` (the CI clang job; GCC compiles the annotations
// away). Local spot-check of the contract, from the repo root:
//
//   CXX=clang++ cmake -B build-clang -S . && cmake --build build-clang
//
// — then delete the SF_REQUIRES(mutex_) on `work_done()` below and watch
// the build fail (the body reads guarded members without the capability;
// CI automates exactly this mutation). Deleting an SF_GUARDED_BY instead
// WEAKENS the analysis rather than breaking the build — accesses to that
// member simply stop being checked — which is why the lint forbids raw
// std::mutex: the guard annotations must at least exist for the analysis
// to have anything to enforce. To see a GUARDED_BY fire, add
// `queue_.size();` outside any MutexLock scope and rebuild with clang.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace streamflow {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1 required).
  explicit ThreadPool(std::size_t threads);

  /// Joins the workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. Tasks must not throw — wrap fallible work and stash
  /// the exception (see ExperimentRunner).
  void submit(std::function<void()> task) SF_EXCLUDES(mutex_);

  /// Block until every submitted task has finished.
  void wait() SF_EXCLUDES(mutex_);

 private:
  void worker_loop() SF_EXCLUDES(mutex_);

  /// True when the queue is drained and no worker is mid-task — the
  /// `wait()` predicate and the `all_done_` notification condition.
  bool work_done() const SF_REQUIRES(mutex_) {
    return queue_.empty() && in_flight_ == 0;
  }

  std::vector<std::thread> workers_;  // immutable after construction
  Mutex mutex_;
  std::deque<std::function<void()>> queue_ SF_GUARDED_BY(mutex_);
  CondVar work_available_;
  CondVar all_done_;
  std::size_t in_flight_ SF_GUARDED_BY(mutex_) = 0;
  bool stopping_ SF_GUARDED_BY(mutex_) = false;
};

}  // namespace streamflow
