// Fixed-size thread pool used by the experiment engine. Deliberately minimal:
// tasks are submitted up front and `wait()` blocks until the queue drains and
// every worker is idle. Determinism of the engine does NOT depend on task
// scheduling — each task writes to its own output slot — so the pool makes no
// ordering promises beyond running every task exactly once.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace streamflow {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1 required).
  explicit ThreadPool(std::size_t threads);

  /// Joins the workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. Tasks must not throw — wrap fallible work and stash
  /// the exception (see ExperimentRunner).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace streamflow
