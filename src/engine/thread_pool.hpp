// Fixed-size thread pool used by the experiment engine and the parallel
// portfolio search. Deliberately minimal: tasks are submitted up front and
// `wait()` blocks until the queue drains and every worker is idle.
//
// Determinism contract: the pool makes NO ordering promises beyond running
// every task exactly once — engine determinism never depends on task
// scheduling. Every deterministic layer built on top follows the same
// recipe: partition the work so each task writes only its own output slot,
// derive any randomness from jump-ahead substreams keyed by the slot index
// (never by worker identity), and reduce serially in slot order after
// wait() returns.
//
// Thread safety: submit() and wait() may be called from the owning thread
// while workers run; tasks themselves must not touch the pool. Tasks run
// concurrently, so anything they share must be immutable (e.g. one
// Instance) or sliced per task (e.g. one AnalysisContext per worker).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace streamflow {

class ThreadPool {
 public:
  /// Spawns `threads` workers (at least 1 required).
  explicit ThreadPool(std::size_t threads);

  /// Joins the workers; pending tasks are completed first.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue one task. Tasks must not throw — wrap fallible work and stash
  /// the exception (see ExperimentRunner).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace streamflow
