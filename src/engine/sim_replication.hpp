// Replicated runs of the two simulators on the experiment engine.
//
// Each wrapper validates the simulation options once, then fans R
// replications out over the pool; replication k draws exclusively from
// substream k of the experiment seed (the sim options' own `seed` field is
// ignored). Metric order is fixed and documented per wrapper so callers can
// index ReplicatedResult columns stably.
//
// Determinism contract: every wrapper inherits the engine guarantee — the
// ReplicatedResult is a pure function of (inputs, seed, replications),
// bit-identical for any thread count. The mapping (and the immutable
// Instance behind it) is shared read-only across all replication threads;
// each replication owns its simulator state.
#pragma once

#include "engine/experiment_runner.hpp"
#include "sim/pipeline_sim.hpp"
#include "sim/teg_sim.hpp"

namespace streamflow {

/// Metrics (in order): throughput, in_order_throughput, completed, elapsed,
/// horizon — the fields of TegSimResult.
ReplicatedResult run_replicated_teg(const TimedEventGraph& graph,
                                    const std::vector<DistributionPtr>& laws,
                                    const TegSimOptions& sim_options = {},
                                    const ExperimentOptions& options = {});

/// Metrics (in order): throughput, in_order_throughput, completed, elapsed,
/// makespan, mean_latency, max_latency — the fields of PipelineSimResult.
ReplicatedResult run_replicated_pipeline(
    const Mapping& mapping, ExecutionModel model,
    const StochasticTiming& timing, const PipelineSimOptions& sim_options = {},
    const ExperimentOptions& options = {});

/// Same metrics as run_replicated_pipeline, for the associated case (§6.2).
ReplicatedResult run_replicated_pipeline_associated(
    const Mapping& mapping, ExecutionModel model, const Distribution& size_law,
    const PipelineSimOptions& sim_options = {},
    const ExperimentOptions& options = {},
    AssociationScope scope = AssociationScope::kPerDataSet);

}  // namespace streamflow
