// Deterministic parallel mapping search: a portfolio of local-search
// restarts fanned out over the engine thread pool.
//
// The serial optimize_mapping (core/heuristics.hpp) runs its R restarts one
// after another on one core even though the restarts are independent: the
// only state they share is the immutable problem instance, and the only
// coupling is the PRNG stream the random starts are drawn from. This module
// removes that coupling up front — every start assignment is materialized
// serially before any worker runs — and then evaluates the restarts
// concurrently, each worker owning a private AnalysisContext over the one
// shared std::shared_ptr<const Instance>.
//
// Determinism contract (the Bobpp-style guarantee, tested in
// tests/test_parallel_search.cpp):
//  * restart k's start is a pure function of (seed, k) — never of thread
//    count, worker identity, or claim order;
//  * restart outcomes (score, final assignment, evaluation count, pattern
//    requests) are cache-state independent, so it does not matter which
//    warm worker context happens to run a restart (the AnalysisContext
//    bit-exactness contract);
//  * the reduction is serial and in restart order, keeping the best score
//    with strict improvement — ties always resolve to the LOWEST restart
//    index.
// Together these make ParallelSearchResult a pure function of
// (instance, options.search, seeding): bit-identical for any `threads`
// value, including 1, and equal to the serial optimize_mapping under the
// default sequential-compat seeding.
//
// Thread-safety rules: the Instance is immutable and shared read-only
// across all workers (no synchronization needed); an AnalysisContext is
// single-thread — the pool gives each worker its own and never migrates a
// running restart. The module itself spawns and joins its pool per call;
// the entry points are re-entrant.
#pragma once

#include <cstdint>
#include <vector>

#include "core/heuristics.hpp"

namespace streamflow {

class PatternStore;

/// How restart k obtains its random start.
enum class RestartSeeding {
  /// Starts are drawn sequentially from one Prng(seed) in restart order —
  /// exactly the draws the serial optimize_mapping makes, so the portfolio
  /// result is bit-identical to the serial search (the PR 4 pinned scores).
  /// The draws happen serially before fan-out; only the searches run
  /// concurrently.
  kSequentialCompat,
  /// Restart k draws from jump-ahead substream k of the seed
  /// (StreamFactory: Prng(seed) advanced by k polynomial jumps, 2^128 draws
  /// apart). Restart k is then a pure function of (seed, k) alone: growing
  /// the portfolio never changes earlier restarts (the prefix property),
  /// and shards of a portfolio can be computed on different machines.
  kSubstreams,
};

struct ParallelSearchOptions {
  /// Per-restart search options; `search.restarts` is the portfolio size R
  /// (0 and 1 both mean the greedy restart only, as in the serial search)
  /// and `search.seed` seeds the chosen discipline.
  MappingSearchOptions search;
  /// Worker threads; 0 means std::thread::hardware_concurrency(). The
  /// result does not depend on this value.
  std::size_t threads = 0;
  RestartSeeding seeding = RestartSeeding::kSequentialCompat;
  /// Batch mode only: give scenario j an independent stream family by
  /// advancing the seed stream j long jumps (2^192 draws) before the
  /// per-restart discipline applies. Off by default, so every scenario
  /// reuses `search.seed` exactly as the serial batch CLI always has.
  bool scenario_streams = false;
  /// Optional process-wide PatternStore (core/pattern_store.hpp) attached
  /// to every worker context, so restarts share pattern solves across
  /// workers, calls, and (via snapshots) processes. Results are
  /// bit-identical with or without it, warm or cold — a store hit returns
  /// the bits a local solve would have — so this field, like `threads`,
  /// can never reach a result. Not owned; must outlive the call.
  PatternStore* pattern_store = nullptr;

  // ---- Metaheuristic island portfolio (search.kind != kGreedyLocal) -------
  //
  // SA/tabu runs organize as `islands` deterministic islands: island 0 is
  // seeded by the full greedy restart (so the portfolio never falls below
  // the greedy baseline) and island k >= 1 by a random start drawn from
  // StreamFactory substream k. Each synchronization round runs one leg per
  // island (legs of a round may run concurrently; a leg touches only its
  // island, its private substream, and worker-private contexts), then — on
  // one thread, in island order — island k adopts the best of island
  // (k-1 mod islands) as its incumbent iff it strictly beats k's own best.
  // After `sync_rounds` rounds the best island (strict improvement, lowest
  // index on ties) gets a final local-search polish. Every cross-island
  // interaction happens at the serial exchange points, so the whole run is
  // a pure function of (seed, options) — thread-count independent like the
  // greedy portfolio. Ignored for kGreedyLocal.

  /// Island count of the metaheuristic portfolio (>= 1).
  std::size_t islands = 4;
  /// Synchronization rounds, i.e. legs per island (>= 1).
  std::size_t sync_rounds = 8;

  /// `threads` with 0 resolved to the detected hardware concurrency.
  std::size_t resolved_threads() const;
};

/// Result of one portfolio. All counters are thread-count invariant: they
/// are sums of per-restart deltas, and each restart's deltas are
/// cache-state independent. (The hit/miss *split* inside a worker's cache
/// is scheduling-dependent, which is why it is deliberately not reported.)
struct ParallelSearchResult {
  Mapping mapping;                 ///< the best mapping found
  double throughput = 0.0;         ///< its objective value
  double greedy_throughput = 0.0;  ///< restart 0's construction score
  /// Restart index that produced `mapping` (lowest index on ties).
  std::size_t best_restart = 0;
  /// Portfolio size actually run (max(search.restarts, 1)).
  std::size_t restarts = 0;
  /// Workers the pool ran with (min(resolved threads, restarts)).
  std::size_t threads_used = 0;
  /// Objective evaluations summed across all restarts.
  std::size_t evaluations = 0;
  /// Pattern solves requested (cache hits + misses) summed across restarts.
  std::size_t pattern_requests = 0;
  /// Bound-screen accounting summed across restarts (see
  /// MappingSearchResult; all zero under BoundPolicy::kNone).
  std::size_t moves_pruned_mct = 0;
  std::size_t moves_pruned_maxplus = 0;
  std::size_t moves_solved = 0;
  /// Per-restart outcomes in restart order (the determinism witness: this
  /// whole vector is bit-identical for any thread count). For an island
  /// portfolio: one row per island, accumulating that island's legs (plus
  /// the greedy seeding for island 0 and the polish for the winner).
  std::vector<RestartResult> trace;
};

/// Runs the portfolio over the thread pool. Requires a valid
/// (instance, options.search) pair — validated up front, on the caller's
/// thread. Exceptions thrown inside a restart are rethrown here; when
/// several restarts fail, the lowest restart index wins (deterministic).
ParallelSearchResult parallel_optimize_mapping(
    const InstancePtr& instance, const ParallelSearchOptions& options);

/// The second parallel axis: one portfolio per scenario, scenarios
/// dispatched across the pool (each scenario's restarts run serially inside
/// the worker that claimed it) and results returned in scenario order.
/// Workers keep their AnalysisContext warm across the scenarios they claim;
/// results are nevertheless identical for any thread count because every
/// per-scenario outcome is cache-state independent. With
/// `options.scenario_streams`, scenario j's seed stream is advanced j long
/// jumps first; otherwise all scenarios share `search.seed` (so identical
/// instance files produce identical rows — the CLI batch contract).
/// Requires search.kind == kGreedyLocal: the batch axis composes with the
/// restart portfolio; island metaheuristics run per instance through
/// parallel_optimize_mapping.
std::vector<ParallelSearchResult> parallel_optimize_batch(
    const std::vector<InstancePtr>& instances,
    const ParallelSearchOptions& options);

}  // namespace streamflow
