// Deterministic partitioning of one seed into independent PRNG substreams.
//
// Substream k is Prng(seed) advanced by k polynomial jumps (Prng::jump), so
// consecutive substreams are 2^128 draws apart: they never overlap for any
// realistic draw count, and substream k depends only on (seed, k) — never on
// thread count, call order, or process. This is what makes the parallel
// layers bit-reproducible: work unit k (a replication, a search restart)
// consumes substream k wherever it happens to run. For a second independent
// axis (e.g. scenarios of a batch search), Prng::long_jump advances 2^192
// draws, tiling families of 2^64 substreams that never collide with the
// per-unit jumps.
//
// Thread safety: a StreamFactory is NOT thread-safe (it keeps a frontier
// state) — materialize every stream serially before fanning out; each
// returned Prng is an independent value afterwards.
#pragma once

#include <cstdint>

#include "common/prng.hpp"

namespace streamflow {

class StreamFactory {
 public:
  explicit StreamFactory(std::uint64_t seed) : seed_(seed), frontier_(seed) {}

  std::uint64_t seed() const { return seed_; }

  /// Generator for substream k. Amortized O(1) jumps when called with
  /// non-decreasing k (the factory keeps the frontier state); random access
  /// backwards recomputes from the seed in O(k) jumps. Not thread-safe:
  /// materialize the streams before fanning out.
  Prng stream(std::uint64_t k) {
    if (k < built_) {
      Prng p(seed_);
      for (std::uint64_t i = 0; i < k; ++i) p.jump();
      return p;
    }
    while (built_ < k) {
      frontier_.jump();
      ++built_;
    }
    return frontier_;
  }

 private:
  std::uint64_t seed_;
  Prng frontier_;            // Prng(seed_) advanced by built_ jumps
  std::uint64_t built_ = 0;  // substream index frontier_ currently holds
};

}  // namespace streamflow
