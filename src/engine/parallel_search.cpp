#include "engine/parallel_search.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <optional>
#include <thread>
#include <utility>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/prng.hpp"
#include "common/thread_annotations.hpp"
#include "core/analysis_context.hpp"
#include "core/pattern_store.hpp"
#include "engine/stream_factory.hpp"
#include "engine/thread_pool.hpp"

namespace streamflow {

std::size_t ParallelSearchOptions::resolved_threads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

/// Base stream of one scenario: Prng(seed), advanced `scenario` long jumps
/// (2^192 draws each) when scenario streams are on. Long jumps and the
/// per-restart short jumps (2^128) tile disjoint stretches of the xoshiro
/// period, so scenario families never collide with restart substreams.
Prng scenario_base_stream(std::uint64_t seed, std::size_t scenario,
                          bool scenario_streams) {
  Prng base(seed);
  if (scenario_streams) {
    for (std::size_t j = 0; j < scenario; ++j) base.long_jump();
  }
  return base;
}

/// Materializes the start assignments of restarts 1..R-1, serially, before
/// any worker runs — this is where thread count is decoupled from the
/// random draws. Sequential-compat consumes `base` in restart order (the
/// serial optimize_mapping draws); substream seeding copies `base` advanced
/// k jumps for restart k (equal to StreamFactory(seed).stream(k) when
/// `base` is Prng(seed)).
std::vector<StageAssignment> materialize_starts(const InstancePtr& instance,
                                                std::size_t restarts,
                                                RestartSeeding seeding,
                                                Prng base) {
  std::vector<StageAssignment> starts;
  if (restarts <= 1) return starts;
  starts.reserve(restarts - 1);
  const Application& application = instance->application;
  const Platform& platform = instance->platform;
  if (seeding == RestartSeeding::kSequentialCompat) {
    for (std::size_t k = 1; k < restarts; ++k) {
      starts.push_back(draw_restart_assignment(application, platform, base));
    }
  } else {
    Prng frontier = base;  // substream k = base advanced k jumps
    for (std::size_t k = 1; k < restarts; ++k) {
      frontier.jump();
      Prng stream = frontier;
      starts.push_back(draw_restart_assignment(application, platform, stream));
    }
  }
  return starts;
}

/// Runs restart k of the portfolio through `context`.
RestartResult run_restart(const InstancePtr& instance,
                          const MappingSearchOptions& options, std::size_t k,
                          const std::vector<StageAssignment>& starts,
                          AnalysisContext& context) {
  if (k == 0) return run_greedy_restart(instance, options, context);
  return run_random_restart(instance, starts[k - 1], options, context);
}

/// The serial in-order reduction: strict improvement in restart order, so
/// ties always resolve to the lowest restart index.
std::size_t reduce_best(const std::vector<RestartResult>& rows) {
  std::size_t best = 0;
  for (std::size_t k = 1; k < rows.size(); ++k) {
    if (rows[k].feasible && rows[k].score > rows[best].score) best = k;
  }
  return best;
}

ParallelSearchResult assemble(const InstancePtr& instance,
                              const MappingSearchOptions& search,
                              std::vector<RestartResult> rows,
                              std::size_t threads_used) {
  const std::size_t best = reduce_best(rows);
  auto mapping =
      realize_assignment(instance, rows[best].assignment, search.max_paths);
  SF_ASSERT(mapping.has_value(), "search ended on an infeasible assignment");

  ParallelSearchResult result{std::move(*mapping),
                              rows[best].score,
                              rows[0].start_score,
                              best,
                              rows.size(),
                              threads_used,
                              0,
                              0,
                              0,
                              0,
                              0,
                              std::move(rows)};
  for (const RestartResult& row : result.trace) {
    result.evaluations += row.evaluations;
    result.pattern_requests += row.pattern_requests;
    result.moves_pruned_mct += row.moves_pruned_mct;
    result.moves_pruned_maxplus += row.moves_pruned_maxplus;
    result.moves_solved += row.moves_solved;
  }
  return result;
}

/// One whole portfolio run serially through a caller-provided context —
/// the per-scenario body of the batch axis, and the threads == 1 path.
std::vector<RestartResult> run_portfolio_serial(
    const InstancePtr& instance, const MappingSearchOptions& search,
    const std::vector<StageAssignment>& starts, AnalysisContext& context) {
  const std::size_t restarts = starts.size() + 1;
  std::vector<RestartResult> rows;
  rows.reserve(restarts);
  for (std::size_t k = 0; k < restarts; ++k) {
    rows.push_back(run_restart(instance, search, k, starts, context));
  }
  return rows;
}

/// Folds one leg's deltas into its island's trace row: counters accumulate,
/// feasible/score/assignment track the island's best, and start_score pins
/// the score the island's FIRST feasible leg entered with.
void merge_leg(RestartResult& row, const RestartResult& leg) {
  if (leg.feasible) {
    if (!row.feasible) row.start_score = leg.start_score;
    row.feasible = true;
    row.score = leg.score;
    row.assignment = leg.assignment;
  }
  row.evaluations += leg.evaluations;
  row.pattern_requests += leg.pattern_requests;
  row.moves_pruned_mct += leg.moves_pruned_mct;
  row.moves_pruned_maxplus += leg.moves_pruned_maxplus;
  row.moves_solved += leg.moves_solved;
}

/// The serial synchronization point between rounds: in island order, island
/// k adopts the best of island (k-1 mod I) as its incumbent iff it strictly
/// beats k's own best. Reads bests, writes incumbents only, so the order of
/// the loop body is immaterial (snapshot semantics for free).
void exchange_incumbents(std::vector<IslandState>& islands) {
  const std::size_t count = islands.size();
  for (std::size_t k = 0; k < count; ++k) {
    const IslandState& neighbor = islands[(k + count - 1) % count];
    if (neighbor.best_score > islands[k].best_score) {
      islands[k].current = neighbor.best;
      islands[k].current_score = neighbor.best_score;
      islands[k].feasible = true;
    }
  }
}

/// Stash of the first failure by the SMALLEST claimed index, so the error a
/// caller sees does not depend on worker timing.
class DeterministicErrorStash {
 public:
  void offer(std::size_t index, std::exception_ptr error) SF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (!error_ || index < index_) {
      index_ = index;
      error_ = std::move(error);
    }
  }
  // Callers invoke this after the pool's round barrier, but taking the lock
  // anyway keeps the guarded-access contract unconditional (and costs one
  // uncontended acquisition per round).
  void rethrow_if_any() const SF_EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    if (error_) std::rethrow_exception(error_);
  }

 private:
  mutable Mutex mutex_;
  std::size_t index_ SF_GUARDED_BY(mutex_) = 0;
  std::exception_ptr error_ SF_GUARDED_BY(mutex_);
};

/// The SA/tabu island portfolio (see the ParallelSearchOptions island
/// contract). Rounds alternate a parallel leg phase (islands claimed
/// dynamically; every leg reads only its island, its substream, and a
/// worker-private context) with the serial incumbent exchange, so the
/// result is a pure function of (instance, search, islands, sync_rounds).
ParallelSearchResult run_island_portfolio(const InstancePtr& instance,
                                          const ParallelSearchOptions& options) {
  const MappingSearchOptions& search = options.search;
  SF_REQUIRE(options.islands >= 1, "island portfolio requires islands >= 1");
  SF_REQUIRE(options.sync_rounds >= 1,
             "island portfolio requires sync_rounds >= 1");
  const std::size_t islands = options.islands;

  // Island k's private stream is substream k, materialized serially (the
  // factory keeps frontier state and is not thread-safe).
  StreamFactory factory(search.seed);
  std::vector<Prng> prngs;
  prngs.reserve(islands);
  for (std::size_t k = 0; k < islands; ++k) prngs.push_back(factory.stream(k));

  std::vector<IslandState> isl(islands);
  std::vector<RestartResult> rows(islands);
  AnalysisContext caller_context;
  caller_context.set_pattern_store(options.pattern_store);

  // Island 0 is seeded by the full greedy restart: the portfolio can never
  // end below the greedy baseline, and its construction score doubles as
  // greedy_throughput (trace row 0's start_score, like the greedy
  // portfolio's restart 0).
  rows[0] = run_greedy_restart(instance, search, caller_context);
  isl[0].feasible = rows[0].feasible;
  isl[0].current = rows[0].assignment;
  isl[0].current_score = rows[0].score;
  isl[0].best = rows[0].assignment;
  isl[0].best_score = rows[0].score;

  // Islands k >= 1 start from a random assignment drawn from their own
  // substream (the draw happens regardless of feasibility, so the stream
  // position stays a pure function of (seed, k)); an infeasible start
  // leaves the island idle until an exchange hands it an incumbent.
  for (std::size_t k = 1; k < islands; ++k) {
    StageAssignment start = draw_restart_assignment(
        instance->application, instance->platform, prngs[k]);
    if (realize_assignment(instance, start, search.max_paths)) {
      isl[k].feasible = true;
      isl[k].current = std::move(start);
    }
  }

  const std::size_t threads =
      std::min<std::size_t>(options.resolved_threads(), islands);
  if (threads <= 1) {
    for (std::size_t round = 0; round < options.sync_rounds; ++round) {
      for (std::size_t k = 0; k < islands; ++k) {
        merge_leg(rows[k], run_island_leg(instance, isl[k], round, search,
                                          prngs[k], caller_context));
      }
      exchange_incumbents(isl);
    }
  } else {
    std::vector<AnalysisContext> contexts(threads);  // warm across rounds
    for (AnalysisContext& context : contexts) {
      context.set_pattern_store(options.pattern_store);
    }
    std::vector<RestartResult> legs(islands);
    ThreadPool pool(threads);
    for (std::size_t round = 0; round < options.sync_rounds; ++round) {
      std::atomic<std::size_t> next{0};
      DeterministicErrorStash errors;
      for (std::size_t w = 0; w < threads; ++w) {
        pool.submit([&, w] {
          for (;;) {
            const std::size_t k = next.fetch_add(1);
            if (k >= islands) return;
            try {
              legs[k] = run_island_leg(instance, isl[k], round, search,
                                       prngs[k], contexts[w]);
            } catch (...) {
              errors.offer(k, std::current_exception());
            }
          }
        });
      }
      pool.wait();  // the round barrier
      errors.rethrow_if_any();
      for (std::size_t k = 0; k < islands; ++k) merge_leg(rows[k], legs[k]);
      exchange_incumbents(isl);
    }
  }

  // Final polish: one local-search pass from the winning island's best (the
  // metaheuristics accept worsening steps, so their best may sit next to an
  // uncollected improvement). Deltas merge into the winner's trace row;
  // local search only adopts strict improvements, so the polished score
  // never drops below the island best.
  const std::size_t winner = reduce_best(rows);
  if (rows[winner].feasible) {
    RestartResult polish = run_random_restart(instance, rows[winner].assignment,
                                              search, caller_context);
    SF_ASSERT(polish.feasible, "winning island best failed to realize");
    rows[winner].score = polish.score;
    rows[winner].assignment = polish.assignment;
    rows[winner].evaluations += polish.evaluations;
    rows[winner].pattern_requests += polish.pattern_requests;
    rows[winner].moves_pruned_mct += polish.moves_pruned_mct;
    rows[winner].moves_pruned_maxplus += polish.moves_pruned_maxplus;
    rows[winner].moves_solved += polish.moves_solved;
  }
  return assemble(instance, search, std::move(rows), threads);
}

}  // namespace

ParallelSearchResult parallel_optimize_mapping(
    const InstancePtr& instance, const ParallelSearchOptions& options) {
  validate_mapping_search(instance, options.search);
  if (options.search.kind != RestartKind::kGreedyLocal) {
    return run_island_portfolio(instance, options);
  }
  const std::size_t restarts = std::max<std::size_t>(options.search.restarts, 1);
  const std::vector<StageAssignment> starts = materialize_starts(
      instance, restarts, options.seeding,
      scenario_base_stream(options.search.seed, 0, false));
  const std::size_t threads =
      std::min<std::size_t>(options.resolved_threads(), restarts);

  std::vector<RestartResult> rows(restarts);
  if (threads <= 1) {
    AnalysisContext context;
    context.set_pattern_store(options.pattern_store);
    rows = run_portfolio_serial(instance, options.search, starts, context);
    return assemble(instance, options.search, std::move(rows), 1);
  }

  // Workers claim restart indices dynamically (the claim order is
  // irrelevant: each restart writes only its own row and is cache-state
  // independent) and keep one private AnalysisContext warm across every
  // restart they claim.
  std::atomic<std::size_t> next{0};
  DeterministicErrorStash errors;
  ThreadPool pool(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    pool.submit([&] {
      AnalysisContext context;
      context.set_pattern_store(options.pattern_store);
      for (;;) {
        const std::size_t k = next.fetch_add(1);
        if (k >= restarts) return;
        try {
          rows[k] = run_restart(instance, options.search, k, starts, context);
        } catch (...) {
          errors.offer(k, std::current_exception());
        }
      }
    });
  }
  pool.wait();
  errors.rethrow_if_any();
  return assemble(instance, options.search, std::move(rows), threads);
}

std::vector<ParallelSearchResult> parallel_optimize_batch(
    const std::vector<InstancePtr>& instances,
    const ParallelSearchOptions& options) {
  SF_REQUIRE(!instances.empty(), "batch search over an empty scenario list");
  SF_REQUIRE(options.search.kind == RestartKind::kGreedyLocal,
             "the batch axis composes with the greedy restart portfolio; "
             "run island metaheuristics per instance through "
             "parallel_optimize_mapping");
  // Validate every scenario up front, in order, on the caller's thread:
  // option errors are deterministic and name the first offending scenario.
  for (const InstancePtr& instance : instances) {
    validate_mapping_search(instance, options.search);
  }
  const std::size_t restarts = std::max<std::size_t>(options.search.restarts, 1);

  auto run_scenario = [&](std::size_t j,
                          AnalysisContext& context) -> ParallelSearchResult {
    const std::vector<StageAssignment> starts = materialize_starts(
        instances[j], restarts, options.seeding,
        scenario_base_stream(options.search.seed, j, options.scenario_streams));
    std::vector<RestartResult> rows =
        run_portfolio_serial(instances[j], options.search, starts, context);
    // Each scenario runs inside one worker, so its own thread count is 1.
    return assemble(instances[j], options.search, std::move(rows), 1);
  };

  const std::size_t threads =
      std::min<std::size_t>(options.resolved_threads(), instances.size());
  std::vector<ParallelSearchResult> results;
  results.reserve(instances.size());

  if (threads <= 1) {
    AnalysisContext context;
    context.set_pattern_store(options.pattern_store);
    for (std::size_t j = 0; j < instances.size(); ++j) {
      results.push_back(run_scenario(j, context));
    }
    return results;
  }

  // Scenario-level fan-out: rows land in per-scenario slots and are
  // returned in scenario order regardless of which worker ran what.
  std::vector<std::optional<ParallelSearchResult>> slots(instances.size());
  std::atomic<std::size_t> next{0};
  DeterministicErrorStash errors;
  ThreadPool pool(threads);
  for (std::size_t w = 0; w < threads; ++w) {
    pool.submit([&] {
      AnalysisContext context;  // warm across the scenarios this worker claims
      context.set_pattern_store(options.pattern_store);
      for (;;) {
        const std::size_t j = next.fetch_add(1);
        if (j >= slots.size()) return;
        try {
          slots[j].emplace(run_scenario(j, context));
        } catch (...) {
          errors.offer(j, std::current_exception());
        }
      }
    });
  }
  pool.wait();
  errors.rethrow_if_any();
  for (std::optional<ParallelSearchResult>& slot : slots) {
    results.push_back(std::move(*slot));
  }
  return results;
}

}  // namespace streamflow
