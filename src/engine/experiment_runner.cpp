#include "engine/experiment_runner.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

#include "common/error.hpp"
#include "common/mutex.hpp"
#include "common/stats.hpp"
#include "engine/stream_factory.hpp"
#include "engine/thread_pool.hpp"

namespace streamflow {

void ExperimentOptions::validate() const {
  SF_REQUIRE(replications >= 1, "need at least one replication");
}

std::size_t ExperimentOptions::resolved_threads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

namespace {

std::size_t metric_index(const std::vector<std::string>& names,
                         const std::string& name) {
  for (std::size_t m = 0; m < names.size(); ++m)
    if (names[m] == name) return m;
  throw InvalidArgument("unknown metric '" + name + "'");
}

}  // namespace

const MetricSummary& ReplicatedResult::metric(const std::string& name) const {
  return summaries[metric_index(metric_names, name)];
}

std::vector<double> ReplicatedResult::column(const std::string& name) const {
  const std::size_t index = metric_index(metric_names, name);
  std::vector<double> values;
  values.reserve(per_replication.size());
  for (const std::vector<double>& row : per_replication)
    values.push_back(row[index]);
  return values;
}

ExperimentRunner::ExperimentRunner(ExperimentOptions options)
    : options_(options) {
  options_.validate();
}

ReplicatedResult ExperimentRunner::run(
    const std::vector<std::string>& metric_names,
    const ReplicationBody& body) const {
  SF_REQUIRE(!metric_names.empty(), "experiment declares no metrics");
  SF_REQUIRE(static_cast<bool>(body), "experiment body is empty");
  const std::size_t r = options_.replications;
  const std::size_t threads =
      std::min<std::size_t>(options_.resolved_threads(), r);

  // Substreams are materialized serially up front (StreamFactory is not
  // thread-safe); each is a self-contained Prng afterwards.
  StreamFactory factory(options_.seed);
  std::vector<Prng> streams;
  streams.reserve(r);
  for (std::size_t k = 0; k < r; ++k) streams.push_back(factory.stream(k));

  std::vector<std::vector<double>> rows(r);
  auto run_one = [&](std::size_t k) { rows[k] = body(streams[k], k); };

  if (threads <= 1) {
    for (std::size_t k = 0; k < r; ++k) run_one(k);
  } else {
    // Workers claim replication indices dynamically; the first exception is
    // stashed and rethrown after the pool drains.
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    Mutex error_mutex;
    ThreadPool pool(threads);
    for (std::size_t w = 0; w < threads; ++w) {
      pool.submit([&] {
        for (;;) {
          const std::size_t k = next.fetch_add(1);
          if (k >= r) return;
          try {
            run_one(k);
          } catch (...) {
            MutexLock lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    pool.wait();
    if (first_error) std::rethrow_exception(first_error);
  }

  ReplicatedResult result;
  result.metric_names = metric_names;
  result.replications = r;
  result.threads_used = threads;
  result.seed = options_.seed;
  for (std::size_t k = 0; k < r; ++k) {
    SF_REQUIRE(rows[k].size() == metric_names.size(),
               "replication body returned a row of the wrong width");
  }
  result.per_replication = std::move(rows);
  result.summaries.reserve(metric_names.size());
  for (std::size_t m = 0; m < metric_names.size(); ++m) {
    RunningStats stats;
    for (const std::vector<double>& row : result.per_replication)
      stats.add(row[m]);
    MetricSummary summary;
    summary.name = metric_names[m];
    summary.mean = stats.mean();
    summary.stddev = stats.stddev();
    summary.ci95_halfwidth = stats.ci95_halfwidth();
    summary.min = stats.min();
    summary.max = stats.max();
    result.summaries.push_back(std::move(summary));
  }
  return result;
}

}  // namespace streamflow
