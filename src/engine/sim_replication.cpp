#include "engine/sim_replication.hpp"

namespace streamflow {

namespace {

const std::vector<std::string>& teg_metric_names() {
  static const std::vector<std::string> names{
      "throughput", "in_order_throughput", "completed", "elapsed", "horizon"};
  return names;
}

const std::vector<std::string>& pipeline_metric_names() {
  static const std::vector<std::string> names{
      "throughput", "in_order_throughput", "completed",  "elapsed",
      "makespan",   "mean_latency",        "max_latency"};
  return names;
}

std::vector<double> to_row(const TegSimResult& r) {
  return {r.throughput, r.in_order_throughput,
          static_cast<double>(r.completed), r.elapsed, r.horizon};
}

std::vector<double> to_row(const PipelineSimResult& r) {
  return {r.throughput, r.in_order_throughput,
          static_cast<double>(r.completed), r.elapsed,
          r.makespan,   r.mean_latency,
          r.max_latency};
}

}  // namespace

ReplicatedResult run_replicated_teg(const TimedEventGraph& graph,
                                    const std::vector<DistributionPtr>& laws,
                                    const TegSimOptions& sim_options,
                                    const ExperimentOptions& options) {
  sim_options.validate();  // fail in the caller, not inside a worker
  ExperimentRunner runner(options);
  return runner.run(teg_metric_names(),
                    [&](Prng& prng, std::size_t /*replication*/) {
                      return to_row(simulate_teg(graph, laws, prng,
                                                 sim_options));
                    });
}

ReplicatedResult run_replicated_pipeline(const Mapping& mapping,
                                         ExecutionModel model,
                                         const StochasticTiming& timing,
                                         const PipelineSimOptions& sim_options,
                                         const ExperimentOptions& options) {
  sim_options.validate();
  ExperimentRunner runner(options);
  return runner.run(pipeline_metric_names(),
                    [&](Prng& prng, std::size_t /*replication*/) {
                      return to_row(simulate_pipeline(mapping, model, timing,
                                                      prng, sim_options));
                    });
}

ReplicatedResult run_replicated_pipeline_associated(
    const Mapping& mapping, ExecutionModel model, const Distribution& size_law,
    const PipelineSimOptions& sim_options, const ExperimentOptions& options,
    AssociationScope scope) {
  sim_options.validate();
  ExperimentRunner runner(options);
  return runner.run(pipeline_metric_names(),
                    [&](Prng& prng, std::size_t /*replication*/) {
                      return to_row(simulate_pipeline_associated(
                          mapping, model, size_law, prng, sim_options, scope));
                    });
}

}  // namespace streamflow
