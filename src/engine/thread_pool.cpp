#include "engine/thread_pool.hpp"

#include "common/error.hpp"

namespace streamflow {

ThreadPool::ThreadPool(std::size_t threads) {
  SF_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    SF_REQUIRE(!stopping_, "submit on a stopping thread pool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace streamflow
