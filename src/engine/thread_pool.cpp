#include "engine/thread_pool.hpp"

#include "common/error.hpp"
#include "common/mutex.hpp"

namespace streamflow {

ThreadPool::ThreadPool(std::size_t threads) {
  SF_REQUIRE(threads >= 1, "thread pool needs at least one worker");
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    SF_REQUIRE(!stopping_, "submit on a stopping thread pool");
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  MutexLock lock(mutex_);
  while (!work_done()) all_done_.wait(mutex_);
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!stopping_ && queue_.empty()) work_available_.wait(mutex_);
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      MutexLock lock(mutex_);
      --in_flight_;
      if (work_done()) all_done_.notify_all();
    }
  }
}

}  // namespace streamflow
