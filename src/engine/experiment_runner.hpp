// Parallel Monte-Carlo experiment engine.
//
// An experiment is R independent replications of a stochastic simulation.
// Replication k is driven exclusively by PRNG substream k of the experiment
// seed (StreamFactory, 2^128 draws apart), computed on a fixed-size thread
// pool and aggregated serially in replication order — so the result is
// bit-identical for ANY thread count, including 1, and across machines. This
// turns the paper's single-run §7 protocol into one with honest statistics:
// every metric gets a mean, sample stddev, 95% CI, min/max, and the full
// per-replication table.
//
// Thread safety: an ExperimentRunner is immutable after construction and
// run() is const and re-entrant — concurrent run() calls from different
// threads are fine (each spawns its own pool). The replication body runs
// concurrently with itself: it must confine writes to its own row and may
// share only immutable state across replications.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/prng.hpp"

namespace streamflow {

struct ExperimentOptions {
  /// Number of independent replications R.
  std::size_t replications = 16;
  /// Worker threads; 0 means std::thread::hardware_concurrency().
  std::size_t threads = 0;
  /// Experiment seed: replication k consumes substream k of this seed.
  std::uint64_t seed = 42;

  /// Throws InvalidArgument on nonsensical settings.
  void validate() const;

  /// `threads` with 0 resolved to the detected hardware concurrency.
  std::size_t resolved_threads() const;
};

/// Aggregate of one metric across replications (normal-theory 95% CI from
/// common/stats' RunningStats).
struct MetricSummary {
  std::string name;
  double mean = 0.0;
  double stddev = 0.0;          ///< sample (n-1) standard deviation
  double ci95_halfwidth = 0.0;  ///< infinity when replications < 2
  double min = 0.0;
  double max = 0.0;
};

/// Result of a replicated experiment: one MetricSummary per metric plus the
/// per-replication table (row k = the metrics of replication k, in the order
/// the experiment declared them).
struct ReplicatedResult {
  std::vector<std::string> metric_names;
  std::vector<std::vector<double>> per_replication;  ///< [replication][metric]
  std::vector<MetricSummary> summaries;              ///< aligned with names
  std::size_t replications = 0;
  std::size_t threads_used = 0;
  std::uint64_t seed = 0;

  /// Summary of the named metric; throws InvalidArgument if unknown.
  const MetricSummary& metric(const std::string& name) const;

  /// Column of the named metric across replications, in replication order.
  std::vector<double> column(const std::string& name) const;
};

/// Runs one replication: fills one metric vector (same length and order as
/// the declared metric names) from the dedicated substream `prng`.
using ReplicationBody =
    std::function<std::vector<double>(Prng& prng, std::size_t replication)>;

class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentOptions options = {});

  const ExperimentOptions& options() const { return options_; }

  /// Fans the body out over options().replications substreams. Replications
  /// are claimed dynamically by the pool workers, but each writes only its
  /// own row and the aggregation runs serially in row order, so the returned
  /// ReplicatedResult is a pure function of (seed, replications, body).
  /// Exceptions thrown by the body are rethrown here (first one wins).
  ReplicatedResult run(const std::vector<std::string>& metric_names,
                       const ReplicationBody& body) const;

 private:
  ExperimentOptions options_;
};

}  // namespace streamflow
